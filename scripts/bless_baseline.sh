#!/usr/bin/env bash
# Re-bless the CI perf-gate baseline ledger.
#
# Rebuilds release, then records REPS runs of each gated smoke
# configuration into ci/baseline-ledger.ndjson (replacing it). Run this
# when a change legitimately moves the numbers — new default policy, a
# real speedup, a soundness fix that changes the verdict — and commit
# the regenerated file in the same PR, with the reason in the commit
# message. The perf-gate job diffs every push against this file.
set -euo pipefail

cd "$(dirname "$0")/.."
REPS="${REPS:-3}"
PAIR="${PAIR:-omsp16/div}"
OUT="ci/baseline-ledger.ndjson"

cargo build --release -p symsim-bench -p symsim-cli
mkdir -p ci
rm -f "$OUT"

for _ in $(seq "$REPS"); do
    ./target/release/bench_coanalysis --pair "$PAIR" --ledger "$OUT" > /dev/null
done

python3 scripts/validate_metrics.py docs/schema/ledger.schema.json "$OUT" --ndjson
echo "blessed $OUT:"
./target/release/symsim runs list --ledger "$OUT"
