#!/usr/bin/env python3
"""Validate symsim observability output against the checked-in schemas.

Stdlib-only validator for the JSON-Schema subset the schemas under
docs/schema/ actually use: type, enum, minimum, required, properties,
additionalProperties (boolean), items, oneOf, and local $ref into
/definitions.

Usage:
    validate_metrics.py <schema.json> <file> [--ndjson]

With --ndjson every non-empty line of <file> is validated as one
instance (the heartbeat stream or a --trace-out run trace); otherwise
the whole file is one JSON document (the metrics snapshot or a Chrome
trace export). Exits non-zero on the first failure.
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    # bool is an int subclass in Python; excluded explicitly below
    "number": (int, float),
    "null": type(None),
}


def resolve_ref(schema, root):
    """Follow a local ``#/definitions/...`` reference, if present."""
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref {ref!r} (only local refs)")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


class Invalid(Exception):
    """One instance failed validation (message carries path + reason)."""


def check(value, schema, root, path):
    schema = resolve_ref(schema, root)

    if "oneOf" in schema:
        matches = []
        for i, sub in enumerate(schema["oneOf"]):
            try:
                check(value, sub, root, f"{path}(oneOf[{i}])")
            except Invalid:
                continue
            matches.append(i)
        if len(matches) != 1:
            which = f"branches {matches}" if matches else "no branch"
            fail(path, f"oneOf: {which} matched (need exactly one)")

    expected = schema.get("type")
    if expected is not None:
        py = TYPES[expected]
        ok = isinstance(value, py)
        if expected in ("integer", "number") and isinstance(value, bool):
            ok = False
        if not ok:
            fail(path, f"expected {expected}, got {type(value).__name__}")

    if "enum" in schema and value not in schema["enum"]:
        fail(path, f"{value!r} not in {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            fail(path, f"{value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                check(value[key], sub, root, f"{path}.{key}")
        if schema.get("additionalProperties") is False:
            extra = sorted(set(value) - set(props))
            if extra:
                fail(path, f"unexpected keys {extra}")

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check(item, schema["items"], root, f"{path}[{i}]")


def fail(path, message):
    raise Invalid(f"validate_metrics: FAIL at {path}: {message}")


def main(argv):
    if len(argv) not in (3, 4) or (len(argv) == 4 and argv[3] != "--ndjson"):
        sys.exit(__doc__)
    schema_path, data_path = argv[1], argv[2]
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)

    if len(argv) == 4:  # --ndjson: one instance per line
        with open(data_path, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
        if not lines:
            sys.exit(f"validate_metrics: FAIL: {data_path} has no records")
        for n, line in enumerate(lines, 1):
            try:
                value = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"validate_metrics: FAIL: {data_path}:{n}: not JSON: {e}")
            try:
                check(value, schema, schema, f"{data_path}:{n}")
            except Invalid as e:
                sys.exit(str(e))
        print(f"validate_metrics: OK: {len(lines)} record(s) in {data_path}")
    else:
        with open(data_path, encoding="utf-8") as f:
            try:
                value = json.load(f)
            except json.JSONDecodeError as e:
                sys.exit(f"validate_metrics: FAIL: {data_path}: not JSON: {e}")
        try:
            check(value, schema, schema, data_path)
        except Invalid as e:
            sys.exit(str(e))
        print(f"validate_metrics: OK: {data_path}")


if __name__ == "__main__":
    main(sys.argv)
