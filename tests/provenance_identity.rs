//! Cross-mode provenance identity: first-exercise attribution must name
//! the *same winners* regardless of how the settle work was evaluated.
//! Event, cohort, and compiled mode walk the same exploration tree, so
//! with one worker the winning `(net, path, cycle)` triples must match
//! bit-for-bit — the attribution hook sits on `mark_toggled`, and the
//! eval modes may only change how fast values arrive, never which path
//! first produces them.
//!
//! With four workers the *exploration* is still the same tree but the
//! coverage race is real: two paths can first-toggle a net in either
//! order across schedules, and the collector breaks ties by `(cycle,
//! path id)` only among the observations it actually received. The
//! order-independent result — the attributed net *set*, which equals the
//! toggled-net set — must still agree across modes.
//!
//! Runs two (cpu, benchmark) pairs x {1, 4} workers.

use std::sync::Arc;

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::{CoAnalysisConfig, CoAnalysisReport};
use symsim_obs::MetricsRegistry;
use symsim_sim::{EvalMode, SimConfig};

const PAIRS: [(CpuKind, &str); 2] = [(CpuKind::Omsp16, "div"), (CpuKind::Bm32, "insort")];

fn run(kind: CpuKind, bench: &str, mode: EvalMode, workers: usize) -> CoAnalysisReport {
    let registry = Arc::new(MetricsRegistry::new(workers));
    let config = CoAnalysisConfig {
        workers,
        sim: SimConfig {
            eval_mode: mode,
            attribution: true,
            ..SimConfig::default()
        },
        metrics: Some(Arc::clone(&registry)),
        ..CoAnalysisConfig::default()
    };
    run_experiment(kind, bench, config).report
}

/// The full winner table as `(net, path, cycle, reset)` rows.
fn winners(r: &CoAnalysisReport) -> Vec<(u32, u64, u64, bool)> {
    r.provenance
        .as_ref()
        .expect("attributed run yields provenance")
        .attributions()
        .iter()
        .map(|a| (a.net.0, a.path, a.cycle, a.reset))
        .collect()
}

/// The attributed net set only.
fn net_set(r: &CoAnalysisReport) -> Vec<u32> {
    r.provenance
        .as_ref()
        .expect("attributed run yields provenance")
        .attributions()
        .iter()
        .map(|a| a.net.0)
        .collect()
}

#[test]
fn winners_are_identical_across_eval_modes() {
    for (kind, bench) in PAIRS {
        // sequential: exploration order is deterministic, so the winning
        // (net, path, cycle) triples must match exactly across modes
        let event = run(kind, bench, EvalMode::Event, 1);
        let reference = winners(&event);
        assert!(
            !reference.is_empty(),
            "{}/{bench}: no nets attributed",
            kind.name()
        );
        for mode in [EvalMode::Cohort, EvalMode::Compiled] {
            let other = run(kind, bench, mode, 1);
            let ctx = format!("{}/{bench} x1 ({})", kind.name(), mode.name());
            assert_eq!(
                event.exercisable_gates, other.exercisable_gates,
                "{ctx}: exercisable gates"
            );
            assert_eq!(reference, winners(&other), "{ctx}: winner table diverged");
        }

        // every toggled net is attributed and vice versa — the provenance
        // map and the toggle profile are two views of the same facts
        let prov = event.provenance.as_ref().unwrap();
        assert_eq!(
            prov.attributed_count(),
            event.profile.toggled_count(),
            "{}/{bench}: attribution and toggle profile disagree",
            kind.name()
        );
    }
}

#[test]
fn attributed_net_set_is_schedule_independent() {
    for (kind, bench) in PAIRS {
        // parallel: schedules race, so winners may differ, but the
        // attributed net set is the converged toggle set and must agree
        let event = run(kind, bench, EvalMode::Event, 4);
        let reference = net_set(&event);
        for mode in [EvalMode::Cohort, EvalMode::Compiled] {
            let other = run(kind, bench, mode, 4);
            let ctx = format!("{}/{bench} x4 ({})", kind.name(), mode.name());
            assert_eq!(
                event.exercisable_gates, other.exercisable_gates,
                "{ctx}: exercisable gates"
            );
            assert_eq!(reference, net_set(&other), "{ctx}: attributed net set");
        }
        // and the parallel net set matches the sequential one
        let sequential = run(kind, bench, EvalMode::Event, 1);
        assert_eq!(
            net_set(&sequential),
            reference,
            "{}/{bench}: x4 attributed different nets than x1",
            kind.name()
        );
    }
}
