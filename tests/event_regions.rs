//! The paper's regression check (§5.0.1): "the event list from the baseline
//! iverilog version matches the [enhanced] version at simulation points" —
//! i.e. the symbolic extensions must not disturb ordinary simulation.
//!
//! We run the same concrete application twice on the same engine: once bare
//! (baseline) and once with every symbolic feature armed (`$monitor_x`
//! watches, finish net, toggle observer). The evaluation-event traces must
//! be identical, and the Symbolic region must always execute last.

use symsim_bench::CpuKind;
use symsim_sim::{MonitorSpec, SimConfig, Simulator};

fn event_trace(kind: CpuKind, enhanced: bool) -> Vec<(u64, u32)> {
    let cpu = kind.build();
    let bench = kind.benchmark("div");
    let program = kind.assemble(bench.source);
    let config = SimConfig {
        trace_events: true,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&cpu.netlist, config);
    cpu.prepare_concrete(&mut sim, &program, &bench.data, &bench.example_inputs);
    if enhanced {
        // arm every symbolic feature; on a concrete run none may fire
        sim.monitor_x(MonitorSpec {
            qualifier: Some(cpu.monitor_qualifier),
            signals: cpu.monitor_signals.clone(),
        });
        sim.set_finish_net(cpu.finish);
        sim.arm_toggle_observer();
    }
    sim.take_event_trace(); // discard settle-phase events from preparation
    for _ in 0..200 {
        sim.step_cycle();
    }
    sim.take_event_trace()
}

#[test]
fn symbolic_extensions_do_not_disturb_simulation() {
    for kind in CpuKind::all() {
        let baseline = event_trace(kind, false);
        let enhanced = event_trace(kind, true);
        assert!(!baseline.is_empty());
        assert_eq!(
            baseline,
            enhanced,
            "event traces diverged on {}",
            kind.name()
        );
    }
}

#[test]
fn symbolic_region_executes_last_every_cycle() {
    let cpu = CpuKind::Omsp16.build();
    let bench = CpuKind::Omsp16.benchmark("div");
    let program = CpuKind::Omsp16.assemble(bench.source);
    let mut sim = Simulator::new(&cpu.netlist, SimConfig::default());
    cpu.prepare_concrete(&mut sim, &program, &bench.data, &bench.example_inputs);
    sim.trace_regions(true);
    for _ in 0..10 {
        sim.step_cycle();
    }
    let trace = sim.take_region_trace();
    // regions come in groups of five per cycle; the fifth is Symbolic
    assert_eq!(trace.len(), 50);
    for cycle_regions in trace.chunks(5) {
        assert!(matches!(
            cycle_regions.last(),
            Some((_, symsim_sim::Region::Symbolic))
        ));
    }
}
