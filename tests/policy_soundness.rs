//! Cross-policy soundness properties on the real processors:
//!
//! * tagged symbol propagation (Fig. 4 left) is *less conservative* than
//!   anonymous `X`s: its exercisable set can only shrink, and both must
//!   still cover concrete activity;
//! * parallel exploration reaches a sound fixpoint equal to sequential
//!   exploration's on the exercisable-gate metric.

use symsim_bench::CpuKind;
use symsim_core::{CoAnalysis, CoAnalysisConfig};
use symsim_logic::PropagationPolicy;
use symsim_sim::{SimConfig, Simulator};

fn coanalyze(
    kind: CpuKind,
    policy: PropagationPolicy,
    workers: usize,
) -> symsim_core::CoAnalysisReport {
    let cpu = kind.build();
    let bench = kind.benchmark("div");
    let program = kind.assemble(bench.source);
    let config = CoAnalysisConfig {
        sim: SimConfig {
            policy,
            ..SimConfig::default()
        },
        workers,
        max_cycles_per_segment: bench.max_cycles,
        ..CoAnalysisConfig::default()
    };
    let analysis = CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
    analysis.run(|sim| {
        if policy == PropagationPolicy::Tagged {
            cpu.prepare_symbolic_tagged(sim, &program, &bench.data);
        } else {
            cpu.prepare_symbolic(sim, &program, &bench.data);
        }
    })
}

fn concrete_profile(kind: CpuKind) -> symsim_sim::ToggleProfile {
    let cpu = kind.build();
    let bench = kind.benchmark("div");
    let program = kind.assemble(bench.source);
    let mut sim = Simulator::new(&cpu.netlist, SimConfig::default());
    cpu.prepare_concrete(&mut sim, &program, &bench.data, &bench.example_inputs);
    sim.set_finish_net(cpu.finish);
    sim.arm_toggle_observer();
    sim.run(bench.max_cycles);
    sim.take_toggle_profile().expect("armed")
}

#[test]
fn tagged_policy_is_no_more_conservative() {
    for kind in CpuKind::all() {
        let anon = coanalyze(kind, PropagationPolicy::Anonymous, 1);
        let tagged = coanalyze(kind, PropagationPolicy::Tagged, 1);
        assert!(anon.converged() && tagged.converged());
        assert!(
            tagged.exercisable_gates <= anon.exercisable_gates,
            "{}: tagged {} > anonymous {}",
            kind.name(),
            tagged.exercisable_gates,
            anon.exercisable_gates
        );
        // both remain sound w.r.t. a concrete execution
        let concrete = concrete_profile(kind);
        assert!(anon.profile.covers_activity(&concrete), "{}", kind.name());
        assert!(tagged.profile.covers_activity(&concrete), "{}", kind.name());
    }
}

#[test]
fn parallel_exploration_is_sound() {
    let kind = CpuKind::Omsp16;
    let seq = coanalyze(kind, PropagationPolicy::Anonymous, 1);
    let par = coanalyze(kind, PropagationPolicy::Anonymous, 4);
    assert!(par.converged());
    let concrete = concrete_profile(kind);
    assert!(par.profile.covers_activity(&concrete));
    // single-merge CSM converges to the same exercisable fixpoint
    assert_eq!(seq.exercisable_gates, par.exercisable_gates);
}
