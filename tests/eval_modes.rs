//! End-to-end evaluation-mode identity: event, hybrid, and cohort mode
//! must produce the *same analysis* — identical path counts, CSM
//! decisions, cycle totals, and exercisable-gate results — on real CPU
//! workloads. The modes may only differ in throughput, never in results.
//!
//! With one worker the exploration order is deterministic, so every
//! statistic must match bit-for-bit. With four workers the interleaving
//! of CSM observations is racy by design (a path may be widened in one
//! schedule and covered in another), so only the order-independent
//! result — the exercisable-gate dichotomy — is asserted.
//!
//! Runs two (cpu, benchmark) pairs x {1, 4} workers.

use std::sync::Arc;

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::{CoAnalysisConfig, CoAnalysisReport};
use symsim_obs::{CounterId, MetricsRegistry};
use symsim_sim::{EvalMode, SimConfig};

const PAIRS: [(CpuKind, &str); 2] = [(CpuKind::Omsp16, "div"), (CpuKind::Bm32, "insort")];

fn run(
    kind: CpuKind,
    bench: &str,
    mode: EvalMode,
    workers: usize,
) -> (CoAnalysisReport, Arc<MetricsRegistry>) {
    let registry = Arc::new(MetricsRegistry::new(workers));
    let config = CoAnalysisConfig {
        workers,
        sim: SimConfig {
            eval_mode: mode,
            ..SimConfig::default()
        },
        metrics: Some(Arc::clone(&registry)),
        ..CoAnalysisConfig::default()
    };
    (run_experiment(kind, bench, config).report, registry)
}

#[test]
fn cohort_mode_reproduces_event_mode_results() {
    for (kind, bench) in PAIRS {
        // sequential: the DFS order is deterministic, so every statistic
        // that depends on exploration order must match exactly
        let (event, _) = run(kind, bench, EvalMode::Event, 1);
        let (hybrid, _) = run(kind, bench, EvalMode::Hybrid, 1);
        let (cohort, reg) = run(kind, bench, EvalMode::Cohort, 1);
        for (name, other) in [("hybrid", &hybrid), ("cohort", &cohort)] {
            let ctx = format!("{}/{bench} x1 ({name})", kind.name());
            assert_eq!(event.paths_created, other.paths_created, "{ctx}: created");
            assert_eq!(event.paths_skipped, other.paths_skipped, "{ctx}: skipped");
            assert_eq!(
                event.paths_finished, other.paths_finished,
                "{ctx}: finished"
            );
            assert_eq!(
                event.paths_simulated, other.paths_simulated,
                "{ctx}: simulated"
            );
            assert_eq!(
                event.simulated_cycles, other.simulated_cycles,
                "{ctx}: cycles"
            );
            assert_eq!(
                event.metrics.counter("csm_widenings"),
                other.metrics.counter("csm_widenings"),
                "{ctx}: csm_widenings"
            );
            assert_eq!(
                event.exercisable_gates, other.exercisable_gates,
                "{ctx}: exercisable gates"
            );
        }
        // the cohort run must actually have packed lanes — otherwise the
        // identity above is vacuous (everything fell back to scalar)
        let formed = reg.counter_total(CounterId::CohortsFormed);
        let members = reg.counter_total(CounterId::CohortMemberPaths);
        assert!(formed > 0, "{}/{bench}: no cohorts formed", kind.name());
        assert!(
            members >= 2 * formed,
            "{}/{bench}: cohorts under-occupied ({members} members / {formed})",
            kind.name()
        );

        // parallel: schedules race, but the exercisable-gate dichotomy is
        // the converged fixed point and must agree across modes
        let (event4, _) = run(kind, bench, EvalMode::Event, 4);
        let (cohort4, reg4) = run(kind, bench, EvalMode::Cohort, 4);
        let ctx = format!("{}/{bench} x4", kind.name());
        assert_eq!(
            event4.exercisable_gates, cohort4.exercisable_gates,
            "{ctx}: exercisable gates"
        );
        assert_eq!(
            event4.total_gates, cohort4.total_gates,
            "{ctx}: total gates"
        );
        assert!(
            reg4.counter_total(CounterId::CohortsFormed) > 0,
            "{ctx}: no cohorts formed"
        );
    }
}

#[test]
fn compiled_mode_reproduces_event_mode_results() {
    for (kind, bench) in PAIRS {
        let (event, _) = run(kind, bench, EvalMode::Event, 1);
        let (compiled, reg) = run(kind, bench, EvalMode::Compiled, 1);
        // without a toolchain the run degrades to hybrid — still identical
        // results, but the kernel assertions below would be vacuous
        let native = compiled.eval_mode == "compiled";
        let ctx = format!("{}/{bench} x1 (compiled)", kind.name());
        assert_eq!(
            event.paths_created, compiled.paths_created,
            "{ctx}: created"
        );
        assert_eq!(
            event.paths_skipped, compiled.paths_skipped,
            "{ctx}: skipped"
        );
        assert_eq!(
            event.paths_finished, compiled.paths_finished,
            "{ctx}: finished"
        );
        assert_eq!(
            event.paths_simulated, compiled.paths_simulated,
            "{ctx}: simulated"
        );
        assert_eq!(
            event.simulated_cycles, compiled.simulated_cycles,
            "{ctx}: cycles"
        );
        assert_eq!(
            event.metrics.counter("csm_widenings"),
            compiled.metrics.counter("csm_widenings"),
            "{ctx}: csm_widenings"
        );
        assert_eq!(
            event.exercisable_gates, compiled.exercisable_gates,
            "{ctx}: exercisable gates"
        );
        if native {
            // the identity must not be vacuous: the native kernel ran
            assert!(
                reg.counter_total(CounterId::CompiledEvals) > 0,
                "{ctx}: kernel never ran"
            );
            assert_eq!(compiled.eval_mode, "compiled", "{ctx}: eval_mode");
        } else {
            assert_eq!(compiled.eval_mode, "hybrid", "{ctx}: fallback eval_mode");
        }

        let (event4, _) = run(kind, bench, EvalMode::Event, 4);
        let (compiled4, _) = run(kind, bench, EvalMode::Compiled, 4);
        let ctx = format!("{}/{bench} x4 (compiled)", kind.name());
        assert_eq!(
            event4.exercisable_gates, compiled4.exercisable_gates,
            "{ctx}: exercisable gates"
        );
        assert_eq!(
            event4.total_gates, compiled4.total_gates,
            "{ctx}: total gates"
        );
    }
}
