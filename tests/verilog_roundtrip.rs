//! The Verilog frontend round-trips full processor netlists: writing a CPU
//! out as structural Verilog and parsing it back must yield a design that
//! simulates identically, gate for gate.

use symsim_bench::CpuKind;
use symsim_sim::{HaltReason, SimConfig, Simulator};

#[test]
fn cpus_round_trip_through_verilog() {
    for kind in CpuKind::all() {
        let cpu = kind.build();
        let text = symsim_verilog::write_netlist(&cpu.netlist);
        let back = symsim_verilog::parse_netlist(&text)
            .unwrap_or_else(|e| panic!("{} reparse failed: {e}", kind.name()));
        assert_eq!(
            back.gate_count(),
            cpu.netlist.gate_count(),
            "{}",
            kind.name()
        );
        assert_eq!(back.dff_count(), cpu.netlist.dff_count(), "{}", kind.name());
        assert_eq!(
            back.memories().len(),
            cpu.netlist.memories().len(),
            "{}",
            kind.name()
        );
        assert!(back.validate().is_ok(), "{}", kind.name());
    }
}

#[test]
fn reparsed_cpu_simulates_identically() {
    let kind = CpuKind::Omsp16;
    let cpu = kind.build();
    let bench = kind.benchmark("div");
    let program = kind.assemble(bench.source);

    let text = symsim_verilog::write_netlist(&cpu.netlist);
    let reparsed = symsim_verilog::parse_netlist(&text).expect("round-trips");

    // the reparsed design has its own net numbering; resolve by name
    let run = |netlist: &symsim_netlist::Netlist| {
        let mut sim = Simulator::new(netlist, SimConfig::default());
        // resolve the harness nets by name in this netlist
        let finish = netlist.find_net("finish").expect("finish");
        let pmem = netlist
            .memories()
            .iter()
            .position(|m| m.name == "pmem")
            .expect("pmem");
        let dmem = netlist
            .memories()
            .iter()
            .position(|m| m.name == "dmem")
            .expect("dmem");
        for (i, &w) in program.iter().enumerate() {
            sim.write_mem_word(pmem, i, &symsim_logic::Word::from_u64(w as u64, 32));
        }
        for a in 0..256 {
            sim.write_mem_word(dmem, a, &symsim_logic::Word::from_u64(0, 16));
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            sim.write_mem_word(dmem, a, &symsim_logic::Word::from_u64(v, 16));
        }
        // zero the register file and inputs by name
        for r in 0..8 {
            for bit in 0..16 {
                if let Some(n) = netlist.find_net(&format!("rf{r}[{bit}]")) {
                    sim.poke(n, symsim_logic::Value::ZERO);
                }
            }
        }
        for &inp in netlist.inputs() {
            sim.poke(inp, symsim_logic::Value::ZERO);
        }
        sim.set_finish_net(finish);
        let halt = sim.run(bench.max_cycles);
        let q = sim.read_mem_word(dmem, 2);
        let r = sim.read_mem_word(dmem, 3);
        (halt, q, r)
    };

    let (halt_a, q_a, r_a) = run(&cpu.netlist);
    let (halt_b, q_b, r_b) = run(&reparsed);
    assert_eq!(halt_a, HaltReason::Finished);
    assert_eq!(halt_a, halt_b);
    assert_eq!(q_a, q_b);
    assert_eq!(r_a, r_b);
    assert_eq!(q_a.to_u64(), Some(14));
    assert_eq!(r_a.to_u64(), Some(2));
}
