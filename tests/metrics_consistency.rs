//! Regression test for the observability contract: the counters in the
//! shared `MetricsRegistry` must equal the corresponding
//! `CoAnalysisReport` fields exactly — the report is assembled *from* the
//! registry snapshot, and any drift (a path counted in one place but not
//! the other, cycles double-counted by a worker) is a bug.
//!
//! Runs two (cpu, benchmark) pairs through all five evaluation modes.

use std::sync::Arc;

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::CoAnalysisConfig;
use symsim_obs::{CounterId, GaugeId, MetricsRegistry};
use symsim_sim::{EvalMode, SimConfig};

const PAIRS: [(CpuKind, &str); 2] = [(CpuKind::Omsp16, "div"), (CpuKind::Bm32, "insort")];
const MODES: [EvalMode; 5] = [
    EvalMode::Event,
    EvalMode::Batch,
    EvalMode::Hybrid,
    EvalMode::Cohort,
    EvalMode::Compiled,
];

#[test]
fn registry_counters_match_report_fields_across_eval_modes() {
    for (kind, bench) in PAIRS {
        for mode in MODES {
            // one registry serves exactly one run — a fresh one per
            // (pair, mode) keeps the totals attributable
            let registry = Arc::new(MetricsRegistry::new(1));
            let config = CoAnalysisConfig {
                workers: 1,
                sim: SimConfig {
                    eval_mode: mode,
                    ..SimConfig::default()
                },
                metrics: Some(Arc::clone(&registry)),
                ..CoAnalysisConfig::default()
            };
            let report = run_experiment(kind, bench, config).report;
            let ctx = format!("{}/{bench} ({})", kind.name(), mode.name());

            // live registry totals == report fields
            assert_eq!(
                registry.counter_total(CounterId::PathsCreated),
                report.paths_created as u64,
                "{ctx}: paths_created"
            );
            assert_eq!(
                registry.counter_total(CounterId::PathsDropped),
                report.paths_dropped as u64,
                "{ctx}: paths_dropped"
            );
            assert_eq!(
                registry.counter_total(CounterId::PathsSkipped),
                report.paths_skipped as u64,
                "{ctx}: paths_skipped"
            );
            assert_eq!(
                registry.counter_total(CounterId::PathsFinished),
                report.paths_finished as u64,
                "{ctx}: paths_finished"
            );
            assert_eq!(
                registry.counter_total(CounterId::PathsBudgetExhausted),
                report.paths_budget_exhausted as u64,
                "{ctx}: paths_budget_exhausted"
            );
            assert_eq!(
                registry.counter_total(CounterId::PathsSimulated),
                report.paths_simulated as u64,
                "{ctx}: paths_simulated"
            );
            assert_eq!(
                registry.counter_total(CounterId::Cycles),
                report.simulated_cycles,
                "{ctx}: cycles"
            );
            assert_eq!(
                registry.counter_total(CounterId::BatchedLevelEvals),
                report.batched_level_evals,
                "{ctx}: batched_level_evals"
            );
            assert_eq!(
                registry.counter_total(CounterId::EventEvals),
                report.event_evals,
                "{ctx}: event_evals"
            );
            assert_eq!(
                registry.counter_total(CounterId::CompiledEvals),
                report.compiled_evals,
                "{ctx}: compiled_evals"
            );
            match mode {
                EvalMode::Event => assert_eq!(
                    report.batched_level_evals, 0,
                    "{ctx}: event mode must not run level tapes"
                ),
                // cohort mode's scalar segments (the root, spilled lanes)
                // dispatch exactly like hybrid
                EvalMode::Batch | EvalMode::Hybrid | EvalMode::Cohort => assert!(
                    report.batched_level_evals > 0,
                    "{ctx}: batched dispatch never engaged"
                ),
                // a compiled run either uses the native kernel (level tapes
                // only for the force-held settles the kernel cannot express)
                // or degraded to hybrid on this machine; `eval_mode` must
                // disclose which
                EvalMode::Compiled => {
                    if report.eval_mode == "compiled" {
                        assert!(report.compiled_evals > 0, "{ctx}: native kernel never ran");
                    } else {
                        assert_eq!(report.eval_mode, "hybrid", "{ctx}: fallback mode");
                        assert_eq!(
                            report.compiled_evals, 0,
                            "{ctx}: fallback must not count kernel runs"
                        );
                    }
                }
            }
            if mode == EvalMode::Cohort {
                assert!(
                    registry.counter_total(CounterId::CohortsFormed) > 0,
                    "{ctx}: no cohorts formed in cohort mode"
                );
            }

            // the snapshot embedded in the report agrees with the registry
            assert_eq!(
                report.metrics.counter("paths_created"),
                report.paths_created as u64,
                "{ctx}: embedded snapshot"
            );
            assert_eq!(
                report.metrics.counter("cycles"),
                report.simulated_cycles,
                "{ctx}: embedded snapshot cycles"
            );

            // every claimed path was released, every queue drained, and the
            // CSM gauges carry the authoritative end-of-run values. This is
            // also the cohort-aware gauge regression: cohort work items add
            // their *member path* count to `paths_live`/`paths_queued`
            // (TaskWeight), so any work-item-vs-path mismatch in the
            // weighted accounting leaves a nonzero residue here.
            assert_eq!(
                registry.gauge_total(GaugeId::PathsLive),
                0,
                "{ctx}: paths_live at end of run"
            );
            assert_eq!(
                registry.gauge_total(GaugeId::PathsQueued),
                0,
                "{ctx}: paths_queued at end of run"
            );
            assert_eq!(
                registry.gauge_total(GaugeId::CsmDistinctPcs),
                report.distinct_pcs as i64,
                "{ctx}: csm_distinct_pcs"
            );

            // CSM accounting: every observation is either covered or widened
            let obs = registry.counter_total(CounterId::CsmObservations);
            assert_eq!(
                obs,
                registry.counter_total(CounterId::CsmCovered)
                    + registry.counter_total(CounterId::CsmWidenings),
                "{ctx}: csm observation dichotomy"
            );
            assert_eq!(
                registry.counter_total(CounterId::CsmCovered),
                report.paths_skipped as u64,
                "{ctx}: covered observations == skipped paths"
            );
        }
    }
}
