//! Graceful degradation of the compiled backend: when no usable `rustc`
//! exists, an `--eval-mode compiled` analysis must still complete — in
//! hybrid interpretation — log the fallback warning, and report its
//! effective `eval_mode` truthfully.
//!
//! `SYMSIM_RUSTC` is process-global, which is why this test lives in its
//! own test binary: nothing else in the process may want a real toolchain.

use std::io::Write;
use std::sync::{Arc, Mutex};

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::CoAnalysisConfig;
use symsim_obs::{trace, Level, LogFormat};
use symsim_sim::{EvalMode, SimConfig};

/// A `Write` the trace layer can own while the test keeps reading it.
#[derive(Clone)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn config(mode: EvalMode) -> CoAnalysisConfig {
    CoAnalysisConfig {
        workers: 1,
        sim: SimConfig {
            eval_mode: mode,
            ..SimConfig::default()
        },
        ..CoAnalysisConfig::default()
    }
}

#[test]
fn missing_toolchain_degrades_to_hybrid() {
    std::env::set_var("SYMSIM_RUSTC", "/nonexistent/rustc-for-fallback-test");
    let sink = Capture(Arc::new(Mutex::new(Vec::new())));
    trace::init(Level::Warn, LogFormat::Json, Some(Box::new(sink.clone())));

    let report = run_experiment(CpuKind::Omsp16, "div", config(EvalMode::Compiled)).report;

    // the run completed, in the interpreter, and says so
    assert_eq!(
        report.eval_mode, "hybrid",
        "effective mode must be disclosed"
    );
    assert_eq!(report.compiled_evals, 0, "no kernel can have run");
    assert!(report.paths_finished > 0, "analysis did not complete");
    assert!(
        report.batched_level_evals > 0,
        "hybrid fallback never engaged batched dispatch"
    );

    let log = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    assert!(
        log.contains("compile.fallback"),
        "fallback warning not logged:\n{log}"
    );

    // and the degraded run is still the same analysis
    let event = run_experiment(CpuKind::Omsp16, "div", config(EvalMode::Event)).report;
    assert_eq!(report.exercisable_gates, event.exercisable_gates);
    assert_eq!(report.total_gates, event.total_gates);
    assert_eq!(report.simulated_cycles, event.simulated_cycles);
    assert_eq!(report.paths_created, event.paths_created);
}
