//! Adaptive-CSM acceptance regression on the real processors: the
//! adaptive policy must land on the *bit-identical* exercisable-gate
//! verdict as single-merge while pruning a substantial share of the
//! redundant split children before they cost simulation.
//!
//! These are the headline numbers `bench_coanalysis` asserts during the
//! full benchmark run, pinned here as a plain `cargo test` so the
//! guarantee survives without running the bench binary.

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::{CoAnalysisConfig, CsmPolicy};

fn run(kind: CpuKind, bench: &str, policy: CsmPolicy) -> symsim_bench::ExperimentResult {
    run_experiment(
        kind,
        bench,
        CoAnalysisConfig {
            policy,
            ..CoAnalysisConfig::default()
        },
    )
}

/// Gate identity plus the ≥15% `paths_created` reduction on the two pairs
/// where pre-split subsumption bites hardest.
#[test]
fn adaptive_prunes_paths_without_changing_the_verdict() {
    for (kind, bench) in [(CpuKind::Bm32, "insort"), (CpuKind::Dr5, "binsearch")] {
        let single = run(kind, bench, CsmPolicy::SingleMerge);
        let adaptive = run(kind, bench, CsmPolicy::adaptive());
        assert!(single.report.converged() && adaptive.report.converged());
        assert_eq!(
            adaptive.report.exercisable_gates,
            single.report.exercisable_gates,
            "{}/{bench}: adaptive changed the exercisable-gate verdict",
            kind.name(),
        );
        assert!(
            single
                .report
                .profile
                .covers_activity(&adaptive.report.profile),
            "{}/{bench}: adaptive toggled a gate single-merge ruled out",
            kind.name(),
        );
        let created = adaptive.report.paths_created;
        let baseline = single.report.paths_created;
        assert!(
            (created as f64) <= (baseline as f64) * 0.85,
            "{}/{bench}: adaptive paths_created {created} is not >=15% below \
             single-merge's {baseline}",
            kind.name(),
        );
        assert!(
            adaptive.report.paths_killed_presplit > 0,
            "{}/{bench}: expected pre-split kills to fire",
            kind.name(),
        );
    }
}

/// On the smoke pair the adaptive policy demotes early and must reproduce
/// single-merge's exploration exactly — same verdict, no extra paths.
#[test]
fn adaptive_never_exceeds_single_merge_on_the_smoke_pair() {
    let single = run(CpuKind::Omsp16, "div", CsmPolicy::SingleMerge);
    let adaptive = run(CpuKind::Omsp16, "div", CsmPolicy::adaptive());
    assert_eq!(
        adaptive.report.exercisable_gates,
        single.report.exercisable_gates
    );
    assert!(adaptive.report.paths_created <= single.report.paths_created);
}
