//! Witness replay round-trip: for a deterministic sample of attributed
//! nets per (cpu, benchmark) pair, extract the witness, serialize it
//! through its JSON wire format, and re-execute it with [`replay_witness`]
//! — the net must re-toggle at exactly the witnessed cycle. This is the
//! soundness check on the whole provenance chain: winner resolution, fork
//! snapshot capture, forced-branch reconstruction, and the replay
//! protocol itself.

use std::sync::Arc;

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::{replay_witness, CoAnalysisConfig, CoAnalysisReport, Witness};
use symsim_obs::MetricsRegistry;
use symsim_sim::SimConfig;

const PAIRS: [(CpuKind, &str); 2] = [(CpuKind::Omsp16, "div"), (CpuKind::Dr5, "binsearch")];

/// Nets sampled per pair (deterministic stride over the attribution list).
const SAMPLES: usize = 12;

fn attributed_run(kind: CpuKind, bench: &str) -> CoAnalysisReport {
    let registry = Arc::new(MetricsRegistry::new(1));
    let config = CoAnalysisConfig {
        workers: 1,
        sim: SimConfig {
            attribution: true,
            ..SimConfig::default()
        },
        metrics: Some(Arc::clone(&registry)),
        ..CoAnalysisConfig::default()
    };
    run_experiment(kind, bench, config).report
}

#[test]
fn sampled_witnesses_replay_at_the_recorded_cycle() {
    for (kind, bench) in PAIRS {
        let cpu = kind.build();
        let report = attributed_run(kind, bench);
        let prov = report
            .provenance
            .as_ref()
            .expect("attributed run yields provenance");
        let attributions = prov.attributions();
        assert!(
            attributions.len() >= SAMPLES,
            "{}/{bench}: only {} attributions",
            kind.name(),
            attributions.len()
        );
        // deterministic stride sample spread across the net-id range,
        // always including the hardest-won net (the explain default)
        let stride = attributions.len() / SAMPLES;
        let mut picks: Vec<_> = (0..SAMPLES).map(|i| &attributions[i * stride]).collect();
        picks.push(prov.deepest().expect("deepest attribution exists"));
        let mut replayed_forks = 0usize;
        for a in picks {
            let name = cpu.netlist.net_name(a.net).to_string();
            let witness = prov
                .witness(a.net, &name)
                .expect("attributed net yields a witness");
            // the wire format is lossless
            let wire = witness.to_json();
            let back = Witness::from_json(&wire).expect("witness JSON parses");
            assert_eq!(back, witness, "{}/{bench}: wire round trip", kind.name());
            // and the prescription reproduces the toggle exactly
            let result = replay_witness(&cpu.netlist, &back)
                .unwrap_or_else(|e| panic!("{}/{bench} {name}: {e}", kind.name()));
            assert!(
                result.ok(),
                "{}/{bench}: witness for {name} (path {}, pc {}) failed: {result}",
                kind.name(),
                a.path,
                a.pc
            );
            if !witness.forces.is_empty() {
                replayed_forks += 1;
            }
        }
        // the sample must exercise the interesting case: witnesses that
        // load a mid-exploration fork snapshot and force branch decisions
        assert!(
            replayed_forks > 0,
            "{}/{bench}: sample never hit a forked witness",
            kind.name()
        );
    }
}

#[test]
fn replay_rejects_mismatched_designs() {
    let (kind, bench) = PAIRS[0];
    let report = attributed_run(kind, bench);
    let prov = report.provenance.as_ref().unwrap();
    let a = prov.deepest().unwrap();
    let cpu = kind.build();
    let witness = prov
        .witness(a.net, cpu.netlist.net_name(a.net))
        .expect("witness extracts");
    // replaying against a different netlist is a structural error, not a
    // failed replay
    let other = CpuKind::Dr5.build();
    let err = replay_witness(&other.netlist, &witness).unwrap_err();
    assert!(err.contains("design"), "unexpected error: {err}");
}
