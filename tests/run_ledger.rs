//! Persistent run ledger, end to end on real co-analysis runs: append →
//! parse round-trip losslessness, the diff policy (self-diff clean,
//! synthetic slowdown flagged, verdict drift fatal), and verdict-digest
//! stability across every evaluation mode on a tier-1 pair.

use std::path::PathBuf;

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::CoAnalysisConfig;
use symsim_obs::ledger::{self, DiffOpts, LedgerRecord};
use symsim_sim::{EvalMode, SimConfig};

fn record(kind: CpuKind, bench: &str, mode: EvalMode) -> LedgerRecord {
    let config = CoAnalysisConfig {
        workers: 1,
        sim: SimConfig {
            eval_mode: mode,
            ..SimConfig::default()
        },
        ..CoAnalysisConfig::default()
    };
    let result = run_experiment(kind, bench, config);
    result.report.ledger_record(
        "bench",
        &format!("{}/{bench}", kind.name()),
        result.design_hash,
        result.program_hash,
        &result.config,
    )
}

/// The digest is a function of the verdict alone: event, hybrid, cohort,
/// and compiled runs of the same pair must produce the identical digest
/// (they have different config fingerprints — they are different runs —
/// but the exercisable-gate set may never move).
#[test]
fn verdict_digest_is_stable_across_eval_modes() {
    let event = record(CpuKind::Omsp16, "div", EvalMode::Event);
    for mode in [EvalMode::Hybrid, EvalMode::Cohort, EvalMode::Compiled] {
        let other = record(CpuKind::Omsp16, "div", mode);
        assert_eq!(
            event.verdict_digest,
            other.verdict_digest,
            "{} mode drifted the verdict digest",
            mode.name()
        );
        assert_eq!(event.exercisable_gates, other.exercisable_gates);
        // same design and program, different config identity
        assert_eq!(event.design_hash, other.design_hash);
        assert_eq!(event.program_hash, other.program_hash);
        assert_ne!(event.fingerprint, other.fingerprint);
    }
    // a different pair must not collide on digest or fingerprint
    let other = record(CpuKind::Dr5, "binsearch", EvalMode::Event);
    assert_ne!(event.verdict_digest, other.verdict_digest);
    assert_ne!(event.fingerprint, other.fingerprint);
}

#[test]
fn append_read_diff_round_trip() {
    let tmp: PathBuf = std::env::temp_dir().join(format!(
        "symsim-run-ledger-test-{}.ndjson",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&tmp);
    let a = record(CpuKind::Omsp16, "div", EvalMode::Hybrid);
    let b = record(CpuKind::Omsp16, "div", EvalMode::Hybrid);
    ledger::append(&tmp, &a).unwrap();
    ledger::append(&tmp, &b).unwrap();
    let entries = ledger::read(&tmp).unwrap();
    let _ = std::fs::remove_file(&tmp);
    assert_eq!(entries.len(), 2);

    // round-trip losslessness of everything the diff policy reads
    // (floats travel as {:.6}, so equality is within that print precision)
    let e = &entries[0];
    assert_eq!(e.kind, a.kind);
    assert_eq!(e.label, a.label);
    assert_eq!(e.design, a.design);
    assert_eq!(e.fingerprint, a.fingerprint);
    assert_eq!(e.config, a.config);
    assert_eq!(e.eval_mode, a.eval_mode);
    assert_eq!(e.verdict_digest, a.verdict_digest);
    assert_eq!(e.total_gates, a.total_gates);
    assert_eq!(e.exercisable_gates, a.exercisable_gates);
    assert_eq!(e.simulated_cycles, a.simulated_cycles);
    assert!((e.wall_seconds - a.wall_seconds).abs() < 1e-5);
    assert_eq!(e.env, a.env);
    assert_eq!(
        e.metrics.get("paths_created").and_then(|v| v.as_u64()),
        Some(a.paths_created)
    );

    // identical runs: no verdict drift, no counter deltas, perf in band
    let diff = ledger::compare(&entries[1], &[&entries[0]], &DiffOpts::default());
    assert!(
        !diff.failed(),
        "self-diff regressed: {:?}",
        diff.regressions()
    );
    assert!(diff.verdict_drift.is_none());
    assert!(!diff.fingerprint_mismatch);
    assert!(
        diff.counter_deltas.is_empty(),
        "deterministic single-worker runs must agree on every counter: {:?}",
        diff.counter_deltas
    );

    // a synthetically slowed record is flagged as a perf regression
    let mut slow = entries[1].clone();
    slow.wall_seconds = entries[0].wall_seconds * 4.0 + 1.0;
    slow.cycles_per_sec = entries[0].cycles_per_sec / 4.0;
    let diff = ledger::compare(&slow, &[&entries[0]], &DiffOpts::default());
    assert!(diff.failed());
    assert!(diff.verdict_drift.is_none());
    let metrics: Vec<&str> = diff
        .regressions()
        .iter()
        .map(|p| p.metric.as_str())
        .collect();
    assert!(metrics.contains(&"wall_seconds"), "{metrics:?}");

    // a drifted verdict is a hard failure even with perf in band
    let mut drifted = entries[1].clone();
    drifted.verdict_digest = "0000000000000bad".into();
    let diff = ledger::compare(&drifted, &[&entries[0]], &DiffOpts::default());
    assert!(diff.failed());
    assert!(diff.verdict_drift.is_some());
}
