//! E7 — the paper's §5.0.1 validation, as a cross-crate integration test:
//!
//! 1. bespoke netlists behave identically to the originals on concrete
//!    application inputs,
//! 2. the concretely-exercised gate set is a subset of the exercisable set
//!    reported by co-analysis,
//! 3. every analysis converges (no path exhausts its cycle budget).

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::CoAnalysisConfig;
use symsim_sim::{HaltReason, SimConfig, Simulator, ToggleProfile};

/// Runs a concrete (example-input) simulation, returning the halt reason,
/// the architectural result words, and the concrete toggle profile.
fn concrete_run(
    kind: CpuKind,
    bench_name: &str,
    netlist: &symsim_netlist::Netlist,
) -> (HaltReason, Vec<symsim_logic::Word>, ToggleProfile) {
    let cpu = kind.build();
    let bench = kind.benchmark(bench_name);
    let program = kind.assemble(bench.source);
    let mut sim = Simulator::new(netlist, SimConfig::default());
    cpu.prepare_concrete(&mut sim, &program, &bench.data, &bench.example_inputs);
    sim.set_finish_net(cpu.finish);
    sim.arm_toggle_observer();
    let halt = sim.run(bench.max_cycles);
    let mut words: Vec<symsim_logic::Word> = (0..8).map(|a| cpu.read_data(&sim, a)).collect();
    words.extend((0..cpu.reg_nets.len()).map(|r| cpu.read_reg(&sim, r)));
    let profile = sim.take_toggle_profile().expect("armed");
    (halt, words, profile)
}

fn validate(kind: CpuKind, bench_name: &str) {
    let result = run_experiment(kind, bench_name, CoAnalysisConfig::default());
    assert!(
        result.report.converged(),
        "{}/{bench_name} did not converge: {}",
        kind.name(),
        result.report
    );
    assert!(result.report.paths_finished > 0, "no path finished");

    let cpu = kind.build();
    let bespoke = symsim_bespoke::generate(&cpu.netlist, &result.report.profile);
    assert!(bespoke.netlist.validate().is_ok());

    let (halt_a, words_a, concrete) = concrete_run(kind, bench_name, &cpu.netlist);
    let (halt_b, words_b, _) = concrete_run(kind, bench_name, &bespoke.netlist);
    assert_eq!(halt_a, HaltReason::Finished, "{}/{bench_name}", kind.name());
    assert_eq!(
        halt_b,
        HaltReason::Finished,
        "bespoke {}/{bench_name}",
        kind.name()
    );
    assert_eq!(
        words_a,
        words_b,
        "bespoke diverged on {}/{bench_name}",
        kind.name()
    );
    assert!(
        result.report.profile.covers_activity(&concrete),
        "exercised set not covered on {}/{bench_name}",
        kind.name()
    );
}

#[test]
fn omsp16_div_validates() {
    validate(CpuKind::Omsp16, "div");
}

#[test]
fn omsp16_insort_validates() {
    validate(CpuKind::Omsp16, "insort");
}

#[test]
fn omsp16_binsearch_validates() {
    validate(CpuKind::Omsp16, "binsearch");
}

#[test]
fn omsp16_thold_validates() {
    validate(CpuKind::Omsp16, "thold");
}

#[test]
fn omsp16_mult_validates() {
    validate(CpuKind::Omsp16, "mult");
}

#[test]
fn omsp16_tea8_validates() {
    validate(CpuKind::Omsp16, "tea8");
}

#[test]
fn bm32_div_validates() {
    validate(CpuKind::Bm32, "div");
}

#[test]
fn bm32_mult_validates() {
    validate(CpuKind::Bm32, "mult");
}

#[test]
fn bm32_tea8_validates() {
    validate(CpuKind::Bm32, "tea8");
}

#[test]
fn dr5_div_validates() {
    validate(CpuKind::Dr5, "div");
}

#[test]
fn dr5_mult_validates() {
    validate(CpuKind::Dr5, "mult");
}

#[test]
fn dr5_tea8_validates() {
    validate(CpuKind::Dr5, "tea8");
}
