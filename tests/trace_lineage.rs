//! Regression test for the run-trace contract: a trace recorded during
//! co-analysis must reconstruct the complete path lineage — every traced
//! path except the root has exactly one fork parent, outcome events
//! partition the created paths, and the trace's totals equal the
//! `CoAnalysisReport` and live registry numbers exactly.
//!
//! Runs two (cpu, benchmark) pairs, sequentially and with four workers.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::CoAnalysisConfig;
use symsim_obs::{CounterId, MetricsRegistry, Trace, TraceRecord, TraceSink};

const PAIRS: [(CpuKind, &str); 2] = [(CpuKind::Omsp16, "div"), (CpuKind::Bm32, "insort")];

/// A `Write` the test can inspect after the run.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(b);
        Ok(b.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn traced_runs_reconstruct_the_full_path_lineage() {
    for (kind, bench) in PAIRS {
        for workers in [1usize, 4] {
            let buf = SharedBuf::default();
            let sink = Arc::new(TraceSink::new(workers, Box::new(buf.clone())));
            let registry = Arc::new(MetricsRegistry::new(workers));
            let config = CoAnalysisConfig {
                workers,
                metrics: Some(Arc::clone(&registry)),
                trace: Some(Arc::clone(&sink)),
                ..CoAnalysisConfig::default()
            };
            let report = run_experiment(kind, bench, config).report;
            let stats = sink.finish();
            let ctx = format!("{}/{bench} x{workers}", kind.name());
            assert_eq!(stats.dropped, 0, "{ctx}: records dropped");

            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            let trace = Trace::parse(&text).unwrap_or_else(|e| panic!("{ctx}: {e}"));

            // meta + summary bracket the stream
            let (design, w) = trace.meta().expect("meta record");
            assert!(!design.is_empty(), "{ctx}");
            assert_eq!(w as usize, workers, "{ctx}: meta worker count");
            let summary = trace.summary().expect("summary record");
            assert_eq!(summary.events, stats.events, "{ctx}: summary events");

            // fork child-id ranges never overlap, and never claim the root
            let mut forked: HashSet<u64> = HashSet::new();
            for r in &trace.records {
                if let TraceRecord::Fork { first, n, .. } = r {
                    for child in *first..*first + *n {
                        assert!(forked.insert(child), "{ctx}: path {child} forked twice");
                        assert_ne!(child, 0, "{ctx}: root cannot be a fork child");
                    }
                }
            }

            // every traced path except the root has exactly one fork parent
            let lineage = trace.lineage();
            let mut ended: HashSet<u64> = HashSet::new();
            for r in &trace.records {
                if let TraceRecord::PathEnd { path, .. } = r {
                    assert!(ended.insert(*path), "{ctx}: path {path} ended twice");
                    if *path != 0 {
                        assert!(
                            lineage.parent.contains_key(path),
                            "{ctx}: path {path} has no fork parent"
                        );
                    }
                }
            }
            assert!(ended.contains(&0), "{ctx}: the root path never ended");
            assert!(
                !lineage.parent.contains_key(&0),
                "{ctx}: the root must be parentless"
            );

            // outcome events partition the created paths: every created
            // path is simulated exactly once and ends with one outcome
            let oc = trace.outcome_counts();
            assert_eq!(
                ended.len() as u64,
                report.paths_created as u64,
                "{ctx}: one path_end per created path"
            );
            assert_eq!(
                oc.total(),
                report.paths_simulated as u64,
                "{ctx}: outcomes partition the simulated paths"
            );
            assert_eq!(oc.finished, report.paths_finished as u64, "{ctx}: finished");
            assert_eq!(oc.covered, report.paths_skipped as u64, "{ctx}: covered");
            assert_eq!(
                oc.budget, report.paths_budget_exhausted as u64,
                "{ctx}: budget-exhausted"
            );

            // the trace's aggregate totals equal the report's and the live
            // registry's exactly
            assert_eq!(
                trace.paths_created(),
                report.paths_created as u64,
                "{ctx}: paths_created from lineage"
            );
            assert_eq!(
                trace.paths_created(),
                registry.counter_total(CounterId::PathsCreated),
                "{ctx}: paths_created vs registry"
            );
            assert_eq!(
                trace.total_cycles(),
                report.simulated_cycles,
                "{ctx}: per-path cycle counts sum to the run total"
            );

            // per-worker attribution agrees with the registry shards
            let per_shard = registry.counter_per_shard(CounterId::Cycles);
            for ws in trace.worker_stats() {
                if ws.worker >= 0 {
                    assert_eq!(
                        ws.cycles, per_shard[ws.worker as usize],
                        "{ctx}: worker {} cycle attribution",
                        ws.worker
                    );
                }
            }
        }
    }
}
