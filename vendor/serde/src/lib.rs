//! Serde facade for the sealed build environment.
//!
//! Provides the `Serialize`/`Deserialize` names (trait and derive-macro
//! namespaces) that workspace types reference. The derives expand to nothing;
//! no code in the workspace performs serde-based serialization, it only marks
//! types for it. Swap this shim for the real `serde` when registry access is
//! available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
