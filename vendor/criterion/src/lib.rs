//! Minimal benchmark harness for the sealed build environment.
//!
//! Implements the slice of the `criterion` API the workspace benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Bencher::iter`, and
//! `black_box`. Timing is a plain mean over `sample_size` timed iterations
//! after one warm-up iteration; results print as `name: <mean> per iter
//! (<iters> iters)` lines instead of criterion's statistical report.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion accepted by the `bench_*` id parameters.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: u32,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` once to warm up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", 20, id.into_label(), f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, self.sample_size, id.into_label(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, self.sample_size, id.into_label(), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (marker for API parity; reporting happens inline).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, samples: u32, label: String, mut f: F) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let full = if group.is_empty() {
        label
    } else {
        format!("{group}/{label}")
    };
    if b.iters == 0 {
        println!("{full}: no iterations recorded");
    } else {
        let per_iter = b.total / b.iters as u32;
        println!("{full}: {per_iter:?} per iter ({} iters)", b.iters);
    }
}

/// Binds benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
