//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace builds in a sealed environment with no crates.io access, so
//! the real `serde_derive` is unavailable. Nothing in the workspace actually
//! serializes through serde (the derives only mark types as
//! serialization-ready for downstream consumers), so emitting no impls at all
//! is sufficient for every current use.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
