//! Minimal property-testing engine for the sealed build environment.
//!
//! Implements exactly the slice of the `proptest` API this workspace uses:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `Just`, integer-range and `any::<T>()` strategies, tuple strategies,
//! `prop::collection::vec`, `prop::array::uniform*`, `prop::sample::Index`,
//! `.prop_map`/`.prop_flat_map`, and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: generation is deterministic per test
//! (seeded from the test's module path and name), and failing cases are not
//! shrunk — the failing assertion fires directly with the case number in the
//! panic payload so a failure is still reproducible by rerunning the test.

use std::ops::Range;

/// SplitMix64: tiny, fast, and good enough for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Deterministic RNG seeded from a test's fully qualified name.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it,
    /// and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `alternatives`; must be non-empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index(rng.next_u64())
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// A half-open range of lengths.
        Span(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange::Exact(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange::Span(r.start, r.end)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy over `element` with the given length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Span(lo, hi) => {
                    assert!(lo < hi, "empty vec length range");
                    lo + rng.below((hi - lo) as u64) as usize
                }
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Array strategies (`prop::array`).
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform {
        ($($name:ident $n:literal),*) => {$(
            /// Strategy for a fixed-size array drawn element-wise.
            pub fn $name<S: Strategy>(element: S) -> Uniform<S, $n> {
                Uniform { element }
            }
        )*};
    }

    /// Strategy for `[S::Value; N]`.
    pub struct Uniform<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for Uniform<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    uniform!(uniform1 1, uniform2 2, uniform3 3, uniform4 4, uniform5 5, uniform6 6, uniform7 7, uniform8 8);
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolves against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// The `prop::` namespace used by `use proptest::prelude::*` consumers.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            __case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i64..6).generate(&mut rng);
            assert!((-5..6).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let v = prop::collection::vec(any::<u8>(), 7usize).generate(&mut rng);
        assert_eq!(v.len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_grammar((a, b) in (0u8..10, 0u8..10), c in prop_oneof![Just(1u8), 2u8..4]) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!((1..4).contains(&c));
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
        }
    }
}
