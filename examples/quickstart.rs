//! Quickstart: symbolic hardware-software co-analysis in ~40 lines.
//!
//! Builds a tiny controller at gate level, registers `$monitor_x` on its
//! branch condition, runs Algorithm 1, and prints the exercisable-gate
//! dichotomy.
//!
//! ```text
//! cargo run --release -p symsim-bench --example quickstart
//! ```

use symsim_core::{CoAnalysis, CoAnalysisConfig, DesignInterface};
use symsim_logic::Value;
use symsim_netlist::{Bus, RtlBuilder};
use symsim_sim::MonitorSpec;

fn main() {
    // A 3-bit program counter that either loops or runs to completion,
    // depending on an unknown input — the smallest possible "application".
    let mut b = RtlBuilder::new("quickstart");
    let cond_in = b.input("cond_in", 1);
    let pc = b.reg("pc", 3, 0);
    let pcq = pc.q.clone();
    let one = b.const_word(1, 3);
    let next_seq = b.add(&pcq, &one);
    let two = b.const_word(2, 3);
    let at_branch_raw = b.eq(&pcq, &two);
    let at_branch = b.name_net("is_branch", at_branch_raw);
    let taken_raw = b.and1(at_branch, cond_in.bit(0));
    let taken = b.name_net("taken", taken_raw);
    let loop_target = b.const_word(0, 3);
    let next = b.mux(taken, &next_seq, &loop_target);
    b.drive_reg(pc, &next);
    let five = b.const_word(5, 3);
    let done_raw = b.eq(&pcq, &five);
    let done = b.name_net("done", done_raw);
    let done_bus = Bus::from_nets(vec![done]);
    b.output("done_out", &done_bus);
    let netlist = b.finish().expect("netlist is structurally valid");

    println!(
        "design \"{}\": {} gates, {} flip-flops",
        netlist.name,
        netlist.gate_count(),
        netlist.dff_count()
    );

    // Design-specific facts: PC bus, monitored control signals, finish net.
    let map = netlist.net_name_map();
    let iface = DesignInterface {
        pc: (0..3).map(|i| map[format!("pc[{i}]").as_str()]).collect(),
        monitor: MonitorSpec {
            qualifier: Some(map["is_branch"]),
            signals: vec![map["taken"]],
        },
        split_signals: None,
        finish: map["done"],
    };

    // Algorithm 1: all inputs X, explore every path, accumulate activity.
    let cond = netlist.find_net("cond_in").expect("input exists");
    let analysis =
        CoAnalysis::new(&netlist, iface, CoAnalysisConfig::default()).expect("valid config");
    let report = analysis.run(|sim| sim.poke(cond, Value::X));

    println!("{report}");
    println!(
        "dichotomy: {} exercisable / {} never exercised",
        report.exercisable_gates,
        report.total_gates - report.exercisable_gates
    );

    // the never-exercised gates feed bespoke generation
    let bespoke = symsim_bespoke::generate(&netlist, &report.profile);
    println!(
        "bespoke: {} -> {} gates ({:.1}% smaller), area {:.1} -> {:.1}",
        bespoke.report.original_gates,
        bespoke.report.bespoke_gates,
        bespoke.report.reduction_percent(),
        bespoke.report.original_area,
        bespoke.report.bespoke_area,
    );
}
