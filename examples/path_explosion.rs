//! Why path counts differ across ISAs (paper §5.0.3, Fig. 6): run `div` on
//! all three processors and watch how branch-condition architecture —
//! 1-bit NZCV flags vs wide compare-result registers — drives the number
//! of execution paths the Conservative State Manager must explore.
//!
//! Also demonstrates the conservative-state policy trade-off of Fig. 3.
//!
//! ```text
//! cargo run --release -p symsim-bench --example path_explosion
//! ```

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::{CoAnalysisConfig, CsmPolicy};

fn main() {
    println!("== div on all three processors (Fig. 6 mechanism) ==");
    for kind in CpuKind::all() {
        let r = run_experiment(kind, "div", CoAnalysisConfig::default());
        println!(
            "{:<7} paths created {:>4}, skipped {:>4}, simulated cycles {:>6}   ({})",
            kind.name(),
            r.report.paths_created,
            r.report.paths_skipped,
            r.report.simulated_cycles,
            match kind {
                CpuKind::Omsp16 => "1-bit NZCV flags: fast convergence",
                CpuKind::Bm32 => "compare results in 32-bit registers",
                CpuKind::Dr5 => "SLTU results in registers + 3 comparator signals",
            }
        );
    }

    println!();
    println!("== conservative-state policies on omsp16/insort (Fig. 3) ==");
    for (label, policy) in [
        ("single uber-merge", CsmPolicy::SingleMerge),
        (
            "multi-state, 2 slots",
            CsmPolicy::MultiState { max_states: 2 },
        ),
        (
            "multi-state, 4 slots",
            CsmPolicy::MultiState { max_states: 4 },
        ),
    ] {
        let config = CoAnalysisConfig {
            policy,
            ..CoAnalysisConfig::default()
        };
        let r = run_experiment(CpuKind::Omsp16, "insort", config);
        println!(
            "{label:<22} paths {:>4}, exercisable {:>5} / {:>5}",
            r.report.paths_created, r.report.exercisable_gates, r.report.total_gates
        );
    }
    println!();
    println!(
        "more conservative-state slots = more simulation effort but less\n\
         over-approximation (fewer gates falsely marked exercisable)"
    );
}
