//! The full bespoke-processor flow on a real embedded CPU (paper §3, §5):
//!
//! 1. assemble the `thold` sensor benchmark for the openMSP430-style core,
//! 2. run symbolic co-analysis with all sensor inputs unknown,
//! 3. prune the unexercisable gates and re-synthesize,
//! 4. validate the bespoke netlist against the original on concrete inputs,
//! 5. emit the bespoke gate-level netlist as structural Verilog.
//!
//! ```text
//! cargo run --release -p symsim-bench --example bespoke_flow
//! ```

use symsim_core::{CoAnalysis, CoAnalysisConfig};
use symsim_cpu::omsp16;
use symsim_sim::{HaltReason, SimConfig, Simulator};

fn main() {
    let cpu = omsp16::build();
    let bench = omsp16::benchmark("thold");
    let program = omsp16::assemble(bench.source).expect("benchmark assembles");
    println!(
        "omsp16: {} gates; thold: {} instructions, {} symbolic input words",
        cpu.netlist.total_gate_count(),
        program.len(),
        bench.data.inputs.len()
    );

    // 2. symbolic co-analysis
    let config = CoAnalysisConfig {
        max_cycles_per_segment: bench.max_cycles,
        workers: 4,
        ..CoAnalysisConfig::default()
    };
    let analysis = CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
    let report = analysis.run(|sim| cpu.prepare_symbolic(sim, &program, &bench.data));
    println!("{report}");

    // 3. bespoke generation
    let bespoke = symsim_bespoke::generate(&cpu.netlist, &report.profile);
    println!(
        "bespoke: {} -> {} gates, {} tied off, {} pruned, {} DFFs removed",
        bespoke.report.original_gates,
        bespoke.report.bespoke_gates,
        bespoke.report.tied_off,
        bespoke.report.pruned,
        bespoke.report.dffs_pruned
    );

    // 4. §5.0.1 validation: identical outputs on concrete inputs
    let run = |netlist| {
        let mut sim = Simulator::new(netlist, SimConfig::default());
        cpu.prepare_concrete(&mut sim, &program, &bench.data, &bench.example_inputs);
        sim.set_finish_net(cpu.finish);
        let halt = sim.run(bench.max_cycles);
        let count = cpu.read_data(&sim, 1); // thold's output word
        (halt, count)
    };
    let (halt_orig, count_orig) = run(&cpu.netlist);
    let (halt_besp, count_besp) = run(&bespoke.netlist);
    assert_eq!(halt_orig, HaltReason::Finished);
    assert_eq!(halt_besp, HaltReason::Finished);
    assert_eq!(count_orig, count_besp, "bespoke must match the original");
    println!(
        "validation: both netlists report {} threshold crossings",
        count_orig.to_u64().expect("concrete result")
    );

    // 5. write the bespoke netlist out as structural Verilog
    let verilog = symsim_verilog::write_netlist(&bespoke.netlist);
    let path = std::env::temp_dir().join("omsp16_thold_bespoke.v");
    std::fs::write(&path, &verilog).expect("write Verilog");
    println!(
        "wrote {} ({} lines) — parse it back with symsim_verilog::parse_netlist",
        path.display(),
        verilog.lines().count()
    );
    let reparsed = symsim_verilog::parse_netlist(&verilog).expect("round-trips");
    assert_eq!(reparsed.gate_count(), bespoke.netlist.gate_count());
}
