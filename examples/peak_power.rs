//! Application-specific peak power and energy bounds (the TOCS'17 analysis
//! the paper's intro motivates): because symbolic co-analysis covers every
//! execution for every input, the maximum per-cycle switching activity over
//! all explored paths is an *input-independent* peak-power bound — the
//! number a designer sizes the power delivery network against.
//!
//! Also reports module-oblivious power-gating candidates (HPCA'17) and the
//! application's timing slack (ISCA'16 voltage-overscaling headroom).
//!
//! ```text
//! cargo run --release -p symsim-bench --example peak_power
//! ```

use symsim_core::{CoAnalysis, CoAnalysisConfig};
use symsim_cpu::omsp16;
use symsim_power::{gating_candidates, switching_weights, timing_slack, PowerReport};

fn main() {
    let cpu = omsp16::build();
    println!(
        "omsp16: {} gates (incl. the 16x16 multiplier and peripherals)\n",
        cpu.netlist.total_gate_count()
    );

    println!(
        "{:<10} {:>10} {:>10} {:>6} {:>12} {:>11}",
        "benchmark", "peak", "avg", "p/a", "gate-able", "slack(lvls)"
    );
    for name in symsim_cpu::BENCHMARK_NAMES {
        let bench = omsp16::benchmark(name);
        let program = omsp16::assemble(bench.source).expect("assembles");
        let config = CoAnalysisConfig {
            max_cycles_per_segment: bench.max_cycles,
            activity_weights: Some(switching_weights(&cpu.netlist)),
            ..CoAnalysisConfig::default()
        };
        let analysis =
            CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
        let report = analysis.run(|sim| cpu.prepare_symbolic(sim, &program, &bench.data));
        let power = PowerReport::from_report(&report).expect("activity collected");
        let activity = report.activity.as_ref().expect("activity collected");
        let gating = gating_candidates(&cpu.netlist, &report.profile, activity, 0.1);
        let gate_able_area: f64 = gating.iter().map(|c| c.area).sum();
        let slack = timing_slack(&cpu.netlist, &report.profile);
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>6.2} {:>6} ({:>5.0}a) {:>6}/{}",
            name,
            power.peak_cycle_energy,
            power.avg_cycle_energy,
            power.peak_to_avg(),
            gating.len(),
            gate_able_area,
            slack.slack_levels(),
            slack.design_depth,
        );
    }
    println!(
        "\npeak  = input-independent per-cycle bound (max over all paths)\n\
         gate-able = exercisable gates toggling in <10% of cycles (HPCA'17)\n\
         slack = logic levels the application never exercises (ISCA'16)"
    );
}
