//! Information-flow checking with tagged symbols (the security application
//! of the co-analysis methodology — paper §1/§3.4, after Cherupalli et al.,
//! MICRO'17: "symbols must also propagate taint information").
//!
//! Secret data is injected as *tagged* symbols; any output or memory word
//! still carrying a symbol after the run is tainted by the secret. The
//! example shows that the `tea8` ciphertext is (correctly) tainted by the
//! plaintext, while the benchmark's unrelated scratch memory is not.
//!
//! ```text
//! cargo run --release -p symsim-bench --example security_taint
//! ```

use symsim_cpu::omsp16;
use symsim_logic::{PropagationPolicy, Value};
use symsim_sim::{SimConfig, Simulator};

fn is_tainted(word: &symsim_logic::Word) -> bool {
    word.iter().any(|v| matches!(v, Value::Sym(_)) || v.is_x())
}

fn main() {
    let cpu = omsp16::build();
    let bench = omsp16::benchmark("tea8");
    let program = omsp16::assemble(bench.source).expect("assembles");

    let config = SimConfig {
        policy: PropagationPolicy::Tagged,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&cpu.netlist, config);
    // plaintext words become tagged symbols (the secret)
    cpu.prepare_symbolic_tagged(&mut sim, &program, &bench.data);
    sim.set_finish_net(cpu.finish);
    let reason = sim.run(bench.max_cycles);
    println!("simulation ended: {reason:?} after {} cycles", sim.cycle());

    // taint audit over the data memory
    let mut tainted = Vec::new();
    for addr in 0..16 {
        let w = cpu.read_data(&sim, addr);
        if is_tainted(&w) {
            tainted.push(addr);
        }
    }
    println!("tainted data words: {tainted:?}");
    assert!(
        tainted.contains(&2) && tainted.contains(&3),
        "ciphertext must be tainted by the secret plaintext"
    );
    assert!(
        !tainted.contains(&4),
        "the key schedule is concrete and must stay untainted"
    );

    // taint audit over the GPIO pins: the cipher never drives them, so no
    // secret can leak to the outside world on this application
    let gpio = sim
        .read_bus_by_name("gpio_pins", 16)
        .expect("gpio output bus");
    println!("gpio_pins = {gpio}");
    assert!(
        !is_tainted(&gpio),
        "information-flow violation: secret reached the GPIO pins"
    );
    println!("no secret-tainted value reached the GPIO pins: OK");
}
