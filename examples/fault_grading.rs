//! Stuck-at fault grading built on the symbolic simulator's save/restore
//! machinery (paper §2 contrasts this with `force`/`release` flows that
//! recompile and restart per fault): snapshot the prepared processor once,
//! then grade hundreds of faults against the application's own execution
//! as the test stimulus — no restarts.
//!
//! ```text
//! cargo run --release -p symsim-bench --example fault_grading
//! ```

use symsim_cpu::omsp16;
use symsim_sim::{fault, SimConfig, Simulator};

fn main() {
    let cpu = omsp16::build();
    let bench = omsp16::benchmark("div");
    let program = omsp16::assemble(bench.source).expect("assembles");

    let mut sim = Simulator::new(&cpu.netlist, SimConfig::default());
    cpu.prepare_concrete(&mut sim, &program, &bench.data, &bench.example_inputs);
    println!(
        "design: {} gates; stimulus: div(100, 7) as the functional test",
        cpu.netlist.total_gate_count()
    );

    // observing only the GPIO pins models a production test with limited
    // pin access; grade a deterministic sample of the full fault list
    let all = fault::all_output_faults(&cpu.netlist);
    let sample: Vec<_> = all.iter().copied().step_by(all.len() / 400).collect();
    println!(
        "grading {} of {} stuck-at faults over {} cycles...",
        sample.len(),
        all.len(),
        150
    );
    let report = fault::grade(&mut sim, &sample, 150, |_, _| {});
    println!(
        "coverage {:.1}% ({} detected, {} undetected), {} cycles simulated",
        report.coverage_percent(),
        report.detected,
        report.undetected.len(),
        report.simulated_cycles
    );
    println!(
        "coverage is limited by observability (only the GPIO/monitor pins \
         are compared) and by logic div never exercises — the same gates \
         co-analysis prunes. Sample of undetected faults:"
    );
    for f in report.undetected.iter().take(8) {
        println!(
            "  {} stuck-at-{}",
            cpu.netlist.net_name(f.net),
            u8::from(f.stuck_at_one)
        );
    }
}
