use std::fmt;

use symsim_logic::{Value, Word};
use symsim_netlist::{NetId, Netlist};

use crate::engine::{HaltReason, MonitorSpec, SimConfig, Simulator};
use crate::state::{DecodeStateError, SimState};

/// Errors raised by the [`Testbench`] harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestbenchError {
    /// A referenced net does not exist in the design.
    UnknownNet(String),
    /// A referenced memory does not exist in the design.
    UnknownMemory(String),
    /// A state snapshot could not be decoded.
    DecodeState(DecodeStateError),
}

impl fmt::Display for TestbenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestbenchError::UnknownNet(n) => write!(f, "unknown net \"{n}\""),
            TestbenchError::UnknownMemory(m) => write!(f, "unknown memory \"{m}\""),
            TestbenchError::DecodeState(e) => write!(f, "bad state snapshot: {e}"),
        }
    }
}

impl std::error::Error for TestbenchError {}

impl From<DecodeStateError> for TestbenchError {
    fn from(e: DecodeStateError) -> Self {
        TestbenchError::DecodeState(e)
    }
}

/// The testbench harness of the paper's Listing 1: instantiates the design,
/// registers `$monitor_x`, supports `$initialize_state`, drives reset, and
/// replaces application inputs with `X`s.
///
/// # Example
///
/// ```
/// use symsim_netlist::RtlBuilder;
/// use symsim_sim::{SimConfig, Testbench};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = RtlBuilder::new("design");
/// let rst = b.input("rst", 1);
/// let din = b.input("din", 8);
/// let zero = b.const_word(0, 8);
/// let held = b.mux(rst.bit(0), &din, &zero);
/// let one = b.one();
/// let q = b.reg_en("q", &held, one, 0);
/// b.output("q_out", &q);
/// let nl = b.finish()?;
///
/// let mut tb = Testbench::new(&nl, SimConfig::default());
/// tb.monitor_x(None, &["q_out[0]", "q_out[7]"])?;
/// tb.set_reset("rst")?;
/// tb.reset(2);                 // propagate reset (Listing 1's RST_n pulse)
/// tb.drive_bus_x("din", 8)?;   // application inputs become symbols
/// let reason = tb.run(10);
/// # let _ = reason;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Testbench<'n> {
    sim: Simulator<'n>,
    reset: Option<NetId>,
}

impl<'n> Testbench<'n> {
    /// Instantiates the design under test.
    pub fn new(netlist: &'n Netlist, config: SimConfig) -> Testbench<'n> {
        Testbench {
            sim: Simulator::new(netlist, config),
            reset: None,
        }
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Simulator<'n> {
        &self.sim
    }

    /// Mutable access to the underlying simulator.
    pub fn sim_mut(&mut self) -> &mut Simulator<'n> {
        &mut self.sim
    }

    fn net(&self, name: &str) -> Result<NetId, TestbenchError> {
        self.sim
            .netlist()
            .find_net(name)
            .ok_or_else(|| TestbenchError::UnknownNet(name.to_string()))
    }

    /// Registers the `$monitor_x` system task over named control-flow
    /// signals, optionally qualified (e.g. by an `is_branch` decode net).
    ///
    /// # Errors
    ///
    /// Returns [`TestbenchError::UnknownNet`] for unresolved names.
    pub fn monitor_x(
        &mut self,
        qualifier: Option<&str>,
        signals: &[&str],
    ) -> Result<(), TestbenchError> {
        let qualifier = qualifier.map(|q| self.net(q)).transpose()?;
        let signals = signals
            .iter()
            .map(|s| self.net(s))
            .collect::<Result<Vec<_>, _>>()?;
        self.sim.monitor_x(MonitorSpec { qualifier, signals });
        Ok(())
    }

    /// The `$initialize_state` system task: restores a previously saved
    /// simulation state from its serialized form.
    ///
    /// # Errors
    ///
    /// Returns [`TestbenchError::DecodeState`] for corrupt snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot belongs to a different design.
    pub fn initialize_state(&mut self, snapshot: &[u8]) -> Result<(), TestbenchError> {
        let state = SimState::decode(snapshot)?;
        self.sim.load_state(&state);
        Ok(())
    }

    /// Declares the reset input.
    ///
    /// # Errors
    ///
    /// Returns [`TestbenchError::UnknownNet`] for an unresolved name.
    pub fn set_reset(&mut self, name: &str) -> Result<(), TestbenchError> {
        self.reset = Some(self.net(name)?);
        Ok(())
    }

    /// Asserts reset for `cycles` cycles, then deasserts and settles —
    /// Listing 1's `RST_n` pulse. Does nothing if no reset was declared.
    pub fn reset(&mut self, cycles: u64) {
        let Some(rst) = self.reset else { return };
        self.sim.poke(rst, Value::ONE);
        self.sim.settle();
        for _ in 0..cycles {
            self.sim.step_cycle();
        }
        self.sim.poke(rst, Value::ZERO);
        self.sim.settle();
    }

    /// Drives every bit of the named input bus to anonymous `X`.
    ///
    /// # Errors
    ///
    /// Returns [`TestbenchError::UnknownNet`] if the bus cannot be resolved.
    pub fn drive_bus_x(&mut self, name: &str, width: usize) -> Result<(), TestbenchError> {
        let nets = self
            .sim
            .find_bus(name, width)
            .ok_or_else(|| TestbenchError::UnknownNet(name.to_string()))?;
        self.sim.poke_bus(&nets, &Word::xs(width));
        Ok(())
    }

    /// Drives every bit of the named input bus to fresh tagged symbols,
    /// returning the first symbol id used.
    ///
    /// # Errors
    ///
    /// Returns [`TestbenchError::UnknownNet`] if the bus cannot be resolved.
    pub fn drive_bus_symbols(
        &mut self,
        name: &str,
        width: usize,
        first_id: u32,
    ) -> Result<u32, TestbenchError> {
        let nets = self
            .sim
            .find_bus(name, width)
            .ok_or_else(|| TestbenchError::UnknownNet(name.to_string()))?;
        self.sim.poke_bus(&nets, &Word::symbols(first_id, width));
        Ok(first_id + width as u32)
    }

    /// Loads a program/data image into the named memory starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`TestbenchError::UnknownMemory`] for an unresolved name.
    ///
    /// # Panics
    ///
    /// Panics if an image word is wider than the memory or out of range.
    pub fn load_memory(
        &mut self,
        mem_name: &str,
        base: usize,
        words: &[Word],
    ) -> Result<(), TestbenchError> {
        let mem = self
            .sim
            .find_memory(mem_name)
            .ok_or_else(|| TestbenchError::UnknownMemory(mem_name.to_string()))?;
        for (i, w) in words.iter().enumerate() {
            self.sim.write_mem_word(mem, base + i, w);
        }
        Ok(())
    }

    /// Fills `range` of the named memory with `X` words — "set
    /// input-dependent memory locations as X" (Listing 1).
    ///
    /// # Errors
    ///
    /// Returns [`TestbenchError::UnknownMemory`] for an unresolved name.
    pub fn fill_memory_x(
        &mut self,
        mem_name: &str,
        range: std::ops::Range<usize>,
    ) -> Result<(), TestbenchError> {
        let mem = self
            .sim
            .find_memory(mem_name)
            .ok_or_else(|| TestbenchError::UnknownMemory(mem_name.to_string()))?;
        let width = self.sim.netlist().memories()[mem].width;
        for addr in range {
            self.sim.write_mem_word(mem, addr, &Word::xs(width));
        }
        Ok(())
    }

    /// Runs until a halt or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> HaltReason {
        self.sim.run(max_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_netlist::RtlBuilder;

    fn design() -> Netlist {
        let mut b = RtlBuilder::new("dut");
        let rst = b.input("rst", 1);
        let din = b.input("din", 4);
        let zero = b.const_word(0, 4);
        let next = b.mux(rst.bit(0), &din, &zero);
        let one = b.one();
        let q = b.reg_en("q", &next, one, 0);
        b.output("qo", &q);
        b.finish().unwrap()
    }

    #[test]
    fn reset_then_x_inputs_halt_monitor() {
        let nl = design();
        let mut tb = Testbench::new(&nl, SimConfig::default());
        tb.set_reset("rst").unwrap();
        tb.monitor_x(None, &["qo[0]", "qo[1]", "qo[2]", "qo[3]"])
            .unwrap();
        tb.reset(2);
        // during reset q held 0 -> no halt; now drive X
        tb.drive_bus_x("din", 4).unwrap();
        let reason = tb.run(10);
        assert!(matches!(reason, HaltReason::MonitorX { .. }));
    }

    #[test]
    fn unknown_names_error() {
        let nl = design();
        let mut tb = Testbench::new(&nl, SimConfig::default());
        assert!(matches!(
            tb.monitor_x(None, &["nope"]),
            Err(TestbenchError::UnknownNet(_))
        ));
        assert!(matches!(
            tb.fill_memory_x("nomem", 0..1),
            Err(TestbenchError::UnknownMemory(_))
        ));
        assert!(tb.set_reset("bogus").is_err());
    }

    #[test]
    fn initialize_state_round_trip() {
        let nl = design();
        let mut tb = Testbench::new(&nl, SimConfig::default());
        tb.set_reset("rst").unwrap();
        tb.reset(1);
        let snap = tb.sim_mut().save_state().encode();
        tb.drive_bus_x("din", 4).unwrap();
        tb.run(3);
        tb.initialize_state(&snap).unwrap();
        assert_eq!(
            tb.sim().read_bus_by_name("qo", 4).unwrap().to_u64(),
            Some(0)
        );
        assert!(tb.initialize_state(&snap[..3]).is_err());
    }

    #[test]
    fn symbols_driven_with_tagged_policy() {
        let nl = design();
        let config = SimConfig {
            policy: symsim_logic::PropagationPolicy::Tagged,
            ..SimConfig::default()
        };
        let mut tb = Testbench::new(&nl, config);
        tb.set_reset("rst").unwrap();
        tb.reset(1);
        let next = tb.drive_bus_symbols("din", 4, 0).unwrap();
        assert_eq!(next, 4);
        tb.sim_mut().settle();
        tb.sim_mut().step_cycle();
        // symbol passes through the register under the tagged policy
        assert_eq!(
            tb.sim().read_net_by_name("qo[0]").unwrap(),
            Value::symbol(0)
        );
    }
}
