//! Stuck-at fault injection and fault grading.
//!
//! The paper's §2 contrasts its save/restore mechanism with the
//! `force`/`release`-based fault-injection flows of prior work (Das et al.,
//! IMTC'06), noting that those require recompiling and restarting per
//! fault. Built on [`Simulator::force`] and state snapshots, this module
//! grades a whole fault list from one compiled design without restarts:
//! snapshot once, then for each fault restore → force → run → compare.
//!
//! # Example
//!
//! ```
//! use symsim_netlist::RtlBuilder;
//! use symsim_logic::Value;
//! use symsim_sim::{fault, SimConfig, Simulator};
//!
//! let mut b = RtlBuilder::new("inv");
//! let a = b.input("a", 1);
//! let y = b.not(&a);
//! b.output("y", &y);
//! let nl = b.finish().expect("valid");
//!
//! let mut sim = Simulator::new(&nl, SimConfig::default());
//! let a_net = nl.find_net("a").expect("net");
//! let faults = fault::all_output_faults(&nl);
//! let report = fault::grade(&mut sim, &faults, 2, |sim, cycle| {
//!     sim.poke(a_net, Value::from_bool(cycle % 2 == 0));
//! });
//! // a one-gate design: toggling the input detects both polarities
//! assert_eq!(report.detected, faults.len());
//! ```

use symsim_logic::Value;
use symsim_netlist::{NetId, Netlist};

use crate::engine::Simulator;

/// A single stuck-at fault: `net` permanently at `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckAt {
    /// The faulty net.
    pub net: NetId,
    /// The stuck polarity (true = stuck-at-1).
    pub stuck_at_one: bool,
}

/// The classic fault list: stuck-at-0 and stuck-at-1 on every gate output.
pub fn all_output_faults(netlist: &Netlist) -> Vec<StuckAt> {
    let mut out = Vec::with_capacity(netlist.gate_count() * 2);
    for g in netlist.gates() {
        for stuck_at_one in [false, true] {
            out.push(StuckAt {
                net: g.output,
                stuck_at_one,
            });
        }
    }
    out
}

/// Result of grading a fault list against a stimulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults whose effect reached a primary output within the budget.
    pub detected: usize,
    /// Faults that never produced an output difference.
    pub undetected: Vec<StuckAt>,
    /// Cycles simulated in total (golden run + one run per fault).
    pub simulated_cycles: u64,
}

impl FaultReport {
    /// Fault coverage in percent.
    pub fn coverage_percent(&self) -> f64 {
        let total = self.detected + self.undetected.len();
        if total == 0 {
            return 100.0;
        }
        100.0 * self.detected as f64 / total as f64
    }
}

/// Grades `faults` against the stimulus `drive(sim, cycle)` applied for
/// `cycles` cycles: a fault is *detected* when any primary output differs
/// from the golden (fault-free) run at any cycle.
///
/// The simulator is snapshotted once; each fault run restores the snapshot
/// and forces the faulty net — no recompilation or restart (the advantage
/// over testbench `force`/`release` flows the paper describes).
pub fn grade<F>(sim: &mut Simulator<'_>, faults: &[StuckAt], cycles: u64, drive: F) -> FaultReport
where
    F: Fn(&mut Simulator<'_>, u64),
{
    let outputs: Vec<NetId> = sim.netlist().outputs().to_vec();
    let baseline = sim.save_state();

    // golden run: record the output trace
    let mut golden = Vec::with_capacity(cycles as usize);
    for cycle in 0..cycles {
        drive(sim, cycle);
        sim.step_cycle();
        golden.push(sim.read_bus(&outputs));
    }
    let mut simulated = cycles;

    let mut detected = 0;
    let mut undetected = Vec::new();
    for &fault in faults {
        sim.load_state(&baseline);
        sim.force(fault.net, Value::from_bool(fault.stuck_at_one));
        let mut hit = false;
        for cycle in 0..cycles {
            drive(sim, cycle);
            sim.step_cycle();
            simulated += 1;
            if sim.read_bus(&outputs) != golden[cycle as usize] {
                hit = true;
                break;
            }
        }
        sim.release_all();
        if hit {
            detected += 1;
        } else {
            undetected.push(fault);
        }
    }
    sim.load_state(&baseline);
    FaultReport {
        detected,
        undetected,
        simulated_cycles: simulated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use symsim_netlist::RtlBuilder;

    #[test]
    fn redundant_logic_hides_faults() {
        // y = a AND a — a classic untestable redundancy after rewriting:
        // here y = a OR (a AND a); the AND's output faults are masked
        // whenever a = 1 on the OR side... drive both polarities and check
        // coverage accounting instead of exact masking.
        let mut b = RtlBuilder::new("redundant");
        let a = b.input("a", 1);
        let aa = b.and1(a.bit(0), a.bit(0));
        let y = b.or1(a.bit(0), aa);
        let yb = symsim_netlist::Bus::from_nets(vec![y]);
        b.output("y", &yb);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        let a_net = nl.find_net("a").unwrap();
        let faults = all_output_faults(&nl);
        let report = grade(&mut sim, &faults, 4, |sim, cycle| {
            sim.poke(a_net, Value::from_bool(cycle % 2 == 0));
        });
        // the AND's stuck-at-1 is masked by the OR when a=1 and produces
        // y=1 when a=0, so it IS detectable; stuck-at-0 on the AND is
        // masked (y follows a through the OR regardless)
        assert!(report.detected >= 1);
        assert!(
            report.undetected.iter().any(|f| !f.stuck_at_one),
            "the redundant AND's stuck-at-0 must be undetectable: {report:?}"
        );
        assert!(report.coverage_percent() < 100.0);
        assert!(report.simulated_cycles > 4);
    }

    #[test]
    fn sequential_fault_detection() {
        // counter with its msb observed: stuck faults in the increment
        // logic surface after a few cycles
        let mut b = RtlBuilder::new("cnt");
        let r = b.reg("c", 3, 0);
        let q = r.q.clone();
        let one = b.const_word(1, 3);
        let nxt = b.add(&q, &one);
        b.drive_reg(r, &nxt);
        b.output("msb", &q.slice(2, 3));
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.settle();
        let faults = all_output_faults(&nl);
        let report = grade(&mut sim, &faults, 10, |_, _| {});
        assert!(
            report.coverage_percent() > 50.0,
            "most increment faults disturb the msb: {report:?}"
        );
        // grading must leave the simulator restored
        assert_eq!(sim.read_bus_by_name("c", 3).unwrap().to_u64(), Some(0));
    }
}
