use serde::{Deserialize, Serialize};
use symsim_logic::Value;
use symsim_netlist::{Driver, GateId, NetId, Netlist};

/// Per-net toggle/activity record accumulated during symbolic simulation.
///
/// A net is *toggled* (exercisable) if, after the observer is armed
/// (post-reset), its value ever changes or it already carries an unknown —
/// "if an X propagates to a gate, it is considered exercisable, since for
/// some input the gate could toggle" (paper §1).
///
/// Untoggled nets hold the recorded `baseline` constant for the entire
/// simulation; the bespoke flow ties their fanout to that constant
/// (Algorithm 1 line 42).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToggleProfile {
    toggled: Vec<bool>,
    baseline: Vec<Value>,
}

impl ToggleProfile {
    /// Arms a profile with the current (post-reset) values as baseline;
    /// already-unknown nets start toggled.
    pub fn baseline(values: &[Value]) -> ToggleProfile {
        ToggleProfile {
            toggled: values.iter().map(|v| v.is_unknown()).collect(),
            baseline: values.to_vec(),
        }
    }

    /// Marks `net` toggled.
    #[inline]
    pub fn mark(&mut self, net: NetId) {
        self.toggled[net.0 as usize] = true;
    }

    /// Has `net` toggled?
    pub fn is_toggled(&self, net: NetId) -> bool {
        self.toggled[net.0 as usize]
    }

    /// The constant value an untoggled net held (its baseline).
    pub fn constant_of(&self, net: NetId) -> Value {
        self.baseline[net.0 as usize]
    }

    /// Number of nets observed.
    pub fn len(&self) -> usize {
        self.toggled.len()
    }

    /// True for an empty design.
    pub fn is_empty(&self) -> bool {
        self.toggled.is_empty()
    }

    /// Number of toggled nets.
    pub fn toggled_count(&self) -> usize {
        self.toggled.iter().filter(|&&t| t).count()
    }

    /// Nets [`ToggleProfile::baseline`] marked toggled *at arm time*
    /// because they already carried an unknown. These toggles have no
    /// `mark` event — and therefore no first-exercise observation — so
    /// provenance consumers must seed them with a synthetic `reset`
    /// attribution instead of expecting a recorded toggle.
    pub fn baseline_unknowns(&self) -> Vec<NetId> {
        self.baseline
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_unknown())
            .map(|(i, _)| NetId(i as u32))
            .collect()
    }

    /// Merges activity from another path's profile (Algorithm 1 lines
    /// 29-32): a net is toggled if it toggled on either path, or if the two
    /// paths disagree about its constant value.
    ///
    /// # Panics
    ///
    /// Panics if the profiles are from different designs.
    pub fn merge(&mut self, other: &ToggleProfile) {
        assert_eq!(
            self.toggled.len(),
            other.toggled.len(),
            "profile size mismatch"
        );
        for i in 0..self.toggled.len() {
            let disagree = self.baseline[i] != other.baseline[i];
            self.toggled[i] |= other.toggled[i] || disagree;
            self.baseline[i] = self.baseline[i].merge(other.baseline[i]);
        }
    }

    /// Lifts net activity to gates: a gate is *exercisable* iff its output
    /// net toggled (Algorithm 1 lines 33-39).
    pub fn exercisable_gates(&self, netlist: &Netlist) -> Vec<GateId> {
        netlist
            .iter_gates()
            .filter(|(_, g)| self.is_toggled(g.output))
            .map(|(id, _)| id)
            .collect()
    }

    /// The paper's headline number: exercisable gate count over
    /// combinational and sequential cells (DFFs count via their `q` nets).
    pub fn exercisable_gate_count(&self, netlist: &Netlist) -> usize {
        let comb = self.exercisable_gates(netlist).len();
        let seq = netlist
            .dffs()
            .iter()
            .filter(|d| self.is_toggled(d.q))
            .count();
        comb + seq
    }

    /// Unexercisable gates with the constant their outputs held — the
    /// prune-and-tie-off worklist for bespoke generation.
    pub fn unexercisable_constants(&self, netlist: &Netlist) -> Vec<(GateId, Value)> {
        netlist
            .iter_gates()
            .filter(|(_, g)| !self.is_toggled(g.output))
            .map(|(id, g)| (id, self.constant_of(g.output)))
            .collect()
    }

    /// Checks that every net toggled in `other` (e.g. a concrete-input run)
    /// is also toggled here — the subset validation of paper §5.0.1.
    pub fn covers_activity(&self, other: &ToggleProfile) -> bool {
        self.toggled
            .iter()
            .zip(&other.toggled)
            .all(|(&a, &b)| a || !b)
    }

    /// Serializes the profile to a simple line-oriented text form
    /// (`<net-index> <toggled> <constant>` per line) for tool interchange.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("symsim-profile v1 {}\n", self.len());
        for i in 0..self.len() {
            let _ = writeln!(
                out,
                "{} {} {}",
                i,
                u8::from(self.toggled[i]),
                self.baseline[i]
            );
        }
        out
    }

    /// Parses the format produced by [`ToggleProfile::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line.
    pub fn from_text(text: &str) -> Result<ToggleProfile, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty profile")?;
        let count: usize = header
            .strip_prefix("symsim-profile v1 ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or("bad profile header")?;
        let mut toggled = vec![false; count];
        let mut baseline = vec![Value::X; count];
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let idx: usize = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| format!("bad net index in \"{line}\""))?;
            if idx >= count {
                return Err(format!("net index {idx} out of range"));
            }
            toggled[idx] = parts.next() == Some("1");
            baseline[idx] = match parts.next() {
                Some("0") => Value::ZERO,
                Some("1") => Value::ONE,
                Some("x") | None => Value::X,
                Some("z") => Value::Z,
                Some(sym) => {
                    // tagged symbols serialize as sN / !sN
                    let (inv, body) = match sym.strip_prefix('!') {
                        Some(b) => (true, b),
                        None => (false, sym),
                    };
                    let id: u32 = body
                        .strip_prefix('s')
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(|| format!("bad value \"{sym}\""))?;
                    if inv {
                        Value::symbol_inverted(id)
                    } else {
                        Value::symbol(id)
                    }
                }
            };
        }
        Ok(ToggleProfile { toggled, baseline })
    }

    /// Nets whose drivers are primary inputs or memories are not gates; this
    /// helper reports how many toggled nets are actually gate-driven.
    pub fn toggled_gate_driven(&self, netlist: &Netlist) -> usize {
        let drivers = netlist.drivers();
        (0..self.toggled.len())
            .filter(|&i| self.toggled[i] && matches!(drivers[i], Some(Driver::Gate(_))))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_marks_unknowns() {
        let p = ToggleProfile::baseline(&[Value::ZERO, Value::X, Value::symbol(1)]);
        assert!(!p.is_toggled(NetId(0)));
        assert!(p.is_toggled(NetId(1)));
        assert!(p.is_toggled(NetId(2)));
        assert_eq!(p.toggled_count(), 2);
    }

    #[test]
    fn merge_detects_cross_path_disagreement() {
        let mut a = ToggleProfile::baseline(&[Value::ZERO, Value::ONE]);
        let b = ToggleProfile::baseline(&[Value::ZERO, Value::ZERO]);
        a.merge(&b);
        assert!(!a.is_toggled(NetId(0)));
        assert!(a.is_toggled(NetId(1)), "paths disagree on net 1's constant");
        assert!(a.constant_of(NetId(1)).is_x());
    }

    #[test]
    fn text_round_trip() {
        let mut p = ToggleProfile::baseline(&[
            Value::ZERO,
            Value::ONE,
            Value::X,
            Value::symbol(3),
            Value::symbol_inverted(4),
        ]);
        p.mark(NetId(0));
        let text = p.to_text();
        let back = ToggleProfile::from_text(&text).unwrap();
        assert_eq!(back, p);
        assert!(ToggleProfile::from_text("garbage").is_err());
        assert!(ToggleProfile::from_text("symsim-profile v1 2\n9 1 0").is_err());
    }

    #[test]
    fn covers_activity_subset() {
        let mut sup = ToggleProfile::baseline(&[Value::ZERO, Value::ZERO]);
        sup.mark(NetId(0));
        let mut sub = ToggleProfile::baseline(&[Value::ZERO, Value::ZERO]);
        assert!(sup.covers_activity(&sub));
        sub.mark(NetId(1));
        assert!(!sup.covers_activity(&sub));
    }
}
