//! Path-cohort evaluation: up to 64 *sibling paths* in the lane dimension.
//!
//! PR 2's batched kernel packs 64 gates of one path into a [`Lanes`] word;
//! this module re-purposes the same two-plane algebra in the other
//! direction — one net, 64 paths. Children forked from one snapshot share
//! every bit of state except the handful of forced control signals, so a
//! [`PathCohort`] broadcasts the fork snapshot into per-net planes, forces
//! each member's branch combo into its own lane, and settles all members
//! with one event-driven pass per node. Per-lane live masks gate every
//! writeback, so a lane that halts (`$monitor_x`), finishes, spills, or
//! exhausts the segment budget freezes exactly at its halt state while its
//! siblings keep running — [`Lanes::merge_masked`] is the invariant that
//! makes the frozen state unpackable bit-exactly later.
//!
//! # Exactness contract
//!
//! A cohort run must be indistinguishable from running each member lane
//! through the scalar segment protocol (`force* → settle → step_cycle →
//! release_all → run(budget)`):
//!
//! - Gate evaluation is levelized event-driven, so each node is evaluated
//!   at most once per settle with final inputs — no glitches, and the
//!   plane gate functions agree with the scalar `ops` lane-for-lane on
//!   `Logic` values (the `plane_props` differential tests).
//! - Memory reads and write commits are resolved *per lane* against the
//!   lane's own copy-on-write [`MemArray`]s with the same conservative
//!   address-enumeration semantics as the scalar engine.
//! - Toggle marking is change-driven in both engines, so the union of the
//!   member lanes' marks equals the union of the equivalent scalar runs.
//!
//! To keep the contract simple the planes must stay *exact*, which rules
//! out values they fold ([`Value::Z`], tagged symbols): [`Simulator::
//! cohort_pack`] refuses a base state containing them and requires the
//! [`PropagationPolicy::Anonymous`] policy. Under that gate no `Z`/symbol
//! can appear mid-run either — gates never produce them from `Logic`
//! inputs, forces are concrete, and memory merges of `Logic` values stay
//! `Logic` — so the fold in [`Lanes::set`] is the identity throughout.
//!
//! # Divergence and spilling
//!
//! A memory read whose address is unknown beyond `max_addr_enum_bits`
//! (`AddrSet::All`) is the one event whose scalar cost the cohort cannot
//! amortize: the scalar engine serves it from a per-memory all-words-merge
//! cache, while a cohort would rescan the lane's array on every such
//! event. The lane's read is served exactly (one O(depth) merge), the lane
//! is flagged, and at the *end of the cycle* — a quiescent region boundary
//! — it is masked out with [`CohortLaneEnd::Spilled`]. The explorer
//! unpacks it into an ordinary scalar segment carrying the remaining cycle
//! budget, so the spilled path's trajectory (and even its budget horizon)
//! is still bit-identical to event mode.

use symsim_logic::{plane::Lanes, PropagationPolicy, Value, Word};
use symsim_netlist::{CombNode, NetId};

use super::{enumerate_addresses, AddrSet, Simulator};
use crate::state::{MemArray, SimState};

/// How one member lane of a finished cohort run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohortLaneEnd {
    /// Still live (only observable before [`Simulator::cohort_run`]
    /// returns).
    Running,
    /// A monitored control-flow signal went unknown: the lane's unpacked
    /// state awaits a CSM observation, exactly like a scalar
    /// [`HaltReason::MonitorX`].
    MonitorX,
    /// The finish net asserted: the application completed on this lane.
    Finished,
    /// The segment cycle budget ran out with the lane still live.
    Budget,
    /// The lane diverged on a fully-unknown memory address and was masked
    /// out at the end of that cycle; its unpacked state must continue as a
    /// scalar segment with the remaining budget.
    Spilled,
}

/// Per-write-port plane sample (the cohort analogue of the scalar
/// `WritePortSample`), refilled in place every clock edge.
#[derive(Debug)]
struct WpPlanes {
    addr: Vec<Lanes>,
    data: Vec<Lanes>,
    we: Lanes,
}

/// Up to 64 sibling paths packed lane-wise over per-net [`Lanes`] planes.
///
/// Created by [`Simulator::cohort_pack`], steered with
/// [`Simulator::cohort_force`], run by [`Simulator::cohort_run`], and read
/// back per lane with [`Simulator::cohort_unpack`]. The cohort owns *all*
/// of its mutable state — the simulator's own scalar state is never
/// touched (except the shared toggle profile, whose marking is
/// change-driven and therefore union-exact), so the same simulator keeps
/// serving scalar segments between cohort runs.
#[derive(Debug)]
pub struct PathCohort {
    /// Member lane count (2..=64).
    n: usize,
    /// Live-lane mask; bit `i` clear means lane `i` is frozen.
    live: u64,
    /// Shared cycle counter (all live lanes advance in lock-step).
    cycle: u64,
    /// The snapshot cycle the cohort was packed at.
    start_cycle: u64,
    /// One plane per net, broadcast from the fork snapshot.
    planes: Vec<Lanes>,
    /// Cohort-local force bitmap (per net) and force planes.
    forced: Vec<bool>,
    force_planes: std::collections::HashMap<u32, Lanes>,
    /// Per-lane copy-on-write memories (`[lane][mem]`).
    lane_mems: Vec<Vec<MemArray>>,
    outcomes: Vec<CohortLaneEnd>,
    halt_cycle: Vec<u64>,
    /// Event scheduling over the union of all lanes' dirty sets.
    dirty: Vec<Vec<u32>>,
    in_queue: Vec<bool>,
    /// Per-cycle scratch, allocated once per cohort.
    dff_scratch: Vec<Lanes>,
    wp_scratch: Vec<WpPlanes>,
    mem_scratch: Vec<Lanes>,
    /// Masks computed in the Symbolic region, committed at the lane-end
    /// boundary (after `release` for the forced first step).
    pending_finish: u64,
    pending_halt: u64,
    spill_pending: u64,
    /// First-exercise attribution state (see `SimConfig::attribution`);
    /// `None` when attribution is off, so the write hot path pays nothing.
    attr: Option<CohortAttr>,
}

/// Per-cohort first-toggle recording: which lanes of each net have already
/// been attributed, plus the `(net, new_lanes, cycle)` log in toggle order.
/// The cohort records into its own log — never the simulator's scalar
/// buffer, whose cycle counter is unrelated mid-cohort — and the explorer
/// demuxes lane bits back to path ids after the run.
#[derive(Debug)]
struct CohortAttr {
    seen: Vec<u64>,
    log: Vec<(u32, u64, u64)>,
}

impl PathCohort {
    /// Member lane count.
    pub fn lanes(&self) -> usize {
        self.n
    }

    /// Mask of lanes still live (zero after [`Simulator::cohort_run`]).
    pub fn live_mask(&self) -> u64 {
        self.live
    }

    /// The shared cycle counter.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// How lane `lane` ended ([`CohortLaneEnd::Running`] before the run
    /// completes).
    pub fn outcome(&self, lane: usize) -> CohortLaneEnd {
        self.outcomes[lane]
    }

    /// The cycle lane `lane` was masked out at (its unpacked snapshot's
    /// cycle counter).
    pub fn halt_cycle(&self, lane: usize) -> u64 {
        self.halt_cycle[lane]
    }

    /// Cycles lane `lane` consumed inside the cohort.
    pub fn lane_cycles(&self, lane: usize) -> u64 {
        self.halt_cycle[lane] - self.start_cycle
    }

    /// Drains the first-exercise log recorded during
    /// [`Simulator::cohort_run`]: `(net, lane_mask, cycle)` entries, each
    /// marking the first toggle of `net` on the lanes of `lane_mask`, in
    /// toggle order. Empty when [`super::SimConfig::attribution`] is off.
    pub fn take_first_toggles(&mut self) -> Vec<(u32, u64, u64)> {
        self.attr
            .as_mut()
            .map(|a| std::mem::take(&mut a.log))
            .unwrap_or_default()
    }

    /// Freezes every lane in `ends` with the given end, recording the halt
    /// cycle. Precedence among simultaneous ends is the caller's order.
    fn freeze(&mut self, mask: u64, end: CohortLaneEnd) {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            self.outcomes[lane] = end;
            self.halt_cycle[lane] = self.cycle;
        }
        self.live &= !mask;
    }

    /// Applies the pending Symbolic-region verdicts: finish beats halt
    /// beats spill, all restricted to still-live lanes.
    fn commit_lane_ends(&mut self) {
        let fin = self.pending_finish & self.live;
        let halt = self.pending_halt & self.live & !fin;
        let spill = self.spill_pending & self.live & !fin & !halt;
        self.freeze(fin, CohortLaneEnd::Finished);
        self.freeze(halt, CohortLaneEnd::MonitorX);
        self.freeze(spill, CohortLaneEnd::Spilled);
        self.pending_finish = 0;
        self.pending_halt = 0;
        self.spill_pending = 0;
    }
}

impl<'n> Simulator<'n> {
    /// Packs `base` into an `n`-lane cohort: every net's plane broadcasts
    /// the snapshot value, every lane gets its own copy-on-write clone of
    /// the snapshot memories (O(page refs) each).
    ///
    /// Returns `None` when cohort evaluation cannot be exact: fewer than 2
    /// or more than 64 lanes, a non-[`Anonymous`](PropagationPolicy::
    /// Anonymous) policy, a base state carrying `Z`/symbol values (the
    /// planes fold those), an attached activity observer (whose per-cycle
    /// weighting is per-path, not union-shaped), or per-event tracing.
    /// The caller falls back to scalar segments in that case.
    pub fn cohort_pack(&self, base: &SimState, n: usize) -> Option<PathCohort> {
        if !(2..=64).contains(&n)
            || self.config.policy != PropagationPolicy::Anonymous
            || self.activity.is_some()
            || self.config.trace_events
        {
            return None;
        }
        if base.values.iter().any(|&v| !plane_exact(v)) {
            return None;
        }
        debug_assert!(
            base.mems.iter().all(|m| m.iter_bits().all(plane_exact)),
            "cohort base memories must be Z/symbol-free (see module docs)"
        );
        let planes: Vec<Lanes> = base.values.iter().map(|&v| Lanes::broadcast(v)).collect();
        let wp_scratch = self
            .write_ports
            .iter()
            .map(|d| WpPlanes {
                addr: vec![Lanes::ZEROS; d.addr.len()],
                data: vec![Lanes::ZEROS; d.data.len()],
                we: Lanes::ZEROS,
            })
            .collect();
        Some(PathCohort {
            n,
            live: if n == 64 { !0 } else { (1u64 << n) - 1 },
            cycle: base.cycle,
            start_cycle: base.cycle,
            planes,
            forced: vec![false; base.values.len()],
            force_planes: std::collections::HashMap::new(),
            lane_mems: vec![base.mems.clone(); n],
            outcomes: vec![CohortLaneEnd::Running; n],
            halt_cycle: vec![base.cycle; n],
            dirty: vec![Vec::new(); self.max_level as usize + 1],
            in_queue: vec![false; self.nodes.len()],
            dff_scratch: vec![Lanes::ZEROS; self.dff_pairs.len()],
            wp_scratch,
            mem_scratch: Vec::new(),
            pending_finish: 0,
            pending_halt: 0,
            spill_pending: 0,
            attr: self.attr.as_ref().map(|_| CohortAttr {
                seen: vec![0; base.values.len()],
                log: Vec::new(),
            }),
        })
    }

    /// Forces `net` to a per-lane value pattern (lane `i` takes
    /// `lanes.get(i)`), the cohort analogue of [`Simulator::force`] applied
    /// to every member at once. The override holds until the first cycle
    /// completes (cohort_run releases it, like the scalar segment
    /// protocol).
    pub fn cohort_force(&mut self, c: &mut PathCohort, net: NetId, lanes: Lanes) {
        c.forced[net.0 as usize] = true;
        c.force_planes.insert(net.0, lanes);
        self.cohort_write(c, net.0, lanes, false);
    }

    /// Runs the cohort through one forced cycle (mirroring `settle →
    /// step_cycle → release_all`) and then up to `max_cycles` further
    /// cycles, freezing lanes as they finish, halt, or spill; any lane
    /// still live afterwards ends as [`CohortLaneEnd::Budget`]. On return
    /// every lane has a final [`CohortLaneEnd`] and
    /// [`Simulator::cohort_unpack`] yields its quiescent snapshot.
    pub fn cohort_run(&mut self, c: &mut PathCohort, max_cycles: u64) {
        let t0 = self.config.profile_phases.then(std::time::Instant::now);
        self.cohort_settle(c);
        self.cohort_step(c);
        self.cohort_release(c);
        c.commit_lane_ends();
        let mut steps = 0u64;
        while c.live != 0 && steps < max_cycles {
            self.cohort_step(c);
            c.commit_lane_ends();
            steps += 1;
        }
        let budget = c.live;
        c.freeze(budget, CohortLaneEnd::Budget);
        if let Some(t) = t0 {
            self.settle_ns += t.elapsed().as_nanos() as u64;
        }
    }

    /// Unpacks lane `lane` into an ordinary quiescent [`SimState`]: each
    /// net's value from the lane's plane bits, the lane's own memories
    /// (copy-on-write, O(page refs)), and the cycle the lane froze at.
    pub fn cohort_unpack(&self, c: &PathCohort, lane: usize) -> SimState {
        assert!(lane < c.n, "lane out of range");
        SimState {
            values: (0..c.planes.len())
                .map(|i| c.planes[i].get(lane as u32))
                .collect(),
            mems: c.lane_mems[lane].clone(),
            cycle: c.halt_cycle[lane],
        }
    }

    /// One clock cycle over all live lanes, mirroring
    /// [`Simulator::step_cycle`]'s region order: NBA (settle, sample DFF
    /// d-planes and write ports pre-edge, commit), Active (settle), then
    /// the Symbolic-region checks, whose verdicts land in the pending
    /// masks (committed by the caller at the lane-end boundary).
    fn cohort_step(&mut self, c: &mut PathCohort) {
        // Nba: settle pending propagation, sample pre-edge, then commit
        self.cohort_settle(c);
        for i in 0..self.dff_pairs.len() {
            let d = self.dff_pairs[i].1;
            c.dff_scratch[i] = c.planes[d.0 as usize];
        }
        for pi in 0..self.write_ports.len() {
            for bi in 0..self.write_ports[pi].addr.len() {
                let net = self.write_ports[pi].addr[bi].0 as usize;
                c.wp_scratch[pi].addr[bi] = c.planes[net];
            }
            for bi in 0..self.write_ports[pi].data.len() {
                let net = self.write_ports[pi].data[bi].0 as usize;
                c.wp_scratch[pi].data[bi] = c.planes[net];
            }
            let we = self.write_ports[pi].we.0 as usize;
            c.wp_scratch[pi].we = c.planes[we];
        }
        for i in 0..self.dff_pairs.len() {
            let q = self.dff_pairs[i].0;
            let v = c.dff_scratch[i];
            // like the scalar `set_value(q, v, false)`: DFF commits bypass
            // force overrides
            self.cohort_write(c, q.0, v, false);
        }
        for pi in 0..self.write_ports.len() {
            let mem_index = self.write_ports[pi].mem as usize;
            let max_bits = self.config.max_addr_enum_bits;
            let mut any_write = false;
            let mut m = c.live;
            while m != 0 {
                let lane = m.trailing_zeros();
                m &= m - 1;
                let we = c.wp_scratch[pi].we.get(lane);
                if we == Value::ZERO {
                    continue;
                }
                let addr: Word = c.wp_scratch[pi].addr.iter().map(|l| l.get(lane)).collect();
                let data: Word = c.wp_scratch[pi].data.iter().map(|l| l.get(lane)).collect();
                commit_lane_mem_write(
                    &mut c.lane_mems[lane as usize][mem_index],
                    &addr,
                    &data,
                    we,
                    max_bits,
                );
                any_write = true;
            }
            if any_write {
                // per-node scheduling is shared across lanes: re-evaluating
                // a read whose lane did not write is idempotent
                self.cohort_schedule_mem_readers(c, mem_index);
            }
        }
        // Active
        self.cohort_settle(c);
        // Inactive and Monitor are empty/inline, as in the scalar engine.
        // Symbolic: advance the shared counter, then the per-lane checks
        c.cycle += 1;
        self.cohort_check_symbolic(c);
    }

    /// The per-lane Symbolic-region verdicts of [`Simulator::
    /// check_symbolic_region`], as plane reductions: finish lanes are the
    /// finish net's known-ones; a monitor halts a lane when its qualifier
    /// is unknown, or known-1 (or absent) with any watched signal unknown.
    fn cohort_check_symbolic(&self, c: &mut PathCohort) {
        let live = c.live;
        let mut finished = 0u64;
        if let Some(f) = self.finish_net {
            finished = c.planes[f.0 as usize].known_ones() & live;
        }
        let mut halt = 0u64;
        for spec in &self.monitors {
            let mut sig_unk = 0u64;
            for &s in &spec.signals {
                sig_unk |= c.planes[s.0 as usize].unknown_mask();
            }
            halt |= match spec.qualifier {
                None => sig_unk,
                Some(q) => {
                    let ql = c.planes[q.0 as usize];
                    ql.unknown_mask() | (ql.known_ones() & sig_unk)
                }
            };
        }
        c.pending_finish |= finished;
        c.pending_halt |= halt & live & !finished;
    }

    /// Releases all cohort forces and re-evaluates the affected drivers
    /// (the cohort analogue of [`Simulator::release_all`]).
    fn cohort_release(&mut self, c: &mut PathCohort) {
        let nets: Vec<u32> = c.force_planes.keys().copied().collect();
        c.force_planes.clear();
        for n in nets {
            c.forced[n as usize] = false;
            if let Some(node) = self.driver_node[n as usize] {
                self.cohort_schedule_node(c, node);
            }
        }
        self.cohort_settle(c);
    }

    /// Drains the cohort dirty buckets level-ascending to quiescence. Like
    /// the scalar settle, nodes only schedule strictly higher levels
    /// within a pass, so one ascending sweep suffices; each node is
    /// evaluated once over all 64 lanes.
    fn cohort_settle(&mut self, c: &mut PathCohort) {
        for lvl in 0..=self.max_level as usize {
            while let Some(idx) = c.dirty[lvl].pop() {
                c.in_queue[idx as usize] = false;
                self.cohort_eval_node(c, idx);
            }
        }
    }

    fn cohort_schedule_node(&self, c: &mut PathCohort, idx: u32) {
        if !c.in_queue[idx as usize] {
            c.in_queue[idx as usize] = true;
            c.dirty[self.level[idx as usize] as usize].push(idx);
        }
    }

    fn cohort_schedule_fanout(&self, c: &mut PathCohort, net: u32) {
        let s = self.fanout_start[net as usize] as usize;
        let e = self.fanout_start[net as usize + 1] as usize;
        for k in s..e {
            self.cohort_schedule_node(c, self.fanout_list[k]);
        }
    }

    fn cohort_schedule_mem_readers(&self, c: &mut PathCohort, mem_index: usize) {
        for &node in &self.mem_readers[mem_index] {
            self.cohort_schedule_node(c, node);
        }
    }

    /// Lane-masked writeback of `y` to `net`: only live lanes whose value
    /// actually changed are patched ([`Lanes::merge_masked`]), dead lanes
    /// are untouched by construction, and any change marks the toggle
    /// profile and schedules the net's fanout — the cohort mirror of
    /// [`Simulator::set_value`], including the force override on
    /// evaluation writes.
    fn cohort_write(&mut self, c: &mut PathCohort, net: u32, y: Lanes, from_eval: bool) {
        let y = if from_eval && c.forced[net as usize] {
            self.forced_writes += 1;
            c.force_planes[&net]
        } else {
            y
        };
        let old = c.planes[net as usize];
        let changed = old.diff_mask(y) & c.live;
        if changed == 0 {
            return;
        }
        c.planes[net as usize] = old.merge_masked(y, changed);
        // the scalar `mark_toggled` minus the parts a cohort cannot have:
        // activity observers are refused at pack time, and first-exercise
        // attribution goes to the cohort's own per-lane log (the scalar
        // buffer's cycle counter is unrelated mid-cohort)
        if let Some(p) = &mut self.profile {
            p.mark(NetId(net));
        }
        if let Some(a) = &mut c.attr {
            let new = changed & !a.seen[net as usize];
            if new != 0 {
                a.seen[net as usize] |= new;
                a.log.push((net, new, c.cycle));
            }
        }
        self.cohort_schedule_fanout(c, net);
    }

    /// Evaluates one node over all 64 lanes: gates via the plane algebra
    /// (one word-op evaluates every member path at once), memory reads
    /// per live lane against the lane's own memories.
    fn cohort_eval_node(&mut self, c: &mut PathCohort, idx: u32) {
        self.event_evals += 1;
        match self.nodes[idx as usize] {
            CombNode::Gate(g) => {
                use symsim_logic::plane;
                use symsim_netlist::CellKind as K;
                let gate = self.netlist.gate(g);
                let p = |i: usize| c.planes[gate.inputs[i].0 as usize];
                let y = match gate.kind {
                    K::Const0 => Lanes::ZEROS,
                    K::Const1 => Lanes::ONES,
                    K::Buf => plane::buf(p(0)),
                    K::Not => plane::not(p(0)),
                    K::And2 => plane::and2(p(0), p(1)),
                    K::Or2 => plane::or2(p(0), p(1)),
                    K::Nand2 => plane::nand2(p(0), p(1)),
                    K::Nor2 => plane::nor2(p(0), p(1)),
                    K::Xor2 => plane::xor2(p(0), p(1)),
                    K::Xnor2 => plane::xnor2(p(0), p(1)),
                    K::Mux2 => plane::mux2(p(0), p(1), p(2)),
                };
                let out = gate.output.0;
                self.cohort_write(c, out, y, true);
            }
            CombNode::MemRead { mem, port } => {
                let nl = self.netlist;
                let mem_index = mem.0 as usize;
                let rp = &nl.memories()[mem_index].read_ports[port];
                let max_bits = self.config.max_addr_enum_bits;
                let mut out = std::mem::take(&mut c.mem_scratch);
                out.clear();
                out.extend(rp.data.iter().map(|&n| c.planes[n.0 as usize]));
                let mut m = c.live;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let addr: Word = rp
                        .addr
                        .iter()
                        .map(|&a| c.planes[a.0 as usize].get(lane))
                        .collect();
                    let (word, was_all) =
                        resolve_lane_read(&c.lane_mems[lane as usize][mem_index], &addr, max_bits);
                    if was_all {
                        // exact this cycle, unamortizable from here on:
                        // spill the lane at the next region boundary
                        c.spill_pending |= 1 << lane;
                    }
                    debug_assert!(
                        word.iter().all(|&v| plane_exact(v)),
                        "cohort memories must stay Z/symbol-free"
                    );
                    for (i, l) in out.iter_mut().enumerate() {
                        l.set(lane, word.bit(i));
                    }
                }
                for (i, &nid) in rp.data.iter().enumerate() {
                    let y = out[i];
                    self.cohort_write(c, nid.0, y, true);
                }
                c.mem_scratch = out;
            }
        }
    }
}

/// True when the planes represent `v` exactly (`Logic` values only).
#[inline]
fn plane_exact(v: Value) -> bool {
    !matches!(v, Value::Sym(_)) && v != Value::Z
}

/// One lane's memory read: the conservative merge of every word the
/// address could select, with the same enumeration semantics as
/// [`Simulator::mem_read_resolve`] but no all-words cache — the second
/// return flags the `AddrSet::All` case so the caller can spill the lane.
fn resolve_lane_read(mem: &MemArray, addr: &Word, max_enum_bits: u32) -> (Word, bool) {
    match enumerate_addresses(addr, mem.depth(), max_enum_bits) {
        AddrSet::None => (Word::xs(mem.width()), false),
        AddrSet::Some(addrs) => {
            let mut it = addrs.into_iter();
            let mut acc = match it.next() {
                None => return (Word::xs(mem.width()), false),
                Some(a0) => mem.word(a0),
            };
            for a in it {
                acc = acc.merge(&mem.word(a));
            }
            (acc, false)
        }
        AddrSet::All => {
            let mut acc = mem.word(0);
            for a in 1..mem.depth() {
                acc = acc.merge(&mem.word(a));
            }
            (acc, true)
        }
    }
}

/// One lane's write commit, mirroring [`Simulator::commit_mem_write`]
/// (minus the all-words-merge cache, which cohorts do not maintain). The
/// caller has already filtered `we == 0`.
fn commit_lane_mem_write(mem: &mut MemArray, addr: &Word, data: &Word, we: Value, max_bits: u32) {
    let certain = we == Value::ONE;
    let depth = mem.depth();
    match enumerate_addresses(addr, depth, max_bits) {
        AddrSet::None => {}
        AddrSet::Some(addrs) => {
            let exact = certain && !addr.has_unknown();
            for a in addrs {
                if exact {
                    mem.set_word(a, data);
                } else {
                    mem.merge_word(a, data);
                }
            }
        }
        AddrSet::All => {
            for a in 0..depth {
                mem.merge_word(a, data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{EvalMode, HaltReason, MonitorSpec, SimConfig};
    use super::*;
    use symsim_logic::plane;
    use symsim_netlist::{Netlist, RtlBuilder};

    /// A branchy mini-CPU shape: 3-bit PC, a conditional jump at PC==2 on
    /// an X input, a memory written along the way, finish at PC==6 (so the
    /// fall-through lane finishes one cycle after the taken lane re-halts
    /// at the branch).
    fn branchy() -> (Netlist, NetId, NetId, NetId) {
        let mut b = RtlBuilder::new("cohort_branchy");
        let cond_in = b.input("cond_in", 1);
        let pc = b.reg("pc", 3, 0);
        let pcq = pc.q.clone();
        let one3 = b.const_word(1, 3);
        let next_seq = b.add(&pcq, &one3);
        let two = b.const_word(2, 3);
        let at_branch_raw = b.eq(&pcq, &two);
        let at_branch = b.name_net("is_branch", at_branch_raw);
        let target = b.const_word(0, 3);
        let taken_raw = b.and1(at_branch, cond_in.bit(0));
        let taken = b.name_net("taken", taken_raw);
        let next = b.mux(taken, &next_seq, &target);
        b.drive_reg(pc, &next);
        let m = b.memory("scratch", 8, 3);
        let one = b.one();
        b.mem_write(m, &pcq, &pcq, one);
        let rd = b.mem_read(m, &pcq);
        b.output("rd", &rd);
        let six = b.const_word(6, 3);
        let done_raw = b.eq(&pcq, &six);
        let done = b.name_net("done", done_raw);
        b.output("done_out", &symsim_netlist::Bus::from_nets(vec![done]));
        let nl = b.finish().unwrap();
        let map = nl.net_name_map();
        let (qual, sig, fin) = (map["is_branch"], map["taken"], map["done"]);
        (nl, qual, sig, fin)
    }

    fn prepared(nl: &Netlist, mode: EvalMode) -> Simulator<'_> {
        let mut sim = Simulator::new(
            nl,
            SimConfig {
                eval_mode: mode,
                ..SimConfig::default()
            },
        );
        let cond = nl.find_net("cond_in").unwrap();
        sim.poke(cond, Value::X);
        sim.settle();
        sim
    }

    /// Cohort lanes must retrace the scalar segment protocol bit-exactly:
    /// run the fork's children scalar (force → settle → step → release →
    /// run) and compare every lane's unpacked snapshot.
    #[test]
    fn cohort_lanes_match_scalar_segments() {
        let (nl, qual, sig, fin) = branchy();
        let mut sim = prepared(&nl, EvalMode::Cohort);
        sim.monitor_x(MonitorSpec {
            qualifier: Some(qual),
            signals: vec![sig],
        });
        sim.set_finish_net(fin);
        // run to the branch halt to get a fork snapshot
        let reason = sim.run(100);
        assert!(matches!(reason, HaltReason::MonitorX { .. }), "{reason:?}");
        let cons = sim.save_state();

        // scalar reference: child `i` forces taken = bit 0 of i
        let mut scalar_states = Vec::new();
        for combo in 0..2u64 {
            sim.load_state(&cons);
            sim.force(sig, Value::from_bool(combo & 1 == 1));
            sim.settle();
            let pending = sim.step_cycle();
            sim.release_all();
            let reason = match pending {
                Some(r) => r,
                None => sim.run(100),
            };
            scalar_states.push((reason, sim.save_state()));
        }

        // cohort: both children in one pass
        let mut c = sim.cohort_pack(&cons, 2).expect("cohort eligible");
        let mut lanes = Lanes::ZEROS;
        lanes.set(1, Value::ONE);
        sim.cohort_force(&mut c, sig, lanes);
        sim.cohort_run(&mut c, 100);
        for (lane, (reason, want)) in scalar_states.iter().enumerate() {
            let got = sim.cohort_unpack(&c, lane);
            let end = c.outcome(lane);
            match reason {
                HaltReason::Finished => assert_eq!(end, CohortLaneEnd::Finished),
                HaltReason::MaxCycles => assert_eq!(end, CohortLaneEnd::Budget),
                HaltReason::MonitorX { .. } => assert_eq!(end, CohortLaneEnd::MonitorX),
            }
            assert_eq!(got.cycle, want.cycle, "lane {lane} halt cycle");
            assert_eq!(got, *want, "lane {lane} diverged from its scalar run");
        }
    }

    #[test]
    fn pack_refuses_inexact_bases() {
        let (nl, _, _, _) = branchy();
        let sim = prepared(&nl, EvalMode::Cohort);
        let mut base = SimState {
            values: vec![Value::ZERO; nl.net_count()],
            mems: vec![MemArray::xs(8, 3)],
            cycle: 0,
        };
        assert!(sim.cohort_pack(&base, 1).is_none(), "n < 2");
        assert!(sim.cohort_pack(&base, 65).is_none(), "n > 64");
        assert!(sim.cohort_pack(&base, 2).is_some());
        base.values[0] = Value::symbol(3);
        assert!(sim.cohort_pack(&base, 2).is_none(), "symbol in base");
        base.values[0] = Value::Z;
        assert!(sim.cohort_pack(&base, 2).is_none(), "Z in base");
    }

    #[test]
    fn masked_lanes_stay_frozen_after_halt() {
        let (nl, qual, sig, fin) = branchy();
        let mut sim = prepared(&nl, EvalMode::Cohort);
        sim.monitor_x(MonitorSpec {
            qualifier: Some(qual),
            signals: vec![sig],
        });
        sim.set_finish_net(fin);
        let reason = sim.run(100);
        assert!(matches!(reason, HaltReason::MonitorX { .. }));
        let cons = sim.save_state();
        let mut c = sim.cohort_pack(&cons, 2).expect("cohort eligible");
        let mut lanes = Lanes::ZEROS;
        lanes.set(1, Value::ONE);
        sim.cohort_force(&mut c, sig, lanes);
        sim.cohort_run(&mut c, 100);
        // the taken lane loops back to the branch and halts again; the
        // not-taken lane runs to finish later — at different cycles
        assert_eq!(c.live_mask(), 0, "all lanes must end");
        let a = sim.cohort_unpack(&c, 0);
        let b = sim.cohort_unpack(&c, 1);
        assert_ne!(a.cycle, b.cycle, "lanes halt at different cycles");
        // a frozen lane's planes must be internally consistent: re-packing
        // its unpacked state round-trips every net
        for (i, &v) in a.values.iter().enumerate() {
            assert_eq!(plane::pack(&[v]).get(0), v, "net {i}");
        }
    }
}
