use std::io::{self, Write};

use symsim_logic::Value;
use symsim_netlist::{NetId, Netlist};

use crate::engine::Simulator;

/// A minimal VCD (Value Change Dump) writer for inspecting symbolic
/// simulations in a waveform viewer. Tagged symbols render as `x`.
///
/// # Example
///
/// ```
/// use symsim_netlist::RtlBuilder;
/// use symsim_sim::{SimConfig, Simulator, VcdWriter};
///
/// # fn main() -> std::io::Result<()> {
/// let mut b = RtlBuilder::new("t");
/// let r = b.reg("q", 1, 0);
/// let q = r.q.clone();
/// let d = b.not(&q);
/// b.drive_reg(r, &d);
/// b.output("out", &q);
/// let nl = b.finish().expect("valid");
/// let mut sim = Simulator::new(&nl, SimConfig::default());
/// sim.settle();
///
/// let mut buf = Vec::new();
/// let watch = vec![nl.find_net("out").expect("net")];
/// let mut vcd = VcdWriter::new(&mut buf, &nl, &watch)?;
/// for _ in 0..4 {
///     vcd.sample(&sim)?;
///     sim.step_cycle();
/// }
/// let text = String::from_utf8(buf).expect("utf8");
/// assert!(text.contains("$var"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VcdWriter<W: Write> {
    out: W,
    watch: Vec<NetId>,
    codes: Vec<String>,
    last: Vec<Option<Value>>,
    time: u64,
}

fn code_for(index: usize) -> String {
    // printable identifier alphabet per the VCD spec (! to ~)
    let mut i = index;
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn vcd_char(v: Value) -> char {
    match v {
        Value::Logic(symsim_logic::Logic::Zero) => '0',
        Value::Logic(symsim_logic::Logic::One) => '1',
        Value::Logic(symsim_logic::Logic::Z) => 'z',
        _ => 'x',
    }
}

impl<W: Write> VcdWriter<W> {
    /// Writes the VCD header declaring one scalar var per watched net.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer (a `&mut Vec<u8>` or `&mut
    /// File` works via the blanket `Write` impls).
    pub fn new(mut out: W, netlist: &Netlist, watch: &[NetId]) -> io::Result<VcdWriter<W>> {
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", netlist.name)?;
        let mut codes = Vec::with_capacity(watch.len());
        for (i, &net) in watch.iter().enumerate() {
            let code = code_for(i);
            let name = netlist.net_name(net).replace(['[', ']'], "_");
            writeln!(out, "$var wire 1 {code} {name} $end")?;
            codes.push(code);
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        Ok(VcdWriter {
            out,
            watch: watch.to_vec(),
            codes,
            last: vec![None; watch.len()],
            time: 0,
        })
    }

    /// Samples the watched nets, emitting changes at the next timestamp.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn sample(&mut self, sim: &Simulator<'_>) -> io::Result<()> {
        let mut wrote_time = false;
        for (i, &net) in self.watch.iter().enumerate() {
            let v = sim.read_net(net);
            if self.last[i] != Some(v) {
                if !wrote_time {
                    writeln!(self.out, "#{}", self.time)?;
                    wrote_time = true;
                }
                writeln!(self.out, "{}{}", vcd_char(v), self.codes[i])?;
                self.last[i] = Some(v);
            }
        }
        self.time += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use symsim_netlist::RtlBuilder;

    #[test]
    fn emits_only_changes() {
        let mut b = RtlBuilder::new("t");
        let r = b.reg("q", 1, 0);
        let q = r.q.clone();
        let d = b.not(&q);
        b.drive_reg(r, &d);
        b.output("out", &q);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.settle();
        let mut buf = Vec::new();
        let watch = vec![nl.find_net("out").unwrap()];
        let mut vcd = VcdWriter::new(&mut buf, &nl, &watch).unwrap();
        for _ in 0..4 {
            vcd.sample(&sim).unwrap();
            sim.step_cycle();
        }
        let text = String::from_utf8(buf).unwrap();
        // toggles every cycle: four time markers
        assert_eq!(text.matches('#').count(), 4);
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn code_alphabet_is_printable() {
        for i in [0, 1, 93, 94, 94 * 94] {
            let c = code_for(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)), "{c:?}");
        }
        assert_ne!(code_for(0), code_for(94));
    }
}
