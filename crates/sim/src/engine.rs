use std::collections::HashMap;
use std::sync::Arc;

use symsim_compile::CompiledKernel;
use symsim_logic::{ops, plane, plane::Lanes, PropagationPolicy, Value, Word};
use symsim_netlist::{CellKind, CombNode, Driver, NetId, Netlist};

use crate::activity::ActivityStats;
use crate::observer::ToggleProfile;
use crate::state::{MemArray, SimState};

mod cohort;

pub use cohort::{CohortLaneEnd, PathCohort};

/// How the Active region propagates values (see [`Simulator::settle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalMode {
    /// Pure event-driven: only dirty nodes are evaluated, one at a time.
    Event,
    /// Pure levelized: any level with a pending event runs its full
    /// bit-packed instruction tape, 64 gates per word-op.
    Batch,
    /// Event-driven below the activity threshold, batched above it
    /// (the default: dense propagation waves — reset, clock edges — run
    /// packed, sparse ripples stay event-driven).
    #[default]
    Hybrid,
    /// Path-cohort evaluation: the explorer packs up to 64 sibling paths
    /// forked from one snapshot into the lane dimension and settles them
    /// together (see [`PathCohort`]). Scalar segments (the root path, and
    /// any lane spilled out of a cohort) run exactly like [`EvalMode::
    /// Hybrid`]; reports stay bit-identical to event mode.
    Cohort,
    /// Compiled native evaluation: a `symsim-compile` kernel generated
    /// from this design settles the whole netlist in straight-line code
    /// over net-indexed bit planes (see
    /// [`Simulator::attach_compiled_kernel`]). Settles that the kernel
    /// cannot express exactly — active forces, tagged-symbol propagation,
    /// Z-holding gate outputs — fall back to event-driven dispatch, so
    /// values, traces, and observers stay bit-identical to event mode.
    Compiled,
}

impl EvalMode {
    /// The CLI spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            EvalMode::Event => "event",
            EvalMode::Batch => "batch",
            EvalMode::Hybrid => "hybrid",
            EvalMode::Cohort => "cohort",
            EvalMode::Compiled => "compiled",
        }
    }
}

impl std::str::FromStr for EvalMode {
    type Err = String;

    fn from_str(s: &str) -> Result<EvalMode, String> {
        match s {
            "event" => Ok(EvalMode::Event),
            "batch" => Ok(EvalMode::Batch),
            "hybrid" => Ok(EvalMode::Hybrid),
            "cohort" => Ok(EvalMode::Cohort),
            "compiled" => Ok(EvalMode::Compiled),
            other => Err(format!(
                "expected event, batch, hybrid, cohort, or compiled, got \"{other}\""
            )),
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// How unknowns propagate through gates (paper Fig. 4).
    pub policy: PropagationPolicy,
    /// Maximum number of unknown address bits enumerated on a memory
    /// access before the whole array is conservatively merged.
    pub max_addr_enum_bits: u32,
    /// Record the evaluation-event trace (used by the baseline-equivalence
    /// regression check of paper §5.0.1).
    pub trace_events: bool,
    /// Active-region dispatch: event-driven, batched, or hybrid.
    /// All modes produce identical values, traces, and observer results;
    /// they differ only in evaluation strategy.
    pub eval_mode: EvalMode,
    /// Hybrid-mode activity threshold in percent: a level runs its batched
    /// tape when at least this share of its nodes have pending events.
    /// `0` batches any level with a pending event (like [`EvalMode::Batch`]);
    /// `100` requires a fully dirty level.
    pub batch_threshold_pct: u8,
    /// Time settle and its batch/event dispatch paths (nanosecond fields in
    /// [`EngineStats`]). Off by default: no timestamps are taken on the hot
    /// path unless a profiler or trace sink asked for them.
    pub profile_phases: bool,
    /// First-exercise attribution: when the toggle observer is armed, also
    /// record the *cycle* of each net's first toggle since the last drain
    /// (see [`Simulator::take_first_toggles`]). Off by default: the
    /// dormant branch costs one `Option` check already paid by the profile
    /// itself, and no per-net buffer is allocated.
    pub attribution: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: PropagationPolicy::Anonymous,
            max_addr_enum_bits: 10,
            trace_events: false,
            eval_mode: EvalMode::default(),
            // measured sweet spot on the omsp16/bm32/dr5 benchmarks: the
            // batched tape wins even at low dirty fractions because lean
            // write-back makes a skipped batch nearly free
            batch_threshold_pct: 5,
            profile_phases: false,
            attribution: false,
        }
    }
}

/// Per-segment first-toggle buffer (see [`SimConfig::attribution`]): for
/// each net, the cycle of its first [`Simulator::mark_toggled`] since the
/// last drain (`u64::MAX` = untouched), plus the touched-net list so a
/// drain is O(touched), not O(nets).
#[derive(Debug)]
struct AttrBuf {
    first: Vec<u64>,
    touched: Vec<u32>,
}

/// A `$monitor_x` registration: halt when any of `signals` is unknown,
/// optionally only while `qualifier` is asserted.
///
/// The qualifier models "at a PC-changing instruction": for the evaluation
/// CPUs it is the `is_branch` decode output, and `signals` are the
/// branch-condition nets (NZCV flags for openMSP430, comparator outputs for
/// bm32/dr5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorSpec {
    /// Only check while this net is 1 (an unknown qualifier also halts).
    pub qualifier: Option<NetId>,
    /// The control-flow signals to watch for `X`.
    pub signals: Vec<NetId>,
}

/// Why the simulation stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaltReason {
    /// A monitored control-flow signal went unknown (Symbolic region halt).
    MonitorX {
        /// The monitored nets that were unknown at the halt point.
        signals: Vec<NetId>,
    },
    /// The finish net was asserted (the application ran to completion).
    Finished,
    /// The cycle budget was exhausted without halting.
    MaxCycles,
}

/// The five event regions of a time step (paper Fig. 2). `Symbolic` is the
/// region this work adds to iverilog; it executes strictly last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Gate evaluations and value propagation.
    Active,
    /// `#0`-delayed events (always empty in this cycle-accurate model).
    Inactive,
    /// Non-blocking assignments: flip-flop and memory commits.
    Nba,
    /// `$monitor`-style observation (toggle profile, waveforms).
    Monitor,
    /// The added region: `$monitor_x` checks, halt, save/restore.
    Symbolic,
}

/// Execution order of the regions within one time step.
pub(crate) const REGION_ORDER: [Region; 5] = [
    Region::Nba,
    Region::Active,
    Region::Inactive,
    Region::Monitor,
    Region::Symbolic,
];

/// A compiled memory write port: the nets to sample at the clock edge,
/// resolved once in [`Simulator::new`] so the cycle loop never walks the
/// netlist structures.
#[derive(Debug)]
struct WritePortDesc {
    mem: u32,
    addr: Vec<NetId>,
    data: Vec<NetId>,
    we: NetId,
}

/// Per-cycle write-port sample; the `Word` buffers are allocated once and
/// refilled in place every clock edge.
#[derive(Debug)]
struct WritePortSample {
    addr: Word,
    data: Word,
    we: Value,
}

/// Up to 64 gates of one level, evaluated by one word-op per gate kind
/// present over bit-packed planes. Lanes are kind-sorted, so `kinds` is a
/// short run-length list of `(kind, lane mask)` segments — full 64-lane
/// occupancy amortizes the per-batch dispatch far better than one batch
/// per (level, kind) would.
///
/// `node` holds the comb-node index per lane (for event traces and the
/// scalar fallback), `out` the output net per lane. The batch's operand
/// planes live in [`Simulator::packed`] (4 [`PackedOp`]s per batch).
#[derive(Debug)]
struct GateBatch {
    kinds: Vec<(CellKind, u64)>,
    node: Vec<u32>,
    out: Vec<u32>,
}

/// One packed batch operand: 64 lanes of two bitplanes plus an inexact
/// mask (`sym`) marking lanes whose scalar value the planes cannot
/// represent — tagged symbols and high-impedance `Z`.
///
/// These are *caches maintained event-style*: whenever a net's value
/// changes, [`Simulator::update_packed`] patches the one bit of every
/// operand reading that net (the subscriber list is compiled next to the
/// fanout map). Running a batch therefore needs no gather at all — it is
/// a handful of word-ops plus a change-mask-driven write-back.
#[derive(Debug, Default, Clone, Copy)]
struct PackedOp {
    val: u64,
    unk: u64,
    sym: u64,
}

impl PackedOp {
    #[inline]
    fn lanes(self) -> Lanes {
        Lanes {
            val: self.val,
            unk: self.unk,
        }
    }
}

/// The compiled instruction tape of one logic level: a contiguous range of
/// kind-sorted [`GateBatch`]es in [`Simulator::batches`], plus the level's
/// total comb-node count (the denominator of the hybrid activity
/// threshold). Memory-read nodes stay scalar — their conservative-merge
/// semantics are not plane-packable.
#[derive(Debug, Default, Clone, Copy)]
struct LevelTape {
    first_batch: u32,
    batch_count: u32,
    node_count: usize,
}

/// One subscription of a net to a batch operand bit:
/// `batch << 8 | operand << 6 | lane`, where operand 0-2 are the input
/// pins and [`SUB_OUT`] is the output plane.
type PackedSub = u32;

const SUB_OUT: u32 = 3;

/// [`Simulator::batch_dirty`] bit: a node of the batch was scheduled
/// event-style (its level's dirty bucket is complete, so the level may
/// still drain event-by-event below the activity threshold).
const DIRTY_SCHED: u8 = 1;
/// [`Simulator::batch_dirty`] bit: an operand changed via the batched
/// write-back, which skips per-node scheduling — the level's bucket is
/// incomplete and the level *must* run its tape.
const DIRTY_LEAN: u8 = 2;

/// Buckets of [`EngineStats::dirty_pct_hist`]: ten deciles (`0-9 %` …
/// `90-99 %`) plus the exactly-100% bucket. The layout matches
/// `symsim_obs`'s `dirty_fraction_pct` histogram, so the explorer can fold
/// the counts in bucket-for-bucket.
pub const DIRTY_PCT_BUCKETS: usize = 11;

/// Per-simulator evaluation statistics since construction — plain counters
/// a worker drains into the shared metrics registry once at the end of its
/// exploration (see [`Simulator::engine_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Level tapes run by the batched kernel.
    pub batched_level_evals: u64,
    /// Scalar node evaluations (event-driven gates, memory reads, and
    /// symbolic-lane fallbacks).
    pub event_evals: u64,
    /// Evaluation writes overridden by an active force (path steering).
    pub forced_writes: u64,
    /// Histogram of the dirty fraction (percent of nodes with pending
    /// events) of each dispatched level, bucketed `min(pct / 10, 10)`.
    pub dirty_pct_hist: [u64; DIRTY_PCT_BUCKETS],
    /// Wall time inside [`Simulator::settle`], ns. Zero unless
    /// [`SimConfig::profile_phases`] is set.
    pub settle_ns: u64,
    /// Wall time of batched level-tape dispatches within settle, ns. Zero
    /// unless [`SimConfig::profile_phases`] is set.
    pub batch_eval_ns: u64,
    /// Wall time of scalar event-driven drains within settle, ns. Zero
    /// unless [`SimConfig::profile_phases`] is set.
    pub event_eval_ns: u64,
    /// Full-netlist settle passes run by an attached compiled kernel.
    pub compiled_evals: u64,
}

/// The event-driven gate-level simulator.
///
/// One instance simulates one design; [`Simulator::load_state`] re-targets
/// it to any previously saved [`SimState`], which is how path exploration
/// forks execution without recompiling or restarting (paper §2, §3).
#[derive(Debug)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    config: SimConfig,
    // compiled structure
    nodes: Vec<CombNode>,
    level: Vec<u32>,
    max_level: u32,
    // net -> node indices reading it, flattened CSR: the reader list of
    // net `n` is `fanout_list[fanout_start[n]..fanout_start[n + 1]]`
    fanout_start: Vec<u32>,
    fanout_list: Vec<u32>,
    driver_node: Vec<Option<u32>>,  // net -> producing comb node
    mem_readers: Vec<Vec<u32>>,     // memory -> its read-port node indices
    dff_pairs: Vec<(NetId, NetId)>, // (q, d) sample order, fixed at compile
    write_ports: Vec<WritePortDesc>,
    tapes: Vec<LevelTape>,   // per-level ranges into `batches`
    batches: Vec<GateBatch>, // all gate batches, level-major
    packed: Vec<PackedOp>,   // 4 operand planes per batch, flat
    node_batch: Vec<u32>,    // node -> owning batch (u32::MAX for MemReads)
    batch_dirty: Vec<u8>,    // batch -> DIRTY_SCHED | DIRTY_LEAN bits
    // net -> its memory-read readers only (CSR like `fanout_*`): the one
    // fanout class the batched write-back must still schedule explicitly
    memread_fanout_start: Vec<u32>,
    memread_fanout_list: Vec<u32>,
    // net -> batch operand bits mirroring it (see `PackedSub`), flattened
    // CSR like `fanout_*`; only maintained when `maintain_packed` (batch
    // dispatch is possible)
    subs_start: Vec<u32>,
    subs_list: Vec<PackedSub>,
    maintain_packed: bool,
    // compiled-kernel state ([`EvalMode::Compiled`] only): val/unk bit
    // planes mirroring `values` (net n -> plane bit `cpos[n]`; identity
    // until a kernel supplies its locality-optimized layout), maintained
    // event-style on every value change and consumed wholesale by the
    // native kernel; `*_prev` are the diff-sync scratch
    compiled: Option<Arc<CompiledKernel>>,
    compiled_segment_nodes: Vec<Vec<u32>>, // kernel segment -> node indices
    // per-port memo of the last kernel-settle resolution: (decoded address,
    // memory epoch). While neither changes, the port's data planes and
    // scalar values still hold the resolved word, so the callback skips the
    // (possibly O(depth)) re-resolve that event dispatch never pays either
    compiled_port_cache: Vec<Vec<Option<(Word, u64)>>>,
    // per-segment early-out state: the dirty-bitmap mask covering every
    // address net of the segment's ports, the (deduped) memories it reads,
    // and the sum of their epochs at the last resolve. A settle whose
    // dirty words miss the mask and whose epoch sum is unchanged can skip
    // the whole segment — address decode and all — because neither the
    // addresses nor the contents can have moved
    compiled_seg_addr_mask: Vec<Vec<u64>>,
    compiled_seg_mems: Vec<Vec<u32>>,
    compiled_seg_epoch: Vec<Option<u64>>,
    // bumped on every mutation of the corresponding `mems` entry (and
    // wholesale on state loads): invalidates `compiled_port_cache`
    mem_epochs: Vec<u64>,
    maintain_cplanes: bool,
    // net id -> plane bit position, and its inverse: the kernel's plane
    // layout packs co-changing nets (a chunk's outputs, a bus) into shared
    // words so the dirty-word gating sees sparse activity
    cpos: Vec<u32>,
    cnet: Vec<u32>,
    cplanes_val: Vec<u64>,
    cplanes_unk: Vec<u64>,
    cplanes_prev_val: Vec<u64>,
    cplanes_prev_unk: Vec<u64>,
    // dirty-word bitmap over the compiled planes (bit w ⟺ plane word w
    // changed since the last kernel settle): seeds the kernel's activity
    // gating, so chunks whose input words are all clean skip themselves
    cplanes_dirty: Vec<u64>,
    // plane words holding memory-read data nets: excluded from the
    // post-kernel diff-sync (the segment callback syncs them exactly,
    // preserving Z/symbol values the planes fold to X)
    memdata_mask: Vec<u64>,
    // net -> driven by a gate (not an input, DFF, or read port)
    gate_driven: Vec<bool>,
    // gate-output nets currently holding a value the planes cannot
    // represent (Z or a tagged symbol, e.g. left behind by a released
    // force): the kernel would hide their transition back to X, so any
    // settle with this non-zero falls back to event dispatch
    inexact_gate_outs: usize,
    // at least one node scheduled since the last settle (the compiled
    // path runs the kernel at most once per pending wave)
    sched_pending: bool,
    // mutable simulation state
    values: Vec<Value>,
    mems: Vec<MemArray>,
    cycle: u64,
    // lazily computed conservative merge of *all* words of each memory,
    // serving reads whose address is fully unknown (AddrSet::All)
    mem_all_merge: Vec<Option<Word>>,
    // scheduling
    dirty: Vec<Vec<u32>>, // buckets by level
    in_queue: Vec<bool>,
    // dispatch statistics: batched tape runs vs scalar node evaluations,
    // force-overridden eval writes, and the dirty-fraction decile histogram
    // (see `EngineStats`) — plain fields, not atomics: each simulator is
    // single-threaded and the explorer drains them into the shared metrics
    // registry once per worker, keeping the hot loop free of shared writes
    batched_level_evals: u64,
    event_evals: u64,
    forced_writes: u64,
    compiled_evals: u64,
    dirty_pct_hist: [u64; DIRTY_PCT_BUCKETS],
    // phase-profiler accumulators (ns); written only when
    // `config.profile_phases` — the default hot path takes no timestamps
    settle_ns: u64,
    batch_eval_ns: u64,
    event_eval_ns: u64,
    // per-cycle scratch, reused so the clock loop allocates nothing
    dff_scratch: Vec<Value>,
    wp_scratch: Vec<WritePortSample>,
    // symbolic extensions; `forced` mirrors the force map's keys as a
    // bitmap so the per-change hot paths never hash on the common
    // (unforced) case
    forces: HashMap<u32, Value>,
    forced: Vec<bool>,
    monitors: Vec<MonitorSpec>,
    finish_net: Option<NetId>,
    profile: Option<ToggleProfile>,
    activity: Option<ActivityStats>,
    attr: Option<AttrBuf>,
    event_trace: Vec<(u64, u32)>,
    region_trace: Vec<(u64, Region)>,
    trace_regions: bool,
}

impl<'n> Simulator<'n> {
    /// Compiles `netlist` for simulation. All nets power up `X`, flip-flops
    /// take their `init` values, memories are all-`X`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle (run
    /// [`Netlist::validate`] first for a `Result`).
    pub fn new(netlist: &'n Netlist, config: SimConfig) -> Simulator<'n> {
        // stable node indexing: comb_nodes() order; levels from the netlist
        let level = netlist
            .comb_levels()
            .expect("netlist has a combinational cycle");
        let max_level = level.iter().copied().max().unwrap_or(0);
        let nodes = netlist.comb_nodes();
        let index_of: HashMap<CombNode, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();

        let drivers = netlist.drivers();
        let driver_node: Vec<Option<u32>> = drivers
            .iter()
            .map(|d| match d {
                Some(Driver::Gate(g)) => index_of.get(&CombNode::Gate(*g)).copied(),
                Some(Driver::MemoryRead { mem, port }) => index_of
                    .get(&CombNode::MemRead {
                        mem: *mem,
                        port: *port,
                    })
                    .copied(),
                _ => None,
            })
            .collect();

        let (tapes, batches, node_batch, packed_subs) =
            compile_tapes(netlist, &nodes, &level, max_level);
        let (subs_start, subs_list) = flatten_csr(&packed_subs);

        let fanout: Vec<Vec<u32>> = netlist
            .fanout_map()
            .into_iter()
            .map(|nodes_reading| nodes_reading.into_iter().map(|n| index_of[&n]).collect())
            .collect();
        let (fanout_start, fanout_list) = flatten_csr(&fanout);
        let memread_fanout: Vec<Vec<u32>> = fanout
            .iter()
            .map(|readers| {
                readers
                    .iter()
                    .copied()
                    .filter(|&n| matches!(nodes[n as usize], CombNode::MemRead { .. }))
                    .collect()
            })
            .collect();
        let (memread_fanout_start, memread_fanout_list) = flatten_csr(&memread_fanout);

        let mut mem_readers: Vec<Vec<u32>> = vec![Vec::new(); netlist.memories().len()];
        for (i, &node) in nodes.iter().enumerate() {
            if let CombNode::MemRead { mem, .. } = node {
                mem_readers[mem.0 as usize].push(i as u32);
            }
        }

        let mut values = vec![Value::X; netlist.net_count()];
        for d in netlist.dffs() {
            values[d.q.0 as usize] = Value::Logic(d.init);
        }
        let mems: Vec<MemArray> = netlist
            .memories()
            .iter()
            .map(|m| MemArray::xs(m.depth, m.width))
            .collect();

        let dff_pairs: Vec<(NetId, NetId)> = netlist.dffs().iter().map(|d| (d.q, d.d)).collect();
        let write_ports: Vec<WritePortDesc> = netlist
            .memories()
            .iter()
            .enumerate()
            .flat_map(|(mi, m)| {
                m.write_ports.iter().map(move |wp| WritePortDesc {
                    mem: mi as u32,
                    addr: wp.addr.clone(),
                    data: wp.data.clone(),
                    we: wp.we,
                })
            })
            .collect();
        let wp_scratch = write_ports
            .iter()
            .map(|d| WritePortSample {
                addr: Word::xs(d.addr.len()),
                data: Word::xs(d.data.len()),
                we: Value::X,
            })
            .collect();
        let dff_scratch = vec![Value::X; dff_pairs.len()];

        let mem_count = netlist.memories().len();
        let packed = vec![PackedOp::default(); batches.len() * 4];
        let batch_dirty = vec![DIRTY_SCHED; batches.len()];
        let maintain_cplanes = config.eval_mode == EvalMode::Compiled;
        let cwords = if maintain_cplanes {
            netlist.net_count().div_ceil(64)
        } else {
            0
        };
        let mut memdata_mask = vec![0u64; cwords];
        let mut gate_driven = vec![false; if maintain_cplanes { values.len() } else { 0 }];
        if maintain_cplanes {
            for m in netlist.memories() {
                for rp in &m.read_ports {
                    for &n in &rp.data {
                        memdata_mask[(n.0 >> 6) as usize] |= 1u64 << (n.0 & 63);
                    }
                }
            }
            for g in netlist.gates() {
                gate_driven[g.output.0 as usize] = true;
            }
        }
        let mut sim = Simulator {
            netlist,
            config,
            level,
            max_level,
            fanout_start,
            fanout_list,
            memread_fanout_start,
            memread_fanout_list,
            driver_node,
            mem_readers,
            dff_pairs,
            write_ports,
            tapes,
            batches,
            packed,
            node_batch,
            batch_dirty,
            subs_start,
            subs_list,
            // the packed batch-operand caches serve the batched tape;
            // compiled mode keeps them current too, so its ineligible
            // settles (forces held, inexact outputs) dispatch at hybrid
            // speed instead of degrading to pure event evaluation
            maintain_packed: config.eval_mode != EvalMode::Event,
            compiled: None,
            compiled_segment_nodes: Vec::new(),
            compiled_port_cache: Vec::new(),
            compiled_seg_addr_mask: Vec::new(),
            compiled_seg_mems: Vec::new(),
            compiled_seg_epoch: Vec::new(),
            mem_epochs: vec![0; mem_count],
            maintain_cplanes,
            // identity layout until attach_compiled_kernel installs the
            // kernel's permutation
            cpos: if maintain_cplanes {
                (0..values.len() as u32).collect()
            } else {
                Vec::new()
            },
            cnet: if maintain_cplanes {
                (0..values.len() as u32).collect()
            } else {
                Vec::new()
            },
            cplanes_val: vec![0; cwords],
            cplanes_unk: vec![0; cwords],
            cplanes_prev_val: vec![0; cwords],
            cplanes_prev_unk: vec![0; cwords],
            cplanes_dirty: vec![0; cwords.div_ceil(64)],
            memdata_mask,
            gate_driven,
            inexact_gate_outs: 0,
            sched_pending: false,
            forced: vec![false; values.len()],
            values,
            mems,
            cycle: 0,
            mem_all_merge: vec![None; mem_count],
            dirty: vec![Vec::new(); max_level as usize + 1],
            in_queue: vec![false; nodes.len()],
            batched_level_evals: 0,
            event_evals: 0,
            forced_writes: 0,
            compiled_evals: 0,
            dirty_pct_hist: [0; DIRTY_PCT_BUCKETS],
            settle_ns: 0,
            batch_eval_ns: 0,
            event_eval_ns: 0,
            nodes,
            dff_scratch,
            wp_scratch,
            forces: HashMap::new(),
            monitors: Vec::new(),
            finish_net: None,
            profile: None,
            activity: None,
            attr: None,
            event_trace: Vec::new(),
            region_trace: Vec::new(),
            trace_regions: false,
        };
        sim.rebuild_packed();
        sim.rebuild_cplanes();
        sim.schedule_all();
        sim
    }

    /// Attaches a native settle kernel (see `symsim_compile`). Only
    /// meaningful — and only allowed — under [`EvalMode::Compiled`]; the
    /// kernel must have been prepared from this simulator's netlist.
    ///
    /// # Panics
    ///
    /// Panics when the eval mode is not `Compiled` or the kernel's plane
    /// geometry does not match this design.
    pub fn attach_compiled_kernel(&mut self, kernel: Arc<CompiledKernel>) {
        assert!(
            self.maintain_cplanes,
            "compiled kernels require EvalMode::Compiled"
        );
        assert_eq!(
            kernel.words(),
            self.cplanes_val.len(),
            "kernel was generated for a different design"
        );
        // resolve each segment's read ports to this simulator's node
        // indices once, so the per-settle callback never searches
        let mut memread_nodes: HashMap<(u32, u32), u32> = HashMap::new();
        for (i, &node) in self.nodes.iter().enumerate() {
            if let CombNode::MemRead { mem, port } = node {
                memread_nodes.insert((mem.0, port as u32), i as u32);
            }
        }
        self.compiled_segment_nodes = kernel
            .segments()
            .iter()
            .map(|seg| {
                seg.iter()
                    .map(|r| memread_nodes[&(r.mem, r.port)])
                    .collect()
            })
            .collect();
        self.compiled_port_cache = kernel
            .segments()
            .iter()
            .map(|seg| vec![None; seg.len()])
            .collect();
        // install the kernel's plane layout, then rebuild everything laid
        // out in plane-bit space: the mem-data mask and the planes
        // themselves (rebuild_cplanes also marks every word dirty, so the
        // first kernel settle evaluates everything)
        assert_eq!(
            kernel.net_positions().len(),
            self.values.len(),
            "kernel layout covers a different net count"
        );
        self.cpos.copy_from_slice(kernel.net_positions());
        for (net, &pos) in kernel.net_positions().iter().enumerate() {
            self.cnet[pos as usize] = net as u32;
        }
        self.memdata_mask.fill(0);
        for m in self.netlist.memories() {
            for rp in &m.read_ports {
                for &n in &rp.data {
                    let p = self.cpos[n.0 as usize];
                    self.memdata_mask[(p >> 6) as usize] |= 1u64 << (p & 63);
                }
            }
        }
        let dwords = self.cplanes_dirty.len();
        self.compiled_seg_addr_mask = kernel
            .segments()
            .iter()
            .map(|seg| {
                let mut mask = vec![0u64; dwords];
                for r in seg {
                    let rp = &self.netlist.memories()[r.mem as usize].read_ports[r.port as usize];
                    for &n in &rp.addr {
                        let w = (self.cpos[n.0 as usize] >> 6) as usize;
                        mask[w >> 6] |= 1u64 << (w & 63);
                    }
                }
                mask
            })
            .collect();
        self.compiled_seg_mems = kernel
            .segments()
            .iter()
            .map(|seg| {
                let mut mems: Vec<u32> = seg.iter().map(|r| r.mem).collect();
                mems.sort_unstable();
                mems.dedup();
                mems
            })
            .collect();
        self.compiled_seg_epoch = vec![None; kernel.segments().len()];
        self.compiled = Some(kernel);
        self.rebuild_cplanes();
    }

    /// The design being simulated.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// The active configuration.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Cycles simulated since power-on (or since the loaded snapshot's
    /// counter).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    // ---- $monitor_x / finish ----

    /// Registers a `$monitor_x` watch (see [`MonitorSpec`]).
    pub fn monitor_x(&mut self, spec: MonitorSpec) {
        self.monitors.push(spec);
    }

    /// Clears all `$monitor_x` watches.
    pub fn clear_monitors(&mut self) {
        self.monitors.clear();
    }

    /// Sets the net whose assertion (concrete `1`) ends the simulation.
    pub fn set_finish_net(&mut self, net: NetId) {
        self.finish_net = Some(net);
    }

    /// Enables recording of `(cycle, Region)` transitions, used to verify
    /// that the Symbolic region executes last (paper §3.1).
    pub fn trace_regions(&mut self, on: bool) {
        self.trace_regions = on;
    }

    /// Drains the recorded region trace.
    pub fn take_region_trace(&mut self) -> Vec<(u64, Region)> {
        std::mem::take(&mut self.region_trace)
    }

    /// Drains the recorded evaluation-event trace (`trace_events` must be
    /// set in [`SimConfig`]).
    pub fn take_event_trace(&mut self) -> Vec<(u64, u32)> {
        std::mem::take(&mut self.event_trace)
    }

    // ---- value access ----

    /// The current value of `net`.
    pub fn read_net(&self, net: NetId) -> Value {
        self.values[net.0 as usize]
    }

    /// The current value of the named net, if it exists.
    pub fn read_net_by_name(&self, name: &str) -> Option<Value> {
        self.netlist.find_net(name).map(|n| self.read_net(n))
    }

    /// Reads a bus (LSB first) as a [`Word`].
    pub fn read_bus(&self, nets: &[NetId]) -> Word {
        nets.iter().map(|&n| self.read_net(n)).collect()
    }

    /// Reads the bus named `name[0] .. name[width-1]`; `None` if any bit is
    /// missing.
    pub fn read_bus_by_name(&self, name: &str, width: usize) -> Option<Word> {
        let nets = self.find_bus(name, width)?;
        Some(self.read_bus(&nets))
    }

    /// Resolves the nets of the bus named `name[0] .. name[width-1]`.
    pub fn find_bus(&self, name: &str, width: usize) -> Option<Vec<NetId>> {
        let map = self.netlist.net_name_map();
        if width == 1 {
            if let Some(&n) = map.get(name) {
                return Some(vec![n]);
            }
        }
        (0..width)
            .map(|i| map.get(format!("{name}[{i}]").as_str()).copied())
            .collect()
    }

    /// Drives a primary input (or any undriven net) to `value` and schedules
    /// its fanout.
    pub fn poke(&mut self, net: NetId, value: Value) {
        self.set_value(net, value, false);
    }

    /// Drives a whole input bus.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn poke_bus(&mut self, nets: &[NetId], word: &Word) {
        assert_eq!(nets.len(), word.width(), "poke width mismatch");
        for (i, &n) in nets.iter().enumerate() {
            self.poke(n, word.bit(i));
        }
    }

    // ---- force / release ----

    /// Overrides `net` to `value` until [`Simulator::release_all`]. Used by
    /// path exploration to steer a non-deterministic branch down one
    /// outcome; unlike testbench `force`/`release` (paper §2) this composes
    /// with state save/restore and needs no recompilation.
    pub fn force(&mut self, net: NetId, value: Value) {
        self.forces.insert(net.0, value);
        self.forced[net.0 as usize] = true;
        let old = self.values[net.0 as usize];
        if old != value {
            self.values[net.0 as usize] = value;
            if self.maintain_packed {
                self.update_packed::<false>(net.0, value);
            }
            if self.maintain_cplanes {
                self.update_cplane(net.0, value);
                self.track_inexact(net.0, old, value);
            }
            self.mark_toggled(net);
            self.schedule_fanout(net);
        }
    }

    /// Releases all forces and re-evaluates the affected drivers.
    pub fn release_all(&mut self) {
        let nets: Vec<u32> = self.forces.keys().copied().collect();
        self.forces.clear();
        for n in nets {
            self.forced[n as usize] = false;
            if let Some(node) = self.driver_node[n as usize] {
                if self.maintain_cplanes {
                    // recompute immediately: the write path marks the
                    // released net's plane word, which is what wakes its
                    // readers in the next kernel settle (the driver's own
                    // chunk may never wake — its *inputs* are unchanged —
                    // and a folded-constant driver has no inputs at all)
                    self.eval_node(node);
                } else {
                    self.schedule_node(node);
                }
            }
        }
        self.settle();
    }

    // ---- memory access ----

    /// Writes a word into memory `mem_index` (e.g. loading a program image).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range memory index or address.
    pub fn write_mem_word(&mut self, mem_index: usize, addr: usize, word: &Word) {
        self.mems[mem_index].set_word(addr, word);
        // an overwrite can remove information from the all-words merge
        self.mem_all_merge[mem_index] = None;
        self.mem_epochs[mem_index] += 1;
        self.schedule_mem_readers(mem_index);
    }

    /// Reads a word from memory `mem_index`.
    pub fn read_mem_word(&self, mem_index: usize, addr: usize) -> Word {
        self.mems[mem_index].word(addr)
    }

    /// Index of the memory named `name`.
    pub fn find_memory(&self, name: &str) -> Option<usize> {
        self.netlist.memories().iter().position(|m| m.name == name)
    }

    // ---- toggle observation ----

    /// Arms the toggle observer: the current (typically post-reset) values
    /// become the baseline, and any subsequent change — or any bit already
    /// unknown — marks the net toggled.
    pub fn arm_toggle_observer(&mut self) {
        self.profile = Some(ToggleProfile::baseline(&self.values));
        if self.config.attribution {
            self.attr = Some(AttrBuf {
                first: vec![u64::MAX; self.values.len()],
                touched: Vec::new(),
            });
        }
    }

    /// The accumulated toggle profile, if armed.
    pub fn toggle_profile(&self) -> Option<&ToggleProfile> {
        self.profile.as_ref()
    }

    /// Removes and returns the toggle profile.
    pub fn take_toggle_profile(&mut self) -> Option<ToggleProfile> {
        self.profile.take()
    }

    /// Drains the first-toggle attribution buffer: every net toggled since
    /// the last drain (or since [`Simulator::arm_toggle_observer`]) with
    /// the cycle of its *first* toggle, in toggle order. Returns `None`
    /// when [`SimConfig::attribution`] is off. The buffer resets, so the
    /// explorer can call this once per path segment and attribute each
    /// batch to the segment's path.
    pub fn take_first_toggles(&mut self) -> Option<Vec<(NetId, u64)>> {
        let a = self.attr.as_mut()?;
        let out: Vec<(NetId, u64)> = a
            .touched
            .iter()
            .map(|&n| (NetId(n), a.first[n as usize]))
            .collect();
        for &n in &a.touched {
            a.first[n as usize] = u64::MAX;
        }
        a.touched.clear();
        Some(out)
    }

    // ---- state save / restore ----

    /// Snapshots the complete simulation state, settling any pending
    /// propagation first so the snapshot is quiescent (snapshots are taken
    /// at region boundaries, so the event queue is empty by construction).
    ///
    /// # Panics
    ///
    /// Panics if forces are active (release before saving — a forced state
    /// is mid-split and not a machine state).
    pub fn save_state(&mut self) -> SimState {
        assert!(
            self.forces.is_empty(),
            "cannot snapshot while forces are active"
        );
        self.settle();
        SimState {
            values: self.values.clone(),
            mems: self.mems.clone(),
            cycle: self.cycle,
        }
    }

    /// Restores a snapshot taken with [`Simulator::save_state`]
    /// (the `$initialize_state` system task).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot shape does not match this design.
    pub fn load_state(&mut self, state: &SimState) {
        assert_eq!(
            state.values.len(),
            self.values.len(),
            "snapshot is from a different design"
        );
        assert_eq!(state.mems.len(), self.mems.len());
        for &n in self.forces.keys() {
            self.forced[n as usize] = false;
        }
        self.forces.clear();
        let mp = self.maintain_packed;
        let mc = self.maintain_cplanes;
        if mp || mc {
            // diff against the incoming snapshot and patch only the cache
            // bits of nets that actually differ: exploration restores
            // closely-related states, so this is far cheaper than a full
            // rebuild per fork. Compiled mode maintains both the batch
            // operand planes (its fallback tapes) and the compiled planes
            // (plus the inexact-output census).
            for (net, (cur, new)) in self.values.iter_mut().zip(&state.values).enumerate() {
                if *cur != *new {
                    let old = *cur;
                    *cur = *new;
                    let v = *cur;
                    // inlined `update_packed`/`update_cplane` are blocked by
                    // the borrow of `self.values`; patch through disjoint
                    // fields instead
                    let (vb, ub) = plane::encode(v);
                    let sym = matches!(v, Value::Sym(_)) || v == Value::Z;
                    if mp {
                        let s = self.subs_start[net] as usize;
                        let e = self.subs_start[net + 1] as usize;
                        for k in s..e {
                            let r = self.subs_list[k];
                            let m = 1u64 << (r & 63);
                            let p = &mut self.packed[(r >> 6) as usize];
                            p.val = p.val & !m | if vb { m } else { 0 };
                            p.unk = p.unk & !m | if ub { m } else { 0 };
                            p.sym = p.sym & !m | if sym { m } else { 0 };
                        }
                    }
                    if mc {
                        let p = self.cpos[net] as usize;
                        let w = p >> 6;
                        let m = 1u64 << (p & 63);
                        self.cplanes_val[w] = self.cplanes_val[w] & !m | if vb { m } else { 0 };
                        self.cplanes_unk[w] = self.cplanes_unk[w] & !m | if ub { m } else { 0 };
                        if self.gate_driven[net] {
                            let was = matches!(old, Value::Sym(_)) || old == Value::Z;
                            match (was, sym) {
                                (false, true) => self.inexact_gate_outs += 1,
                                (true, false) => self.inexact_gate_outs -= 1,
                                _ => {}
                            }
                        }
                    }
                }
            }
        } else {
            self.values.clone_from(&state.values);
        }
        self.mems.clone_from(&state.mems);
        self.cycle = state.cycle;
        self.mem_all_merge.iter_mut().for_each(|m| *m = None);
        self.mem_epochs.iter_mut().for_each(|e| *e += 1);
        // snapshots are quiescent; nothing to settle
        for bucket in &mut self.dirty {
            bucket.clear();
        }
        self.in_queue.iter_mut().for_each(|b| *b = false);
        self.sched_pending = false;
        if mc {
            // the planes now exactly encode a *settled* snapshot (saved
            // post-settle, force-free): every kernel chunk would recompute
            // the value its output word already holds, so the rewind diff
            // — however wide — leaves nothing for the kernel to do. Clear
            // rather than mark, and let the post-restore stimuli (clock
            // edge, forces, injected values) re-seed the gating.
            self.cplanes_dirty.fill(0);
        }
    }

    // ---- event loop ----

    fn schedule_all(&mut self) {
        for i in 0..self.nodes.len() {
            self.schedule_node(i as u32);
        }
    }

    fn schedule_node(&mut self, idx: u32) {
        if !self.in_queue[idx as usize] {
            self.in_queue[idx as usize] = true;
            self.sched_pending = true;
            self.dirty[self.level[idx as usize] as usize].push(idx);
            // a scheduled gate makes its batch stale, whatever the cause
            // (operand change, force release, explicit re-schedule)
            let b = self.node_batch[idx as usize];
            if b != u32::MAX {
                self.batch_dirty[b as usize] |= DIRTY_SCHED;
            }
        }
    }

    fn schedule_fanout(&mut self, net: NetId) {
        let s = self.fanout_start[net.0 as usize] as usize;
        let e = self.fanout_start[net.0 as usize + 1] as usize;
        for k in s..e {
            self.schedule_node(self.fanout_list[k]);
        }
    }

    fn schedule_mem_readers(&mut self, mem_index: usize) {
        let readers = std::mem::take(&mut self.mem_readers[mem_index]);
        for &node in &readers {
            self.schedule_node(node);
        }
        self.mem_readers[mem_index] = readers;
    }

    fn mark_toggled(&mut self, net: NetId) {
        if let Some(p) = &mut self.profile {
            p.mark(net);
        }
        if let Some(a) = &mut self.activity {
            a.record(net);
        }
        if let Some(f) = &mut self.attr {
            let i = net.0 as usize;
            if f.first[i] == u64::MAX {
                f.first[i] = self.cycle;
                f.touched.push(net.0);
            }
        }
    }

    /// Attaches a switching-activity observer with one weight per net
    /// (see [`ActivityStats`]); used for peak-power/energy analysis.
    ///
    /// # Panics
    ///
    /// Panics if the weight count differs from the net count.
    pub fn attach_activity_observer(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.values.len(), "one weight per net");
        self.activity = Some(ActivityStats::new(weights));
    }

    /// Removes and returns the activity observer.
    pub fn take_activity(&mut self) -> Option<ActivityStats> {
        self.activity.take()
    }

    fn set_value(&mut self, net: NetId, value: Value, from_eval: bool) {
        // the bitmap keeps the (overwhelmingly common) unforced case free
        // of a hash lookup
        let value = if from_eval && self.forced[net.0 as usize] {
            self.forced_writes += 1;
            self.forces[&net.0]
        } else {
            value
        };
        let old = self.values[net.0 as usize];
        if old != value {
            self.values[net.0 as usize] = value;
            if self.maintain_packed {
                self.update_packed::<false>(net.0, value);
            }
            if self.maintain_cplanes {
                self.update_cplane(net.0, value);
                self.track_inexact(net.0, old, value);
            }
            self.mark_toggled(net);
            self.schedule_fanout(net);
        }
    }

    /// Patches the one bit of every batch operand plane mirroring `net`.
    /// This is the event-style maintenance of the packed caches: paid once
    /// per value *change* (alongside fanout scheduling, and proportional to
    /// the same fanout count), so [`Simulator::run_batch`] never gathers.
    ///
    /// With `MARK`, every subscribing batch is also flagged [`DIRTY_LEAN`]:
    /// the batched write-back uses this in place of per-node fanout
    /// scheduling, so a dense wave cascades level-to-level through batch
    /// dirty bits alone.
    #[inline]
    fn update_packed<const MARK: bool>(&mut self, net: u32, v: Value) {
        let (vb, ub) = plane::encode(v);
        // lanes the planes cannot represent exactly: tagged symbols (whose
        // identity scalar evaluation must preserve) and high-impedance Z
        // (which folds to unknown, hiding e.g. a Z -> X output transition)
        let sym = matches!(v, Value::Sym(_)) || v == Value::Z;
        let s = self.subs_start[net as usize] as usize;
        let e = self.subs_start[net as usize + 1] as usize;
        for k in s..e {
            let r = self.subs_list[k];
            // `r >> 6` is the flat operand index `batch * 4 + op`
            let m = 1u64 << (r & 63);
            let p = &mut self.packed[(r >> 6) as usize];
            p.val = p.val & !m | if vb { m } else { 0 };
            p.unk = p.unk & !m | if ub { m } else { 0 };
            p.sym = p.sym & !m | if sym { m } else { 0 };
            if MARK {
                self.batch_dirty[(r >> 8) as usize] |= DIRTY_LEAN;
            }
        }
    }

    /// Patches the compiled-plane bit of `net` (compiled mode only).
    /// Z and tagged symbols fold to the unknown encoding, exactly like
    /// `plane::encode`; [`Simulator::track_inexact`] keeps the fallback
    /// predicate aware of the folding.
    #[inline]
    fn update_cplane(&mut self, net: u32, v: Value) {
        let (vb, ub) = plane::encode(v);
        let p = self.cpos[net as usize];
        let w = (p >> 6) as usize;
        let m = 1u64 << (p & 63);
        self.cplanes_val[w] = self.cplanes_val[w] & !m | if vb { m } else { 0 };
        self.cplanes_unk[w] = self.cplanes_unk[w] & !m | if ub { m } else { 0 };
        self.cplanes_dirty[w >> 6] |= 1u64 << (w & 63);
    }

    /// Maintains [`Simulator::inexact_gate_outs`] across a value change on
    /// `net` (compiled mode only): gate outputs holding Z or a symbol make
    /// the planes lossy, which the compiled settle must know about.
    #[inline]
    fn track_inexact(&mut self, net: u32, old: Value, new: Value) {
        if !self.gate_driven[net as usize] {
            return;
        }
        let was = matches!(old, Value::Sym(_)) || old == Value::Z;
        let is = matches!(new, Value::Sym(_)) || new == Value::Z;
        match (was, is) {
            (false, true) => self.inexact_gate_outs += 1,
            (true, false) => self.inexact_gate_outs -= 1,
            _ => {}
        }
    }

    /// Rebuilds the compiled planes and the inexact-output census from the
    /// scalar store (construction and full-state loads).
    fn rebuild_cplanes(&mut self) {
        if !self.maintain_cplanes {
            return;
        }
        self.cplanes_val.fill(0);
        self.cplanes_unk.fill(0);
        // nothing carries over: the next kernel settle must run everything
        self.cplanes_dirty.fill(!0);
        self.inexact_gate_outs = 0;
        for net in 0..self.values.len() {
            let v = self.values[net];
            if v != Value::X {
                self.update_cplane(net as u32, v);
            }
            if (matches!(v, Value::Sym(_)) || v == Value::Z) && self.gate_driven[net] {
                self.inexact_gate_outs += 1;
            }
        }
        // all-X nets still need their unk bits
        for net in 0..self.values.len() {
            if self.values[net] == Value::X {
                let p = self.cpos[net];
                self.cplanes_unk[(p >> 6) as usize] |= 1u64 << (p & 63);
            }
        }
    }

    /// Rebuilds every batch operand cache from the scalar store
    /// (construction).
    fn rebuild_packed(&mut self) {
        if !self.maintain_packed {
            return;
        }
        for net in 0..self.values.len() {
            if self.subs_start[net] != self.subs_start[net + 1] {
                let v = self.values[net];
                self.update_packed::<false>(net as u32, v);
            }
        }
    }

    /// `(batched_level_evals, event_evals)`: level tapes run batched, and
    /// scalar node evaluations (event-driven gates, memory reads, and
    /// symbolic-lane fallbacks) since construction.
    pub fn eval_stats(&self) -> (u64, u64) {
        (self.batched_level_evals, self.event_evals)
    }

    /// Full evaluation statistics since construction (a superset of
    /// [`Simulator::eval_stats`]).
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            batched_level_evals: self.batched_level_evals,
            event_evals: self.event_evals,
            forced_writes: self.forced_writes,
            dirty_pct_hist: self.dirty_pct_hist,
            settle_ns: self.settle_ns,
            batch_eval_ns: self.batch_eval_ns,
            event_eval_ns: self.event_eval_ns,
            compiled_evals: self.compiled_evals,
        }
    }

    /// Propagates all pending events to quiescence (the Active region).
    /// Returns the number of node evaluations performed.
    ///
    /// Dispatch is hybrid (see [`EvalMode`]): a level whose dirty fraction
    /// reaches the activity threshold runs its compiled bit-packed tape —
    /// re-evaluating a clean gate is idempotent, and change detection keeps
    /// traces/observers identical to the event-driven path — otherwise the
    /// level drains event-by-event. Forced nets keep their overrides in
    /// both paths (the batched write-back consults the force map).
    pub fn settle(&mut self) -> usize {
        if !self.config.profile_phases {
            return self.settle_inner();
        }
        let t0 = std::time::Instant::now();
        let evals = self.settle_inner();
        self.settle_ns += t0.elapsed().as_nanos() as u64;
        evals
    }

    fn settle_inner(&mut self) -> usize {
        if self.config.eval_mode == EvalMode::Compiled {
            if !self.sched_pending {
                return 0;
            }
            // the kernel can only run when the planes are an exact model:
            // no forces, no gate outputs holding Z or a tagged symbol, and
            // the anonymous policy (gate inputs then fold Z/Sym to X just
            // like the planes do); otherwise this settle falls back to the
            // hybrid interpreter below, whose scalar and batched writebacks
            // both keep the compiled planes in sync
            if self.compiled.is_some()
                && self.forces.is_empty()
                && self.config.policy == PropagationPolicy::Anonymous
                && self.inexact_gate_outs == 0
            {
                return self.settle_compiled();
            }
        }
        let mut evals = 0;
        let profile = self.config.profile_phases;
        let batch_ok = self.config.eval_mode != EvalMode::Event;
        for lvl in 0..=self.max_level as usize {
            // nodes only schedule strictly higher levels, so one ascending
            // pass reaches quiescence; same-level insertions are drained here
            let tape = self.tapes[lvl];
            let (first, last) = (
                tape.first_batch as usize,
                (tape.first_batch + tape.batch_count) as usize,
            );
            let mut stale = 0u8;
            if batch_ok {
                for &d in &self.batch_dirty[first..last] {
                    stale |= d;
                }
            }
            // DIRTY_LEAN forces the tape: upstream changes propagated via
            // batch bits alone, so the bucket under-counts this level
            let use_batch = batch_ok
                && tape.batch_count > 0
                && (self.config.eval_mode == EvalMode::Batch
                    || stale & DIRTY_LEAN != 0
                    || self.dirty[lvl].len() * 100
                        >= tape.node_count * usize::from(self.config.batch_threshold_pct));
            if stale != 0 || !self.dirty[lvl].is_empty() {
                // dirty-fraction distribution of dispatched levels: a plain
                // array increment, so always-on costs nothing measurable
                let pct = self.dirty[lvl].len() * 100 / tape.node_count.max(1);
                self.dirty_pct_hist[(pct / 10).min(DIRTY_PCT_BUCKETS - 1)] += 1;
            }
            if use_batch {
                if stale != 0 || !self.dirty[lvl].is_empty() {
                    if profile {
                        let t = std::time::Instant::now();
                        evals += self.run_level_batch(lvl);
                        self.batch_eval_ns += t.elapsed().as_nanos() as u64;
                    } else {
                        evals += self.run_level_batch(lvl);
                    }
                }
            } else {
                if !self.dirty[lvl].is_empty() {
                    let t = profile.then(std::time::Instant::now);
                    while let Some(idx) = self.dirty[lvl].pop() {
                        self.in_queue[idx as usize] = false;
                        self.eval_node(idx);
                        evals += 1;
                    }
                    if let Some(t) = t {
                        self.event_eval_ns += t.elapsed().as_nanos() as u64;
                    }
                }
                if stale != 0 {
                    // every stale batch here was scheduled (DIRTY_SCHED
                    // only — lean bits force the tape), and the drain above
                    // just evaluated those nodes scalar
                    self.batch_dirty[first..last].fill(0);
                }
            }
        }
        self.sched_pending = false;
        if self.maintain_cplanes {
            // this interpreted settle just reached quiescence, and the
            // planes mirror the scalar store on every write: the planes now
            // encode a *settled* state (under the currently-held forces, if
            // any), so every dirty mark accumulated so far names a change
            // whose downstream consequences are already in the planes — a
            // kernel settle would recompute identical words. Drop the marks;
            // [`Simulator::release_all`] re-evaluates released drivers
            // itself, which re-seeds the gating with the real divergence.
            self.cplanes_dirty.fill(0);
        }
        evals
    }

    /// Settles the whole combinational DAG with the attached native
    /// kernel: snapshot the planes, run the straight-line settle (resolving
    /// memory-read segments through [`Simulator::resolve_segment`]), then
    /// diff the planes against the snapshot and sync only the nets that
    /// changed back into the scalar store — with the same trace and
    /// observer bookkeeping as per-node evaluation.
    fn settle_compiled(&mut self) -> usize {
        let kernel = self.compiled.clone().expect("eligibility checked");
        self.cplanes_prev_val.clone_from(&self.cplanes_val);
        self.cplanes_prev_unk.clone_from(&self.cplanes_unk);
        let mut pv = std::mem::take(&mut self.cplanes_val);
        let mut pu = std::mem::take(&mut self.cplanes_unk);
        // seed the activity gating with everything that changed since the
        // last kernel settle; the kernel and the segment callbacks add the
        // words they change during the pass
        let mut dw = std::mem::take(&mut self.cplanes_dirty);
        let mut evals = 0usize;
        let t = self.config.profile_phases.then(std::time::Instant::now);
        {
            let kref = &kernel;
            kernel.run(&mut pv, &mut pu, &mut dw, &mut |seg, pv, pu, dw| {
                evals += self.resolve_segment(kref, seg as usize, pv, pu, dw);
            });
        }
        if let Some(t) = t {
            self.batch_eval_ns += t.elapsed().as_nanos() as u64;
        }
        self.cplanes_val = pv;
        self.cplanes_unk = pu;
        // the pass consumed every mark (skipped chunks saw clean inputs,
        // running chunks recomputed from settled planes): start clean
        dw.fill(0);
        self.cplanes_dirty = dw;

        // memory-read data nets were synced exactly by the segment
        // callbacks (they can legitimately hold Z or tagged symbols the
        // planes cannot represent); everything else that changed is a
        // gate output, whose plane encoding is exact here
        let trace = self.config.trace_events;
        for w in 0..self.cplanes_val.len() {
            let mut m = ((self.cplanes_val[w] ^ self.cplanes_prev_val[w])
                | (self.cplanes_unk[w] ^ self.cplanes_prev_unk[w]))
                & !self.memdata_mask[w];
            while m != 0 {
                let b = m.trailing_zeros();
                m &= m - 1;
                // plane bit -> net id through the kernel's layout
                let net = self.cnet[w * 64 + b as usize];
                let v = if self.cplanes_unk[w] >> b & 1 != 0 {
                    Value::X
                } else if self.cplanes_val[w] >> b & 1 != 0 {
                    Value::ONE
                } else {
                    Value::ZERO
                };
                if self.values[net as usize] != v {
                    if trace {
                        if let Some(node) = self.driver_node[net as usize] {
                            self.event_trace.push((self.cycle, node));
                        }
                    }
                    self.values[net as usize] = v;
                    // keep the batch operand planes exact so a later
                    // ineligible settle can dispatch its tapes (the lean
                    // dirty marks this sets are cleared below — the kernel
                    // already settled every downstream gate)
                    self.update_packed::<true>(net, v);
                    self.mark_toggled(NetId(net));
                    evals += 1;
                }
            }
        }

        // the kernel settled everything: drain the queue without evaluating
        for lvl in 0..self.dirty.len() {
            while let Some(idx) = self.dirty[lvl].pop() {
                self.in_queue[idx as usize] = false;
            }
        }
        self.batch_dirty.fill(0);
        self.sched_pending = false;
        self.compiled_evals += 1;
        evals
    }

    /// Resolves one memory-read level for the running kernel: decode each
    /// port's address from the planes (lower-level gate outputs are settled
    /// there, not yet in the scalar store), resolve it exactly — including
    /// the conservative unknown-address merge — and write the data back to
    /// both the scalar store and the planes the higher levels consume.
    fn resolve_segment(
        &mut self,
        kernel: &CompiledKernel,
        seg: usize,
        pv: &mut [u64],
        pu: &mut [u64],
        dw: &mut [u64],
    ) -> usize {
        let nl: &'n Netlist = self.netlist;
        let refs = &kernel.segments()[seg];
        // segment-level early-out: when no address net's plane word is dirty
        // and every backing memory's epoch matches the memo, each port below
        // would decode the same address against the same contents and hit its
        // per-port cache — so skip the whole segment, address decode and all
        let eps: u64 = self.compiled_seg_mems[seg]
            .iter()
            .map(|&m| self.mem_epochs[m as usize])
            .sum();
        let addr_dirty = self.compiled_seg_addr_mask[seg]
            .iter()
            .zip(dw.iter())
            .any(|(m, d)| m & d != 0);
        if !addr_dirty && self.compiled_seg_epoch[seg] == Some(eps) {
            return 0;
        }
        let mut resolved = 0;
        for (k, r) in refs.iter().enumerate() {
            let rp = &nl.memories()[r.mem as usize].read_ports[r.port as usize];
            let addr: Word = rp
                .addr
                .iter()
                .map(|&n| {
                    let p = self.cpos[n.0 as usize];
                    let w = (p >> 6) as usize;
                    let m = 1u64 << (p & 63);
                    if pu[w] & m != 0 {
                        Value::X
                    } else if pv[w] & m != 0 {
                        Value::ONE
                    } else {
                        Value::ZERO
                    }
                })
                .collect();
            // same address against unchanged memory contents resolves to the
            // same word the planes and scalar store already hold — skip the
            // resolve, exactly as event dispatch (no event) would have
            let epoch = self.mem_epochs[r.mem as usize];
            if let Some((ca, ce)) = &self.compiled_port_cache[seg][k] {
                if *ce == epoch && *ca == addr {
                    continue;
                }
            }
            let word = self.mem_read_resolve(r.mem as usize, &addr);
            let mut changed = false;
            for (i, &n) in rp.data.iter().enumerate() {
                let v = word.bit(i);
                let (vb, ub) = plane::encode(v);
                let p = self.cpos[n.0 as usize];
                let w = (p >> 6) as usize;
                let m = 1u64 << (p & 63);
                let (ov, ou) = (pv[w], pu[w]);
                pv[w] = pv[w] & !m | if vb { m } else { 0 };
                pu[w] = pu[w] & !m | if ub { m } else { 0 };
                if (pv[w] ^ ov) | (pu[w] ^ ou) != 0 {
                    // higher levels must see the data-net activity
                    dw[w >> 6] |= 1u64 << (w & 63);
                }
                if self.values[n.0 as usize] != v {
                    changed = true;
                    self.values[n.0 as usize] = v;
                    self.update_packed::<true>(n.0, v);
                    self.mark_toggled(n);
                }
            }
            self.compiled_port_cache[seg][k] = Some((addr, epoch));
            if changed && self.config.trace_events {
                self.event_trace
                    .push((self.cycle, self.compiled_segment_nodes[seg][k]));
            }
            self.event_evals += 1;
            resolved += 1;
        }
        self.compiled_seg_epoch[seg] = Some(eps);
        resolved
    }

    /// Runs one level's compiled tape: drain the dirty bucket (scalar-eval
    /// any non-gate nodes in it), then evaluate every gate batch of the
    /// level with word-ops. Returns the number of nodes evaluated.
    fn run_level_batch(&mut self, lvl: usize) -> usize {
        let mut evals = 0;
        // drain pending events for this level: gates are covered by the
        // tape; memory-read nodes are not plane-packable and stay scalar
        let mut bucket = std::mem::take(&mut self.dirty[lvl]);
        for &idx in &bucket {
            self.in_queue[idx as usize] = false;
            if matches!(self.nodes[idx as usize], CombNode::MemRead { .. }) {
                self.eval_node(idx);
                evals += 1;
            }
        }
        bucket.clear();
        self.dirty[lvl] = bucket;

        let tape = self.tapes[lvl];
        for bi in tape.first_batch..tape.first_batch + tape.batch_count {
            // only batches with a changed operand since their last run can
            // produce new outputs; the rest skip without touching planes
            if self.batch_dirty[bi as usize] != 0 {
                self.batch_dirty[bi as usize] = 0;
                evals += self.run_batch(bi as usize);
            }
        }
        self.batched_level_evals += 1;
        evals
    }

    /// Evaluates up to 64 gates with one word-op per kind present over the
    /// batch's pre-packed operand planes, then writes back only the lanes whose
    /// output actually changed — found in bulk by diffing the new planes
    /// against the cached output planes, so unchanged lanes cost nothing.
    /// Lanes carrying tagged symbols fall back to scalar evaluation to
    /// preserve symbol identity under [`PropagationPolicy::Tagged`].
    fn run_batch(&mut self, bi: usize) -> usize {
        use symsim_netlist::CellKind as K;
        let n = self.batches[bi].out.len();
        let used = if n == 64 { !0u64 } else { (1u64 << n) - 1 };
        let [p0, p1, p2, po]: [PackedOp; 4] = self.packed[bi * 4..bi * 4 + 4]
            .try_into()
            .expect("4 operand planes per batch");
        let symmask = (p0.sym | p1.sym | p2.sym) & used;
        // lanes are kind-sorted, so this is one word-op evaluation per
        // kind present (usually 1-3), merged by disjoint lane masks
        let mut y = Lanes { val: 0, unk: 0 };
        for &(kind, mask) in &self.batches[bi].kinds {
            let yk = match kind {
                K::Const0 => Lanes::ZEROS,
                K::Const1 => Lanes::ONES,
                K::Buf => plane::buf(p0.lanes()),
                K::Not => plane::not(p0.lanes()),
                K::And2 => plane::and2(p0.lanes(), p1.lanes()),
                K::Or2 => plane::or2(p0.lanes(), p1.lanes()),
                K::Nand2 => plane::nand2(p0.lanes(), p1.lanes()),
                K::Nor2 => plane::nor2(p0.lanes(), p1.lanes()),
                K::Xor2 => plane::xor2(p0.lanes(), p1.lanes()),
                K::Xnor2 => plane::xnor2(p0.lanes(), p1.lanes()),
                K::Mux2 => plane::mux2(p0.lanes(), p1.lanes(), p2.lanes()),
            };
            y.val |= yk.val & mask;
            y.unk |= yk.unk & mask;
        }
        // a lane must be revisited when its planes differ from the cached
        // output planes, or when its stored output is inexact (the planes
        // fold symbols/Z to unknown, hiding e.g. Sym -> X transitions)
        let diff = ((y.val ^ po.val) | (y.unk ^ po.unk) | po.sym) & used & !symmask;
        if symmask | diff == 0 {
            return n;
        }
        let trace = self.config.trace_events;

        let mut m = symmask;
        while m != 0 {
            let i = m.trailing_zeros();
            m &= m - 1;
            // a tagged symbol feeds this lane: scalar evaluation keeps
            // its identity (e.g. s XOR s = 0 under the Tagged policy)
            let node = self.batches[bi].node[i as usize];
            self.eval_node(node);
        }
        let mut m = diff;
        while m != 0 {
            let i = m.trailing_zeros();
            m &= m - 1;
            let net = self.batches[bi].out[i as usize];
            let mut v = y.get(i);
            if self.forced[net as usize] {
                // a forced output keeps its override, exactly like the
                // scalar path's `set_value(.., from_eval = true)`
                v = self.forces[&net];
            }
            let old = self.values[net as usize];
            if old != v {
                if trace {
                    let node = self.batches[bi].node[i as usize];
                    self.event_trace.push((self.cycle, node));
                }
                self.values[net as usize] = v;
                // lean write-back: subscribing batches are flagged by
                // `update_packed`, so gate fanout needs no per-node
                // scheduling — only memory-read readers stay event-driven
                self.update_packed::<true>(net, v);
                if self.maintain_cplanes {
                    self.update_cplane(net, v);
                    self.track_inexact(net, old, v);
                }
                self.mark_toggled(NetId(net));
                let ms = self.memread_fanout_start[net as usize] as usize;
                let me = self.memread_fanout_start[net as usize + 1] as usize;
                for k in ms..me {
                    self.schedule_node(self.memread_fanout_list[k]);
                }
            }
        }
        n
    }

    fn eval_node(&mut self, idx: u32) {
        self.event_evals += 1;
        let policy = self.config.policy;
        match self.nodes[idx as usize] {
            CombNode::Gate(g) => {
                let gate = self.netlist.gate(g);
                let v = |i: usize| self.values[gate.inputs[i].0 as usize];
                use symsim_netlist::CellKind as K;
                let out = match gate.kind {
                    K::Const0 => Value::ZERO,
                    K::Const1 => Value::ONE,
                    K::Buf => ops::buf(v(0), policy),
                    K::Not => ops::not(v(0), policy),
                    K::And2 => ops::and(v(0), v(1), policy),
                    K::Or2 => ops::or(v(0), v(1), policy),
                    K::Nand2 => ops::nand(v(0), v(1), policy),
                    K::Nor2 => ops::nor(v(0), v(1), policy),
                    K::Xor2 => ops::xor(v(0), v(1), policy),
                    K::Xnor2 => ops::xnor(v(0), v(1), policy),
                    K::Mux2 => ops::mux(v(0), v(1), v(2), policy),
                };
                let out_net = gate.output;
                if self.config.trace_events && self.values[out_net.0 as usize] != out {
                    self.event_trace.push((self.cycle, idx));
                }
                self.set_value(out_net, out, true);
            }
            CombNode::MemRead { mem, port } => {
                // borrow the port description from the 'n netlist reference,
                // not through &self, so no clone is needed while mutating
                let nl: &'n Netlist = self.netlist;
                let rp = &nl.memories()[mem.0 as usize].read_ports[port];
                let addr = self.read_bus(&rp.addr);
                let word = self.mem_read_resolve(mem.0 as usize, &addr);
                if self.config.trace_events {
                    let changed = rp
                        .data
                        .iter()
                        .enumerate()
                        .any(|(i, &n)| self.values[n.0 as usize] != word.bit(i));
                    if changed {
                        self.event_trace.push((self.cycle, idx));
                    }
                }
                for (i, &n) in rp.data.iter().enumerate() {
                    self.set_value(n, word.bit(i), true);
                }
            }
        }
    }

    /// Resolves a memory read at a possibly-unknown address: the
    /// conservative merge of every word the address could select.
    ///
    /// The fully-unknown-address case (`AddrSet::All`) is served from a
    /// per-memory cache of the all-words merge, maintained incrementally by
    /// [`Simulator::commit_mem_write`] — without it, every event on such a
    /// read port rescans the whole array (O(depth) per event).
    fn mem_read_resolve(&mut self, mem_index: usize, addr: &Word) -> Word {
        let mem = &self.mems[mem_index];
        match enumerate_addresses(addr, mem.depth(), self.config.max_addr_enum_bits) {
            AddrSet::None => Word::xs(mem.width()),
            AddrSet::Some(addrs) => {
                let mut it = addrs.into_iter();
                let first = it.next();
                match first {
                    None => Word::xs(mem.width()),
                    Some(a0) => {
                        let mut acc = mem.word(a0);
                        for a in it {
                            acc = acc.merge(&mem.word(a));
                        }
                        acc
                    }
                }
            }
            AddrSet::All => self.mem_all_merge(mem_index),
        }
    }

    /// The conservative merge of every word of memory `mem_index`, cached.
    fn mem_all_merge(&mut self, mem_index: usize) -> Word {
        if let Some(w) = &self.mem_all_merge[mem_index] {
            return w.clone();
        }
        let mem = &self.mems[mem_index];
        let mut acc = mem.word(0);
        for a in 1..mem.depth() {
            acc = acc.merge(&mem.word(a));
        }
        self.mem_all_merge[mem_index] = Some(acc.clone());
        acc
    }

    fn commit_mem_write(&mut self, mem_index: usize, addr: &Word, data: &Word, we: Value) {
        if we == Value::ZERO {
            return;
        }
        self.mem_epochs[mem_index] += 1;
        let certain = we == Value::ONE;
        let depth = self.mems[mem_index].depth();
        match enumerate_addresses(addr, depth, self.config.max_addr_enum_bits) {
            AddrSet::None => {}
            AddrSet::Some(addrs) => {
                // an overwrite is only exact when the address is fully
                // known: with unknown bits, even a single in-range match
                // may correspond to an out-of-range (dropped) write, so
                // the old value must survive the merge
                let exact = certain && !addr.has_unknown();
                for a in addrs {
                    if exact {
                        self.mems[mem_index].set_word(a, data);
                    } else {
                        // the write may or may not land on this word
                        self.mems[mem_index].merge_word(a, data);
                    }
                }
                if exact {
                    // the overwrite can remove information: recompute lazily
                    self.mem_all_merge[mem_index] = None;
                } else if let Some(w) = self.mem_all_merge[mem_index].take() {
                    // merging `data` into any word only widens the all-words
                    // merge by exactly `merge(data)`: join is incremental
                    self.mem_all_merge[mem_index] = Some(w.merge(data));
                }
            }
            AddrSet::All => {
                for a in 0..depth {
                    self.mems[mem_index].merge_word(a, data);
                }
                if let Some(w) = self.mem_all_merge[mem_index].take() {
                    self.mem_all_merge[mem_index] = Some(w.merge(data));
                }
            }
        }
        self.schedule_mem_readers(mem_index);
    }

    /// Advances one clock cycle, executing the event regions in order:
    /// NBA commits (flip-flops, memory writes), Active propagation,
    /// Monitor observation, then the Symbolic region checks.
    ///
    /// Returns `Some(reason)` if the Symbolic region halted the simulation.
    pub fn step_cycle(&mut self) -> Option<HaltReason> {
        for region in REGION_ORDER {
            if self.trace_regions {
                self.region_trace.push((self.cycle, region));
            }
            match region {
                Region::Nba => {
                    // complete any pending Active-region propagation from
                    // pokes/loads so the clock edge samples settled values
                    self.settle();
                    // sample every flip-flop D and write port with pre-edge
                    // values into the scratch buffers (no allocation)
                    let mut dffs = std::mem::take(&mut self.dff_scratch);
                    dffs.clear();
                    dffs.extend(
                        self.dff_pairs
                            .iter()
                            .map(|&(_, d)| self.values[d.0 as usize]),
                    );
                    let mut wps = std::mem::take(&mut self.wp_scratch);
                    for (desc, sample) in self.write_ports.iter().zip(wps.iter_mut()) {
                        for (i, &n) in desc.addr.iter().enumerate() {
                            sample.addr.set_bit(i, self.values[n.0 as usize]);
                        }
                        for (i, &n) in desc.data.iter().enumerate() {
                            sample.data.set_bit(i, self.values[n.0 as usize]);
                        }
                        sample.we = self.values[desc.we.0 as usize].anonymize();
                    }
                    for (i, &v) in dffs.iter().enumerate() {
                        let q = self.dff_pairs[i].0;
                        self.set_value(q, v, false);
                    }
                    for (i, sample) in wps.iter().enumerate() {
                        let mem = self.write_ports[i].mem as usize;
                        self.commit_mem_write(mem, &sample.addr, &sample.data, sample.we);
                    }
                    self.dff_scratch = dffs;
                    self.wp_scratch = wps;
                }
                Region::Active => {
                    self.settle();
                }
                Region::Inactive => {
                    // no #0 events in the cycle-accurate model
                }
                Region::Monitor => {
                    // toggle profile updates happen inline on value changes
                }
                Region::Symbolic => {
                    if let Some(a) = &mut self.activity {
                        a.end_cycle(self.cycle);
                    }
                    self.cycle += 1;
                    if let Some(reason) = self.check_symbolic_region() {
                        return Some(reason);
                    }
                }
            }
        }
        None
    }

    fn check_symbolic_region(&self) -> Option<HaltReason> {
        if let Some(f) = self.finish_net {
            if self.values[f.0 as usize] == Value::ONE {
                return Some(HaltReason::Finished);
            }
        }
        for spec in &self.monitors {
            let mut xs = Vec::new();
            if let Some(q) = spec.qualifier {
                match self.values[q.0 as usize].anonymize() {
                    Value::Logic(symsim_logic::Logic::Zero) => continue,
                    Value::Logic(symsim_logic::Logic::One) => {}
                    _ => xs.push(q), // unknown qualifier is itself non-determinism
                }
            }
            for &s in &spec.signals {
                if self.values[s.0 as usize].is_unknown() {
                    xs.push(s);
                }
            }
            if !xs.is_empty() {
                return Some(HaltReason::MonitorX { signals: xs });
            }
        }
        None
    }

    /// Runs until a Symbolic-region halt, the finish net, or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> HaltReason {
        for _ in 0..max_cycles {
            if let Some(reason) = self.step_cycle() {
                return reason;
            }
        }
        HaltReason::MaxCycles
    }
}

/// Flattens a per-key adjacency list into CSR form: `list[start[k]..
/// start[k + 1]]` holds key `k`'s entries. The hot loops walk these once
/// per value change, where the nested-`Vec` form costs a pointer chase
/// per key.
fn flatten_csr<T: Copy>(nested: &[Vec<T>]) -> (Vec<u32>, Vec<T>) {
    let mut start = Vec::with_capacity(nested.len() + 1);
    let mut list = Vec::with_capacity(nested.iter().map(Vec::len).sum());
    start.push(0);
    for row in nested {
        list.extend_from_slice(row);
        start.push(list.len() as u32);
    }
    (start, list)
}

/// Compiles the levelized netlist into per-level instruction tapes: each
/// level's gates sorted by kind and chunked into [`GateBatch`]es of up to
/// 64 lanes, so [`Simulator::run_level_batch`] evaluates a level with a
/// handful of word-ops instead of per-gate dispatch. Alongside the batches
/// it builds the net -> operand-bit subscriber map that keeps the batch
/// operand planes current (see [`Simulator::update_packed`]).
fn compile_tapes(
    netlist: &Netlist,
    nodes: &[CombNode],
    level: &[u32],
    max_level: u32,
) -> (
    Vec<LevelTape>,
    Vec<GateBatch>,
    Vec<u32>,
    Vec<Vec<PackedSub>>,
) {
    let mut tapes = vec![LevelTape::default(); max_level as usize + 1];
    let mut batches: Vec<GateBatch> = Vec::new();
    let mut node_batch = vec![u32::MAX; nodes.len()];
    let mut subs: Vec<Vec<PackedSub>> = vec![Vec::new(); netlist.net_count()];
    let mut gates_per_level: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
    for (i, &node) in nodes.iter().enumerate() {
        let lvl = level[i] as usize;
        tapes[lvl].node_count += 1;
        if matches!(node, CombNode::Gate(_)) {
            gates_per_level[lvl].push(i as u32);
        }
    }
    let kind_of = |i: u32| {
        let CombNode::Gate(g) = nodes[i as usize] else {
            unreachable!("gates_per_level holds only gate nodes")
        };
        netlist.gate(g).kind
    };
    for (lvl, mut gate_nodes) in gates_per_level.into_iter().enumerate() {
        tapes[lvl].first_batch = batches.len() as u32;
        // kind-major, node-index-minor: full 64-lane batches that span few
        // distinct kinds (one masked evaluation per kind present), in a
        // stable order
        gate_nodes.sort_by_key(|&i| (kind_of(i), i));
        for chunk in gate_nodes.chunks(64) {
            let bi = batches.len() as u32;
            let mut batch = GateBatch {
                kinds: Vec::new(),
                node: Vec::with_capacity(chunk.len()),
                out: Vec::with_capacity(chunk.len()),
            };
            for (lane, &ni) in chunk.iter().enumerate() {
                let CombNode::Gate(g) = nodes[ni as usize] else {
                    unreachable!()
                };
                let gate = netlist.gate(g);
                batch.node.push(ni);
                batch.out.push(gate.output.0);
                node_batch[ni as usize] = bi;
                match batch.kinds.last_mut() {
                    Some((k, mask)) if *k == gate.kind => *mask |= 1 << lane,
                    _ => batch.kinds.push((gate.kind, 1 << lane)),
                }
                let lane = lane as u32;
                subs[gate.output.0 as usize].push(bi << 8 | SUB_OUT << 6 | lane);
                for (pin, p) in gate.inputs.iter().enumerate() {
                    subs[p.0 as usize].push(bi << 8 | (pin as u32) << 6 | lane);
                }
            }
            batches.push(batch);
        }
        tapes[lvl].batch_count = batches.len() as u32 - tapes[lvl].first_batch;
    }
    (tapes, batches, node_batch, subs)
}

enum AddrSet {
    /// No in-range address matches.
    None,
    /// These addresses match.
    Some(Vec<usize>),
    /// Too many unknown bits: treat as "could be anywhere".
    All,
}

/// Enumerates the in-range concrete addresses a possibly-unknown address
/// word can take.
fn enumerate_addresses(addr: &Word, depth: usize, max_enum_bits: u32) -> AddrSet {
    let unknown: Vec<usize> = (0..addr.width())
        .filter(|&i| addr.bit(i).is_unknown())
        .collect();
    if unknown.len() as u32 > max_enum_bits {
        return AddrSet::All;
    }
    let mut base = 0usize;
    for i in 0..addr.width() {
        if addr.bit(i).to_bool() == Some(true) && i < usize::BITS as usize {
            base |= 1 << i;
        }
    }
    let count = 1usize << unknown.len();
    let mut out = Vec::new();
    for combo in 0..count {
        let mut a = base;
        for (j, &bit) in unknown.iter().enumerate() {
            if combo >> j & 1 == 1 && bit < usize::BITS as usize {
                a |= 1 << bit;
            }
        }
        if a < depth {
            out.push(a);
        }
    }
    if out.is_empty() {
        AddrSet::None
    } else {
        AddrSet::Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_netlist::RtlBuilder;

    fn counter4() -> Netlist {
        let mut b = RtlBuilder::new("cnt4");
        let r = b.reg("cnt", 4, 0);
        let q = r.q.clone();
        let one = b.const_word(1, 4);
        let next = b.add(&q, &one);
        b.drive_reg(r, &next);
        b.output("count", &q);
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts() {
        let nl = counter4();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.settle();
        for expect in 0..20u64 {
            let w = sim.read_bus_by_name("count", 4).unwrap();
            assert_eq!(w.to_u64(), Some(expect % 16), "cycle {expect}");
            sim.step_cycle();
        }
        assert_eq!(sim.cycle(), 20);
    }

    #[test]
    fn save_restore_round_trip() {
        let nl = counter4();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.settle();
        for _ in 0..5 {
            sim.step_cycle();
        }
        let snap = sim.save_state();
        for _ in 0..3 {
            sim.step_cycle();
        }
        assert_eq!(sim.read_bus_by_name("count", 4).unwrap().to_u64(), Some(8));
        sim.load_state(&snap);
        assert_eq!(sim.read_bus_by_name("count", 4).unwrap().to_u64(), Some(5));
        sim.step_cycle();
        assert_eq!(sim.read_bus_by_name("count", 4).unwrap().to_u64(), Some(6));
        // serialized round trip too
        let bytes = snap.encode();
        let back = SimState::decode(&bytes).unwrap();
        sim.load_state(&back);
        assert_eq!(sim.cycle(), 5);
    }

    #[test]
    fn x_propagates_through_gates() {
        let mut b = RtlBuilder::new("xprop");
        let a = b.input("a", 1);
        let c = b.input("c", 1);
        let y = b.and1(a.bit(0), c.bit(0));
        let yo = symsim_netlist::Bus::from_nets(vec![y]);
        b.output("y", &yo);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.settle();
        assert!(sim.read_net_by_name("y").unwrap().is_x());
        sim.poke(nl.find_net("a").unwrap(), Value::ZERO);
        sim.settle();
        assert_eq!(sim.read_net_by_name("y").unwrap(), Value::ZERO);
    }

    #[test]
    fn monitor_x_halts_in_symbolic_region() {
        // register fed by an input; monitor the register output
        let mut b = RtlBuilder::new("mon");
        let a = b.input("a", 1);
        let one = b.one();
        let q = b.reg_en("q", &a, one, 0);
        b.output("qo", &q);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        let qnet = nl.find_net("qo").unwrap();
        sim.monitor_x(MonitorSpec {
            qualifier: None,
            signals: vec![qnet],
        });
        sim.poke(nl.find_net("a").unwrap(), Value::X);
        sim.settle();
        // after one edge the X reaches q and the symbolic region halts
        let reason = sim.run(10);
        assert_eq!(
            reason,
            HaltReason::MonitorX {
                signals: vec![qnet]
            }
        );
        assert_eq!(sim.cycle(), 1);
    }

    #[test]
    fn qualifier_gates_monitor() {
        let mut b = RtlBuilder::new("qual");
        let en = b.input("en", 1);
        let sig = b.input("sig", 1);
        b.output("eno", &en);
        b.output("sigo", &sig);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.monitor_x(MonitorSpec {
            qualifier: Some(nl.find_net("eno").unwrap()),
            signals: vec![nl.find_net("sigo").unwrap()],
        });
        sim.poke(nl.find_net("en").unwrap(), Value::ZERO);
        sim.poke(nl.find_net("sig").unwrap(), Value::X);
        sim.settle();
        assert_eq!(sim.run(3), HaltReason::MaxCycles);
        sim.poke(nl.find_net("en").unwrap(), Value::ONE);
        sim.settle();
        assert!(matches!(sim.run(3), HaltReason::MonitorX { .. }));
    }

    #[test]
    fn force_and_release() {
        let mut b = RtlBuilder::new("f");
        let a = b.input("a", 1);
        let y = b.not(&a);
        b.output("y", &y);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.poke(nl.find_net("a").unwrap(), Value::ZERO);
        sim.settle();
        assert_eq!(sim.read_net_by_name("y").unwrap(), Value::ONE);
        sim.force(nl.find_net("y").unwrap(), Value::ZERO);
        sim.settle();
        assert_eq!(sim.read_net_by_name("y").unwrap(), Value::ZERO);
        sim.release_all();
        assert_eq!(sim.read_net_by_name("y").unwrap(), Value::ONE);
    }

    #[test]
    fn memory_read_with_unknown_address_merges() {
        let mut b = RtlBuilder::new("mem");
        let addr = b.input("addr", 2);
        let m = b.memory("ram", 4, 8);
        let rdata = b.mem_read(m, &addr);
        b.output("rdata", &rdata);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.write_mem_word(0, 0, &Word::from_u64(0x0f, 8));
        sim.write_mem_word(0, 1, &Word::from_u64(0x0e, 8));
        sim.write_mem_word(0, 2, &Word::from_u64(0xff, 8));
        sim.write_mem_word(0, 3, &Word::from_u64(0xfe, 8));
        let a = nl.find_net("addr[0]").unwrap();
        let a1 = nl.find_net("addr[1]").unwrap();
        sim.poke(a, Value::X);
        sim.poke(a1, Value::ZERO);
        sim.settle();
        // addr is {0,1}: merge of 0x0f and 0x0e = 0x0[ex] -> bits 1..4 known
        let w = sim.read_bus_by_name("rdata", 8).unwrap();
        assert!(w.bit(0).is_x());
        assert_eq!(w.bit(1), Value::ONE);
        assert_eq!(w.bit(4), Value::ZERO);
        sim.poke(a1, Value::X);
        sim.settle();
        let w = sim.read_bus_by_name("rdata", 8).unwrap();
        assert!(w.bit(4).is_x()); // now high nibble disagrees across words
    }

    #[test]
    fn memory_write_with_unknown_enable_merges() {
        let mut b = RtlBuilder::new("memw");
        let addr = b.input("addr", 2);
        let data = b.input("data", 8);
        let we = b.input("we", 1);
        let m = b.memory("ram", 4, 8);
        let rdata = b.mem_read(m, &addr);
        b.mem_write(m, &addr, &data, we.bit(0));
        b.output("rdata", &rdata);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.write_mem_word(0, 1, &Word::from_u64(0x00, 8));
        let map = nl.net_name_map();
        sim.poke_bus(&[map["addr[0]"], map["addr[1]"]], &Word::from_u64(1, 2));
        sim.poke_bus(
            &(0..8)
                .map(|i| map[format!("data[{i}]").as_str()])
                .collect::<Vec<_>>(),
            &Word::from_u64(0xff, 8),
        );
        sim.poke(map["we"], Value::X);
        sim.settle();
        sim.step_cycle();
        // write may or may not have happened: whole word unknown
        assert!(sim.read_mem_word(0, 1).is_all_x() || sim.read_mem_word(0, 1).has_unknown());
        // with we=1 the write is certain
        sim.poke(map["we"], Value::ONE);
        sim.settle();
        sim.step_cycle();
        assert_eq!(sim.read_mem_word(0, 1).to_u64(), Some(0xff));
    }

    #[test]
    fn region_order_puts_symbolic_last() {
        let nl = counter4();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.trace_regions(true);
        sim.settle();
        sim.step_cycle();
        let trace = sim.take_region_trace();
        let regions: Vec<Region> = trace.into_iter().map(|(_, r)| r).collect();
        assert_eq!(regions.last(), Some(&Region::Symbolic));
        assert_eq!(regions.len(), 5);
    }

    #[test]
    fn finish_net_ends_run() {
        // finish when count == 3
        let mut b = RtlBuilder::new("fin");
        let r = b.reg("cnt", 4, 0);
        let q = r.q.clone();
        let one = b.const_word(1, 4);
        let next = b.add(&q, &one);
        b.drive_reg(r, &next);
        let three = b.const_word(3, 4);
        let done = b.eq(&q, &three);
        let done_bus = symsim_netlist::Bus::from_nets(vec![done]);
        b.output("done", &done_bus);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.set_finish_net(nl.find_net("done").unwrap());
        sim.settle();
        assert_eq!(sim.run(100), HaltReason::Finished);
        assert_eq!(sim.cycle(), 3); // counts 0,1,2,3 -> finish observed after edge to 3
    }
}
