//! # symsim-sim
//!
//! An event-driven, cycle-accurate, four-state gate-level simulator with the
//! *symbolic* extensions the DAC'22 paper adds to iverilog:
//!
//! * **Event regions** (paper Fig. 2): each simulated time step executes
//!   Active → Inactive → NBA → Monitor → **Symbolic** in order. The added
//!   Symbolic region monitors control-flow signals for `X`
//!   (`$monitor_x`), halts the simulation, and supports saving/restoring
//!   complete simulation state (`$initialize_state`).
//! * **State save/restore** ([`SimState`], [`Simulator::save_state`],
//!   [`Simulator::load_state`]): snapshots cover every net value, every
//!   memory word, and the cycle counter, and serialize to a compact binary
//!   form so path exploration can fork simulations (unlike `force`/`release`
//!   fault injection, no recompile or restart is needed).
//! * **Symbol propagation policies** (paper Fig. 4) via
//!   [`symsim_logic::PropagationPolicy`].
//! * **Toggle observation** ([`ToggleProfile`]): which nets ever changed or
//!   carried unknowns after reset — the raw material of the
//!   exercisable-gate dichotomy.
//! * **Memory X semantics**: reads/writes with unknown address bits merge
//!   conservatively over all matching words.
//! * A [`Testbench`] harness mirroring the paper's Listing 1.
//!
//! # Example
//!
//! ```
//! use symsim_netlist::RtlBuilder;
//! use symsim_logic::{Value, Word};
//! use symsim_sim::{SimConfig, Simulator};
//!
//! // q toggles every cycle
//! let mut b = RtlBuilder::new("t");
//! let r = b.reg("q", 1, 0);
//! let q = r.q.clone();
//! let d = b.not(&q);
//! b.drive_reg(r, &d);
//! b.output("out", &q);
//! let nl = b.finish().expect("valid");
//!
//! let mut sim = Simulator::new(&nl, SimConfig::default());
//! sim.settle();
//! assert_eq!(sim.read_net_by_name("out").and_then(Value::to_bool), Some(false));
//! sim.step_cycle();
//! assert_eq!(sim.read_net_by_name("out").and_then(Value::to_bool), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod engine;
pub mod fault;
mod observer;
mod state;
mod testbench;
mod vcd;

pub use activity::ActivityStats;
pub use engine::{
    CohortLaneEnd, EngineStats, EvalMode, HaltReason, MonitorSpec, PathCohort, Region, SimConfig,
    Simulator, DIRTY_PCT_BUCKETS,
};
pub use observer::ToggleProfile;
pub use state::{
    cow_clone_stats, reset_cow_clone_stats, DecodeStateError, MemArray, SimState, PAGE_WORDS,
};
pub use testbench::{Testbench, TestbenchError};
pub use vcd::VcdWriter;
