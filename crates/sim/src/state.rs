use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use symsim_logic::{Value, Word};

/// Words per copy-on-write page of a [`MemArray`].
///
/// Snapshots and forked simulators share pages by reference; the first write
/// into a shared page clones just that page. 64 words keeps a page at
/// `64 * width * size_of::<Value>()` bytes — 4 KiB for a 64-bit-word memory —
/// so fork cost is O(dirty pages), not O(memory).
pub const PAGE_WORDS: usize = 64;

static COW_PAGES_CLONED: AtomicU64 = AtomicU64::new(0);
static COW_BYTES_CLONED: AtomicU64 = AtomicU64::new(0);

/// `(pages, bytes)` cloned by copy-on-write page splits since process start
/// (or the last [`reset_cow_clone_stats`]). Process-wide instrumentation for
/// benchmarks asserting that fork cost scales with dirty pages.
pub fn cow_clone_stats() -> (u64, u64) {
    (
        COW_PAGES_CLONED.load(Ordering::Relaxed),
        COW_BYTES_CLONED.load(Ordering::Relaxed),
    )
}

/// Resets the counters reported by [`cow_clone_stats`].
pub fn reset_cow_clone_stats() {
    COW_PAGES_CLONED.store(0, Ordering::Relaxed);
    COW_BYTES_CLONED.store(0, Ordering::Relaxed);
}

/// A memory array's contents: `depth` words of `width` bits, stored in
/// copy-on-write pages of [`PAGE_WORDS`] words.
///
/// Cloning a `MemArray` (directly, or via [`SimState`] snapshots) is
/// O(pages) reference-count bumps; the underlying bits are shared until
/// written. All mutation goes through [`MemArray::set_word`] /
/// [`MemArray::merge_word`], which split only the touched page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemArray {
    width: usize,
    depth: usize,
    pages: Vec<Arc<Vec<Value>>>,
}

impl MemArray {
    /// An all-`X` array.
    pub fn xs(depth: usize, width: usize) -> MemArray {
        let mut pages = Vec::with_capacity(depth.div_ceil(PAGE_WORDS.max(1)));
        let mut remaining = depth;
        while remaining > 0 {
            let words = remaining.min(PAGE_WORDS);
            pages.push(Arc::new(vec![Value::X; words * width]));
            remaining -= words;
        }
        MemArray {
            width,
            depth,
            pages,
        }
    }

    /// Rebuilds an array from flat bit contents (LSB of word 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `width` (for non-zero
    /// widths).
    pub fn from_flat(width: usize, bits: &[Value]) -> MemArray {
        let depth = bits.len().checked_div(width).unwrap_or(0);
        assert_eq!(depth * width, bits.len(), "flat contents not word-aligned");
        let mut m = MemArray::xs(depth, width);
        for (p, chunk) in bits.chunks(PAGE_WORDS * width.max(1)).enumerate() {
            if width > 0 {
                m.pages[p] = Arc::new(chunk.to_vec());
            }
        }
        m
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of words.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of copy-on-write pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total size of the array contents in bytes (shared or not).
    pub fn content_bytes(&self) -> usize {
        self.depth * self.width * std::mem::size_of::<Value>()
    }

    /// Pages whose contents are currently shared with at least one other
    /// `MemArray` clone.
    pub fn shared_page_count(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| Arc::strong_count(p) > 1)
            .count()
    }

    #[inline]
    fn locate(&self, addr: usize) -> (usize, usize) {
        assert!(addr < self.depth, "memory address {addr} out of range");
        (addr / PAGE_WORDS, (addr % PAGE_WORDS) * self.width)
    }

    /// Mutable access to the page holding `addr`, splitting it first if it
    /// is shared (the copy-on-write step).
    #[inline]
    fn page_mut(&mut self, page: usize) -> &mut Vec<Value> {
        let arc = &mut self.pages[page];
        if Arc::strong_count(arc) > 1 {
            COW_PAGES_CLONED.fetch_add(1, Ordering::Relaxed);
            COW_BYTES_CLONED.fetch_add(
                (arc.len() * std::mem::size_of::<Value>()) as u64,
                Ordering::Relaxed,
            );
        }
        Arc::make_mut(arc)
    }

    /// Reads word `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= depth`.
    pub fn word(&self, addr: usize) -> Word {
        let (page, lo) = self.locate(addr);
        self.pages[page][lo..lo + self.width]
            .iter()
            .copied()
            .collect()
    }

    /// Reads bit `bit` of word `addr`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn word_bit(&self, addr: usize, bit: usize) -> Value {
        assert!(bit < self.width);
        let (page, lo) = self.locate(addr);
        self.pages[page][lo + bit]
    }

    /// Writes word `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= depth` or the word width differs.
    pub fn set_word(&mut self, addr: usize, w: &Word) {
        assert_eq!(w.width(), self.width, "memory word width mismatch");
        let (page, lo) = self.locate(addr);
        let bits = self.page_mut(page);
        for (i, &v) in w.iter().enumerate() {
            bits[lo + i] = v;
        }
    }

    /// Merges `w` into word `addr` (conservative join, used for writes with
    /// unknown address or enable).
    pub fn merge_word(&mut self, addr: usize, w: &Word) {
        assert_eq!(w.width(), self.width, "memory word width mismatch");
        let (page, lo) = self.locate(addr);
        // skip the page split when the merge would not change anything
        {
            let bits = &self.pages[page];
            if w.iter()
                .enumerate()
                .all(|(i, &v)| bits[lo + i].merge(v) == bits[lo + i])
            {
                return;
            }
        }
        let bits = self.page_mut(page);
        for (i, &v) in w.iter().enumerate() {
            bits[lo + i] = bits[lo + i].merge(v);
        }
    }

    /// Iterates all bits, LSB of word 0 first.
    pub fn iter_bits(&self) -> impl Iterator<Item = Value> + '_ {
        self.pages.iter().flat_map(|p| p.iter().copied())
    }

    /// Conservative join of two arrays of identical shape. Pages shared
    /// between the operands join to themselves and stay shared.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn merge(&self, other: &MemArray) -> MemArray {
        assert_eq!(self.width, other.width);
        assert_eq!(self.depth, other.depth);
        MemArray {
            width: self.width,
            depth: self.depth,
            pages: self
                .pages
                .iter()
                .zip(&other.pages)
                .map(|(a, b)| {
                    if Arc::ptr_eq(a, b) {
                        // merge is idempotent bitwise, so a shared page joins
                        // to itself and the result can keep sharing it
                        Arc::clone(a)
                    } else {
                        Arc::new(a.iter().zip(b.iter()).map(|(x, y)| x.merge(*y)).collect())
                    }
                })
                .collect(),
        }
    }

    /// Bitwise covering check (see [`Value::covers`]). Shared pages are
    /// skipped without comparing their contents.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn covers(&self, other: &MemArray) -> bool {
        assert_eq!(self.width, other.width);
        assert_eq!(self.depth, other.depth);
        self.pages
            .iter()
            .zip(&other.pages)
            .all(|(a, b)| Arc::ptr_eq(a, b) || a.iter().zip(b.iter()).all(|(x, y)| x.covers(*y)))
    }
}

/// A complete snapshot of simulation state: every net value, every memory
/// word, and the cycle counter.
///
/// This is what the paper's enhanced iverilog dumps when the Symbolic region
/// halts the simulation, and what `$initialize_state` reloads. Because the
/// simulator halts only at region boundaries (quiescent points), the event
/// queue is empty by construction and need not be serialized.
///
/// Snapshots are cheap to clone: memory contents live in copy-on-write pages
/// (see [`MemArray`]), so cloning — and therefore forking a path-exploration
/// child — costs O(net values + page references), with page contents copied
/// lazily only when a fork writes them.
///
/// `SimState` is also the object the Conservative State Manager merges:
/// [`SimState::merge`] is the bitwise conservative join over nets and
/// memories, and [`SimState::covers`] is the subset test of Algorithm 1
/// line 21.
#[derive(Debug, Clone, PartialEq)]
pub struct SimState {
    /// Value of every net, indexed by `NetId`.
    pub values: Vec<Value>,
    /// Contents of every memory, indexed by `MemoryId`.
    pub mems: Vec<MemArray>,
    /// Cycles simulated since power-on when the snapshot was taken.
    pub cycle: u64,
}

impl SimState {
    /// Conservative join: nets and memories merge bitwise; the cycle counter
    /// takes the maximum (it is bookkeeping, not machine state).
    ///
    /// # Panics
    ///
    /// Panics if the two states come from different designs.
    pub fn merge(&self, other: &SimState) -> SimState {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "merging states of different designs"
        );
        SimState {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a.merge(*b))
                .collect(),
            mems: self
                .mems
                .iter()
                .zip(&other.mems)
                .map(|(a, b)| a.merge(b))
                .collect(),
            cycle: self.cycle.max(other.cycle),
        }
    }

    /// Is `other` a subset of (covered by) this state? True when every net
    /// and memory bit of `other` is covered, regardless of cycle counters.
    ///
    /// # Panics
    ///
    /// Panics if the two states come from different designs.
    pub fn covers(&self, other: &SimState) -> bool {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "covering states of different designs"
        );
        self.values
            .iter()
            .zip(&other.values)
            .all(|(a, b)| a.covers(*b))
            && self.mems.iter().zip(&other.mems).all(|(a, b)| a.covers(b))
    }

    /// Number of net bits that are not known `0`/`1`.
    pub fn unknown_net_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_unknown()).count()
    }

    /// Bytes of net-value storage a snapshot owns outright (memory pages are
    /// shared copy-on-write and excluded).
    pub fn owned_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Value>()
    }

    /// Serializes to the compact binary form used for state dumps.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.values.len() + 64);
        put_u32(&mut buf, self.values.len() as u32);
        for v in &self.values {
            encode_value(&mut buf, *v);
        }
        put_u32(&mut buf, self.mems.len() as u32);
        for m in &self.mems {
            put_u32(&mut buf, m.width as u32);
            put_u32(&mut buf, (m.depth * m.width) as u32);
            for v in m.iter_bits() {
                encode_value(&mut buf, v);
            }
        }
        buf.extend_from_slice(&self.cycle.to_le_bytes());
        buf
    }

    /// Decodes a snapshot produced by [`SimState::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeStateError`] on truncated or corrupt input.
    pub fn decode(mut data: &[u8]) -> Result<SimState, DecodeStateError> {
        let n = read_u32(&mut data)? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(decode_value(&mut data)?);
        }
        let m = read_u32(&mut data)? as usize;
        let mut mems = Vec::with_capacity(m);
        for _ in 0..m {
            let width = read_u32(&mut data)? as usize;
            let len = read_u32(&mut data)? as usize;
            let mut bits = Vec::with_capacity(len);
            for _ in 0..len {
                bits.push(decode_value(&mut data)?);
            }
            if width > 0 && bits.len() % width != 0 {
                return Err(DecodeStateError::Truncated);
            }
            mems.push(MemArray::from_flat(width, &bits));
        }
        if data.len() < 8 {
            return Err(DecodeStateError::Truncated);
        }
        let cycle = u64::from_le_bytes(data[..8].try_into().expect("length checked"));
        Ok(SimState {
            values,
            mems,
            cycle,
        })
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn encode_value(buf: &mut Vec<u8>, v: Value) {
    match v {
        Value::Logic(l) => buf.push(l.to_code()),
        Value::Sym(s) => {
            buf.push(if s.inverted { 5 } else { 4 });
            put_u32(buf, s.id.0);
        }
    }
}

fn read_u32(data: &mut &[u8]) -> Result<u32, DecodeStateError> {
    if data.len() < 4 {
        return Err(DecodeStateError::Truncated);
    }
    let v = u32::from_le_bytes(data[..4].try_into().expect("length checked"));
    *data = &data[4..];
    Ok(v)
}

fn decode_value(data: &mut &[u8]) -> Result<Value, DecodeStateError> {
    let Some((&code, rest)) = data.split_first() else {
        return Err(DecodeStateError::Truncated);
    };
    *data = rest;
    match code {
        0..=3 => Ok(Value::Logic(
            symsim_logic::Logic::from_code(code).expect("code in range"),
        )),
        4 | 5 => {
            let id = read_u32(data)?;
            Ok(if code == 5 {
                Value::symbol_inverted(id)
            } else {
                Value::symbol(id)
            })
        }
        other => Err(DecodeStateError::BadValueCode(other)),
    }
}

/// Errors from [`SimState::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeStateError {
    /// The buffer ended before the snapshot was complete.
    Truncated,
    /// An unknown value encoding was encountered.
    BadValueCode(u8),
}

impl fmt::Display for DecodeStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeStateError::Truncated => write!(f, "state snapshot truncated"),
            DecodeStateError::BadValueCode(c) => write!(f, "invalid value code {c} in snapshot"),
        }
    }
}

impl std::error::Error for DecodeStateError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> SimState {
        let mut mem = MemArray::xs(4, 8);
        mem.set_word(1, &Word::from_u64(0xab, 8));
        SimState {
            values: vec![
                Value::ZERO,
                Value::ONE,
                Value::X,
                Value::Z,
                Value::symbol(7),
                Value::symbol_inverted(9),
            ],
            mems: vec![mem],
            cycle: 42,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = sample_state();
        let bytes = s.encode();
        let back = SimState::decode(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn decode_rejects_truncation() {
        let s = sample_state();
        let bytes = s.encode();
        for cut in [0, 1, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(SimState::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_bad_code() {
        let mut bytes = sample_state().encode();
        bytes[4] = 0xff; // first value code
        assert_eq!(
            SimState::decode(&bytes),
            Err(DecodeStateError::BadValueCode(0xff))
        );
    }

    #[test]
    fn merge_covers_both() {
        let a = sample_state();
        let mut b = a.clone();
        b.values[0] = Value::ONE;
        b.mems[0].set_word(1, &Word::from_u64(0xcd, 8));
        b.cycle = 50;
        let m = a.merge(&b);
        assert!(m.covers(&a));
        assert!(m.covers(&b));
        assert!(m.values[0].is_x());
        assert_eq!(m.cycle, 50);
        assert!(!a.covers(&b));
    }

    #[test]
    fn mem_array_word_ops() {
        let mut m = MemArray::xs(3, 4);
        assert_eq!(m.depth(), 3);
        m.set_word(2, &Word::from_u64(0b1010, 4));
        assert_eq!(m.word(2).to_u64(), Some(0b1010));
        m.merge_word(2, &Word::from_u64(0b1000, 4));
        assert_eq!(m.word(2).bit(1), Value::X);
        assert_eq!(m.word(2).bit(3), Value::ONE);
    }

    #[test]
    fn clone_shares_pages_until_written() {
        // 256 words of 8 bits = 4 pages of 64 words
        let mut a = MemArray::xs(256, 8);
        for i in 0..256 {
            a.set_word(i, &Word::from_u64(i as u64, 8));
        }
        let mut b = a.clone();
        assert_eq!(a.page_count(), 4);
        assert_eq!(a.shared_page_count(), 4);
        reset_cow_clone_stats();
        // one write into the clone splits exactly one page
        b.set_word(70, &Word::from_u64(0xff, 8));
        let (pages, bytes) = cow_clone_stats();
        assert_eq!(pages, 1);
        assert_eq!(
            bytes as usize,
            PAGE_WORDS * 8 * std::mem::size_of::<Value>()
        );
        assert_eq!(a.shared_page_count(), 3);
        // the original is unaffected, the clone sees its write
        assert_eq!(a.word(70).to_u64(), Some(70));
        assert_eq!(b.word(70).to_u64(), Some(0xff));
        // further writes to the same page split nothing new
        b.set_word(71, &Word::from_u64(0xee, 8));
        assert_eq!(cow_clone_stats().0, 1);
    }

    #[test]
    fn merge_word_skips_split_when_covered() {
        let a = MemArray::xs(64, 4);
        let mut b = a.clone();
        // merging into an all-X word changes nothing: no page split
        reset_cow_clone_stats();
        b.merge_word(3, &Word::from_u64(0b1010, 4));
        assert_eq!(cow_clone_stats().0, 0);
        assert_eq!(b.shared_page_count(), 1);
    }

    #[test]
    fn from_flat_round_trips() {
        let mut m = MemArray::xs(130, 3);
        m.set_word(0, &Word::from_u64(5, 3));
        m.set_word(129, &Word::from_u64(2, 3));
        let flat: Vec<Value> = m.iter_bits().collect();
        assert_eq!(flat.len(), 130 * 3);
        let back = MemArray::from_flat(3, &flat);
        assert_eq!(back, m);
        assert_eq!(back.page_count(), 3);
    }

    #[test]
    fn shared_pages_short_circuit_merge_and_covers() {
        let mut a = MemArray::xs(128, 8);
        a.set_word(0, &Word::from_u64(1, 8));
        let b = a.clone();
        assert!(a.covers(&b) && b.covers(&a));
        let m = a.merge(&b);
        // the merge of fully shared arrays shares every page with both
        assert_eq!(m.shared_page_count(), m.page_count());
        assert_eq!(m, a);
    }
}
