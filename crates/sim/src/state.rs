use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use symsim_logic::{Value, Word};

/// A memory array's contents: `depth` words of `width` bits, stored flat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemArray {
    width: usize,
    bits: Vec<Value>,
}

impl MemArray {
    /// An all-`X` array.
    pub fn xs(depth: usize, width: usize) -> MemArray {
        MemArray {
            width,
            bits: vec![Value::X; depth * width],
        }
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of words.
    pub fn depth(&self) -> usize {
        self.bits.len().checked_div(self.width).unwrap_or(0)
    }

    /// Reads word `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= depth`.
    pub fn word(&self, addr: usize) -> Word {
        let lo = addr * self.width;
        self.bits[lo..lo + self.width].iter().copied().collect()
    }

    /// Writes word `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= depth` or the word width differs.
    pub fn set_word(&mut self, addr: usize, w: &Word) {
        assert_eq!(w.width(), self.width, "memory word width mismatch");
        let lo = addr * self.width;
        for (i, &v) in w.iter().enumerate() {
            self.bits[lo + i] = v;
        }
    }

    /// Merges `w` into word `addr` (conservative join, used for writes with
    /// unknown address or enable).
    pub fn merge_word(&mut self, addr: usize, w: &Word) {
        assert_eq!(w.width(), self.width, "memory word width mismatch");
        let lo = addr * self.width;
        for (i, &v) in w.iter().enumerate() {
            self.bits[lo + i] = self.bits[lo + i].merge(v);
        }
    }

    /// Raw bit access (LSB of word 0 first).
    pub fn bits(&self) -> &[Value] {
        &self.bits
    }

    /// Conservative join of two arrays of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn merge(&self, other: &MemArray) -> MemArray {
        assert_eq!(self.width, other.width);
        assert_eq!(self.bits.len(), other.bits.len());
        MemArray {
            width: self.width,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a.merge(*b))
                .collect(),
        }
    }

    /// Bitwise covering check (see [`Value::covers`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn covers(&self, other: &MemArray) -> bool {
        assert_eq!(self.width, other.width);
        assert_eq!(self.bits.len(), other.bits.len());
        self.bits
            .iter()
            .zip(&other.bits)
            .all(|(a, b)| a.covers(*b))
    }
}

/// A complete snapshot of simulation state: every net value, every memory
/// word, and the cycle counter.
///
/// This is what the paper's enhanced iverilog dumps when the Symbolic region
/// halts the simulation, and what `$initialize_state` reloads. Because the
/// simulator halts only at region boundaries (quiescent points), the event
/// queue is empty by construction and need not be serialized.
///
/// `SimState` is also the object the Conservative State Manager merges:
/// [`SimState::merge`] is the bitwise conservative join over nets and
/// memories, and [`SimState::covers`] is the subset test of Algorithm 1
/// line 21.
#[derive(Debug, Clone, PartialEq)]
pub struct SimState {
    /// Value of every net, indexed by `NetId`.
    pub values: Vec<Value>,
    /// Contents of every memory, indexed by `MemoryId`.
    pub mems: Vec<MemArray>,
    /// Cycles simulated since power-on when the snapshot was taken.
    pub cycle: u64,
}

impl SimState {
    /// Conservative join: nets and memories merge bitwise; the cycle counter
    /// takes the maximum (it is bookkeeping, not machine state).
    ///
    /// # Panics
    ///
    /// Panics if the two states come from different designs.
    pub fn merge(&self, other: &SimState) -> SimState {
        assert_eq!(self.values.len(), other.values.len(), "merging states of different designs");
        SimState {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a.merge(*b))
                .collect(),
            mems: self
                .mems
                .iter()
                .zip(&other.mems)
                .map(|(a, b)| a.merge(b))
                .collect(),
            cycle: self.cycle.max(other.cycle),
        }
    }

    /// Is `other` a subset of (covered by) this state? True when every net
    /// and memory bit of `other` is covered, regardless of cycle counters.
    ///
    /// # Panics
    ///
    /// Panics if the two states come from different designs.
    pub fn covers(&self, other: &SimState) -> bool {
        assert_eq!(self.values.len(), other.values.len(), "covering states of different designs");
        self.values
            .iter()
            .zip(&other.values)
            .all(|(a, b)| a.covers(*b))
            && self.mems.iter().zip(&other.mems).all(|(a, b)| a.covers(b))
    }

    /// Number of net bits that are not known `0`/`1`.
    pub fn unknown_net_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_unknown()).count()
    }

    /// Serializes to the compact binary form used for state dumps.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.values.len() + 64);
        buf.put_u32_le(self.values.len() as u32);
        for v in &self.values {
            encode_value(&mut buf, *v);
        }
        buf.put_u32_le(self.mems.len() as u32);
        for m in &self.mems {
            buf.put_u32_le(m.width as u32);
            buf.put_u32_le(m.bits.len() as u32);
            for v in &m.bits {
                encode_value(&mut buf, *v);
            }
        }
        buf.put_u64_le(self.cycle);
        buf.freeze()
    }

    /// Decodes a snapshot produced by [`SimState::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeStateError`] on truncated or corrupt input.
    pub fn decode(mut data: &[u8]) -> Result<SimState, DecodeStateError> {
        let n = read_u32(&mut data)? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(decode_value(&mut data)?);
        }
        let m = read_u32(&mut data)? as usize;
        let mut mems = Vec::with_capacity(m);
        for _ in 0..m {
            let width = read_u32(&mut data)? as usize;
            let len = read_u32(&mut data)? as usize;
            let mut bits = Vec::with_capacity(len);
            for _ in 0..len {
                bits.push(decode_value(&mut data)?);
            }
            mems.push(MemArray { width, bits });
        }
        if data.remaining() < 8 {
            return Err(DecodeStateError::Truncated);
        }
        let cycle = data.get_u64_le();
        Ok(SimState { values, mems, cycle })
    }
}

fn encode_value(buf: &mut BytesMut, v: Value) {
    match v {
        Value::Logic(l) => buf.put_u8(l.to_code()),
        Value::Sym(s) => {
            buf.put_u8(if s.inverted { 5 } else { 4 });
            buf.put_u32_le(s.id.0);
        }
    }
}

fn read_u32(data: &mut &[u8]) -> Result<u32, DecodeStateError> {
    if data.remaining() < 4 {
        return Err(DecodeStateError::Truncated);
    }
    Ok(data.get_u32_le())
}

fn decode_value(data: &mut &[u8]) -> Result<Value, DecodeStateError> {
    if data.remaining() < 1 {
        return Err(DecodeStateError::Truncated);
    }
    let code = data.get_u8();
    match code {
        0..=3 => Ok(Value::Logic(
            symsim_logic::Logic::from_code(code).expect("code in range"),
        )),
        4 | 5 => {
            if data.remaining() < 4 {
                return Err(DecodeStateError::Truncated);
            }
            let id = data.get_u32_le();
            Ok(if code == 5 {
                Value::symbol_inverted(id)
            } else {
                Value::symbol(id)
            })
        }
        other => Err(DecodeStateError::BadValueCode(other)),
    }
}

/// Errors from [`SimState::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeStateError {
    /// The buffer ended before the snapshot was complete.
    Truncated,
    /// An unknown value encoding was encountered.
    BadValueCode(u8),
}

impl fmt::Display for DecodeStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeStateError::Truncated => write!(f, "state snapshot truncated"),
            DecodeStateError::BadValueCode(c) => write!(f, "invalid value code {c} in snapshot"),
        }
    }
}

impl std::error::Error for DecodeStateError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> SimState {
        let mut mem = MemArray::xs(4, 8);
        mem.set_word(1, &Word::from_u64(0xab, 8));
        SimState {
            values: vec![
                Value::ZERO,
                Value::ONE,
                Value::X,
                Value::Z,
                Value::symbol(7),
                Value::symbol_inverted(9),
            ],
            mems: vec![mem],
            cycle: 42,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = sample_state();
        let bytes = s.encode();
        let back = SimState::decode(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn decode_rejects_truncation() {
        let s = sample_state();
        let bytes = s.encode();
        for cut in [0, 1, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(SimState::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_bad_code() {
        let mut bytes = sample_state().encode().to_vec();
        bytes[4] = 0xff; // first value code
        assert_eq!(
            SimState::decode(&bytes),
            Err(DecodeStateError::BadValueCode(0xff))
        );
    }

    #[test]
    fn merge_covers_both() {
        let a = sample_state();
        let mut b = a.clone();
        b.values[0] = Value::ONE;
        b.mems[0].set_word(1, &Word::from_u64(0xcd, 8));
        b.cycle = 50;
        let m = a.merge(&b);
        assert!(m.covers(&a));
        assert!(m.covers(&b));
        assert!(m.values[0].is_x());
        assert_eq!(m.cycle, 50);
        assert!(!a.covers(&b));
    }

    #[test]
    fn mem_array_word_ops() {
        let mut m = MemArray::xs(3, 4);
        assert_eq!(m.depth(), 3);
        m.set_word(2, &Word::from_u64(0b1010, 4));
        assert_eq!(m.word(2).to_u64(), Some(0b1010));
        m.merge_word(2, &Word::from_u64(0b1000, 4));
        assert_eq!(m.word(2).bit(1), Value::X);
        assert_eq!(m.word(2).bit(3), Value::ONE);
    }
}
