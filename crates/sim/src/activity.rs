use serde::{Deserialize, Serialize};
use symsim_netlist::NetId;

/// Per-cycle switching-activity statistics, the raw material of the
/// application-specific peak-power and energy analyses built on
/// co-analysis (Cherupalli et al., TOCS'17; paper §1).
///
/// Each net carries a *switching weight* (typically the driver cell's
/// switching energy plus load); every observed value change adds the net's
/// weight to the current cycle's activity. At each cycle boundary the
/// running peak, total, and per-net toggle counts update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityStats {
    weights: Vec<f64>,
    current: f64,
    /// Highest single-cycle weighted activity observed.
    pub peak_cycle_energy: f64,
    /// Cycle index (of the owning simulator) at which the peak occurred.
    pub peak_cycle: u64,
    /// Sum of weighted activity over all observed cycles.
    pub total_energy: f64,
    /// Number of cycle boundaries observed.
    pub cycles: u64,
    /// Unweighted toggle count per net.
    pub net_toggles: Vec<u64>,
}

impl ActivityStats {
    /// Creates an observer with one switching weight per net.
    pub fn new(weights: Vec<f64>) -> ActivityStats {
        let nets = weights.len();
        ActivityStats {
            weights,
            current: 0.0,
            peak_cycle_energy: 0.0,
            peak_cycle: 0,
            total_energy: 0.0,
            cycles: 0,
            net_toggles: vec![0; nets],
        }
    }

    /// Records a value change on `net`.
    #[inline]
    pub(crate) fn record(&mut self, net: NetId) {
        self.current += self.weights[net.0 as usize];
        self.net_toggles[net.0 as usize] += 1;
    }

    /// Closes the current cycle (called from the Symbolic region).
    pub(crate) fn end_cycle(&mut self, cycle: u64) {
        if self.current > self.peak_cycle_energy {
            self.peak_cycle_energy = self.current;
            self.peak_cycle = cycle;
        }
        self.total_energy += self.current;
        self.current = 0.0;
        self.cycles += 1;
    }

    /// Average weighted activity per cycle.
    pub fn avg_cycle_energy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_energy / self.cycles as f64
        }
    }

    /// Merges another path's statistics: peaks take the maximum (the
    /// input-independent peak bound is the max over all execution paths),
    /// totals and toggle counts accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the observers come from different designs.
    pub fn merge(&mut self, other: &ActivityStats) {
        assert_eq!(self.weights.len(), other.weights.len(), "design mismatch");
        if other.peak_cycle_energy > self.peak_cycle_energy {
            self.peak_cycle_energy = other.peak_cycle_energy;
            self.peak_cycle = other.peak_cycle;
        }
        self.total_energy += other.total_energy;
        self.cycles += other.cycles;
        for (a, b) in self.net_toggles.iter_mut().zip(&other.net_toggles) {
            *a += b;
        }
    }

    /// The fraction of observed cycles in which `net` toggled (its duty).
    pub fn duty(&self, net: NetId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.net_toggles[net.0 as usize] as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_and_totals() {
        let mut a = ActivityStats::new(vec![1.0, 2.0]);
        a.record(NetId(0));
        a.record(NetId(1));
        a.end_cycle(0); // 3.0
        a.record(NetId(0));
        a.end_cycle(1); // 1.0
        assert_eq!(a.peak_cycle_energy, 3.0);
        assert_eq!(a.peak_cycle, 0);
        assert_eq!(a.total_energy, 4.0);
        assert_eq!(a.avg_cycle_energy(), 2.0);
        assert_eq!(a.net_toggles, vec![2, 1]);
        assert_eq!(a.duty(NetId(0)), 1.0);
        assert_eq!(a.duty(NetId(1)), 0.5);
    }

    #[test]
    fn merge_takes_max_peak() {
        let mut a = ActivityStats::new(vec![1.0]);
        a.record(NetId(0));
        a.end_cycle(0);
        let mut b = ActivityStats::new(vec![1.0]);
        b.record(NetId(0));
        b.record(NetId(0));
        b.end_cycle(7);
        a.merge(&b);
        assert_eq!(a.peak_cycle_energy, 2.0);
        assert_eq!(a.peak_cycle, 7);
        assert_eq!(a.cycles, 2);
        assert_eq!(a.net_toggles[0], 3);
    }
}
