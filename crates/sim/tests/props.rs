//! Property-based tests for the simulator: snapshot serialization, state
//! lattice laws, save/restore determinism, and conservative memory
//! semantics.

use proptest::prelude::*;
use symsim_logic::{Value, Word};
use symsim_netlist::RtlBuilder;
use symsim_sim::{MemArray, SimConfig, SimState, Simulator};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::ZERO),
        Just(Value::ONE),
        Just(Value::X),
        Just(Value::Z),
        (0u32..100).prop_map(Value::symbol),
        (0u32..100).prop_map(Value::symbol_inverted),
    ]
}

fn arb_state() -> impl Strategy<Value = SimState> {
    (
        prop::collection::vec(arb_value(), 1..200),
        prop::collection::vec(arb_value(), 16),
        any::<u64>(),
    )
        .prop_map(|(values, membits, cycle)| {
            let mut mem = MemArray::xs(4, 4);
            for (i, chunk) in membits.chunks(4).enumerate() {
                mem.set_word(i, &chunk.iter().copied().collect());
            }
            SimState {
                values,
                mems: vec![mem],
                cycle,
            }
        })
}

proptest! {
    #[test]
    fn snapshot_encode_decode_round_trip(state in arb_state()) {
        let bytes = state.encode();
        let back = SimState::decode(&bytes).expect("decodes");
        prop_assert_eq!(back, state);
    }

    #[test]
    fn truncated_snapshots_never_decode(state in arb_state(), cut in any::<prop::sample::Index>()) {
        let bytes = state.encode();
        let cut = cut.index(bytes.len().max(1));
        if cut < bytes.len() {
            prop_assert!(SimState::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn state_merge_lattice((a, b) in (1usize..120).prop_flat_map(|len| (
        (prop::collection::vec(arb_value(), len), prop::collection::vec(arb_value(), 16), any::<u64>())
            .prop_map(|(values, membits, cycle)| {
                let mut mem = MemArray::xs(4, 4);
                for (i, chunk) in membits.chunks(4).enumerate() {
                    mem.set_word(i, &chunk.iter().copied().collect());
                }
                SimState { values, mems: vec![mem], cycle }
            }),
        (prop::collection::vec(arb_value(), len), prop::collection::vec(arb_value(), 16), any::<u64>())
            .prop_map(|(values, membits, cycle)| {
                let mut mem = MemArray::xs(4, 4);
                for (i, chunk) in membits.chunks(4).enumerate() {
                    mem.set_word(i, &chunk.iter().copied().collect());
                }
                SimState { values, mems: vec![mem], cycle }
            }),
    ))) {
        let m = a.merge(&b);
        prop_assert!(m.covers(&a) && m.covers(&b));
        prop_assert!(a.merge(&a).covers(&a) && a.covers(&a.merge(&a)));
        prop_assert_eq!(a.merge(&b).values, b.merge(&a).values);
    }
}

/// A small sequential design used for execution-level properties.
fn lfsr_netlist() -> symsim_netlist::Netlist {
    let mut b = RtlBuilder::new("lfsr");
    let din = b.input("din", 4);
    let r = b.reg("state", 4, 1);
    let q = r.q.clone();
    let fb = b.xor1(q.bit(3), q.bit(2));
    let shifted = symsim_netlist::Bus::from_nets(vec![fb, q.bit(0), q.bit(1), q.bit(2)]);
    let next = b.xor(&shifted, &din);
    b.drive_reg(r, &next);
    b.output("out", &q);
    b.finish().expect("valid")
}

proptest! {
    /// save_state / load_state is a faithful checkpoint: replaying the same
    /// stimulus from a restored snapshot reproduces the exact trajectory.
    #[test]
    fn save_restore_replays_identically(
        stimulus in prop::collection::vec(any::<u8>(), 1..30),
        checkpoint_at in any::<prop::sample::Index>(),
    ) {
        let nl = lfsr_netlist();
        let din: Vec<_> = (0..4).map(|i| nl.find_net(&format!("din[{i}]")).expect("net")).collect();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        let cp = checkpoint_at.index(stimulus.len());

        let mut trace = Vec::new();
        let mut snapshot = None;
        for (i, &s) in stimulus.iter().enumerate() {
            if i == cp {
                snapshot = Some(sim.save_state());
            }
            sim.poke_bus(&din, &Word::from_u64(s as u64 & 0xf, 4));
            sim.step_cycle();
            trace.push(sim.read_bus_by_name("out", 4).expect("bus"));
        }

        sim.load_state(&snapshot.expect("taken"));
        for (i, &s) in stimulus.iter().enumerate().skip(cp) {
            sim.poke_bus(&din, &Word::from_u64(s as u64 & 0xf, 4));
            sim.step_cycle();
            prop_assert_eq!(
                &sim.read_bus_by_name("out", 4).expect("bus"),
                &trace[i],
                "cycle {} after restore",
                i
            );
        }
    }

    /// X-address memory reads are conservative: the symbolic read covers
    /// the read at every concrete address the unknown bits allow.
    #[test]
    fn memory_reads_cover_concretizations(
        words in prop::collection::vec(any::<u8>(), 8),
        known_bits in any::<u8>(),
        addr_value in any::<u8>(),
    ) {
        let mut b = RtlBuilder::new("mem");
        let addr = b.input("addr", 3);
        let m = b.memory("ram", 8, 8);
        let rdata = b.mem_read(m, &addr);
        b.output("rdata", &rdata);
        let nl = b.finish().expect("valid");
        let mut sim = Simulator::new(&nl, SimConfig::default());
        for (i, &w) in words.iter().enumerate() {
            sim.write_mem_word(0, i, &Word::from_u64(w as u64, 8));
        }
        let addr_nets: Vec<_> = (0..3)
            .map(|i| nl.find_net(&format!("addr[{i}]")).expect("net"))
            .collect();

        // drive a partially-unknown address
        let sym_word: Word = (0..3)
            .map(|i| {
                if known_bits >> i & 1 == 1 {
                    Value::from_bool(addr_value >> i & 1 == 1)
                } else {
                    Value::X
                }
            })
            .collect();
        sim.poke_bus(&addr_nets, &sym_word);
        sim.settle();
        let symbolic = sim.read_bus_by_name("rdata", 8).expect("bus");

        // every concretization of the unknown bits must be covered
        for combo in 0u8..8 {
            let mut a = 0usize;
            for i in 0..3 {
                let bit = if known_bits >> i & 1 == 1 {
                    addr_value >> i & 1 == 1
                } else {
                    combo >> i & 1 == 1
                };
                if bit {
                    a |= 1 << i;
                }
            }
            let concrete = Word::from_u64(words[a] as u64, 8);
            prop_assert!(
                symbolic.covers(&concrete),
                "symbolic {} does not cover mem[{}] = {}",
                symbolic,
                a,
                concrete
            );
        }
    }
}
