//! Differential property test for the compiled netlist backend: on random
//! valid netlists, a native-kernel simulation must hold exactly the same
//! value on every net, after every cycle, as the event-driven interpreter.
//!
//! Each generated netlist is a fresh design hash, so every case pays one
//! real `rustc` invocation; the case count is kept small and the kernels
//! share one cache directory so shrinking re-runs hit the cache.

use std::sync::Arc;

use proptest::prelude::*;
use symsim_compile::{CompiledKernel, PrepareOpts};
use symsim_logic::Value;
use symsim_netlist::generator::arb_netlist;
use symsim_netlist::NetId;
use symsim_sim::{EvalMode, SimConfig, Simulator};

fn arb_input_value() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::ZERO), Just(Value::ONE), Just(Value::X)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn compiled_kernel_matches_event_interpreter(
        nl in arb_netlist(40),
        stim in prop::collection::vec(
            prop::collection::vec(arb_input_value(), 1..8),
            1..6,
        ),
    ) {
        let opts = PrepareOpts {
            cache_dir: Some(std::env::temp_dir().join("symsim-kernel-proptest")),
            force_rebuild: false,
        };
        let kernel = match CompiledKernel::prepare(&nl, &opts) {
            Ok(k) => Arc::new(k),
            // machines without a toolchain cannot exercise this property
            Err(e) if e.contains("cannot run") => return,
            Err(e) => panic!("prepare: {e}"),
        };

        let mut ev = Simulator::new(&nl, SimConfig {
            eval_mode: EvalMode::Event,
            ..SimConfig::default()
        });
        let mut co = Simulator::new(&nl, SimConfig {
            eval_mode: EvalMode::Compiled,
            ..SimConfig::default()
        });
        co.attach_compiled_kernel(Arc::clone(&kernel));

        let inputs: Vec<NetId> = nl.inputs().to_vec();
        for cycle_stim in &stim {
            for (i, &net) in inputs.iter().enumerate() {
                let v = cycle_stim[i % cycle_stim.len()];
                ev.poke(net, v);
                co.poke(net, v);
            }
            ev.step_cycle();
            co.step_cycle();
            for n in 0..nl.net_count() as u32 {
                prop_assert_eq!(
                    ev.read_net(NetId(n)),
                    co.read_net(NetId(n)),
                    "net {} after a cycle", n
                );
            }
        }
        // the kernel must actually have run, or the identity is vacuous
        prop_assert!(co.engine_stats().compiled_evals > 0, "kernel never ran");
    }
}
