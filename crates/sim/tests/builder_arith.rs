//! The RTL builder's datapath operators vs native arithmetic: every adder,
//! subtractor, comparator, shifter, and multiplier circuit must compute
//! exactly what the corresponding machine operation computes, for random
//! operands and widths.

use proptest::prelude::*;
use symsim_logic::Word;
use symsim_netlist::{Bus, Netlist, RtlBuilder};
use symsim_sim::{SimConfig, Simulator};

/// Builds a two-operand circuit and evaluates it for concrete inputs.
fn eval2(
    width: usize,
    a: u64,
    b: u64,
    build: impl FnOnce(&mut RtlBuilder, &Bus, &Bus) -> Bus,
) -> u64 {
    let mut builder = RtlBuilder::new("dut");
    let x = builder.input("x", width);
    let y = builder.input("y", width);
    let out = build(&mut builder, &x, &y);
    builder.output("out", &out);
    let out_width = {
        let nl: &Netlist = builder.netlist_mut();
        let _ = nl;
        out.width()
    };
    let nl = builder.finish().expect("valid");
    let mut sim = Simulator::new(&nl, SimConfig::default());
    let xs = sim.find_bus("x", width).expect("x bus");
    let ys = sim.find_bus("y", width).expect("y bus");
    sim.poke_bus(&xs, &Word::from_u64(a, width));
    sim.poke_bus(&ys, &Word::from_u64(b, width));
    sim.settle();
    sim.read_bus_by_name("out", out_width)
        .expect("output bus")
        .to_u64()
        .expect("concrete result")
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn add_matches(a in any::<u64>(), b in any::<u64>(), width in 1usize..24) {
        let m = mask(width);
        let got = eval2(width, a & m, b & m, |bld, x, y| bld.add(x, y));
        prop_assert_eq!(got, (a & m).wrapping_add(b & m) & m);
    }

    #[test]
    fn sub_matches(a in any::<u64>(), b in any::<u64>(), width in 1usize..24) {
        let m = mask(width);
        let got = eval2(width, a & m, b & m, |bld, x, y| bld.sub(x, y));
        prop_assert_eq!(got, (a & m).wrapping_sub(b & m) & m);
    }

    #[test]
    fn comparators_match(a in any::<u64>(), b in any::<u64>(), width in 2usize..20) {
        let m = mask(width);
        let (a, b) = (a & m, b & m);
        let ltu = eval2(width, a, b, |bld, x, y| {
            let n = bld.lt_u(x, y);
            Bus::from_nets(vec![n])
        });
        prop_assert_eq!(ltu, u64::from(a < b));
        let eq = eval2(width, a, b, |bld, x, y| {
            let n = bld.eq(x, y);
            Bus::from_nets(vec![n])
        });
        prop_assert_eq!(eq, u64::from(a == b));
        // signed compare via sign-extension to i64
        let sign = 1u64 << (width - 1);
        let sext = |v: u64| (v ^ sign).wrapping_sub(sign) as i64;
        let lts = eval2(width, a, b, |bld, x, y| {
            let n = bld.lt_s(x, y);
            Bus::from_nets(vec![n])
        });
        prop_assert_eq!(lts, u64::from(sext(a) < sext(b)));
    }

    #[test]
    fn barrel_shifts_match(a in any::<u64>(), amt in 0u64..32, width in 4usize..20) {
        let m = mask(width);
        let a = a & m;
        let amt_bits = 5;
        let shl = eval2(width.max(amt_bits), a, amt, |bld, x, y| {
            let x = x.slice(0, width);
            let amt_bus = y.slice(0, amt_bits);
            bld.shl_barrel(&x, &amt_bus)
        });
        let expect_shl = if amt as usize >= width { 0 } else { (a << amt) & m };
        prop_assert_eq!(shl, expect_shl);
        let shr = eval2(width.max(amt_bits), a, amt, |bld, x, y| {
            let x = x.slice(0, width);
            let amt_bus = y.slice(0, amt_bits);
            bld.shr_barrel(&x, &amt_bus)
        });
        let expect_shr = if amt as usize >= width { 0 } else { a >> amt };
        prop_assert_eq!(shr, expect_shr);
        // arithmetic right shift replicates the sign bit
        let sra = eval2(width.max(amt_bits), a, amt, |bld, x, y| {
            let x = x.slice(0, width);
            let amt_bus = y.slice(0, amt_bits);
            bld.sra_barrel(&x, &amt_bus)
        });
        let sign = a >> (width - 1) & 1;
        let expect_sra = if amt as usize >= width {
            if sign == 1 { m } else { 0 }
        } else {
            let shifted = a >> amt;
            if sign == 1 {
                (shifted | (m & !(m >> amt))) & m
            } else {
                shifted
            }
        };
        prop_assert_eq!(sra, expect_sra);
    }

    #[test]
    fn multiplier_matches(a in any::<u64>(), b in any::<u64>(), width in 2usize..12) {
        let m = mask(width);
        let (a, b) = (a & m, b & m);
        let full = eval2(width, a, b, |bld, x, y| bld.mul_full(x, y));
        prop_assert_eq!(full, a * b);
        let trunc = eval2(width, a, b, |bld, x, y| bld.mul(x, y));
        prop_assert_eq!(trunc, (a * b) & m);
    }

    #[test]
    fn neg_and_logic_match(a in any::<u64>(), b in any::<u64>(), width in 1usize..20) {
        let m = mask(width);
        let (a, b) = (a & m, b & m);
        let neg = eval2(width, a, b, |bld, x, _| bld.neg(x));
        prop_assert_eq!(neg, a.wrapping_neg() & m);
        let and = eval2(width, a, b, |bld, x, y| bld.and(x, y));
        prop_assert_eq!(and, a & b);
        let or = eval2(width, a, b, |bld, x, y| bld.or(x, y));
        prop_assert_eq!(or, a | b);
        let xor = eval2(width, a, b, |bld, x, y| bld.xor(x, y));
        prop_assert_eq!(xor, a ^ b);
    }
}
