//! Property tests for copy-on-write snapshot semantics: forks behave
//! exactly like eager deep copies (bit-identical round trips, full write
//! isolation) while cloning only the pages a fork actually dirties.

use proptest::prelude::*;
use symsim_logic::{Value, Word};
use symsim_netlist::{NetId, Netlist, RtlBuilder};
use symsim_sim::{
    cow_clone_stats, reset_cow_clone_stats, MemArray, SimConfig, Simulator, PAGE_WORDS,
};

const DEPTH: usize = 256;
const WIDTH: usize = 8;

/// A naive eager-copy reference model of a memory array.
#[derive(Debug, Clone, PartialEq)]
struct Model(Vec<Vec<Value>>);

impl Model {
    fn xs() -> Model {
        Model(vec![vec![Value::X; WIDTH]; DEPTH])
    }

    fn set(&mut self, addr: usize, w: &Word) {
        self.0[addr] = w.iter().copied().collect();
    }

    fn merge(&mut self, addr: usize, w: &Word) {
        for (i, &v) in w.iter().enumerate() {
            self.0[addr][i] = self.0[addr][i].merge(v);
        }
    }

    fn matches(&self, mem: &MemArray) -> bool {
        (0..DEPTH).all(|a| {
            mem.word(a)
                .iter()
                .zip(&self.0[a])
                .all(|(got, want)| got == want)
        })
    }
}

/// `(merge?, addr, data)` — one randomized memory operation.
fn arb_op() -> impl Strategy<Value = (bool, usize, u64)> {
    (any::<bool>(), 0usize..DEPTH, 0u64..256)
}

fn apply(mem: &mut MemArray, model: &mut Model, &(merge, addr, data): &(bool, usize, u64)) {
    let w = Word::from_u64(data, WIDTH);
    if merge {
        mem.merge_word(addr, &w);
        model.merge(addr, &w);
    } else {
        mem.set_word(addr, &w);
        model.set(addr, &w);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two forks of a common base, each mutated independently, must match
    /// independent eager deep copies — neither fork ever observes the
    /// other's (or the base's) writes through a shared page.
    #[test]
    fn forked_memories_never_observe_each_others_writes(
        seed in prop::collection::vec(arb_op(), 0..32),
        ops_a in prop::collection::vec(arb_op(), 0..48),
        ops_b in prop::collection::vec(arb_op(), 0..48),
    ) {
        let mut base = MemArray::xs(DEPTH, WIDTH);
        let mut base_model = Model::xs();
        for op in &seed {
            apply(&mut base, &mut base_model, op);
        }
        let mut fork_a = base.clone();
        let mut model_a = base_model.clone();
        let mut fork_b = base.clone();
        let mut model_b = base_model.clone();
        // interleave the two forks' writes to stress page-split ordering
        let mut ia = ops_a.iter();
        let mut ib = ops_b.iter();
        loop {
            match (ia.next(), ib.next()) {
                (None, None) => break,
                (a, b) => {
                    if let Some(op) = a {
                        apply(&mut fork_a, &mut model_a, op);
                    }
                    if let Some(op) = b {
                        apply(&mut fork_b, &mut model_b, op);
                    }
                }
            }
        }
        prop_assert!(base_model.matches(&base), "base corrupted by fork writes");
        prop_assert!(model_a.matches(&fork_a), "fork A diverged from eager copy");
        prop_assert!(model_b.matches(&fork_b), "fork B diverged from eager copy");
    }

    /// A clone is bit-for-bit the same array until somebody writes.
    #[test]
    fn clone_is_bit_identical(ops in prop::collection::vec(arb_op(), 0..32)) {
        let mut mem = MemArray::xs(DEPTH, WIDTH);
        let mut model = Model::xs();
        for op in &ops {
            apply(&mut mem, &mut model, op);
        }
        let fork = mem.clone();
        prop_assert_eq!(&fork, &mem);
        prop_assert!(model.matches(&fork));
        prop_assert!(fork.covers(&mem) && mem.covers(&fork));
    }
}

/// `(Netlist, addr bus, wdata bus, we net, rdata bus)` for a single-port
/// RAM: `depth` words of `width` bits with one sync write and one comb
/// read port.
fn ram_design(name: &str, depth: usize, width: usize) -> (Netlist, RamPorts) {
    let addr_bits = depth.trailing_zeros() as usize;
    let mut b = RtlBuilder::new(name);
    let addr = b.input("addr", addr_bits);
    let wdata = b.input("wdata", width);
    let we = b.input("we", 1);
    let m = b.memory("ram", depth, width);
    let rdata = b.mem_read(m, &addr);
    b.mem_write(m, &addr, &wdata, we.bit(0));
    b.output("rdata", &rdata);
    let ports = RamPorts {
        addr: (0..addr_bits).map(|i| addr.bit(i)).collect(),
        wdata: (0..width).map(|i| wdata.bit(i)).collect(),
        we: we.bit(0),
        rdata: (0..width).map(|i| rdata.bit(i)).collect(),
    };
    (b.finish().expect("ram design validates"), ports)
}

struct RamPorts {
    addr: Vec<NetId>,
    wdata: Vec<NetId>,
    we: NetId,
    rdata: Vec<NetId>,
}

fn write(sim: &mut Simulator<'_>, p: &RamPorts, addr: u64, data: u64) {
    sim.poke_bus(&p.addr, &Word::from_u64(addr, p.addr.len()));
    sim.poke_bus(&p.wdata, &Word::from_u64(data, p.wdata.len()));
    sim.poke(p.we, Value::ONE);
    sim.step_cycle();
    sim.poke(p.we, Value::ZERO);
}

fn read(sim: &mut Simulator<'_>, p: &RamPorts, addr: u64) -> Word {
    sim.poke_bus(&p.addr, &Word::from_u64(addr, p.addr.len()));
    sim.settle();
    sim.read_bus(&p.rdata)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulator-level round trip: save, mutate the live simulator, load
    /// the snapshot back — the reloaded state re-encodes bit-exactly to
    /// the bytes captured at save time.
    #[test]
    fn save_mutate_load_round_trips_bit_exactly(
        before in prop::collection::vec((0u64..64, 0u64..65536), 1..8),
        after in prop::collection::vec((0u64..64, 0u64..65536), 1..8),
    ) {
        let (nl, ports) = ram_design("roundtrip", 64, 16);
        let mut sim = Simulator::new(&nl, SimConfig::default());
        for &(a, d) in &before {
            write(&mut sim, &ports, a, d);
        }
        let snapshot = sim.save_state();
        let golden = snapshot.encode();
        for &(a, d) in &after {
            write(&mut sim, &ports, a, d);
        }
        sim.load_state(&snapshot);
        prop_assert_eq!(sim.save_state().encode(), golden);
    }

    /// Two simulators forked from one snapshot are fully isolated: each
    /// reads back its own writes, never the sibling's.
    #[test]
    fn forked_simulators_are_isolated(
        seed in prop::collection::vec((0u64..64, 0u64..65536), 1..8),
        addr in 0u64..64,
        da in 0u64..65536,
        db in 0u64..65536,
    ) {
        let (nl, ports) = ram_design("forked", 64, 16);
        let mut sim_a = Simulator::new(&nl, SimConfig::default());
        for &(a, d) in &seed {
            write(&mut sim_a, &ports, a, d);
        }
        let snapshot = sim_a.save_state();
        let mut sim_b = Simulator::new(&nl, SimConfig::default());
        sim_b.load_state(&snapshot);
        write(&mut sim_a, &ports, addr, da);
        write(&mut sim_b, &ports, addr, db);
        prop_assert_eq!(read(&mut sim_a, &ports, addr).to_u64(), Some(da));
        prop_assert_eq!(read(&mut sim_b, &ports, addr).to_u64(), Some(db));
    }
}

/// The acceptance criterion of the copy-on-write refactor, checked
/// deterministically: forking a simulator with a 4 KB memory and touching
/// a couple of words must clone at least 5x fewer bytes than an eager
/// memory copy would.
#[test]
fn fork_clones_at_least_5x_fewer_bytes_than_eager_copy() {
    // 2048 x 16 bits = 4 KB of memory contents
    let (nl, ports) = ram_design("fourkb", 2048, 16);
    let mut sim = Simulator::new(&nl, SimConfig::default());
    for a in 0..2048 {
        write(&mut sim, &ports, a, a & 0xffff);
    }
    let snapshot = sim.save_state();
    let eager_bytes: usize = snapshot.mems.iter().map(MemArray::content_bytes).sum();

    const FORKS: usize = 8;
    reset_cow_clone_stats();
    for i in 0..FORKS {
        // a forked child: restore the snapshot, dirty two memory words
        // (a typical path segment touches a handful of pages)
        sim.load_state(&snapshot);
        write(&mut sim, &ports, (i as u64) % 64, 0xdead);
        write(&mut sim, &ports, 1024 + (i as u64) % 64, 0xbeef);
    }
    let (_, cow_bytes) = cow_clone_stats();
    let per_fork = cow_bytes as usize / FORKS;
    assert!(per_fork > 0, "forks must dirty at least one page");
    assert!(
        per_fork * 5 <= eager_bytes,
        "CoW fork cloned {per_fork} B, eager copy is {eager_bytes} B: less than 5x reduction"
    );
}

/// Page splits are bounded by the pages actually written, not the memory
/// size: dirtying one word per fork clones exactly one page.
#[test]
fn one_dirty_word_clones_one_page() {
    let (nl, ports) = ram_design("onepage", 2048, 16);
    let mut sim = Simulator::new(&nl, SimConfig::default());
    for a in 0..2048 {
        write(&mut sim, &ports, a, 0x5a5a);
    }
    let snapshot = sim.save_state();
    reset_cow_clone_stats();
    sim.load_state(&snapshot);
    write(&mut sim, &ports, 7, 0x1234);
    let (pages, bytes) = cow_clone_stats();
    assert_eq!(pages, 1, "exactly one page split");
    assert_eq!(
        bytes as usize,
        PAGE_WORDS * 16 * std::mem::size_of::<Value>()
    );
}
