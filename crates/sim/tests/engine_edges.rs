//! Edge-case behavior of the simulation engine: Z handling, force/poke
//! interaction, memory bounds, monitor management, and misuse panics.

use symsim_logic::{Logic, Value, Word};
use symsim_netlist::{Netlist, RtlBuilder};
use symsim_sim::{HaltReason, MonitorSpec, SimConfig, Simulator};

fn buf_design() -> Netlist {
    let mut b = RtlBuilder::new("buf");
    let a = b.input("a", 1);
    let y = b.not(&a);
    b.output("y", &y);
    b.finish().expect("valid")
}

#[test]
fn z_input_reads_as_unknown_through_gates() {
    let nl = buf_design();
    let mut sim = Simulator::new(&nl, SimConfig::default());
    sim.poke(nl.find_net("a").unwrap(), Value::Z);
    sim.settle();
    // an inverter treats Z as unknown
    assert!(sim.read_net_by_name("y").unwrap().is_x());
    // but the undriven input itself still reads Z
    assert_eq!(sim.read_net_by_name("a").unwrap(), Value::Z);
}

#[test]
fn force_overrides_poke_until_release() {
    let nl = buf_design();
    let mut sim = Simulator::new(&nl, SimConfig::default());
    let a = nl.find_net("a").unwrap();
    sim.poke(a, Value::ZERO);
    sim.settle();
    sim.force(a, Value::ONE);
    sim.settle();
    assert_eq!(sim.read_net_by_name("y").unwrap(), Value::ZERO);
    // pokes on a forced net do not stick
    sim.poke(a, Value::ZERO);
    sim.settle();
    // the forced value was set directly; poke wrote over the raw slot, so
    // after release the input keeps the *last* driven value
    sim.release_all();
    sim.settle();
    assert!(sim.read_net_by_name("y").unwrap().is_known());
}

#[test]
fn out_of_range_memory_write_is_dropped() {
    let mut b = RtlBuilder::new("m");
    let addr = b.input("addr", 8);
    let data = b.input("data", 4);
    let we = b.input("we", 1);
    let m = b.memory("ram", 16, 4); // depth 16 < 2^8 addresses
    let rd = b.mem_read(m, &addr);
    b.mem_write(m, &addr, &data, we.bit(0));
    b.output("rd", &rd);
    let nl = b.finish().unwrap();
    let mut sim = Simulator::new(&nl, SimConfig::default());
    for a in 0..16 {
        sim.write_mem_word(0, a, &Word::from_u64(0xA, 4));
    }
    let map = nl.net_name_map();
    let addr_nets: Vec<_> = (0..8).map(|i| map[format!("addr[{i}]").as_str()]).collect();
    let data_nets: Vec<_> = (0..4).map(|i| map[format!("data[{i}]").as_str()]).collect();
    sim.poke_bus(&addr_nets, &Word::from_u64(200, 8)); // out of range
    sim.poke_bus(&data_nets, &Word::from_u64(0x5, 4));
    sim.poke(map["we"], Value::ONE);
    sim.settle();
    sim.step_cycle();
    for a in 0..16 {
        assert_eq!(sim.read_mem_word(0, a).to_u64(), Some(0xA), "word {a}");
    }
}

#[test]
fn partially_unknown_address_with_single_match_still_merges() {
    // regression: an address with unknown high bits whose only in-range
    // concretization is word N may also concretize out of range (write
    // dropped), so mem[N] must merge with the old value, never be
    // overwritten outright
    let mut b = RtlBuilder::new("m");
    let addr = b.input("addr", 5); // depth 16 < 2^5
    let data = b.input("data", 4);
    let we = b.input("we", 1);
    let m = b.memory("ram", 16, 4);
    let rd = b.mem_read(m, &addr.slice(0, 4));
    b.mem_write(m, &addr.slice(0, 5), &data, we.bit(0));
    b.output("rd", &rd);
    let nl = b.finish().unwrap();
    let mut sim = Simulator::new(&nl, SimConfig::default());
    sim.write_mem_word(0, 3, &Word::from_u64(0b0000, 4));
    let map = nl.net_name_map();
    // addr = X_0011: matches only word 3 in range (bit 4 unknown -> 3 or 19)
    let addr_nets: Vec<_> = (0..5).map(|i| map[format!("addr[{i}]").as_str()]).collect();
    let mut aw = Word::from_u64(0b00011, 5);
    aw.set_bit(4, Value::X);
    sim.poke_bus(&addr_nets, &aw);
    let data_nets: Vec<_> = (0..4).map(|i| map[format!("data[{i}]").as_str()]).collect();
    sim.poke_bus(&data_nets, &Word::from_u64(0b1111, 4));
    sim.poke(map["we"], Value::ONE);
    sim.settle();
    sim.step_cycle();
    let w = sim.read_mem_word(0, 3);
    assert!(
        w.iter().all(|v| v.is_x()),
        "word 3 must be the merge of old 0000 and maybe-written 1111, got {w}"
    );
}

#[test]
fn zero_enum_budget_merges_whole_memory() {
    let mut b = RtlBuilder::new("m");
    let addr = b.input("addr", 2);
    let m = b.memory("ram", 4, 4);
    let rd = b.mem_read(m, &addr);
    b.output("rd", &rd);
    let nl = b.finish().unwrap();
    let config = SimConfig {
        max_addr_enum_bits: 0,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&nl, config);
    for a in 0..4 {
        sim.write_mem_word(0, a, &Word::from_u64(0b1001, 4));
    }
    let map = nl.net_name_map();
    sim.poke(map["addr[0]"], Value::X); // 1 unknown bit > budget 0
    sim.poke(map["addr[1]"], Value::ZERO);
    sim.settle();
    // all words agree, so even the whole-array merge stays known
    assert_eq!(
        sim.read_bus_by_name("rd", 4).unwrap().to_u64(),
        Some(0b1001)
    );
    sim.write_mem_word(0, 3, &Word::from_u64(0b1111, 4));
    sim.settle();
    // address {0,1} would not reach word 3, but budget 0 merges everything
    let w = sim.read_bus_by_name("rd", 4).unwrap();
    assert!(w.bit(1).is_x() && w.bit(2).is_x(), "{w}");
}

#[test]
fn multiple_monitor_specs_and_clearing() {
    let mut b = RtlBuilder::new("mm");
    let s1 = b.input("s1", 1);
    let s2 = b.input("s2", 1);
    b.output("o1", &s1);
    b.output("o2", &s2);
    let nl = b.finish().unwrap();
    let mut sim = Simulator::new(&nl, SimConfig::default());
    let map = nl.net_name_map();
    sim.monitor_x(MonitorSpec {
        qualifier: None,
        signals: vec![map["o1"]],
    });
    sim.monitor_x(MonitorSpec {
        qualifier: None,
        signals: vec![map["o2"]],
    });
    sim.poke(map["s1"], Value::ZERO);
    sim.poke(map["s2"], Value::X);
    sim.settle();
    // second spec fires
    assert_eq!(
        sim.run(3),
        HaltReason::MonitorX {
            signals: vec![map["o2"]]
        }
    );
    sim.clear_monitors();
    assert_eq!(sim.run(3), HaltReason::MaxCycles);
}

#[test]
#[should_panic(expected = "different design")]
fn loading_foreign_snapshot_panics() {
    let nl1 = buf_design();
    let mut b = RtlBuilder::new("other");
    let a = b.input("a", 2);
    b.output("y", &a);
    let nl2 = b.finish().unwrap();
    let mut sim1 = Simulator::new(&nl1, SimConfig::default());
    let mut sim2 = Simulator::new(&nl2, SimConfig::default());
    let snap = sim2.save_state();
    sim1.load_state(&snap);
}

#[test]
#[should_panic(expected = "poke width mismatch")]
fn poke_bus_width_mismatch_panics() {
    let nl = buf_design();
    let mut sim = Simulator::new(&nl, SimConfig::default());
    let a = nl.find_net("a").unwrap();
    sim.poke_bus(&[a], &Word::from_u64(0, 2));
}

#[test]
#[should_panic(expected = "forces are active")]
fn snapshot_under_force_panics() {
    let nl = buf_design();
    let mut sim = Simulator::new(&nl, SimConfig::default());
    sim.force(nl.find_net("y").unwrap(), Value::ONE);
    let _ = sim.save_state();
}

#[test]
fn dff_init_values_apply_at_power_on() {
    let mut b = RtlBuilder::new("init");
    let r0 = b.reg("zero_init", 1, 0);
    let r1 = b.reg("one_init", 1, 1);
    let rx = b.reg_x("x_init", 1);
    let q0 = r0.q.clone();
    let q1 = r1.q.clone();
    let qx = rx.q.clone();
    b.drive_reg(r0, &q0.clone());
    b.drive_reg(r1, &q1.clone());
    b.drive_reg(rx, &qx.clone());
    b.output("o0", &q0);
    b.output("o1", &q1);
    b.output("ox", &qx);
    let nl = b.finish().unwrap();
    let mut sim = Simulator::new(&nl, SimConfig::default());
    sim.settle();
    assert_eq!(sim.read_net_by_name("o0").unwrap(), Value::ZERO);
    assert_eq!(sim.read_net_by_name("o1").unwrap(), Value::ONE);
    assert!(sim.read_net_by_name("ox").unwrap().is_x());
    // self-holding registers keep their values across edges
    for _ in 0..3 {
        sim.step_cycle();
    }
    assert_eq!(sim.read_net_by_name("o1").unwrap(), Value::ONE);
    // DFF init metadata is on the netlist
    assert_eq!(nl.dffs()[0].init, Logic::Zero);
    assert_eq!(nl.dffs()[2].init, Logic::X);
}

#[test]
fn read_helpers_handle_missing_names() {
    let nl = buf_design();
    let sim = Simulator::new(&nl, SimConfig::default());
    assert!(sim.read_net_by_name("nope").is_none());
    assert!(sim.read_bus_by_name("nope", 4).is_none());
    assert!(sim.find_bus("also_nope", 2).is_none());
    assert!(sim.find_memory("no_mem").is_none());
}
