//! Regression tests for the batched evaluation kernel: every [`EvalMode`]
//! must produce identical values, snapshots, traces, and observer results —
//! the modes may only differ in *how* they evaluate, never in *what*.

use symsim_logic::{PropagationPolicy, Value, Word};
use symsim_netlist::{Netlist, RtlBuilder};
use symsim_sim::{EvalMode, SimConfig, SimState, Simulator};

/// A small datapath with some depth: an accumulator updated through an
/// add/xor mux, a memory written from the accumulator and read back at a
/// counter address, and a comparator — enough gate variety to fill
/// kind-sorted batches at several levels.
fn datapath() -> Netlist {
    let mut b = RtlBuilder::new("dp");
    let a_in = b.input("a", 8);
    let sel = b.input("sel", 1);
    let acc = b.reg("acc", 8, 1);
    let accq = acc.q.clone();
    let cnt = b.reg("cnt", 4, 0);
    let cntq = cnt.q.clone();
    let one4 = b.const_word(1, 4);
    let cnext = b.add(&cntq, &one4);
    b.drive_reg(cnt, &cnext);
    let sum = b.add(&accq, &a_in);
    let xored = b.xor(&accq, &a_in);
    let next = b.mux(sel.bit(0), &sum, &xored);
    b.drive_reg(acc, &next);
    let m = b.memory("ram", 16, 8);
    let one = b.one();
    b.mem_write(m, &cntq, &accq, one);
    let rdata = b.mem_read(m, &cntq);
    let hit = b.eq(&rdata, &accq);
    let hit_bus = symsim_netlist::Bus::from_nets(vec![hit]);
    b.output("hit", &hit_bus);
    b.output("acc_o", &accq);
    b.output("rdata_o", &rdata);
    b.finish().unwrap()
}

fn config(mode: EvalMode, trace: bool) -> SimConfig {
    SimConfig {
        eval_mode: mode,
        trace_events: trace,
        ..SimConfig::default()
    }
}

/// Drives the same stimulus (including `X` injections mid-run) in the given
/// mode and returns the final quiescent snapshot plus the event trace.
fn run_datapath(nl: &Netlist, mode: EvalMode, trace: bool) -> (SimState, Vec<(u64, u32)>) {
    let mut sim = Simulator::new(nl, config(mode, trace));
    let a = sim.find_bus("a", 8).unwrap();
    let sel = nl.find_net("sel").unwrap();
    sim.poke_bus(&a, &Word::from_u64(0x5a, 8));
    sim.poke(sel, Value::ZERO);
    sim.settle();
    for cycle in 0..12u64 {
        if cycle == 4 {
            // unknown operand: X waves must propagate identically
            sim.poke(a[3], Value::X);
        }
        if cycle == 7 {
            sim.poke(sel, Value::X);
        }
        if cycle == 9 {
            sim.poke(a[3], Value::ONE);
            sim.poke(sel, Value::ONE);
        }
        sim.step_cycle();
    }
    let snap = sim.save_state();
    (snap, sim.take_event_trace())
}

#[test]
fn all_modes_reach_identical_states() {
    let nl = datapath();
    let (event, _) = run_datapath(&nl, EvalMode::Event, false);
    let (batch, _) = run_datapath(&nl, EvalMode::Batch, false);
    let (hybrid, _) = run_datapath(&nl, EvalMode::Hybrid, false);
    // at the Simulator level, cohort mode's scalar settles dispatch
    // exactly like hybrid (lane packing happens in the explorer)
    let (cohort, _) = run_datapath(&nl, EvalMode::Cohort, false);
    assert_eq!(event, batch, "batch mode diverged from event mode");
    assert_eq!(event, hybrid, "hybrid mode diverged from event mode");
    assert_eq!(event, cohort, "cohort mode diverged from event mode");
}

#[test]
fn event_traces_identical_across_modes() {
    let nl = datapath();
    let (_, mut ev) = run_datapath(&nl, EvalMode::Event, true);
    let (_, mut ba) = run_datapath(&nl, EvalMode::Batch, true);
    assert!(!ev.is_empty(), "stimulus must produce events");
    // within a cycle the evaluation *order* is a scheduling artifact (LIFO
    // drain vs tape order); the set of changed nodes per cycle must match
    ev.sort_unstable();
    ba.sort_unstable();
    assert_eq!(ev, ba, "changed-node sets differ between modes");
}

#[test]
fn no_trace_pushes_when_tracing_off() {
    let nl = datapath();
    let (_, ev) = run_datapath(&nl, EvalMode::Event, false);
    let (_, ba) = run_datapath(&nl, EvalMode::Batch, false);
    assert!(ev.is_empty());
    assert!(ba.is_empty());
}

#[test]
fn batch_mode_actually_batches() {
    let nl = datapath();
    let mut sim = Simulator::new(&nl, config(EvalMode::Batch, false));
    sim.settle();
    let (batched, _) = sim.eval_stats();
    assert!(batched > 0, "batch mode never ran a level tape");

    let mut sim = Simulator::new(&nl, config(EvalMode::Event, false));
    sim.settle();
    let (batched, scalar) = sim.eval_stats();
    assert_eq!(batched, 0, "event mode must not run tapes");
    assert!(scalar > 0);
}

#[test]
fn tagged_symbols_fall_back_to_scalar_lanes() {
    // s XOR s = 0 only holds when symbol identity survives — the planes
    // cannot represent symbols, so those lanes must use scalar evaluation
    let mut b = RtlBuilder::new("sym");
    let a = b.input("a", 1);
    let y = b.xor1(a.bit(0), a.bit(0));
    let n = b.not1(a.bit(0));
    let z = b.and1(y, n);
    b.output("y", &symsim_netlist::Bus::from_nets(vec![y]));
    b.output("z", &symsim_netlist::Bus::from_nets(vec![z]));
    let nl = b.finish().unwrap();
    for mode in [
        EvalMode::Event,
        EvalMode::Batch,
        EvalMode::Hybrid,
        EvalMode::Cohort,
    ] {
        let mut sim = Simulator::new(
            &nl,
            SimConfig {
                policy: PropagationPolicy::Tagged,
                eval_mode: mode,
                ..SimConfig::default()
            },
        );
        sim.poke(nl.find_net("a").unwrap(), Value::symbol(5));
        sim.settle();
        assert_eq!(
            sim.read_net_by_name("y"),
            Some(Value::ZERO),
            "{}: s^s must simplify to 0 under the Tagged policy",
            mode.name()
        );
        assert_eq!(
            sim.read_net_by_name("z"),
            Some(Value::ZERO),
            "{}: 0 & !s must be 0",
            mode.name()
        );
    }
}

#[test]
fn snapshot_round_trip_preserves_batch_state() {
    // load_state must rebuild the packed planes: otherwise a batched settle
    // after a restore would read stale bits
    let nl = datapath();
    let mut sim = Simulator::new(&nl, config(EvalMode::Batch, false));
    let a = sim.find_bus("a", 8).unwrap();
    sim.poke_bus(&a, &Word::from_u64(0x33, 8));
    sim.poke(nl.find_net("sel").unwrap(), Value::ZERO);
    sim.settle();
    for _ in 0..3 {
        sim.step_cycle();
    }
    let snap = sim.save_state();
    for _ in 0..4 {
        sim.step_cycle();
    }
    sim.load_state(&snap);
    for _ in 0..4 {
        sim.step_cycle();
    }
    let replay = sim.save_state();

    let mut fresh = Simulator::new(&nl, config(EvalMode::Batch, false));
    let a = fresh.find_bus("a", 8).unwrap();
    fresh.poke_bus(&a, &Word::from_u64(0x33, 8));
    fresh.poke(nl.find_net("sel").unwrap(), Value::ZERO);
    fresh.settle();
    for _ in 0..7 {
        fresh.step_cycle();
    }
    assert_eq!(replay, fresh.save_state());
}
