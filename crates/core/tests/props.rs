//! Property-based tests of the Conservative State Manager: observing is
//! monotone, covered states stay covered, constraints hold, and multi-state
//! coverage refines single-merge coverage.

use proptest::prelude::*;
use symsim_core::{ConservativeStateManager, CsmPolicy, Observation, StateConstraint};
use symsim_logic::Value;
use symsim_netlist::NetId;
use symsim_sim::SimState;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::ZERO), Just(Value::ONE), Just(Value::X)]
}

fn arb_states(width: usize, count: usize) -> impl Strategy<Value = Vec<SimState>> {
    prop::collection::vec(
        prop::collection::vec(arb_value(), width).prop_map(|values| SimState {
            values,
            mems: vec![],
            cycle: 0,
        }),
        1..count,
    )
}

proptest! {
    /// After any observation sequence, re-observing any previously-observed
    /// state is always Covered (the CSM never forgets).
    #[test]
    fn csm_never_forgets(states in arb_states(12, 12), pcs in prop::collection::vec(0u64..3, 12)) {
        for policy in [
            CsmPolicy::SingleMerge,
            CsmPolicy::MultiState { max_states: 3 },
            CsmPolicy::adaptive(),
            CsmPolicy::Adaptive { max_states: 3, demote_widenings: 2, demote_observations: 4 },
        ] {
            let mut csm = ConservativeStateManager::new(policy);
            for (s, pc) in states.iter().zip(&pcs) {
                let _ = csm.observe(*pc, s);
            }
            for (s, pc) in states.iter().zip(&pcs) {
                prop_assert!(
                    matches!(csm.observe(*pc, s), Observation::Covered),
                    "{policy:?} forgot a state"
                );
            }
        }
    }

    /// Every formed conservative state covers the state that triggered it.
    #[test]
    fn formed_states_cover_trigger(states in arb_states(12, 12)) {
        for policy in [
            CsmPolicy::SingleMerge,
            CsmPolicy::MultiState { max_states: 2 },
            CsmPolicy::Adaptive { max_states: 2, demote_widenings: 3, demote_observations: 6 },
        ] {
            let mut csm = ConservativeStateManager::new(policy);
            for s in &states {
                if let Observation::NewConservative(c) = csm.observe(0, s) {
                    prop_assert!(c.covers(s), "{policy:?} formed a non-covering state");
                }
            }
        }
    }

    /// SingleMerge keeps exactly one state per PC; MultiState keeps at most
    /// its slot budget.
    #[test]
    fn stored_state_budgets(states in arb_states(8, 16), slots in 1usize..4) {
        let mut single = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let mut multi = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: slots });
        for s in &states {
            let _ = single.observe(0, s);
            let _ = multi.observe(0, s);
        }
        prop_assert_eq!(single.stored_states(), 1);
        prop_assert!(multi.stored_states() <= slots);
    }

    /// Constraints pin their nets in every state the CSM hands back.
    #[test]
    fn constraints_always_hold(states in arb_states(8, 10), pin in 0u32..8) {
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        csm.set_constraints(
            vec![StateConstraint {
                net: NetId(pin),
                value: Value::ONE,
            }],
            8,
        )
        .unwrap();
        for s in &states {
            if let Observation::NewConservative(c) = csm.observe(0, s) {
                prop_assert_eq!(c.values[pin as usize], Value::ONE);
            }
        }
    }

    /// Adaptive entries keep at most `max_states` slots before demotion and
    /// exactly one after; pruning never breaks the budget either.
    #[test]
    fn adaptive_stored_state_budgets(
        states in arb_states(8, 16),
        slots in 1usize..4,
        demote_widenings in 1usize..6,
        demote_observations in 2usize..20,
    ) {
        let policy = CsmPolicy::Adaptive {
            max_states: slots,
            demote_widenings,
            demote_observations,
        };
        let mut csm = ConservativeStateManager::new(policy);
        for s in &states {
            let _ = csm.observe(0, s);
            prop_assert!(csm.stored_states() <= slots);
        }
        if csm.policy_demotions() > 0 {
            prop_assert_eq!(csm.stored_states(), 1, "demoted entry must hold one slot");
        }
    }

    /// Anything the single-merge CSM would skip, it also skips after more
    /// observations (monotonicity of the conservative state).
    #[test]
    fn single_merge_is_monotone(states in arb_states(10, 10), probe in prop::collection::vec(arb_value(), 10)) {
        let probe = SimState { values: probe, mems: vec![], cycle: 0 };
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let mut covered_once = false;
        for s in &states {
            let _ = csm.observe(0, s);
            // probe coverage on a clone so the probe itself never widens
            let mut clone = csm.clone();
            let covered = matches!(clone.observe(0, &probe), Observation::Covered);
            if covered_once {
                prop_assert!(covered, "coverage regressed");
            }
            covered_once = covered_once || covered;
        }
    }
}

mod adaptive_soundness {
    use super::*;
    use symsim_core::{CoAnalysis, CoAnalysisConfig, DesignInterface};
    use symsim_netlist::{Bus, Netlist, RtlBuilder};
    use symsim_sim::MonitorSpec;

    /// A miniature processor family: 4-bit PC counting up with one or two
    /// non-deterministic backward branches (at PC 2 → 0 and optionally
    /// PC 4 → 1), finishing at PC 6 — enough structure for the adaptive
    /// policy to open multi-state slots, demote, and pre-split-kill.
    fn design(two_branches: bool) -> (Netlist, DesignInterface) {
        let mut b = RtlBuilder::new(if two_branches {
            "adaptive2"
        } else {
            "adaptive1"
        });
        let cond_a = b.input("cond_a", 1);
        let cond_b = two_branches.then(|| b.input("cond_b", 1));
        let pc = b.reg("pc", 4, 0);
        let pcq = pc.q.clone();
        let one4 = b.const_word(1, 4);
        let next_seq = b.add(&pcq, &one4);
        let two = b.const_word(2, 4);
        let at_a = b.eq(&pcq, &two);
        let taken_a_raw = b.and1(at_a, cond_a.bit(0));
        let taken_a = b.name_net("taken_a", taken_a_raw);
        let target0 = b.const_word(0, 4);
        let mut next = b.mux(taken_a, &next_seq, &target0);
        let mut qualifier = at_a;
        if let Some(cb) = &cond_b {
            let four = b.const_word(4, 4);
            let at_b = b.eq(&pcq, &four);
            let taken_b_raw = b.and1(at_b, cb.bit(0));
            let taken_b = b.name_net("taken_b", taken_b_raw);
            let target1 = b.const_word(1, 4);
            next = b.mux(taken_b, &next, &target1);
            qualifier = b.or1(qualifier, at_b);
        }
        b.name_net("is_branch", qualifier);
        b.drive_reg(pc, &next);
        let six = b.const_word(6, 4);
        let done_raw = b.eq(&pcq, &six);
        let done = b.name_net("done", done_raw);
        let done_b = Bus::from_nets(vec![done]);
        b.output("done_out", &done_b);
        let nl = b.finish().unwrap();
        let map = nl.net_name_map();
        let mut signals = vec![map["taken_a"]];
        if two_branches {
            signals.push(map["taken_b"]);
        }
        let iface = DesignInterface {
            pc: (0..4).map(|i| map[format!("pc[{i}]").as_str()]).collect(),
            monitor: MonitorSpec {
                qualifier: Some(map["is_branch"]),
                signals,
            },
            split_signals: None,
            finish: map["done"],
        };
        (nl, iface)
    }

    proptest! {
        // each case runs two full co-analyses; a handful of cases keeps the
        // debug-mode runtime reasonable while still sweeping the thresholds
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Adaptive-mode reports stay sound: whatever the thresholds, the
        /// single-merge over-approximation covers everything the adaptive
        /// run toggled — the adaptive exercisable-gate set never contains a
        /// gate the uber-conservative baseline ruled exercisable-free.
        #[test]
        fn adaptive_reports_stay_sound(
            two_branches in any::<bool>(),
            max_states in 1usize..5,
            demote_widenings in 1usize..6,
            demote_observations in 1usize..40,
        ) {
            let (nl, iface) = design(two_branches);
            let conds: Vec<_> = ["cond_a", "cond_b"]
                .iter()
                .filter_map(|n| nl.find_net(n))
                .collect();
            let run = |policy: CsmPolicy| {
                let config = CoAnalysisConfig {
                    policy,
                    max_cycles_per_segment: 500,
                    ..CoAnalysisConfig::default()
                };
                CoAnalysis::new(&nl, iface.clone(), config)
                    .unwrap()
                    .run(|sim| {
                        for &c in &conds {
                            sim.poke(c, Value::X);
                        }
                    })
            };
            let single = run(CsmPolicy::SingleMerge);
            let adaptive = run(CsmPolicy::Adaptive {
                max_states,
                demote_widenings,
                demote_observations,
            });
            // the superset check: single-merge's toggle activity covers the
            // adaptive run's, so its exercisable set is a superset too
            prop_assert!(
                single.profile.covers_activity(&adaptive.profile),
                "adaptive run toggled a gate single-merge ruled out \
                 (max_states={max_states}, widen={demote_widenings}, obs={demote_observations})"
            );
            prop_assert!(adaptive.exercisable_gates <= single.exercisable_gates);
            prop_assert!(adaptive.converged(), "{adaptive:?}");
            prop_assert!(single.converged(), "{single:?}");
            // both runs finish the application on at least one path
            prop_assert!(adaptive.paths_finished >= 1);
            // the new report fields mirror the metrics snapshot
            prop_assert_eq!(
                adaptive.paths_killed_presplit as u64,
                adaptive.metrics.counter("paths_killed_presplit")
            );
            prop_assert_eq!(
                adaptive.csm_policy_demotions as u64,
                adaptive.metrics.counter("csm_policy_demotions")
            );
            // a single-slot budget forms the same conservative states as
            // single-merge; pre-split subsumption may only remove redundant
            // children, so the verdict is identical and paths never grow
            if max_states == 1 {
                prop_assert!(adaptive.paths_created <= single.paths_created);
                prop_assert_eq!(adaptive.exercisable_gates, single.exercisable_gates);
            }
        }
    }
}
