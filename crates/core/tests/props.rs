//! Property-based tests of the Conservative State Manager: observing is
//! monotone, covered states stay covered, constraints hold, and multi-state
//! coverage refines single-merge coverage.

use proptest::prelude::*;
use symsim_core::{ConservativeStateManager, CsmPolicy, Observation, StateConstraint};
use symsim_logic::Value;
use symsim_netlist::NetId;
use symsim_sim::SimState;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::ZERO), Just(Value::ONE), Just(Value::X)]
}

fn arb_states(width: usize, count: usize) -> impl Strategy<Value = Vec<SimState>> {
    prop::collection::vec(
        prop::collection::vec(arb_value(), width).prop_map(|values| SimState {
            values,
            mems: vec![],
            cycle: 0,
        }),
        1..count,
    )
}

proptest! {
    /// After any observation sequence, re-observing any previously-observed
    /// state is always Covered (the CSM never forgets).
    #[test]
    fn csm_never_forgets(states in arb_states(12, 12), pcs in prop::collection::vec(0u64..3, 12)) {
        for policy in [CsmPolicy::SingleMerge, CsmPolicy::MultiState { max_states: 3 }] {
            let mut csm = ConservativeStateManager::new(policy);
            for (s, pc) in states.iter().zip(&pcs) {
                let _ = csm.observe(*pc, s);
            }
            for (s, pc) in states.iter().zip(&pcs) {
                prop_assert!(
                    matches!(csm.observe(*pc, s), Observation::Covered),
                    "{policy:?} forgot a state"
                );
            }
        }
    }

    /// Every formed conservative state covers the state that triggered it.
    #[test]
    fn formed_states_cover_trigger(states in arb_states(12, 12)) {
        for policy in [CsmPolicy::SingleMerge, CsmPolicy::MultiState { max_states: 2 }] {
            let mut csm = ConservativeStateManager::new(policy);
            for s in &states {
                if let Observation::NewConservative(c) = csm.observe(0, s) {
                    prop_assert!(c.covers(s), "{policy:?} formed a non-covering state");
                }
            }
        }
    }

    /// SingleMerge keeps exactly one state per PC; MultiState keeps at most
    /// its slot budget.
    #[test]
    fn stored_state_budgets(states in arb_states(8, 16), slots in 1usize..4) {
        let mut single = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let mut multi = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: slots });
        for s in &states {
            let _ = single.observe(0, s);
            let _ = multi.observe(0, s);
        }
        prop_assert_eq!(single.stored_states(), 1);
        prop_assert!(multi.stored_states() <= slots);
    }

    /// Constraints pin their nets in every state the CSM hands back.
    #[test]
    fn constraints_always_hold(states in arb_states(8, 10), pin in 0u32..8) {
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        csm.set_constraints(vec![StateConstraint {
            net: NetId(pin),
            value: Value::ONE,
        }]);
        for s in &states {
            if let Observation::NewConservative(c) = csm.observe(0, s) {
                prop_assert_eq!(c.values[pin as usize], Value::ONE);
            }
        }
    }

    /// Anything the single-merge CSM would skip, it also skips after more
    /// observations (monotonicity of the conservative state).
    #[test]
    fn single_merge_is_monotone(states in arb_states(10, 10), probe in prop::collection::vec(arb_value(), 10)) {
        let probe = SimState { values: probe, mems: vec![], cycle: 0 };
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let mut covered_once = false;
        for s in &states {
            let _ = csm.observe(0, s);
            // probe coverage on a clone so the probe itself never widens
            let mut clone = csm.clone();
            let covered = matches!(clone.observe(0, &probe), Observation::Covered);
            if covered_once {
                prop_assert!(covered, "coverage regressed");
            }
            covered_once = covered_once || covered;
        }
    }
}
