use std::time::Duration;

use symsim_compile::Fnv;
use symsim_netlist::Netlist;
use symsim_obs::ledger::LedgerRecord;
use symsim_obs::{env_fingerprint, EnvFingerprint, JsonObject, MetricsSnapshot};
use symsim_sim::{ActivityStats, ToggleProfile};

use crate::fingerprint;
use crate::provenance::ProvenanceMap;

/// The output of a co-analysis run: the exercisable-gate dichotomy and the
/// path statistics of the paper's Tables 3-4 / Figures 5-6.
#[derive(Debug, Clone)]
pub struct CoAnalysisReport {
    /// Design name.
    pub design: String,
    /// Total gate count of the design (combinational + sequential cells).
    pub total_gates: usize,
    /// Gates that could be exercised by some execution of the application.
    pub exercisable_gates: usize,
    /// Execution paths created (pushed onto the worklist), root included.
    /// Never exceeds the configured `max_paths` cap.
    pub paths_created: usize,
    /// Children dropped because creating them would have exceeded the
    /// `max_paths` cap. Non-zero means the exploration was truncated and
    /// the exercisable-gate result is a lower bound.
    pub paths_dropped: usize,
    /// Paths skipped because their halted state was covered by a
    /// conservative state.
    pub paths_skipped: usize,
    /// Paths that ran the application to completion.
    pub paths_finished: usize,
    /// Paths abandoned on the per-segment cycle budget (should be zero for
    /// a converged analysis).
    pub paths_budget_exhausted: usize,
    /// Path segments actually simulated.
    pub paths_simulated: usize,
    /// Split children never enqueued because a sibling conservative state
    /// already covered their forced start state (pre-split subsumption).
    pub paths_killed_presplit: usize,
    /// Adaptive-policy PC entries that crossed a demotion threshold and
    /// collapsed to the single-merge uber-state.
    pub csm_policy_demotions: usize,
    /// Stored conservative states absorbed by a sibling slot that widened
    /// enough to cover them.
    pub csm_slots_pruned: usize,
    /// Observations rejected as infeasible because a known value
    /// contradicted a designer constraint.
    pub csm_constraint_conflicts: usize,
    /// Total cycles simulated across all paths.
    pub simulated_cycles: u64,
    /// Distinct PCs at which conservative states were recorded.
    pub distinct_pcs: usize,
    /// Level tapes run by the batched evaluation kernel, summed over all
    /// workers (zero under [`symsim_sim::EvalMode::Event`]).
    pub batched_level_evals: u64,
    /// Scalar node evaluations (event-driven gates, memory reads, and
    /// symbolic-lane fallbacks), summed over all workers.
    pub event_evals: u64,
    /// Native compiled-kernel settle passes, summed over all workers (zero
    /// unless the run executed under [`symsim_sim::EvalMode::Compiled`]).
    pub compiled_evals: u64,
    /// The evaluation mode the run *actually* executed under. This is the
    /// effective mode: a `--eval-mode compiled` run that could not build a
    /// native kernel (no toolchain, codegen failure) reports `"hybrid"`.
    pub eval_mode: String,
    /// Order-independent content hash of the verdict — the exercisable
    /// gate set (combinational outputs and DFF `q`s that toggled), folded
    /// with the total gate count. Eval modes and CSM policies may change
    /// throughput; they must never change this digest, which is exactly
    /// what `symsim runs diff` enforces.
    pub verdict_digest: u64,
    /// Environment fingerprint (git commit, rustc, host, workers) making
    /// historical reports attributable.
    pub env: EnvFingerprint,
    /// Wall-clock time of the analysis.
    pub wall_time: Duration,
    /// The merged per-net toggle profile (input to bespoke generation).
    pub profile: ToggleProfile,
    /// Merged switching-activity statistics (present when
    /// `CoAnalysisConfig::activity_weights` was set).
    pub activity: Option<ActivityStats>,
    /// First-exercise provenance: per-net winning `(path, cycle, fork PC)`,
    /// the coverage-over-time curve, and witness extraction (present when
    /// [`symsim_sim::SimConfig::attribution`] was set).
    pub provenance: Option<ProvenanceMap>,
    /// Full end-of-run metrics snapshot. The path/cycle fields above are
    /// *populated from* this snapshot, so `metrics.counter("paths_created")
    /// == paths_created as u64` holds by construction.
    pub metrics: MetricsSnapshot,
}

impl CoAnalysisReport {
    /// Assembles a report from an end-of-run metrics snapshot: every path
    /// and cycle statistic is read from `metrics`, making the report and
    /// the `--metrics-out` file consistent by construction.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        netlist: &Netlist,
        profile: ToggleProfile,
        activity: Option<ActivityStats>,
        mut metrics: MetricsSnapshot,
        provenance: Option<ProvenanceMap>,
        eval_mode: &str,
        wall_time: Duration,
        workers: usize,
    ) -> CoAnalysisReport {
        let env = env_fingerprint(workers);
        metrics.env = Some(env.clone());
        CoAnalysisReport {
            design: netlist.name.clone(),
            total_gates: netlist.total_gate_count(),
            exercisable_gates: profile.exercisable_gate_count(netlist),
            paths_created: metrics.counter("paths_created") as usize,
            paths_dropped: metrics.counter("paths_dropped") as usize,
            paths_skipped: metrics.counter("paths_skipped") as usize,
            paths_finished: metrics.counter("paths_finished") as usize,
            paths_budget_exhausted: metrics.counter("paths_budget_exhausted") as usize,
            paths_simulated: metrics.counter("paths_simulated") as usize,
            paths_killed_presplit: metrics.counter("paths_killed_presplit") as usize,
            csm_policy_demotions: metrics.counter("csm_policy_demotions") as usize,
            csm_slots_pruned: metrics.counter("csm_slots_pruned") as usize,
            csm_constraint_conflicts: metrics.counter("csm_constraint_conflicts") as usize,
            simulated_cycles: metrics.counter("cycles"),
            distinct_pcs: metrics.gauge("csm_distinct_pcs") as usize,
            batched_level_evals: metrics.counter("batched_level_evals"),
            event_evals: metrics.counter("event_evals"),
            compiled_evals: metrics.counter("compiled_evals"),
            eval_mode: eval_mode.to_string(),
            verdict_digest: verdict_digest(netlist, &profile),
            env,
            wall_time,
            profile,
            activity,
            provenance,
            metrics,
        }
    }

    /// The verdict digest as the zero-padded hex the ledger records.
    pub fn verdict_digest_hex(&self) -> String {
        format!("{:016x}", self.verdict_digest)
    }

    /// Builds the persistent-ledger record for this run. `kind` is
    /// `"analyze"` or `"bench"`, `label` names the run for humans, and the
    /// fingerprint triple comes from [`crate::fingerprint`] — computed
    /// where the netlist, program, and config are all still in hand.
    pub fn ledger_record(
        &self,
        kind: &str,
        label: &str,
        design_hash: u64,
        program_hash: u64,
        config: &str,
    ) -> LedgerRecord {
        let wall_seconds = self.wall_time.as_secs_f64();
        LedgerRecord {
            kind: kind.to_string(),
            label: label.to_string(),
            design: self.design.clone(),
            fingerprint: format!(
                "{:016x}",
                fingerprint::combined(design_hash, program_hash, config)
            ),
            design_hash: format!("{design_hash:016x}"),
            program_hash: format!("{program_hash:016x}"),
            config: config.to_string(),
            eval_mode: self.eval_mode.clone(),
            verdict_digest: self.verdict_digest_hex(),
            total_gates: self.total_gates as u64,
            exercisable_gates: self.exercisable_gates as u64,
            paths_created: self.paths_created as u64,
            paths_skipped: self.paths_skipped as u64,
            paths_finished: self.paths_finished as u64,
            paths_dropped: self.paths_dropped as u64,
            simulated_cycles: self.simulated_cycles,
            wall_seconds,
            cycles_per_sec: if wall_seconds > 0.0 {
                self.simulated_cycles as f64 / wall_seconds
            } else {
                0.0
            },
            env: self.env.clone(),
            metrics_json: self.metrics.to_json_compact(),
        }
    }

    /// The paper's "% reduction": the share of gates guaranteed never to be
    /// exercised, which bespoke generation prunes away.
    pub fn reduction_percent(&self) -> f64 {
        if self.total_gates == 0 {
            return 0.0;
        }
        100.0 * (self.total_gates - self.exercisable_gates) as f64 / self.total_gates as f64
    }

    /// True when every path converged (nothing hit the cycle budget and no
    /// child was dropped by the path cap).
    pub fn converged(&self) -> bool {
        self.paths_budget_exhausted == 0 && self.paths_dropped == 0
    }

    /// The report as a single-line JSON object, embedding the full metrics
    /// snapshot under `"metrics"`.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("design", &self.design)
            .u64("total_gates", self.total_gates as u64)
            .u64("exercisable_gates", self.exercisable_gates as u64)
            .f64("reduction_percent", self.reduction_percent())
            .bool("converged", self.converged())
            .u64("paths_created", self.paths_created as u64)
            .u64("paths_dropped", self.paths_dropped as u64)
            .u64("paths_skipped", self.paths_skipped as u64)
            .u64("paths_finished", self.paths_finished as u64)
            .u64("paths_budget_exhausted", self.paths_budget_exhausted as u64)
            .u64("paths_simulated", self.paths_simulated as u64)
            .u64("paths_killed_presplit", self.paths_killed_presplit as u64)
            .u64("csm_policy_demotions", self.csm_policy_demotions as u64)
            .u64("csm_slots_pruned", self.csm_slots_pruned as u64)
            .u64(
                "csm_constraint_conflicts",
                self.csm_constraint_conflicts as u64,
            )
            .u64("simulated_cycles", self.simulated_cycles)
            .u64("distinct_pcs", self.distinct_pcs as u64)
            .u64("batched_level_evals", self.batched_level_evals)
            .u64("event_evals", self.event_evals)
            .u64("compiled_evals", self.compiled_evals)
            .str("eval_mode", &self.eval_mode)
            .str("verdict_digest", &self.verdict_digest_hex())
            .raw("env", &self.env.to_json())
            .f64("wall_time_s", self.wall_time.as_secs_f64());
        if let Some(p) = &self.provenance {
            let mut po = JsonObject::new();
            po.u64("attributed", p.attributed_count() as u64)
                .u64("reset", p.reset_count() as u64)
                .u64("coverage_samples", p.samples().len() as u64);
            if let Some(c) = p.convergence() {
                po.u64("cycles_to_50", c.cycles_to_50)
                    .u64("cycles_to_90", c.cycles_to_90)
                    .u64("cycles_to_100", c.cycles_to_100)
                    .u64("paths_to_50", c.paths_to_50)
                    .u64("paths_to_90", c.paths_to_90)
                    .u64("paths_to_100", c.paths_to_100);
            }
            o.raw("provenance", &po.finish());
        }
        o.raw("metrics", &self.metrics.to_json_compact());
        o.finish()
    }
}

/// Order-independent content hash of the exercisable-gate set: the sum
/// (mod 2^64) of one FNV hash per exercised element — combinational gates
/// by [`symsim_netlist::GateId`], sequential cells by DFF index — folded
/// with the total gate count. Summation makes the digest independent of
/// iteration order, so any evaluation mode producing the same verdict
/// produces the same digest.
fn verdict_digest(netlist: &Netlist, profile: &ToggleProfile) -> u64 {
    let mut acc: u64 = 0;
    for gate in profile.exercisable_gates(netlist) {
        let mut h = Fnv::new();
        h.bytes(b"gate").word(u64::from(gate.0));
        acc = acc.wrapping_add(h.finish());
    }
    for (i, dff) in netlist.dffs().iter().enumerate() {
        if profile.is_toggled(dff.q) {
            let mut h = Fnv::new();
            h.bytes(b"dff").word(i as u64);
            acc = acc.wrapping_add(h.finish());
        }
    }
    let mut h = Fnv::new();
    h.word(netlist.total_gate_count() as u64);
    h.word(acc);
    h.finish()
}

impl std::fmt::Display for CoAnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} / {} gates exercisable ({:.2}% reduction); paths {} created, \
             {} dropped, {} skipped, {} finished; {} cycles in {:?}; \
             evals {} batched-level / {} event",
            self.design,
            self.exercisable_gates,
            self.total_gates,
            self.reduction_percent(),
            self.paths_created,
            self.paths_dropped,
            self.paths_skipped,
            self.paths_finished,
            self.simulated_cycles,
            self.wall_time,
            self.batched_level_evals,
            self.event_evals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_logic::Value;

    #[test]
    fn reduction_math() {
        let profile = ToggleProfile::baseline(&[Value::ZERO]);
        let report = CoAnalysisReport {
            design: "d".into(),
            total_gates: 200,
            exercisable_gates: 150,
            paths_created: 3,
            paths_dropped: 0,
            paths_skipped: 1,
            paths_finished: 2,
            paths_budget_exhausted: 0,
            paths_simulated: 3,
            paths_killed_presplit: 0,
            csm_policy_demotions: 0,
            csm_slots_pruned: 0,
            csm_constraint_conflicts: 0,
            simulated_cycles: 99,
            distinct_pcs: 2,
            batched_level_evals: 7,
            event_evals: 42,
            compiled_evals: 0,
            eval_mode: "hybrid".into(),
            verdict_digest: 0xfeed,
            env: EnvFingerprint {
                git_commit: "unknown".into(),
                rustc: "unknown".into(),
                host: "test".into(),
                workers: 1,
            },
            wall_time: Duration::from_millis(5),
            profile,
            activity: None,
            provenance: None,
            metrics: MetricsSnapshot::default(),
        };
        assert!((report.reduction_percent() - 25.0).abs() < 1e-9);
        assert!(report.converged());
        assert!(report.to_string().contains("25.00% reduction"));
        assert!(report.to_string().contains("0 dropped"));
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"paths_created\":3"));
        assert!(json.contains("\"metrics\":{"));
        assert!(json.contains("\"verdict_digest\":\"000000000000feed\""));
        assert!(json.contains("\"env\":{"));
        let rec = report.ledger_record("analyze", "d/app", 1, 2, "mode=hybrid");
        assert_eq!(rec.verdict_digest, "000000000000feed");
        assert_eq!(rec.design_hash, format!("{:016x}", 1));
        assert_eq!(rec.exercisable_gates, 150);
        assert!((rec.cycles_per_sec - 99.0 / 0.005).abs() < 1e-6);
        // the record parses back through the ledger reader
        let entry = symsim_obs::LedgerEntry::from_json(&rec.to_json()).unwrap();
        assert_eq!(entry.verdict_digest, rec.verdict_digest);
        assert_eq!(entry.env, report.env);
    }
}
