use std::time::Duration;

use symsim_netlist::Netlist;
use symsim_sim::{ActivityStats, ToggleProfile};

/// The output of a co-analysis run: the exercisable-gate dichotomy and the
/// path statistics of the paper's Tables 3-4 / Figures 5-6.
#[derive(Debug, Clone)]
pub struct CoAnalysisReport {
    /// Design name.
    pub design: String,
    /// Total gate count of the design (combinational + sequential cells).
    pub total_gates: usize,
    /// Gates that could be exercised by some execution of the application.
    pub exercisable_gates: usize,
    /// Execution paths created (pushed onto the worklist), root included.
    /// Never exceeds the configured `max_paths` cap.
    pub paths_created: usize,
    /// Children dropped because creating them would have exceeded the
    /// `max_paths` cap. Non-zero means the exploration was truncated and
    /// the exercisable-gate result is a lower bound.
    pub paths_dropped: usize,
    /// Paths skipped because their halted state was covered by a
    /// conservative state.
    pub paths_skipped: usize,
    /// Paths that ran the application to completion.
    pub paths_finished: usize,
    /// Paths abandoned on the per-segment cycle budget (should be zero for
    /// a converged analysis).
    pub paths_budget_exhausted: usize,
    /// Path segments actually simulated.
    pub paths_simulated: usize,
    /// Total cycles simulated across all paths.
    pub simulated_cycles: u64,
    /// Distinct PCs at which conservative states were recorded.
    pub distinct_pcs: usize,
    /// Level tapes run by the batched evaluation kernel, summed over all
    /// workers (zero under [`symsim_sim::EvalMode::Event`]).
    pub batched_level_evals: u64,
    /// Scalar node evaluations (event-driven gates, memory reads, and
    /// symbolic-lane fallbacks), summed over all workers.
    pub event_evals: u64,
    /// Wall-clock time of the analysis.
    pub wall_time: Duration,
    /// The merged per-net toggle profile (input to bespoke generation).
    pub profile: ToggleProfile,
    /// Merged switching-activity statistics (present when
    /// `CoAnalysisConfig::activity_weights` was set).
    pub activity: Option<ActivityStats>,
}

impl CoAnalysisReport {
    /// Assembles a report from raw exploration results.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        netlist: &Netlist,
        profile: ToggleProfile,
        activity: Option<ActivityStats>,
        paths_created: usize,
        paths_dropped: usize,
        paths_skipped: usize,
        paths_finished: usize,
        paths_budget_exhausted: usize,
        paths_simulated: usize,
        simulated_cycles: u64,
        distinct_pcs: usize,
        batched_level_evals: u64,
        event_evals: u64,
        wall_time: Duration,
    ) -> CoAnalysisReport {
        CoAnalysisReport {
            design: netlist.name.clone(),
            total_gates: netlist.total_gate_count(),
            exercisable_gates: profile.exercisable_gate_count(netlist),
            paths_created,
            paths_dropped,
            paths_skipped,
            paths_finished,
            paths_budget_exhausted,
            paths_simulated,
            simulated_cycles,
            distinct_pcs,
            batched_level_evals,
            event_evals,
            wall_time,
            profile,
            activity,
        }
    }

    /// The paper's "% reduction": the share of gates guaranteed never to be
    /// exercised, which bespoke generation prunes away.
    pub fn reduction_percent(&self) -> f64 {
        if self.total_gates == 0 {
            return 0.0;
        }
        100.0 * (self.total_gates - self.exercisable_gates) as f64 / self.total_gates as f64
    }

    /// True when every path converged (nothing hit the cycle budget and no
    /// child was dropped by the path cap).
    pub fn converged(&self) -> bool {
        self.paths_budget_exhausted == 0 && self.paths_dropped == 0
    }
}

impl std::fmt::Display for CoAnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} / {} gates exercisable ({:.2}% reduction); paths {} created, \
             {} skipped, {} finished; {} cycles in {:?}",
            self.design,
            self.exercisable_gates,
            self.total_gates,
            self.reduction_percent(),
            self.paths_created,
            self.paths_skipped,
            self.paths_finished,
            self.simulated_cycles,
            self.wall_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_logic::Value;

    #[test]
    fn reduction_math() {
        let profile = ToggleProfile::baseline(&[Value::ZERO]);
        let report = CoAnalysisReport {
            design: "d".into(),
            total_gates: 200,
            exercisable_gates: 150,
            paths_created: 3,
            paths_dropped: 0,
            paths_skipped: 1,
            paths_finished: 2,
            paths_budget_exhausted: 0,
            paths_simulated: 3,
            simulated_cycles: 99,
            distinct_pcs: 2,
            batched_level_evals: 7,
            event_evals: 42,
            wall_time: Duration::from_millis(5),
            profile,
            activity: None,
        };
        assert!((report.reduction_percent() - 25.0).abs() < 1e-9);
        assert!(report.converged());
        assert!(report.to_string().contains("25.00% reduction"));
    }
}
