//! # symsim-core
//!
//! The design-agnostic symbolic hardware-software co-analysis of the DAC'22
//! paper, built on the [`symsim_sim`] event-driven simulator:
//!
//! * [`ConservativeStateManager`] — the CSM of paper §3.3: a repository of
//!   previously-simulated states indexed by PC, with subset checks, merge
//!   ("superstate") generation, the configurable formation policies of
//!   Fig. 3 ([`CsmPolicy`]), and text-file-style state constraints
//!   ([`StateConstraint`]).
//! * [`CoAnalysis`] — Algorithm 1: run the application with all inputs `X`,
//!   halt whenever a monitored control-flow signal is unknown, consult the
//!   CSM, and explore every execution path by forcing each concretization of
//!   the unknown control signals; sequentially or in parallel
//!   (paper §3.3's "launching these processes in parallel").
//! * [`CoAnalysisReport`] — exercisable gate count, paths created/skipped/
//!   simulated, and simulated cycles: the quantities of the paper's
//!   Tables 3-4 and Figures 5-6.
//!
//! The entry point is [`CoAnalysis::run`]; see the `symsim-cpu` crate for
//! complete processor setups and the repository examples for end-to-end
//! flows.
//!
//! Every stage is instrumented through [`symsim_obs`]: pass a shared
//! [`symsim_obs::MetricsRegistry`] in [`CoAnalysisConfig::metrics`] to watch
//! a run live (heartbeat), or read the final snapshot embedded in
//! [`CoAnalysisReport::metrics`]. The report's path/cycle fields are
//! populated *from* that snapshot, so the two always agree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csm;
mod explore;
pub mod fingerprint;
mod provenance;
mod report;
pub mod sched;

pub use csm::{
    validate_constraints, ConservativeStateManager, CsmKey, CsmPolicy, Observation, PolicyDemotion,
    StateConstraint,
};
pub use explore::{CoAnalysis, CoAnalysisConfig, DesignInterface, PathOutcome};
pub use provenance::{
    replay_witness, Attribution, Convergence, CoverageSample, LineageHop, ProvenanceMap,
    ReplayReport, Witness,
};
pub use report::CoAnalysisReport;
