//! Work-stealing task scheduler for parallel path exploration.
//!
//! Replaces the single shared `Mutex<Vec<Task>>` + `yield_now` spin loop:
//! each worker owns a local deque it pushes and pops LIFO (children of the
//! path it just split stay hot in its simulator's caches), a global injector
//! seeds the root task, and an idle worker first drains the injector, then
//! steals the *oldest* task from a peer (FIFO steal, so thieves take the
//! shallowest — and typically largest — remaining subtree). Workers with no
//! work park on a condvar instead of spinning.
//!
//! Termination detection uses a claim counter: [`WorkQueue::next_task`]
//! counts a claim while a task is in flight and [`WorkQueue::task_done`]
//! releases it. A worker that finds every queue empty *and* no claims
//! outstanding knows no task can ever appear again (tasks are only produced
//! by in-flight tasks), wakes every parked peer, and returns `None`.
//! Producers notify under the same lock the sleepers wait on, so a push can
//! never slip between a worker's last empty check and its park.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use symsim_obs::{CounterId, GaugeId, MetricsRegistry};

/// How many *paths* a work item represents, for gauge accounting.
///
/// The `paths_queued`/`paths_live` gauges promise path counts, not work-item
/// counts, so heartbeats stay comparable across eval modes. A scalar segment
/// weighs 1; a cohort work item carrying `n` member paths weighs `n`. The
/// scheduler itself is weight-agnostic — claims and termination detection
/// still count work items — only the gauges scale.
pub trait TaskWeight {
    /// Number of member paths this work item represents (default 1).
    fn weight(&self) -> usize {
        1
    }
}

/// A fixed-worker work-stealing queue of tasks of type `T`.
#[derive(Debug)]
pub struct WorkQueue<T> {
    /// Global FIFO for work produced outside any worker (the root task).
    injector: Mutex<VecDeque<T>>,
    /// Per-worker deques: owner pops LIFO at the back, thieves FIFO at the
    /// front.
    locals: Box<[Mutex<VecDeque<T>>]>,
    /// Tasks currently claimed by workers (popped but not yet `task_done`).
    active: AtomicUsize,
    /// Lock both producers (to notify) and idle consumers (to wait) take;
    /// holding it while re-checking emptiness closes the lost-wakeup race.
    gate: Mutex<()>,
    cv: Condvar,
    steals: AtomicU64,
    parks: AtomicU64,
    /// When present, the queue maintains the `paths_queued`/`paths_live`
    /// gauges and mirrors steal/park counts (heartbeat visibility).
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<T> WorkQueue<T> {
    /// Creates a queue for `workers` workers (at least one).
    pub fn new(workers: usize) -> WorkQueue<T> {
        assert!(workers >= 1, "need at least one worker");
        WorkQueue {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            active: AtomicUsize::new(0),
            gate: Mutex::new(()),
            cv: Condvar::new(),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// [`WorkQueue::new`] plus live gauge/counter maintenance in
    /// `registry`: queue depth and in-flight tasks as up/down gauges,
    /// steals and parks as counters, each update on the acting worker's
    /// shard.
    pub fn with_metrics(workers: usize, registry: Arc<MetricsRegistry>) -> WorkQueue<T> {
        WorkQueue {
            metrics: Some(registry),
            ..WorkQueue::new(workers)
        }
    }

    /// Number of workers this queue was built for.
    pub fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Number of tasks taken from a peer's deque rather than the worker's
    /// own or the injector.
    pub fn steal_count(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Number of times a worker parked on the condvar.
    pub fn park_count(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    fn notify(&self, all: bool) {
        let _g = self.gate.lock().unwrap();
        if all {
            self.cv.notify_all();
        } else {
            self.cv.notify_one();
        }
    }
}

impl<T: TaskWeight> WorkQueue<T> {
    /// Pushes a task from outside any worker (used to seed the root task).
    pub fn inject(&self, task: T) {
        let w = task.weight() as i64;
        self.injector.lock().unwrap().push_back(task);
        if let Some(m) = &self.metrics {
            m.shard(0).gauge_add(GaugeId::PathsQueued, w);
        }
        self.notify(false);
    }

    /// Pushes tasks onto `worker`'s own deque and wakes idle peers.
    pub fn push_local(&self, worker: usize, tasks: impl IntoIterator<Item = T>) {
        let mut pushed = 0usize;
        let mut weight = 0i64;
        {
            let mut q = self.locals[worker].lock().unwrap();
            for t in tasks {
                weight += t.weight() as i64;
                q.push_back(t);
                pushed += 1;
            }
        }
        if pushed > 0 {
            if let Some(m) = &self.metrics {
                m.shard(worker).gauge_add(GaugeId::PathsQueued, weight);
            }
            self.notify(pushed > 1);
        }
    }

    /// Blocks until a task is available (claiming it) or exploration is
    /// complete — every queue empty with no task in flight — in which case
    /// it returns `None` and the worker should exit.
    ///
    /// Every `Some` return must be paired with a [`WorkQueue::task_done`]
    /// call once the task (including any children it pushes) is finished.
    pub fn next_task(&self, worker: usize) -> Option<T> {
        loop {
            // claim *before* popping so a concurrent worker never observes
            // "queues empty and nothing active" while we hold the last task
            self.active.fetch_add(1, Ordering::SeqCst);
            if let Some(t) = self.try_pop(worker) {
                self.note_claimed(worker, t.weight());
                return Some(t);
            }
            self.active.fetch_sub(1, Ordering::SeqCst);

            let g = self.gate.lock().unwrap();
            // re-check with the gate held: producers notify under this lock
            // (between their push and their task_done), so any push we miss
            // here still counts as an active claim and forces another pass
            self.active.fetch_add(1, Ordering::SeqCst);
            if let Some(t) = self.try_pop(worker) {
                self.note_claimed(worker, t.weight());
                return Some(t);
            }
            if self.active.fetch_sub(1, Ordering::SeqCst) == 1 {
                // no queued work, no task in flight: nothing can appear
                self.cv.notify_all();
                return None;
            }
            self.parks.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.shard(worker).inc(CounterId::SchedParks);
            }
            let _g = self.cv.wait(g).unwrap();
        }
    }

    /// A task moved from a queue into a worker's hands: its member paths
    /// leave `paths_queued` and enter `paths_live`.
    fn note_claimed(&self, worker: usize, weight: usize) {
        if let Some(m) = &self.metrics {
            let shard = m.shard(worker);
            shard.gauge_add(GaugeId::PathsQueued, -(weight as i64));
            shard.gauge_add(GaugeId::PathsLive, weight as i64);
        }
    }

    /// Releases the claim taken by [`WorkQueue::next_task`]; wakes all
    /// parked workers when this was the last in-flight task so they can
    /// observe termination. `weight` must be the finished task's
    /// [`TaskWeight::weight`] so `paths_live` nets back out what
    /// `next_task` added (a cohort's continuation tasks count separately —
    /// they were pushed with their own weights).
    pub fn task_done(&self, weight: usize) {
        if let Some(m) = &self.metrics {
            m.shard(0).gauge_add(GaugeId::PathsLive, -(weight as i64));
        }
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.notify(true);
        }
    }

    fn try_pop(&self, worker: usize) -> Option<T> {
        if let Some(t) = self.locals[worker].lock().unwrap().pop_back() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.locals.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(t) = self.locals[victim].lock().unwrap().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.shard(worker).inc(CounterId::SchedSteals);
                }
                return Some(t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    impl TaskWeight for u32 {}

    #[test]
    fn single_worker_drains_in_lifo_order() {
        let q: WorkQueue<u32> = WorkQueue::new(1);
        q.inject(0);
        let root = q.next_task(0).unwrap();
        assert_eq!(root, 0);
        q.push_local(0, [1, 2, 3]);
        q.task_done(1);
        assert_eq!(q.next_task(0), Some(3), "owner pops its deque LIFO");
        q.task_done(1);
        assert_eq!(q.next_task(0), Some(2));
        q.task_done(1);
        assert_eq!(q.next_task(0), Some(1));
        q.task_done(1);
        assert_eq!(q.next_task(0), None, "drained queue terminates");
    }

    #[test]
    fn thieves_steal_the_oldest_task() {
        let q: WorkQueue<u32> = WorkQueue::new(2);
        q.inject(0);
        let _root = q.next_task(0).unwrap();
        q.push_local(0, [1, 2, 3]);
        assert_eq!(q.next_task(1), Some(1), "thief takes the FIFO end");
        assert_eq!(q.steal_count(), 1);
        q.task_done(1);
        q.task_done(1);
        assert_eq!(q.next_task(0), Some(3));
        q.task_done(1);
        assert_eq!(q.next_task(1), Some(2));
        q.task_done(1);
        assert_eq!(q.next_task(0), None);
        assert_eq!(q.next_task(1), None);
    }

    /// A synthetic exploration: every task below a depth limit spawns two
    /// children; all workers must between them process exactly the full
    /// binary tree and then terminate without deadlock.
    #[test]
    fn parallel_tree_processes_every_task_and_terminates() {
        const DEPTH: u32 = 10;
        const WORKERS: usize = 4;
        let q: WorkQueue<u32> = WorkQueue::new(WORKERS);
        let processed = AtomicUsize::new(0);
        q.inject(0);
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let q = &q;
                let processed = &processed;
                scope.spawn(move || {
                    while let Some(depth) = q.next_task(w) {
                        processed.fetch_add(1, Ordering::Relaxed);
                        if depth + 1 < DEPTH {
                            q.push_local(w, [depth + 1, depth + 1]);
                        }
                        q.task_done(1);
                    }
                });
            }
        });
        assert_eq!(
            processed.load(Ordering::Relaxed),
            (1usize << DEPTH) - 1,
            "every node of the depth-{DEPTH} binary tree ran exactly once"
        );
    }

    #[test]
    fn metrics_gauges_settle_to_zero_and_mirror_steals() {
        let registry = Arc::new(MetricsRegistry::new(2));
        let q: WorkQueue<u32> = WorkQueue::with_metrics(2, Arc::clone(&registry));
        q.inject(0);
        assert_eq!(registry.gauge_total(GaugeId::PathsQueued), 1);
        let _root = q.next_task(0).unwrap();
        assert_eq!(registry.gauge_total(GaugeId::PathsQueued), 0);
        assert_eq!(registry.gauge_total(GaugeId::PathsLive), 1);
        q.push_local(0, [1, 2, 3]);
        assert_eq!(registry.gauge_total(GaugeId::PathsQueued), 3);
        assert_eq!(q.next_task(1), Some(1), "thief takes the FIFO end");
        assert_eq!(registry.counter_total(CounterId::SchedSteals), 1);
        q.task_done(1);
        q.task_done(1);
        assert_eq!(q.next_task(0), Some(3));
        q.task_done(1);
        assert_eq!(q.next_task(1), Some(2));
        q.task_done(1);
        assert_eq!(q.next_task(0), None);
        assert_eq!(q.next_task(1), None);
        assert_eq!(registry.gauge_total(GaugeId::PathsQueued), 0);
        assert_eq!(registry.gauge_total(GaugeId::PathsLive), 0);
    }

    /// A work item carrying several member paths (a cohort).
    #[derive(Debug, PartialEq)]
    struct Weighted(usize);

    impl TaskWeight for Weighted {
        fn weight(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn gauges_count_member_paths_not_work_items() {
        let registry = Arc::new(MetricsRegistry::new(1));
        let q: WorkQueue<Weighted> = WorkQueue::with_metrics(1, Arc::clone(&registry));
        q.inject(Weighted(1));
        assert_eq!(registry.gauge_total(GaugeId::PathsQueued), 1);
        let root = q.next_task(0).unwrap();
        assert_eq!(registry.gauge_total(GaugeId::PathsLive), 1);
        // the root forks 8 children packed into one 5-lane cohort plus 3
        // scalar segments: queued must read 8 paths, not 4 work items
        q.push_local(0, [Weighted(5), Weighted(1), Weighted(1), Weighted(1)]);
        assert_eq!(registry.gauge_total(GaugeId::PathsQueued), 8);
        q.task_done(root.weight());
        assert_eq!(registry.gauge_total(GaugeId::PathsLive), 0);
        let cohort = q.next_task(0).unwrap();
        assert_eq!(cohort, Weighted(1), "owner pops LIFO");
        q.task_done(cohort.weight());
        let t = q.next_task(0).unwrap();
        q.task_done(t.weight());
        let t = q.next_task(0).unwrap();
        q.task_done(t.weight());
        let cohort = q.next_task(0).unwrap();
        assert_eq!(cohort, Weighted(5));
        assert_eq!(registry.gauge_total(GaugeId::PathsQueued), 0);
        assert_eq!(
            registry.gauge_total(GaugeId::PathsLive),
            5,
            "a claimed cohort holds all member paths live"
        );
        q.task_done(cohort.weight());
        assert_eq!(q.next_task(0), None);
        assert_eq!(registry.gauge_total(GaugeId::PathsQueued), 0);
        assert_eq!(registry.gauge_total(GaugeId::PathsLive), 0);
    }

    #[test]
    fn idle_workers_park_rather_than_spin() {
        let q: WorkQueue<u32> = WorkQueue::new(2);
        q.inject(0);
        std::thread::scope(|scope| {
            for w in 0..2 {
                let q = &q;
                scope.spawn(move || {
                    while let Some(t) = q.next_task(w) {
                        if t == 0 {
                            // hold the only task long enough that the other
                            // worker must park instead of busy-waiting
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                        q.task_done(1);
                    }
                });
            }
        });
        assert!(q.park_count() >= 1, "the idle worker parked");
    }
}
