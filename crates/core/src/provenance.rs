//! First-exercise provenance: which path, at which cycle, through which
//! fork lineage first toggled each net.
//!
//! The exercisable/unexercisable dichotomy the paper produces is a bare
//! verdict; this module makes it auditable. During an attributed run
//! ([`symsim_sim::SimConfig::attribution`]) every worker drains its
//! per-segment first-toggle observations into a shared [`Collector`], which
//! resolves them into a [`ProvenanceMap`]: the winning `(path, cycle, fork
//! PC)` per net, the coverage-over-time curve, and enough fork state to
//! serialize a [`Witness`] — a self-contained prescription that
//! [`replay_witness`] re-executes deterministically in plain event mode,
//! asserting the net toggles at the recorded cycle.
//!
//! Winner resolution is deterministic across eval modes and worker counts
//! where it can be: the winner is the lexicographic minimum of
//! `(cycle, path id)` over all observations, and nets that were already
//! unknown at arm time carry a synthetic `reset` attribution (path 0 at the
//! root snapshot's cycle) so every toggled net has a provenance entry.

use std::fmt;

use symsim_logic::Value;
use symsim_netlist::{NetId, Netlist};
use symsim_obs::{JsonObject, JsonValue, TraceSink};
use symsim_sim::{EvalMode, SimConfig, SimState, Simulator};

/// Sentinel for "no observation yet": loses to every real `(cycle, path)`.
const UNSEEN: (u64, u64) = (u64::MAX, u64::MAX);

/// One fork's provenance: enough to reconstruct any child's start state and
/// forced branch decisions (child `first + i` takes combination `i`, bit `j`
/// of a combination being the value forced on `signals[j]`).
#[derive(Debug, Clone)]
struct ForkRec {
    parent: u64,
    pc: String,
    first: u64,
    n: u64,
    signals: Vec<NetId>,
    state: SimState,
}

/// A point on the coverage-over-time curve: after `paths` path segments and
/// `cycles` simulated cycles, `covered` nets had toggled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageSample {
    /// Path segments completed when the sample was taken.
    pub paths: u64,
    /// Cycles simulated across all paths when the sample was taken.
    pub cycles: u64,
    /// Distinct nets attributed (toggled at least once, reset included).
    pub covered: u64,
}

/// Accumulates per-segment first-toggle observations during a run.
///
/// Shared behind a mutex by all workers; contention is negligible because
/// each segment submits once (a drained vector), not per toggle.
#[derive(Debug)]
pub(crate) struct Collector {
    design: String,
    /// Per-net winning observation as `(cycle, path)`; [`UNSEEN`] when the
    /// net has not toggled.
    winners: Vec<(u64, u64)>,
    /// Nets attributed to reset: already unknown in the root snapshot.
    reset: Vec<bool>,
    forks: Vec<ForkRec>,
    samples: Vec<CoverageSample>,
    covered: u64,
    paths_done: u64,
    cycles_done: u64,
    root: SimState,
}

impl Collector {
    /// Starts a collector over the prepared root snapshot, seeding a
    /// synthetic `reset` attribution (path 0, root cycle) for every net that
    /// is already unknown — exactly the nets
    /// [`symsim_sim::ToggleProfile::baseline`] marks toggled with no `mark`
    /// event, so `explain` never meets a toggled-but-unattributed net.
    pub(crate) fn new(design: &str, root: SimState) -> Collector {
        let mut winners = vec![UNSEEN; root.values.len()];
        let mut reset = vec![false; root.values.len()];
        let mut covered = 0u64;
        for (i, v) in root.values.iter().enumerate() {
            if v.is_unknown() {
                winners[i] = (root.cycle, 0);
                reset[i] = true;
                covered += 1;
            }
        }
        let samples = vec![CoverageSample {
            paths: 0,
            cycles: 0,
            covered,
        }];
        Collector {
            design: design.to_string(),
            winners,
            reset,
            forks: Vec::new(),
            samples,
            covered,
            paths_done: 0,
            cycles_done: 0,
            root,
        }
    }

    /// Folds one segment's (or cohort's) drained first-toggle observations
    /// into the winner table, advances the coverage curve, and emits a
    /// `coverage` trace record whenever the covered count grew.
    ///
    /// The winner is the lexicographic minimum of `(cycle, path)`, so ties
    /// at the same cycle break deterministically toward the lower path id,
    /// and the synthetic reset attribution (path 0 at the root cycle) can
    /// never be displaced by a real observation at the same point.
    pub(crate) fn submit(
        &mut self,
        toggles: &[(u64, NetId, u64)],
        paths_delta: u64,
        cycles_delta: u64,
        worker: i64,
        tr: Option<&TraceSink>,
    ) {
        self.paths_done += paths_delta;
        self.cycles_done += cycles_delta;
        let before = self.covered;
        for &(path, net, cycle) in toggles {
            let slot = &mut self.winners[net.0 as usize];
            if *slot == UNSEEN {
                self.covered += 1;
            }
            let cand = (cycle, path);
            if cand < *slot {
                *slot = cand;
                // a real observation displacing the reset seed would be a
                // pre-root toggle, which cannot happen; keep the flag in
                // sync anyway so a corrupted input degrades gracefully
                self.reset[net.0 as usize] = false;
            }
        }
        if self.covered > before {
            let sample = CoverageSample {
                paths: self.paths_done,
                cycles: self.cycles_done,
                covered: self.covered,
            };
            self.samples.push(sample);
            if let Some(t) = tr {
                let total = self.winners.len() as u64;
                t.emit(worker, "coverage", |o| {
                    o.u64("paths", sample.paths)
                        .u64("cycles", sample.cycles)
                        .u64("covered", sample.covered)
                        .u64("total", total);
                });
            }
        }
    }

    /// Records one fork's provenance (called from the explorer's
    /// `spawn_children`). The conservative state is a copy-on-write clone,
    /// so keeping it costs O(net values), not O(memory).
    pub(crate) fn record_fork(
        &mut self,
        parent: u64,
        pc: String,
        first: u64,
        n: u64,
        signals: Vec<NetId>,
        state: SimState,
    ) {
        self.forks.push(ForkRec {
            parent,
            pc,
            first,
            n,
            signals,
            state,
        });
    }

    /// Resolves the accumulated observations into the final map.
    pub(crate) fn resolve(mut self) -> ProvenanceMap {
        // workers record forks in arrival order; sort by the (disjoint)
        // granted id ranges so lineage lookups can binary-search
        self.forks.sort_by_key(|f| f.first);
        let mut attributions = Vec::new();
        for (i, &(cycle, path)) in self.winners.iter().enumerate() {
            if (cycle, path) == UNSEEN {
                continue;
            }
            let net = NetId(i as u32);
            let reset = self.reset[i];
            let pc = if reset {
                "reset".to_string()
            } else if path == 0 {
                "root".to_string()
            } else {
                fork_of(&self.forks, path)
                    .map(|f| f.pc.clone())
                    .unwrap_or_else(|| "root".to_string())
            };
            attributions.push(Attribution {
                net,
                path,
                cycle,
                reset,
                pc,
            });
        }
        ProvenanceMap {
            design: self.design,
            total_nets: self.winners.len(),
            attributions,
            samples: self.samples,
            forks: self.forks,
            root: self.root,
        }
    }
}

/// Binary search for the fork whose granted id range contains `path`.
fn fork_of(forks: &[ForkRec], path: u64) -> Option<&ForkRec> {
    let idx = forks.partition_point(|f| f.first <= path);
    let f = &forks[..idx].last()?;
    (path < f.first + f.n).then_some(*f)
}

/// One net's first-exercise verdict: the winning path and cycle, and the
/// CSM key (PC) of the fork that spawned the winning path — or the synthetic
/// markers `"reset"` (unknown at arm time) and `"root"` (toggled on path 0
/// before any fork).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    /// The attributed net.
    pub net: NetId,
    /// The path that first toggled it (0 for root and reset attributions).
    pub path: u64,
    /// Absolute cycle of the first toggle (the root snapshot's cycle for
    /// reset attributions).
    pub cycle: u64,
    /// True when the net was already unknown when the observer armed.
    pub reset: bool,
    /// Rendered CSM key of the winning path's fork, `"root"`, or `"reset"`.
    pub pc: String,
}

/// One hop of a winning path's fork lineage, root first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageHop {
    /// The path id at this hop.
    pub path: u64,
    /// Rendered CSM key of the fork that created this path (`"root"` for
    /// path 0).
    pub pc: String,
    /// The branch decisions forced onto this path at its fork.
    pub forces: Vec<(NetId, bool)>,
}

/// Coverage-convergence statistics: cycles/paths needed to reach fractions
/// of the final covered-net count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Convergence {
    /// Cycles simulated when 50% of the final coverage was reached.
    pub cycles_to_50: u64,
    /// Cycles simulated when 90% of the final coverage was reached.
    pub cycles_to_90: u64,
    /// Cycles simulated when 100% of the final coverage was reached.
    pub cycles_to_100: u64,
    /// Path segments completed when 50% of the final coverage was reached.
    pub paths_to_50: u64,
    /// Path segments completed when 90% of the final coverage was reached.
    pub paths_to_90: u64,
    /// Path segments completed when 100% of the final coverage was reached.
    pub paths_to_100: u64,
}

/// The resolved provenance of an attributed run: per-net winners, the
/// coverage curve, and the fork records needed to extract witnesses.
#[derive(Debug, Clone)]
pub struct ProvenanceMap {
    design: String,
    total_nets: usize,
    /// Ascending by net id.
    attributions: Vec<Attribution>,
    samples: Vec<CoverageSample>,
    forks: Vec<ForkRec>,
    root: SimState,
}

impl ProvenanceMap {
    /// The design the run analyzed.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Number of nets in the design.
    pub fn total_nets(&self) -> usize {
        self.total_nets
    }

    /// All attributions, ascending by net id.
    pub fn attributions(&self) -> &[Attribution] {
        &self.attributions
    }

    /// The attribution of `net`, if it ever toggled.
    pub fn attribution(&self, net: NetId) -> Option<&Attribution> {
        self.attributions
            .binary_search_by_key(&net.0, |a| a.net.0)
            .ok()
            .map(|i| &self.attributions[i])
    }

    /// Number of attributed (covered) nets.
    pub fn attributed_count(&self) -> usize {
        self.attributions.len()
    }

    /// Number of nets carrying the synthetic reset attribution.
    pub fn reset_count(&self) -> usize {
        self.attributions.iter().filter(|a| a.reset).count()
    }

    /// The coverage-over-time curve (first sample is the reset seed).
    pub fn samples(&self) -> &[CoverageSample] {
        &self.samples
    }

    /// The non-reset attribution with the latest first-exercise cycle
    /// (ties broken by the highest net id) — the "hardest-won" net, and the
    /// default subject of `symsim explain`.
    pub fn deepest(&self) -> Option<&Attribution> {
        self.attributions
            .iter()
            .filter(|a| !a.reset)
            .max_by_key(|a| (a.cycle, a.net.0))
            .or_else(|| self.attributions.last())
    }

    /// Convergence statistics over the coverage curve; `None` when nothing
    /// was covered.
    pub fn convergence(&self) -> Option<Convergence> {
        let final_covered = self.samples.last()?.covered;
        if final_covered == 0 {
            return None;
        }
        let at = |percent: u64| {
            let target = (final_covered * percent).div_ceil(100);
            self.samples
                .iter()
                .find(|s| s.covered >= target)
                .map_or((0, 0), |s| (s.cycles, s.paths))
        };
        let (cycles_to_50, paths_to_50) = at(50);
        let (cycles_to_90, paths_to_90) = at(90);
        let (cycles_to_100, paths_to_100) = at(100);
        Some(Convergence {
            cycles_to_50,
            cycles_to_90,
            cycles_to_100,
            paths_to_50,
            paths_to_90,
            paths_to_100,
        })
    }

    /// The fork lineage of `path`, root hop first. `None` when a non-root
    /// path has no recorded fork (which would indicate a corrupted map).
    pub fn lineage(&self, path: u64) -> Option<Vec<LineageHop>> {
        let mut hops = Vec::new();
        let mut cur = path;
        while cur != 0 {
            let fork = fork_of(&self.forks, cur)?;
            hops.push(LineageHop {
                path: cur,
                pc: fork.pc.clone(),
                forces: child_forces(fork, cur),
            });
            cur = fork.parent;
        }
        hops.push(LineageHop {
            path: 0,
            pc: "root".to_string(),
            forces: Vec::new(),
        });
        hops.reverse();
        Some(hops)
    }

    /// Extracts a self-contained witness for `net`: the winning path's start
    /// snapshot and forced branch decisions, replayable with
    /// [`replay_witness`]. `None` when the net never toggled.
    pub fn witness(&self, net: NetId, net_name: &str) -> Option<Witness> {
        let a = self.attribution(net)?;
        let (snapshot, forces, pc) = if a.reset || a.path == 0 {
            (self.root.clone(), Vec::new(), a.pc.clone())
        } else {
            let fork = fork_of(&self.forks, a.path)?;
            (fork.state.clone(), child_forces(fork, a.path), a.pc.clone())
        };
        Some(Witness {
            design: self.design.clone(),
            net,
            net_name: net_name.to_string(),
            reset: a.reset,
            cycle: a.cycle,
            path: a.path,
            pc,
            forces,
            snapshot,
        })
    }

    /// Emits one `cover_first` trace record per attribution (ascending net
    /// id) — the end-of-run provenance dump, attributed to the merge lane
    /// (`w = -1`) like the sink's own summary records.
    pub fn emit_cover_first(&self, tr: &TraceSink) {
        for a in &self.attributions {
            tr.emit(-1, "cover_first", |o| {
                o.u64("net", a.net.0 as u64)
                    .u64("path", a.path)
                    .u64("cycle", a.cycle)
                    .str("pc", &a.pc);
            });
        }
    }
}

/// The branch decisions a fork forces onto child `path`: bit `j` of the
/// child's combination is the value forced on `signals[j]`.
fn child_forces(fork: &ForkRec, path: u64) -> Vec<(NetId, bool)> {
    let combo = path - fork.first;
    fork.signals
        .iter()
        .enumerate()
        .map(|(j, &net)| (net, combo >> j & 1 == 1))
        .collect()
}

/// A self-contained, deterministic prescription for re-exercising one net:
/// the winning path's start snapshot, the branch decisions forced at its
/// fork, and the expected first-toggle cycle.
///
/// Serialized as single-line JSON (`symsim-witness-v1`) with the snapshot
/// embedded as base64 of [`SimState::encode`].
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// Design name (checked against the netlist at replay).
    pub design: String,
    /// The net the witness exercises.
    pub net: NetId,
    /// Human-readable name of the net.
    pub net_name: String,
    /// True for a synthetic reset attribution: the net was already unknown
    /// in the snapshot, so "replay" just re-checks that fact.
    pub reset: bool,
    /// Expected absolute cycle of the net's first toggle.
    pub cycle: u64,
    /// The winning path's id (provenance only; replay does not need it).
    pub path: u64,
    /// Rendered CSM key of the winning fork (`"root"`/`"reset"`).
    pub pc: String,
    /// Branch decisions to force before running (empty for root/reset).
    pub forces: Vec<(NetId, bool)>,
    /// The start snapshot to load.
    pub snapshot: SimState,
}

impl Witness {
    /// Serializes the witness as single-line JSON.
    pub fn to_json(&self) -> String {
        let mut forces = String::from("[");
        for (i, (net, bit)) in self.forces.iter().enumerate() {
            if i > 0 {
                forces.push(',');
            }
            forces.push_str(&format!("[{},{}]", net.0, u8::from(*bit)));
        }
        forces.push(']');
        let mut o = JsonObject::new();
        o.str("schema", "symsim-witness-v1")
            .str("design", &self.design)
            .u64("net", self.net.0 as u64)
            .str("net_name", &self.net_name)
            .str("kind", if self.reset { "reset" } else { "toggle" })
            .u64("cycle", self.cycle)
            .u64("path", self.path)
            .str("pc", &self.pc)
            .raw("forces", &forces)
            .str("snapshot", &b64_encode(&self.snapshot.encode()));
        o.finish()
    }

    /// Parses the format produced by [`Witness::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first structural problem.
    pub fn from_json(text: &str) -> Result<Witness, String> {
        let v = JsonValue::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("witness missing string field \"{key}\""))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("witness missing integer field \"{key}\""))
        };
        let schema = str_field("schema")?;
        if schema != "symsim-witness-v1" {
            return Err(format!("unsupported witness schema \"{schema}\""));
        }
        let kind = str_field("kind")?;
        let reset = match kind.as_str() {
            "reset" => true,
            "toggle" => false,
            other => return Err(format!("unknown witness kind \"{other}\"")),
        };
        let mut forces = Vec::new();
        for item in v
            .get("forces")
            .and_then(JsonValue::as_array)
            .ok_or("witness missing \"forces\" array")?
        {
            let pair = item.as_array().ok_or("force entry is not a pair")?;
            let net = pair
                .first()
                .and_then(JsonValue::as_u64)
                .ok_or("force entry missing net id")?;
            let bit = pair
                .get(1)
                .and_then(JsonValue::as_u64)
                .ok_or("force entry missing value")?;
            forces.push((NetId(net as u32), bit != 0));
        }
        let snapshot_b64 = str_field("snapshot")?;
        let snapshot = SimState::decode(&b64_decode(&snapshot_b64)?)
            .map_err(|e| format!("witness snapshot: {e}"))?;
        Ok(Witness {
            design: str_field("design")?,
            net: NetId(u64_field("net")? as u32),
            net_name: str_field("net_name")?,
            reset,
            cycle: u64_field("cycle")?,
            path: u64_field("path")?,
            pc: str_field("pc")?,
            forces,
            snapshot,
        })
    }
}

/// The result of replaying a witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// The cycle the witness claims the net first toggles at.
    pub expected_cycle: u64,
    /// The cycle the replay actually observed the net's first toggle at
    /// (`None`: it never toggled within the replay budget).
    pub observed_cycle: Option<u64>,
    /// Cycles the replay simulated past the snapshot.
    pub cycles_run: u64,
}

impl ReplayReport {
    /// Did the replay reproduce the witnessed toggle exactly?
    pub fn ok(&self) -> bool {
        self.observed_cycle == Some(self.expected_cycle)
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.observed_cycle {
            Some(c) if self.ok() => {
                write!(f, "toggled at cycle {c} as witnessed ({} cycles run)", {
                    self.cycles_run
                })
            }
            Some(c) => write!(
                f,
                "toggled at cycle {c}, witness claims {} ({} cycles run)",
                self.expected_cycle, self.cycles_run
            ),
            None => write!(
                f,
                "never toggled within {} cycles, witness claims {}",
                self.cycles_run, self.expected_cycle
            ),
        }
    }
}

/// Re-executes a witness deterministically in plain event mode: loads the
/// snapshot, forces the fork's branch decisions, steps one cycle, and runs
/// until just past the witnessed cycle — no monitors and no finish net, so
/// nothing can halt the replay early and the evolution up to the witnessed
/// cycle is identical to the original segment's in every eval mode.
///
/// For a `reset` witness the check is static: the net must already be
/// unknown in the snapshot.
///
/// # Errors
///
/// Returns a message when the witness does not fit the netlist (wrong
/// design, out-of-range net, snapshot shape mismatch) — distinct from a
/// replay that runs but fails to reproduce the toggle, which is reported
/// through [`ReplayReport`].
pub fn replay_witness(netlist: &Netlist, witness: &Witness) -> Result<ReplayReport, String> {
    if witness.design != netlist.name {
        return Err(format!(
            "witness is for design \"{}\", netlist is \"{}\"",
            witness.design, netlist.name
        ));
    }
    if witness.snapshot.values.len() != netlist.net_count() {
        return Err(format!(
            "witness snapshot has {} nets, netlist has {}",
            witness.snapshot.values.len(),
            netlist.net_count()
        ));
    }
    if witness.net.0 as usize >= netlist.net_count() {
        return Err(format!("witness net {} out of range", witness.net.0));
    }
    for &(net, _) in &witness.forces {
        if net.0 as usize >= netlist.net_count() {
            return Err(format!("witness force net {} out of range", net.0));
        }
    }
    if witness.reset {
        let observed = witness.snapshot.values[witness.net.0 as usize]
            .is_unknown()
            .then_some(witness.cycle);
        return Ok(ReplayReport {
            expected_cycle: witness.cycle,
            observed_cycle: observed,
            cycles_run: 0,
        });
    }
    if witness.cycle < witness.snapshot.cycle {
        return Err(format!(
            "witness cycle {} precedes its snapshot's cycle {}",
            witness.cycle, witness.snapshot.cycle
        ));
    }
    let config = SimConfig {
        eval_mode: EvalMode::Event,
        attribution: true,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(netlist, config);
    sim.load_state(&witness.snapshot);
    sim.arm_toggle_observer();
    if !witness.forces.is_empty() {
        for &(net, bit) in &witness.forces {
            sim.force(net, Value::from_bool(bit));
        }
        sim.settle();
        // the original segment steps the forced cycle before releasing; a
        // halt here only means the monitor would have fired again, which
        // the replay ignores
        let _ = sim.step_cycle();
        sim.release_all();
    }
    // a toggle stamped cycle K happens while the counter reads K, i.e.
    // during the step that advances K -> K+1: run until the counter passes
    // the witnessed cycle
    let remaining = (witness.cycle + 1).saturating_sub(sim.cycle());
    if remaining > 0 {
        let _ = sim.run(remaining);
    }
    let cycles_run = sim.cycle() - witness.snapshot.cycle;
    let observed = sim
        .take_first_toggles()
        .unwrap_or_default()
        .into_iter()
        .find(|&(net, _)| net == witness.net)
        .map(|(_, cycle)| cycle);
    Ok(ReplayReport {
        expected_cycle: witness.cycle,
        observed_cycle: observed,
        cycles_run,
    })
}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding (the build has no base64 crate; snapshots
/// embed in witness JSON as text).
fn b64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let v = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(B64_ALPHABET[(v >> 18 & 63) as usize] as char);
        out.push(B64_ALPHABET[(v >> 12 & 63) as usize] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(v >> 6 & 63) as usize] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[(v & 63) as usize] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes the output of [`b64_encode`].
fn b64_decode(text: &str) -> Result<Vec<u8>, String> {
    let digits: Vec<u8> = text
        .bytes()
        .filter(|&b| b != b'=' && !b.is_ascii_whitespace())
        .map(|b| match b {
            b'A'..=b'Z' => Ok(b - b'A'),
            b'a'..=b'z' => Ok(b - b'a' + 26),
            b'0'..=b'9' => Ok(b - b'0' + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            other => Err(format!("invalid base64 byte 0x{other:02x}")),
        })
        .collect::<Result<_, _>>()?;
    if digits.len() % 4 == 1 {
        return Err("truncated base64".to_string());
    }
    let mut out = Vec::with_capacity(digits.len() * 3 / 4);
    for chunk in digits.chunks(4) {
        let mut v = 0u32;
        for (i, &d) in chunk.iter().enumerate() {
            v |= u32::from(d) << (18 - 6 * i);
        }
        out.push((v >> 16) as u8);
        if chunk.len() > 2 {
            out.push((v >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(v as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state(values: Vec<Value>, cycle: u64) -> SimState {
        SimState {
            values,
            mems: Vec::new(),
            cycle,
        }
    }

    #[test]
    fn base64_round_trips() {
        for len in 0..32usize {
            let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            let enc = b64_encode(&data);
            assert_eq!(enc.len() % 4, 0);
            assert_eq!(b64_decode(&enc).unwrap(), data, "len {len}");
        }
        assert_eq!(b64_encode(b"sym"), "c3lt");
        assert!(b64_decode("a!b").is_err());
        assert!(b64_decode("abcde").is_err());
    }

    #[test]
    fn winner_is_lexicographic_min_and_reset_sticks() {
        let root = tiny_state(vec![Value::ZERO, Value::X, Value::ZERO], 10);
        let mut c = Collector::new("t", root);
        // net 1 was unknown at arm: reset attribution at the root cycle
        assert_eq!(c.covered, 1);
        c.submit(&[(3, NetId(0), 20), (3, NetId(1), 10)], 1, 5, 0, None);
        // a later path with an earlier cycle wins; same cycle loses on id
        c.submit(&[(7, NetId(0), 15), (2, NetId(0), 15)], 2, 5, 0, None);
        let map = c.resolve();
        let a0 = map.attribution(NetId(0)).unwrap();
        assert_eq!((a0.cycle, a0.path), (15, 2));
        let a1 = map.attribution(NetId(1)).unwrap();
        assert!(a1.reset);
        assert_eq!((a1.cycle, a1.path), (10, 0));
        assert_eq!(a1.pc, "reset");
        assert!(map.attribution(NetId(2)).is_none());
        assert_eq!(map.attributed_count(), 2);
        assert_eq!(map.reset_count(), 1);
        // the deepest attribution is the non-reset latest cycle
        assert_eq!(map.deepest().unwrap().net, NetId(0));
    }

    #[test]
    fn lineage_and_witness_follow_fork_records() {
        let root = tiny_state(vec![Value::ZERO; 4], 0);
        let fork_state = tiny_state(vec![Value::ZERO; 4], 30);
        let mut c = Collector::new("t", root);
        c.record_fork(
            0,
            "0x10".into(),
            1,
            4,
            vec![NetId(2), NetId(3)],
            fork_state.clone(),
        );
        c.record_fork(3, "0x20".into(), 5, 2, vec![NetId(2)], fork_state);
        c.submit(&[(6, NetId(1), 44)], 1, 14, 0, None);
        let map = c.resolve();
        let hops = map.lineage(6).unwrap();
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[0].path, 0);
        assert_eq!(hops[1].path, 3);
        // path 3 is child combo 2 of the first fork: signals (2,3) forced
        // to bits (0,1)
        assert_eq!(hops[1].forces, vec![(NetId(2), false), (NetId(3), true)]);
        assert_eq!(hops[2].path, 6);
        assert_eq!(hops[2].forces, vec![(NetId(2), true)]);
        let w = map.witness(NetId(1), "n1").unwrap();
        assert_eq!(w.cycle, 44);
        assert_eq!(w.forces, vec![(NetId(2), true)]);
        assert_eq!(w.snapshot.cycle, 30);
        // JSON round trip preserves everything
        let back = Witness::from_json(&w.to_json()).unwrap();
        assert_eq!(back, w);
        assert!(Witness::from_json("{}").is_err());
    }

    #[test]
    fn convergence_reads_the_curve() {
        let root = tiny_state(vec![Value::ZERO; 100], 0);
        let mut c = Collector::new("t", root);
        let nets: Vec<(u64, NetId, u64)> = (0..50).map(|i| (1, NetId(i), 5)).collect();
        c.submit(&nets, 1, 10, 0, None);
        let more: Vec<(u64, NetId, u64)> = (50..100).map(|i| (2, NetId(i), 15)).collect();
        c.submit(&more, 1, 10, 0, None);
        let map = c.resolve();
        assert_eq!(map.samples().last().unwrap().covered, 100);
        let conv = map.convergence().unwrap();
        assert_eq!(conv.cycles_to_50, 10);
        assert_eq!(conv.paths_to_50, 1);
        assert_eq!(conv.cycles_to_100, 20);
        assert_eq!(conv.paths_to_100, 2);
    }
}
