//! Run identity for the persistent ledger (`symsim runs`).
//!
//! Two runs are comparable when three things match: the design structure,
//! the program image, and the analysis configuration. Each gets its own
//! FNV-1a content hash (the workspace standard, reused from
//! [`symsim_compile`]); [`combined`] folds them into the single
//! `fingerprint` the ledger keys baselines on.
//!
//! The config hash folds the *requested* evaluation mode, not the
//! effective one: a `--eval-mode compiled` run that degrades to hybrid
//! (no toolchain) keeps its identity, and the regression in its wall time
//! is exactly what `symsim runs diff` exists to surface.

use symsim_compile::{structure_hash, Fnv};
use symsim_netlist::Netlist;

use crate::CoAnalysisConfig;

/// Content hash of the design structure (see
/// [`symsim_compile::structure_hash`]) — toolchain-independent, stable
/// across processes.
pub fn design_fingerprint(netlist: &Netlist) -> u64 {
    structure_hash(netlist)
}

/// Content hash of a program image.
pub fn program_fingerprint(program: &[u32]) -> u64 {
    let mut h = Fnv::new();
    h.word(program.len() as u64);
    for &w in program {
        h.word(u64::from(w));
    }
    h.finish()
}

/// The canonical, human-readable configuration string the config hash is
/// taken over. Key order is fixed; every field that changes analysis
/// behavior (and therefore comparability) appears, and nothing else —
/// metrics/trace sinks are observability plumbing, not identity.
pub fn config_string(config: &CoAnalysisConfig) -> String {
    let prop = match config.sim.policy {
        symsim_logic::PropagationPolicy::Anonymous => "anonymous",
        symsim_logic::PropagationPolicy::Tagged => "tagged",
    };
    format!(
        "mode={},batch_pct={},prop={},attr={},policy={},constraints={},\
         max_cycles={},max_paths={},max_split={},workers={}",
        config.sim.eval_mode.name(),
        config.sim.batch_threshold_pct,
        prop,
        config.sim.attribution,
        config.policy.name(),
        config.constraints.len(),
        config.max_cycles_per_segment,
        config.max_paths,
        config.max_split_signals,
        config.workers,
    )
}

/// The combined run fingerprint: FNV over the design, program, and config
/// hashes.
pub fn combined(design: u64, program: u64, config_str: &str) -> u64 {
    let mut h = Fnv::new();
    h.word(design);
    h.word(program);
    h.bytes(config_str.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_sim::EvalMode;

    #[test]
    fn program_hash_is_content_and_length_sensitive() {
        assert_eq!(
            program_fingerprint(&[1, 2, 3]),
            program_fingerprint(&[1, 2, 3])
        );
        assert_ne!(
            program_fingerprint(&[1, 2, 3]),
            program_fingerprint(&[1, 2, 4])
        );
        assert_ne!(
            program_fingerprint(&[1, 2]),
            program_fingerprint(&[1, 2, 0])
        );
        assert_ne!(program_fingerprint(&[]), program_fingerprint(&[0]));
    }

    #[test]
    fn config_string_tracks_behavioral_fields() {
        let base = CoAnalysisConfig::default();
        let s = config_string(&base);
        assert!(s.contains("mode=hybrid"), "{s}");
        assert!(s.contains("workers=1"), "{s}");
        let mut other = CoAnalysisConfig::default();
        other.sim.eval_mode = EvalMode::Event;
        assert_ne!(s, config_string(&other));
        assert_ne!(combined(1, 2, &s), combined(1, 2, &config_string(&other)));
        // observability plumbing is not identity
        let mut traced = CoAnalysisConfig::default();
        traced.sim.profile_phases = true;
        assert_eq!(s, config_string(&traced));
    }
}
