use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use symsim_logic::{Value, Word};
use symsim_netlist::{NetId, Netlist};
use symsim_obs::{
    debug, info, trace, CounterId, GaugeId, HistogramId, MetricsRegistry, DIRTY_PCT_BUCKETS,
};
use symsim_sim::{HaltReason, MonitorSpec, SimConfig, SimState, Simulator, ToggleProfile};

use crate::csm::{ConservativeStateManager, CsmKey, CsmPolicy, Observation, StateConstraint};
use crate::report::CoAnalysisReport;
use crate::sched::WorkQueue;

/// The handful of design-specific facts co-analysis needs — everything else
/// is design-agnostic (the point of the paper). The `symsim-cpu` crate
/// provides these for its three processors.
#[derive(Debug, Clone)]
pub struct DesignInterface {
    /// Program-counter bus (LSB first), used to index conservative states.
    pub pc: Vec<NetId>,
    /// The `$monitor_x` registration: control-flow signals and qualifier.
    pub monitor: MonitorSpec,
    /// The "appropriate control flow signals" the CSM sets to steer each
    /// spawned path (paper §3). Defaults to the monitored signals; a design
    /// may narrow it (openMSP430 halts on any X flag but forks only on the
    /// branch's selected condition).
    pub split_signals: Option<Vec<NetId>>,
    /// Net asserted when the application completes.
    pub finish: NetId,
}

/// Tuning knobs for a co-analysis run.
#[derive(Debug, Clone)]
pub struct CoAnalysisConfig {
    /// Simulator configuration (propagation policy, tracing, ...).
    pub sim: SimConfig,
    /// Conservative-state formation policy (paper Fig. 3).
    pub policy: CsmPolicy,
    /// Application constraints applied to formed states (paper §3.3).
    pub constraints: Vec<StateConstraint>,
    /// Cycle budget for any single path segment.
    pub max_cycles_per_segment: u64,
    /// Hard cap on total paths created (runaway safeguard). Children past
    /// the cap are dropped and counted in
    /// [`CoAnalysisReport::paths_dropped`].
    pub max_paths: usize,
    /// At most this many unknown control signals are enumerated per split
    /// (`2^n` children); extra unknowns stay `X` and re-split later.
    pub max_split_signals: usize,
    /// Worker threads; `1` runs sequentially, more parallelizes path
    /// exploration with a shared CSM (paper §3.3) over a work-stealing
    /// scheduler.
    pub workers: usize,
    /// Per-net switching weights; when set, every worker collects
    /// [`symsim_sim::ActivityStats`] and the report carries the merged
    /// statistics (for peak-power/energy analysis).
    pub activity_weights: Option<Vec<f64>>,
    /// Shared metrics registry for live progress (heartbeat) visibility.
    /// When `None` the run creates a private one; the final snapshot is
    /// embedded in the report either way. A registry must serve exactly
    /// one run: reusing it across runs sums their counters.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for CoAnalysisConfig {
    fn default() -> Self {
        CoAnalysisConfig {
            sim: SimConfig::default(),
            policy: CsmPolicy::SingleMerge,
            constraints: Vec::new(),
            max_cycles_per_segment: 200_000,
            max_paths: 100_000,
            max_split_signals: 6,
            workers: 1,
            activity_weights: None,
            metrics: None,
        }
    }
}

/// How a popped path segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathOutcome {
    /// The application ran to completion on this path.
    Finished,
    /// The halted state was covered by a conservative state: skipped.
    Covered,
    /// The path split into children at a non-deterministic branch (the
    /// count excludes children dropped by the path cap).
    Split(usize),
    /// The per-segment cycle budget ran out.
    Budget,
}

#[derive(Debug)]
struct Task {
    state: SimState,
    forces: Vec<(NetId, Value)>,
}

// the engine and the registry accumulate the dirty-fraction distribution
// with the same decile bucket layout; folding relies on that
const _: () = assert!(DIRTY_PCT_BUCKETS == symsim_sim::DIRTY_PCT_BUCKETS);

/// Algorithm 1 of the paper: symbolic hardware-software co-analysis.
///
/// Drives a [`Simulator`] over every feasible execution path of the loaded
/// application, managing conservative states through a
/// [`ConservativeStateManager`], and accumulates the toggle profile that
/// yields the exercisable-gate dichotomy.
#[derive(Debug)]
pub struct CoAnalysis<'n> {
    netlist: &'n Netlist,
    iface: DesignInterface,
    config: CoAnalysisConfig,
}

impl<'n> CoAnalysis<'n> {
    /// Prepares a co-analysis of `netlist` with the given interface.
    pub fn new(
        netlist: &'n Netlist,
        iface: DesignInterface,
        config: CoAnalysisConfig,
    ) -> CoAnalysis<'n> {
        CoAnalysis {
            netlist,
            iface,
            config,
        }
    }

    /// Runs the complete co-analysis.
    ///
    /// `prepare` must bring a fresh simulator to the start-of-application
    /// state: load the program image, drive reset, and replace application
    /// inputs with `X`s (the testbench duties of paper Listing 1). It is
    /// invoked once per worker and must be deterministic.
    pub fn run<F>(&self, prepare: F) -> CoAnalysisReport
    where
        F: Fn(&mut Simulator<'_>) + Sync,
    {
        let start = Instant::now();
        let _span = trace::span("analysis");
        let workers = self.config.workers.max(1);
        let registry = self
            .config
            .metrics
            .clone()
            .unwrap_or_else(|| Arc::new(MetricsRegistry::new(workers)));
        // the path cap is enforced with a CAS grant loop on this dedicated
        // counter; every grant is mirrored into the sharded registry, so the
        // sharded sum equals the clamp total exactly
        let created = AtomicUsize::new(0);
        let csm = Mutex::new({
            let mut c = ConservativeStateManager::new(self.config.policy);
            c.set_constraints(self.config.constraints.clone());
            c.set_metrics(Arc::clone(&registry));
            c
        });
        info!(
            "analysis.start",
            { design = self.netlist.name.as_str(), workers = workers, max_paths = self.config.max_paths },
            "co-analysis of {} starting", self.netlist.name
        );

        // root task from a freshly prepared simulator
        let root_state = {
            let mut sim = self.make_sim(&prepare);
            sim.save_state()
        };
        created.fetch_add(1, Ordering::Relaxed);
        registry.shard(0).inc(CounterId::PathsCreated);
        let queue: WorkQueue<Task> = WorkQueue::with_metrics(workers, Arc::clone(&registry));
        queue.inject(Task {
            state: root_state,
            forces: Vec::new(),
        });

        let profiles = Mutex::new(Vec::<ToggleProfile>::new());
        let activities = Mutex::new(Vec::<symsim_sim::ActivityStats>::new());

        std::thread::scope(|scope| {
            for w in 0..workers {
                let queue = &queue;
                let csm = &csm;
                let created = &created;
                let registry = &registry;
                let profiles = &profiles;
                let activities = &activities;
                let prepare = &prepare;
                scope.spawn(move || {
                    let mut sim = self.make_sim(prepare);
                    self.worker_loop(w, &mut sim, queue, csm, created, registry);
                    // engine statistics are plain fields (no hot-path
                    // atomics); each worker drains its own once at exit
                    let stats = sim.engine_stats();
                    let shard = registry.shard(w);
                    shard.add(CounterId::BatchedLevelEvals, stats.batched_level_evals);
                    shard.add(CounterId::EventEvals, stats.event_evals);
                    shard.add(CounterId::ForcedWrites, stats.forced_writes);
                    for (bucket, &n) in stats.dirty_pct_hist.iter().enumerate() {
                        shard.observe_bucket(HistogramId::DirtyFractionPct, bucket, n);
                    }
                    if let Some(p) = sim.take_toggle_profile() {
                        profiles.lock().unwrap().push(p);
                    }
                    if let Some(a) = sim.take_activity() {
                        activities.lock().unwrap().push(a);
                    }
                });
            }
        });

        let mut profiles = profiles.into_inner().unwrap();
        let mut profile = profiles.pop().expect("at least one worker profile");
        for p in &profiles {
            profile.merge(p);
        }
        let mut activities = activities.into_inner().unwrap();
        let activity = activities.pop().map(|mut first| {
            for a in &activities {
                first.merge(a);
            }
            first
        });
        let csm = csm.into_inner().unwrap();
        // the repository-size gauges are updated on widenings only; pin them
        // to the authoritative values before the final snapshot
        registry
            .shard(0)
            .gauge_set(GaugeId::CsmStoredStates, csm.stored_states() as i64);
        registry
            .shard(0)
            .gauge_set(GaugeId::CsmDistinctPcs, csm.distinct_pcs() as i64);
        let metrics = registry.snapshot();
        let report =
            CoAnalysisReport::assemble(self.netlist, profile, activity, metrics, start.elapsed());
        info!(
            "analysis.done",
            {
                paths_created = report.paths_created,
                paths_skipped = report.paths_skipped,
                paths_finished = report.paths_finished,
                cycles = report.simulated_cycles,
                distinct_pcs = report.distinct_pcs
            },
            "co-analysis of {} done in {:?}", report.design, report.wall_time
        );
        report
    }

    fn make_sim<F>(&self, prepare: &F) -> Simulator<'n>
    where
        F: Fn(&mut Simulator<'_>),
    {
        let mut sim = Simulator::new(self.netlist, self.config.sim);
        prepare(&mut sim);
        sim.settle();
        sim.monitor_x(self.iface.monitor.clone());
        sim.set_finish_net(self.iface.finish);
        sim.arm_toggle_observer();
        if let Some(weights) = &self.config.activity_weights {
            sim.attach_activity_observer(weights.clone());
        }
        sim
    }

    fn worker_loop(
        &self,
        worker: usize,
        sim: &mut Simulator<'_>,
        queue: &WorkQueue<Task>,
        csm: &Mutex<ConservativeStateManager>,
        created: &AtomicUsize,
        registry: &Arc<MetricsRegistry>,
    ) {
        while let Some(task) = queue.next_task(worker) {
            self.run_segment(worker, sim, task, queue, csm, created, registry);
            queue.task_done();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_segment(
        &self,
        worker: usize,
        sim: &mut Simulator<'_>,
        task: Task,
        queue: &WorkQueue<Task>,
        csm: &Mutex<ConservativeStateManager>,
        created: &AtomicUsize,
        registry: &Arc<MetricsRegistry>,
    ) -> PathOutcome {
        let _span = trace::span("segment");
        let shard = registry.shard(worker);
        shard.inc(CounterId::PathsSimulated);
        sim.load_state(&task.state);
        let seg_start = sim.cycle();

        // steer the non-deterministic branch down this task's outcome
        let mut pending: Option<HaltReason> = None;
        if !task.forces.is_empty() {
            for &(net, value) in &task.forces {
                sim.force(net, value);
            }
            sim.settle();
            pending = sim.step_cycle();
            sim.release_all();
        }

        let reason = match pending.take() {
            Some(r) => r,
            None => sim.run(self.config.max_cycles_per_segment),
        };
        let outcome = match reason {
            HaltReason::Finished => {
                shard.inc(CounterId::PathsFinished);
                debug!(
                    "path.complete",
                    { worker = worker },
                    "path ran the application to completion"
                );
                PathOutcome::Finished
            }
            HaltReason::MaxCycles => {
                shard.inc(CounterId::PathsBudgetExhausted);
                debug!(
                    "path.budget",
                    { worker = worker, budget = self.config.max_cycles_per_segment },
                    "path abandoned on the per-segment cycle budget"
                );
                PathOutcome::Budget
            }
            HaltReason::MonitorX { .. } => {
                let pc = sim.read_bus(&self.iface.pc);
                let state = sim.save_state();
                let observation = csm.lock().unwrap().observe_key(pc_key(&pc), &state);
                match observation {
                    Observation::Covered => {
                        shard.inc(CounterId::PathsSkipped);
                        debug!(
                            "path.skip",
                            { worker = worker },
                            "halted state covered; path skipped"
                        );
                        PathOutcome::Covered
                    }
                    Observation::NewConservative(cons) => {
                        let children = self.spawn_children(worker, &cons, queue, created, registry);
                        PathOutcome::Split(children)
                    }
                }
            }
        };
        let seg_cycles = sim.cycle() - seg_start;
        shard.add(CounterId::Cycles, seg_cycles);
        shard.observe(HistogramId::SegmentCycles, seg_cycles);
        outcome
    }

    /// Pushes one child task per concretization of the unknown monitored
    /// control signals in the conservative state, clamped to the remaining
    /// `max_paths` budget; dropped children are counted, never silently
    /// lost.
    fn spawn_children(
        &self,
        worker: usize,
        cons: &SimState,
        queue: &WorkQueue<Task>,
        created: &AtomicUsize,
        registry: &Arc<MetricsRegistry>,
    ) -> usize {
        let mut xs: Vec<NetId> = Vec::new();
        if let Some(q) = self.iface.monitor.qualifier {
            if cons.values[q.0 as usize].is_unknown() {
                xs.push(q);
            }
        }
        let candidates = self
            .iface
            .split_signals
            .as_deref()
            .unwrap_or(&self.iface.monitor.signals);
        for &s in candidates {
            if cons.values[s.0 as usize].is_unknown() {
                xs.push(s);
            }
        }
        xs.truncate(self.config.max_split_signals);
        let combos = 1usize << xs.len();

        // claim budget from the path cap *before* materializing children so
        // `paths_created` can never overshoot `max_paths`
        let granted = loop {
            let so_far = created.load(Ordering::SeqCst);
            let remaining = self.config.max_paths.saturating_sub(so_far);
            let grant = combos.min(remaining);
            if grant == 0 {
                break 0;
            }
            if created
                .compare_exchange(so_far, so_far + grant, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break grant;
            }
        };
        let shard = registry.shard(worker);
        if granted < combos {
            shard.add(CounterId::PathsDropped, (combos - granted) as u64);
        }
        debug!(
            "path.fork",
            { worker = worker, children = granted, dropped = combos - granted },
            "path split at a non-deterministic branch"
        );
        if granted == 0 {
            return 0;
        }
        shard.add(CounterId::PathsCreated, granted as u64);
        shard.observe(HistogramId::SplitFanout, granted as u64);
        queue.push_local(
            worker,
            (0..granted).map(|combo| {
                let forces = xs
                    .iter()
                    .enumerate()
                    .map(|(i, &net)| (net, Value::from_bool(combo >> i & 1 == 1)))
                    .collect();
                Task {
                    // cheap: copy-on-write pages, only dirty pages ever split
                    state: cons.clone(),
                    forces,
                }
            }),
        );
        granted
    }
}

/// Canonical CSM key for a PC value: the integer when fully known, the
/// bit pattern otherwise — no string formatting on the hot path.
fn pc_key(pc: &Word) -> CsmKey {
    match pc.to_u64() {
        Some(v) => CsmKey::Concrete(v),
        None => CsmKey::Pattern(pc.iter().copied().collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_netlist::RtlBuilder;

    /// A miniature "processor": 3-bit PC counting up; at PC==2 a branch on
    /// an X input either jumps back to 0 or continues; finish at PC==5.
    fn branchy_design() -> (Netlist, DesignInterface) {
        let mut b = RtlBuilder::new("branchy");
        let cond_in = b.input("cond_in", 1);
        let pc = b.reg("pc", 3, 0);
        let pcq = pc.q.clone();
        let one3 = b.const_word(1, 3);
        let next_seq = b.add(&pcq, &one3);
        let two = b.const_word(2, 3);
        let at_branch_raw = b.eq(&pcq, &two);
        // monitored/forced nets must be the ones consumers read, so name
        // them in place via aliases that feed the datapath
        let at_branch = b.name_net("is_branch", at_branch_raw);
        let target = b.const_word(0, 3);
        let taken_raw = b.and1(at_branch, cond_in.bit(0));
        let taken = b.name_net("taken", taken_raw);
        let next = b.mux(taken, &next_seq, &target);
        b.drive_reg(pc, &next);
        let five = b.const_word(5, 3);
        let done_raw = b.eq(&pcq, &five);
        let done = b.name_net("done", done_raw);
        let done_b = symsim_netlist::Bus::from_nets(vec![done]);
        b.output("done_out", &done_b);
        let nl = b.finish().unwrap();
        let map = nl.net_name_map();
        let iface = DesignInterface {
            pc: (0..3).map(|i| map[format!("pc[{i}]").as_str()]).collect(),
            monitor: MonitorSpec {
                qualifier: Some(map["is_branch"]),
                signals: vec![map["taken"]],
            },
            split_signals: None,
            finish: map["done"],
        };
        (nl, iface)
    }

    #[test]
    fn explores_both_branch_outcomes() {
        let (nl, iface) = branchy_design();
        let config = CoAnalysisConfig {
            max_cycles_per_segment: 100,
            ..CoAnalysisConfig::default()
        };
        let analysis = CoAnalysis::new(&nl, iface, config);
        let cond = nl.find_net("cond_in").unwrap();
        let report = analysis.run(|sim| {
            sim.poke(cond, Value::X);
        });
        // root + two children at the branch; the loop-back path re-reaches
        // the branch, is covered, and is skipped
        assert!(report.paths_created >= 3, "{report:?}");
        assert!(report.paths_skipped >= 1, "{report:?}");
        assert!(report.paths_finished >= 1, "{report:?}");
        assert_eq!(report.paths_dropped, 0, "no cap hit: {report:?}");
        assert!(report.simulated_cycles > 0);
        assert_eq!(report.total_gates, nl.total_gate_count());
        assert!(report.exercisable_gates <= report.total_gates);
        assert!(report.exercisable_gates > 0);
    }

    #[test]
    fn concrete_condition_yields_single_path() {
        let (nl, iface) = branchy_design();
        let analysis = CoAnalysis::new(&nl, iface, CoAnalysisConfig::default());
        let cond = nl.find_net("cond_in").unwrap();
        let report = analysis.run(|sim| {
            sim.poke(cond, Value::ZERO);
        });
        assert_eq!(report.paths_created, 1);
        assert_eq!(report.paths_skipped, 0);
        assert_eq!(report.paths_finished, 1);
    }

    #[test]
    fn parallel_matches_sequential_soundness() {
        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        let seq = CoAnalysis::new(&nl, iface.clone(), CoAnalysisConfig::default())
            .run(|sim| sim.poke(cond, Value::X));
        let par_cfg = CoAnalysisConfig {
            workers: 4,
            ..CoAnalysisConfig::default()
        };
        let par = CoAnalysis::new(&nl, iface, par_cfg).run(|sim| sim.poke(cond, Value::X));
        // exercisable sets converge to the same fixpoint on this design
        assert_eq!(seq.exercisable_gates, par.exercisable_gates);
        assert_eq!(seq.paths_finished, par.paths_finished);
    }

    #[test]
    fn max_paths_caps_exploration() {
        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        let config = CoAnalysisConfig {
            max_paths: 1,
            ..CoAnalysisConfig::default()
        };
        let report = CoAnalysis::new(&nl, iface, config).run(|sim| sim.poke(cond, Value::X));
        assert_eq!(report.paths_created, 1);
    }

    #[test]
    fn paths_created_never_exceeds_max_paths() {
        // regression: the cap used to be checked before the 2^n child count
        // was known, so `paths_created` could overshoot by up to 2^n - 1
        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        for cap in 1..=4usize {
            let config = CoAnalysisConfig {
                max_paths: cap,
                ..CoAnalysisConfig::default()
            };
            let report =
                CoAnalysis::new(&nl, iface.clone(), config).run(|sim| sim.poke(cond, Value::X));
            assert!(
                report.paths_created <= cap,
                "cap {cap} overshot: {report:?}"
            );
            // the branch splits into 2 children; any cap that truncates the
            // full exploration must show up in the dropped counter
            if report.paths_created == cap && cap < 3 {
                assert!(report.paths_dropped > 0, "cap {cap}: {report:?}");
            }
        }
    }

    #[test]
    fn report_fields_match_metrics_snapshot() {
        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        let registry = Arc::new(MetricsRegistry::new(4));
        let config = CoAnalysisConfig {
            workers: 4,
            metrics: Some(Arc::clone(&registry)),
            ..CoAnalysisConfig::default()
        };
        let report = CoAnalysis::new(&nl, iface, config).run(|sim| sim.poke(cond, Value::X));
        let m = &report.metrics;
        assert_eq!(m.counter("paths_created"), report.paths_created as u64);
        assert_eq!(m.counter("paths_dropped"), report.paths_dropped as u64);
        assert_eq!(m.counter("paths_skipped"), report.paths_skipped as u64);
        assert_eq!(m.counter("paths_finished"), report.paths_finished as u64);
        assert_eq!(m.counter("cycles"), report.simulated_cycles);
        assert_eq!(m.counter("batched_level_evals"), report.batched_level_evals);
        assert_eq!(m.counter("event_evals"), report.event_evals);
        // the live registry agrees with the embedded snapshot
        assert_eq!(
            registry.counter_total(CounterId::PathsCreated),
            report.paths_created as u64
        );
        // every claimed path was released and every queue drained
        assert_eq!(m.gauge("paths_live"), 0);
        assert_eq!(m.gauge("paths_queued"), 0);
        // the CSM gauges carry the authoritative end-of-run values
        assert_eq!(m.gauge("csm_distinct_pcs"), report.distinct_pcs as i64);
        // a segment ran for every simulated path
        let hist = &m.histograms[HistogramId::SegmentCycles as usize];
        assert_eq!(hist.name, "segment_cycles");
        assert_eq!(hist.samples, report.paths_simulated as u64);
    }

    #[test]
    fn pc_key_forms() {
        assert_eq!(pc_key(&Word::from_u64(12, 8)), CsmKey::Concrete(12));
        let mut w = Word::from_u64(0, 2);
        w.set_bit(1, Value::X);
        let CsmKey::Pattern(bits) = pc_key(&w) else {
            panic!("partially-unknown PC must key by bit pattern");
        };
        assert_eq!(&*bits, &[Value::ZERO, Value::X]);
    }
}
