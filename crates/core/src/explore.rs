use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use symsim_compile::{CompiledKernel, PrepareOpts};
use symsim_logic::{plane::Lanes, Value, Word};
use symsim_netlist::{NetId, Netlist};
use symsim_obs::{
    debug, info, trace, tracefile, warn, CounterId, GaugeId, HistogramId, MetricsRegistry,
    TraceSink, DIRTY_PCT_BUCKETS,
};
use symsim_sim::{
    CohortLaneEnd, EvalMode, HaltReason, MonitorSpec, SimConfig, SimState, Simulator, ToggleProfile,
};

use crate::csm::{
    validate_constraints, ConservativeStateManager, CsmKey, CsmPolicy, Observation, StateConstraint,
};
use crate::provenance::Collector;
use crate::report::CoAnalysisReport;
use crate::sched::{TaskWeight, WorkQueue};

/// The handful of design-specific facts co-analysis needs — everything else
/// is design-agnostic (the point of the paper). The `symsim-cpu` crate
/// provides these for its three processors.
#[derive(Debug, Clone)]
pub struct DesignInterface {
    /// Program-counter bus (LSB first), used to index conservative states.
    pub pc: Vec<NetId>,
    /// The `$monitor_x` registration: control-flow signals and qualifier.
    pub monitor: MonitorSpec,
    /// The "appropriate control flow signals" the CSM sets to steer each
    /// spawned path (paper §3). Defaults to the monitored signals; a design
    /// may narrow it (openMSP430 halts on any X flag but forks only on the
    /// branch's selected condition).
    pub split_signals: Option<Vec<NetId>>,
    /// Net asserted when the application completes.
    pub finish: NetId,
}

/// Tuning knobs for a co-analysis run.
#[derive(Debug, Clone)]
pub struct CoAnalysisConfig {
    /// Simulator configuration (propagation policy, tracing, ...).
    pub sim: SimConfig,
    /// Conservative-state formation policy (paper Fig. 3).
    pub policy: CsmPolicy,
    /// Application constraints applied to formed states (paper §3.3).
    pub constraints: Vec<StateConstraint>,
    /// Cycle budget for any single path segment.
    pub max_cycles_per_segment: u64,
    /// Hard cap on total paths created (runaway safeguard). Children past
    /// the cap are dropped and counted in
    /// [`CoAnalysisReport::paths_dropped`].
    pub max_paths: usize,
    /// At most this many unknown control signals are enumerated per split
    /// (`2^n` children); extra unknowns stay `X` and re-split later.
    pub max_split_signals: usize,
    /// Worker threads; `1` runs sequentially, more parallelizes path
    /// exploration with a shared CSM (paper §3.3) over a work-stealing
    /// scheduler.
    pub workers: usize,
    /// Per-net switching weights; when set, every worker collects
    /// [`symsim_sim::ActivityStats`] and the report carries the merged
    /// statistics (for peak-power/energy analysis).
    pub activity_weights: Option<Vec<f64>>,
    /// Shared metrics registry for live progress (heartbeat) visibility.
    /// When `None` the run creates a private one; the final snapshot is
    /// embedded in the report either way. A registry must serve exactly
    /// one run: reusing it across runs sums their counters.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Run-trace sink (`--trace-out`): every path fork, CSM decision, and
    /// path outcome is recorded as an NDJSON event, and per-segment phase
    /// timing (restore/exec/save/CSM, plus engine settle/batch/event time)
    /// is both carried on the `path_end` records and observed into the
    /// `phase_*_us` histograms. `None` keeps the hot path free of
    /// timestamps entirely. The caller owns the sink's lifecycle
    /// ([`TraceSink::finish`] merges and flushes the shards).
    pub trace: Option<Arc<TraceSink>>,
}

impl Default for CoAnalysisConfig {
    fn default() -> Self {
        CoAnalysisConfig {
            sim: SimConfig::default(),
            policy: CsmPolicy::SingleMerge,
            constraints: Vec::new(),
            max_cycles_per_segment: 200_000,
            max_paths: 100_000,
            max_split_signals: 6,
            workers: 1,
            activity_weights: None,
            metrics: None,
            trace: None,
        }
    }
}

/// How a popped path segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathOutcome {
    /// The application ran to completion on this path.
    Finished,
    /// The halted state was covered by a conservative state: skipped.
    Covered,
    /// The path split into children at a non-deterministic branch (the
    /// count excludes children dropped by the path cap).
    Split(usize),
    /// The per-segment cycle budget ran out.
    Budget,
    /// Killed at dequeue by pre-split subsumption (adaptive policy only):
    /// a conservative state formed after this child's fork covered its
    /// start state, so the path was never simulated — it consumed a path
    /// id but no segment, and emits no `path_start`/`path_end` records.
    Killed,
}

#[derive(Debug)]
struct Task {
    /// Trace-visible path identity. Ids are grants from the `created`
    /// counter: the root takes 0 and a fork's children take the contiguous
    /// range its CAS grant claimed, so ids are unique without any extra
    /// synchronization and the lineage tree is reconstructible from the
    /// fork records alone.
    id: u64,
    state: SimState,
    forces: Vec<(NetId, Value)>,
    /// Cycle budget override: a lane spilled out of a cohort continues
    /// with what remains of the segment budget it already partly consumed
    /// (`None` = the full per-segment budget).
    budget: Option<u64>,
    /// Cycles this path already consumed inside a cohort before spilling;
    /// folded into the segment's cycle accounting so the path's totals
    /// match a never-spilled (event-mode) run exactly.
    carried: u64,
    /// The fork this child came from: the CSM key it split at and the
    /// formation sequence number of the conservative state it split from.
    /// Consulted once at dequeue for pre-split subsumption (adaptive
    /// policy): a state formed after `born_seq` that covers this child's
    /// forced start state makes it redundant. `None` for the root, for
    /// spilled-lane continuations, and for lanes already screened by
    /// their cohort.
    fork: Option<(CsmKey, usize)>,
}

impl Task {
    fn fresh(id: u64, state: SimState, forces: Vec<(NetId, Value)>) -> Task {
        Task {
            id,
            state,
            forces,
            budget: None,
            carried: 0,
            fork: None,
        }
    }

    fn forked(
        id: u64,
        state: SimState,
        forces: Vec<(NetId, Value)>,
        fork: (CsmKey, usize),
    ) -> Task {
        Task {
            fork: Some(fork),
            ..Task::fresh(id, state, forces)
        }
    }
}

/// Up to 64 sibling paths from one fork, simulated together in cohort
/// eval mode. Lane `l` is path `first + l` taking branch combination
/// `base_combo + l` over `signals`.
#[derive(Debug)]
struct CohortTask {
    first: u64,
    base_combo: usize,
    n: usize,
    state: SimState,
    signals: Vec<NetId>,
    /// Fork provenance for the dequeue-time pre-split subsumption screen,
    /// as in [`Task::fork`]; `None` once the member lanes have been
    /// screened (re-packed survivor runs).
    fork: Option<(CsmKey, usize)>,
}

/// A quiescent `$monitor_x` halt state awaiting its CSM observation —
/// produced by cohort lane demux so the observation happens at the same
/// scheduler position (and therefore in the same DFS order) as the
/// equivalent event-mode segment's inline observation.
#[derive(Debug)]
struct ObserveTask {
    id: u64,
    state: SimState,
    /// Segment cycles the lane consumed, for the `path_end` record.
    cycles: u64,
}

/// A schedulable work item. Event/batch/hybrid modes only ever queue
/// `Seg`; cohort mode adds cohort simulation items and deferred CSM
/// observations. With one worker the LIFO pop order over these items
/// reproduces event mode's depth-first CSM observation sequence exactly
/// (cohort items push their per-lane continuations in ascending lane
/// order, so the highest lane — the one event mode would pop first —
/// resolves first).
#[derive(Debug)]
enum Work {
    Seg(Task),
    Cohort(CohortTask),
    Observe(ObserveTask),
}

impl TaskWeight for Work {
    /// A cohort carries all of its member paths; everything else is one.
    fn weight(&self) -> usize {
        match self {
            Work::Cohort(c) => c.n,
            Work::Seg(_) | Work::Observe(_) => 1,
        }
    }
}

// the engine and the registry accumulate the dirty-fraction distribution
// with the same decile bucket layout; folding relies on that
const _: () = assert!(DIRTY_PCT_BUCKETS == symsim_sim::DIRTY_PCT_BUCKETS);

/// Algorithm 1 of the paper: symbolic hardware-software co-analysis.
///
/// Drives a [`Simulator`] over every feasible execution path of the loaded
/// application, managing conservative states through a
/// [`ConservativeStateManager`], and accumulates the toggle profile that
/// yields the exercisable-gate dichotomy.
#[derive(Debug)]
pub struct CoAnalysis<'n> {
    netlist: &'n Netlist,
    iface: DesignInterface,
    config: CoAnalysisConfig,
}

impl<'n> CoAnalysis<'n> {
    /// Prepares a co-analysis of `netlist` with the given interface.
    ///
    /// The configured constraints are validated against the design here —
    /// a constraint naming a net outside the netlist, pinning an unknown
    /// value, or contradicting another constraint is an error up front
    /// rather than a panic in the middle of exploration.
    pub fn new(
        netlist: &'n Netlist,
        iface: DesignInterface,
        config: CoAnalysisConfig,
    ) -> Result<CoAnalysis<'n>, String> {
        validate_constraints(&config.constraints, netlist.net_count())?;
        Ok(CoAnalysis {
            netlist,
            iface,
            config,
        })
    }

    /// Runs the complete co-analysis.
    ///
    /// `prepare` must bring a fresh simulator to the start-of-application
    /// state: load the program image, drive reset, and replace application
    /// inputs with `X`s (the testbench duties of paper Listing 1). It is
    /// invoked once per worker and must be deterministic.
    pub fn run<F>(&self, prepare: F) -> CoAnalysisReport
    where
        F: Fn(&mut Simulator<'_>) + Sync,
    {
        let start = Instant::now();
        let _span = trace::span("analysis");
        let workers = self.config.workers.max(1);
        let registry = self
            .config
            .metrics
            .clone()
            .unwrap_or_else(|| Arc::new(MetricsRegistry::new(workers)));
        // the path cap is enforced with a CAS grant loop on this dedicated
        // counter; the `paths_created` counter in the registry is bumped
        // when a path starts simulating instead, so children killed by
        // pre-split subsumption consume id budget but are never counted
        let created = AtomicUsize::new(0);
        let csm = Mutex::new({
            let mut c = ConservativeStateManager::new(self.config.policy);
            c.set_constraints(self.config.constraints.clone(), self.netlist.net_count())
                .expect("constraints were validated in CoAnalysis::new");
            c.set_metrics(Arc::clone(&registry));
            c.set_profile(self.config.trace.is_some());
            c
        });
        if let Some(tr) = &self.config.trace {
            tr.emit_meta(&self.netlist.name, workers);
        }
        // one kernel for the whole run: codegen/rustc cost is paid once
        // (or not at all on a cache hit) and the loaded dylib is shared by
        // every worker; a failed build degrades the run to the hybrid
        // interpreter rather than aborting it
        let compiled = self.prepare_compiled(&registry);
        let eval_mode = if self.config.sim.eval_mode == EvalMode::Compiled && compiled.is_none() {
            EvalMode::Hybrid
        } else {
            self.config.sim.eval_mode
        };
        info!(
            "analysis.start",
            { design = self.netlist.name.as_str(), workers = workers, max_paths = self.config.max_paths },
            "co-analysis of {} starting", self.netlist.name
        );

        // root task from a freshly prepared simulator
        let root_state = {
            let mut sim = self.make_sim(&prepare, compiled.as_ref());
            sim.save_state()
        };
        // the provenance collector seeds synthetic reset attributions from
        // the root snapshot — the same values ToggleProfile::baseline marks
        // toggled at arm time, since workers prepare deterministically
        let prov = self
            .config
            .sim
            .attribution
            .then(|| Mutex::new(Collector::new(&self.netlist.name, root_state.clone())));
        created.fetch_add(1, Ordering::Relaxed);
        let queue: WorkQueue<Work> = WorkQueue::with_metrics(workers, Arc::clone(&registry));
        queue.inject(Work::Seg(Task::fresh(0, root_state, Vec::new())));

        let profiles = Mutex::new(Vec::<ToggleProfile>::new());
        let activities = Mutex::new(Vec::<symsim_sim::ActivityStats>::new());

        std::thread::scope(|scope| {
            for w in 0..workers {
                let queue = &queue;
                let csm = &csm;
                let created = &created;
                let registry = &registry;
                let profiles = &profiles;
                let activities = &activities;
                let prepare = &prepare;
                let compiled = &compiled;
                let prov = &prov;
                scope.spawn(move || {
                    if self.config.trace.is_some() {
                        tracefile::set_thread_worker(w as i64);
                    }
                    let mut sim = self.make_sim(prepare, compiled.as_ref());
                    self.worker_loop(w, &mut sim, queue, csm, created, registry, prov.as_ref());
                    // engine statistics are plain fields (no hot-path
                    // atomics); each worker drains its own once at exit
                    let stats = sim.engine_stats();
                    let shard = registry.shard(w);
                    shard.add(CounterId::BatchedLevelEvals, stats.batched_level_evals);
                    shard.add(CounterId::EventEvals, stats.event_evals);
                    shard.add(CounterId::ForcedWrites, stats.forced_writes);
                    shard.add(CounterId::CompiledEvals, stats.compiled_evals);
                    for (bucket, &n) in stats.dirty_pct_hist.iter().enumerate() {
                        shard.observe_bucket(HistogramId::DirtyFractionPct, bucket, n);
                    }
                    if let Some(p) = sim.take_toggle_profile() {
                        profiles.lock().unwrap().push(p);
                    }
                    if let Some(a) = sim.take_activity() {
                        activities.lock().unwrap().push(a);
                    }
                });
            }
        });

        let mut profiles = profiles.into_inner().unwrap();
        let mut profile = profiles.pop().expect("at least one worker profile");
        for p in &profiles {
            profile.merge(p);
        }
        let mut activities = activities.into_inner().unwrap();
        let activity = activities.pop().map(|mut first| {
            for a in &activities {
                first.merge(a);
            }
            first
        });
        let csm = csm.into_inner().unwrap();
        // the repository-size gauges are updated on widenings only; pin them
        // to the authoritative values before the final snapshot
        registry
            .shard(0)
            .gauge_set(GaugeId::CsmStoredStates, csm.stored_states() as i64);
        registry
            .shard(0)
            .gauge_set(GaugeId::CsmDistinctPcs, csm.distinct_pcs() as i64);
        let metrics = registry.snapshot();
        // resolve provenance winners and dump the end-of-run cover_first
        // records before the caller finishes the trace sink
        let provenance = prov.map(|p| {
            let map = p.into_inner().unwrap().resolve();
            if let Some(t) = &self.config.trace {
                map.emit_cover_first(t);
            }
            map
        });
        let report = CoAnalysisReport::assemble(
            self.netlist,
            profile,
            activity,
            metrics,
            provenance,
            eval_mode.name(),
            start.elapsed(),
            workers,
        );
        info!(
            "analysis.done",
            {
                paths_created = report.paths_created,
                paths_skipped = report.paths_skipped,
                paths_finished = report.paths_finished,
                cycles = report.simulated_cycles,
                distinct_pcs = report.distinct_pcs
            },
            "co-analysis of {} done in {:?}", report.design, report.wall_time
        );
        report
    }

    /// Builds (or fetches from cache) the native settle kernel when the run
    /// was configured for [`EvalMode::Compiled`]; `None` means interpreted
    /// fallback — either the mode does not want a kernel or the build
    /// failed, in which case the failure is logged and metered but never
    /// fatal.
    fn prepare_compiled(&self, registry: &Arc<MetricsRegistry>) -> Option<Arc<CompiledKernel>> {
        if self.config.sim.eval_mode != EvalMode::Compiled {
            return None;
        }
        match CompiledKernel::prepare(self.netlist, &PrepareOpts::default()) {
            Ok(kernel) => {
                let info = kernel.info();
                let shard = registry.shard(0);
                shard.inc(if info.cache_hit {
                    CounterId::CompiledCacheHits
                } else {
                    CounterId::CompiledCacheMisses
                });
                shard.observe(HistogramId::PhaseCodegenUs, info.codegen_us);
                shard.observe(HistogramId::PhaseLoadUs, info.load_us);
                info!(
                    "compile.kernel",
                    {
                        design = self.netlist.name.as_str(),
                        cache_hit = info.cache_hit,
                        codegen_us = info.codegen_us,
                        load_us = info.load_us,
                        gates_emitted = info.gates_emitted as u64,
                        gates_folded = info.gates_folded as u64
                    },
                    "native settle kernel ready ({})",
                    if info.cache_hit { "cache hit" } else { "built" }
                );
                Some(Arc::new(kernel))
            }
            Err(e) => {
                warn!(
                    "compile.fallback",
                    { design = self.netlist.name.as_str(), error = e.as_str() },
                    "cannot build native kernel, falling back to hybrid interpretation: {e}"
                );
                None
            }
        }
    }

    fn make_sim<F>(&self, prepare: &F, compiled: Option<&Arc<CompiledKernel>>) -> Simulator<'n>
    where
        F: Fn(&mut Simulator<'_>),
    {
        let mut sim_config = self.config.sim;
        // tracing needs the engine's settle/batch/event timers
        sim_config.profile_phases |= self.config.trace.is_some();
        // a compiled run without a kernel degrades to the hybrid
        // interpreter (the fallback the report's `eval_mode` discloses)
        if sim_config.eval_mode == EvalMode::Compiled && compiled.is_none() {
            sim_config.eval_mode = EvalMode::Hybrid;
        }
        let mut sim = Simulator::new(self.netlist, sim_config);
        if let Some(kernel) = compiled {
            sim.attach_compiled_kernel(Arc::clone(kernel));
        }
        prepare(&mut sim);
        sim.settle();
        sim.monitor_x(self.iface.monitor.clone());
        sim.set_finish_net(self.iface.finish);
        sim.arm_toggle_observer();
        if let Some(weights) = &self.config.activity_weights {
            sim.attach_activity_observer(weights.clone());
        }
        sim
    }

    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        &self,
        worker: usize,
        sim: &mut Simulator<'_>,
        queue: &WorkQueue<Work>,
        csm: &Mutex<ConservativeStateManager>,
        created: &AtomicUsize,
        registry: &Arc<MetricsRegistry>,
        prov: Option<&Mutex<Collector>>,
    ) {
        let tracing = self.config.trace.is_some();
        loop {
            // time spent waiting on (or stealing from) the scheduler is a
            // phase of its own; the final pop that observes shutdown is not
            // recorded because there is no segment to attribute it to
            let wait_t0 = tracing.then(Instant::now);
            let Some(work) = queue.next_task(worker) else {
                break;
            };
            let wait_us = elapsed_us(wait_t0);
            if tracing {
                registry
                    .shard(worker)
                    .observe(HistogramId::PhaseSchedWaitUs, wait_us);
            }
            let weight = work.weight();
            match work {
                Work::Seg(task) => {
                    self.run_segment(
                        worker, sim, task, wait_us, queue, csm, created, registry, prov,
                    );
                }
                Work::Cohort(task) => {
                    self.run_cohort(worker, sim, task, queue, csm, registry, prov);
                }
                Work::Observe(task) => {
                    self.run_observe(worker, task, queue, csm, created, registry, prov);
                }
            }
            queue.task_done(weight);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_segment(
        &self,
        worker: usize,
        sim: &mut Simulator<'_>,
        task: Task,
        wait_us: u64,
        queue: &WorkQueue<Work>,
        csm: &Mutex<ConservativeStateManager>,
        created: &AtomicUsize,
        registry: &Arc<MetricsRegistry>,
        prov: Option<&Mutex<Collector>>,
    ) -> PathOutcome {
        let _span = trace::span("segment");
        let tr = self.config.trace.as_deref();
        let shard = registry.shard(worker);
        // dequeue-time pre-split subsumption: under depth-first pop order
        // a sibling's subtree runs to exhaustion before this queued child
        // comes up, and the widenings it caused at the fork PC may by now
        // cover this child's start state — kill it before it costs a
        // segment. `covered_presplit` only ever fires under the adaptive
        // policy; the gate here just avoids the probe clone elsewhere
        if let Some((key, born_seq)) = &task.fork {
            if matches!(self.config.policy, CsmPolicy::Adaptive { .. }) {
                let csm_t0 = tr.map(|_| Instant::now());
                let mut probe = task.state.clone();
                for &(net, value) in &task.forces {
                    probe.values[net.0 as usize] = value;
                }
                let covered = csm.lock().unwrap().covered_presplit(key, &probe, *born_seq);
                if covered {
                    shard.inc(CounterId::PathsKilledPresplit);
                    if let Some(t) = tr {
                        let pc_label = key.to_string();
                        t.emit(worker as i64, "csm", |o| {
                            o.u64("path", task.id)
                                .str("pc", &pc_label)
                                .str("kind", "kill")
                                .u64("dur_us", elapsed_us(csm_t0));
                        });
                    }
                    debug!(
                        "path.presplit_kill",
                        { worker = worker, path = task.id },
                        "queued child covered by a later-formed conservative state"
                    );
                    return PathOutcome::Killed;
                }
            }
        }
        shard.inc(CounterId::PathsSimulated);
        // a path is "created" when it actually starts simulating; spilled
        // cohort lanes (carried > 0) were counted when their cohort began
        if task.carried == 0 {
            shard.inc(CounterId::PathsCreated);
        }
        let seg_t0 = tr.map(|_| Instant::now());
        let engine_before = tr.map(|_| sim.engine_stats());

        let restore_t0 = tr.map(|_| Instant::now());
        sim.load_state(&task.state);
        let restore_us = elapsed_us(restore_t0);
        let seg_start = sim.cycle();
        // a spilled lane's path_start was already emitted when its cohort
        // began; its continuation is the same traced segment
        if task.carried == 0 {
            if let Some(t) = tr {
                t.emit(worker as i64, "path_start", |o| {
                    o.u64("path", task.id).u64("cycle", seg_start);
                });
            }
        }

        // steer the non-deterministic branch down this task's outcome
        let exec_t0 = tr.map(|_| Instant::now());
        let mut pending: Option<HaltReason> = None;
        if !task.forces.is_empty() {
            for &(net, value) in &task.forces {
                sim.force(net, value);
            }
            sim.settle();
            pending = sim.step_cycle();
            sim.release_all();
        }

        let reason = match pending.take() {
            Some(r) => r,
            None => sim.run(task.budget.unwrap_or(self.config.max_cycles_per_segment)),
        };
        let exec_us = elapsed_us(exec_t0);
        let mut save_us = 0u64;
        let mut csm_us = 0u64;
        let outcome = match reason {
            HaltReason::Finished => {
                shard.inc(CounterId::PathsFinished);
                debug!(
                    "path.complete",
                    { worker = worker },
                    "path ran the application to completion"
                );
                PathOutcome::Finished
            }
            HaltReason::MaxCycles => {
                shard.inc(CounterId::PathsBudgetExhausted);
                debug!(
                    "path.budget",
                    { worker = worker, budget = self.config.max_cycles_per_segment },
                    "path abandoned on the per-segment cycle budget"
                );
                PathOutcome::Budget
            }
            HaltReason::MonitorX { .. } => {
                let pc = sim.read_bus(&self.iface.pc);
                let save_t0 = tr.map(|_| Instant::now());
                let state = sim.save_state();
                save_us = elapsed_us(save_t0);
                let key = pc_key(&pc);
                // the key renders to a string only when tracing
                let pc_label = tr.map(|_| key.to_string());
                let csm_t0 = tr.map(|_| Instant::now());
                let (observation, demotion, born_seq) = {
                    let mut guard = csm.lock().unwrap();
                    let obs = guard.observe_key(key.clone(), &state);
                    (obs, guard.take_demotion(), guard.formation_seq())
                };
                csm_us = elapsed_us(csm_t0);
                match observation {
                    Observation::Covered => {
                        shard.inc(CounterId::PathsSkipped);
                        if let Some(t) = tr {
                            t.emit(worker as i64, "csm", |o| {
                                o.u64("path", task.id)
                                    .str("pc", pc_label.as_deref().unwrap_or(""))
                                    .str("kind", "cover")
                                    .u64("dur_us", csm_us);
                            });
                        }
                        debug!(
                            "path.skip",
                            { worker = worker },
                            "halted state covered; path skipped"
                        );
                        PathOutcome::Covered
                    }
                    Observation::NewConservative(cons) => {
                        if let Some(t) = tr {
                            t.emit(worker as i64, "csm", |o| {
                                o.u64("path", task.id)
                                    .str("pc", pc_label.as_deref().unwrap_or(""))
                                    .str("kind", "widen")
                                    .u64("dur_us", csm_us);
                            });
                            if let Some(d) = demotion {
                                t.emit(worker as i64, "csm", |o| {
                                    o.u64("path", task.id)
                                        .str("pc", pc_label.as_deref().unwrap_or(""))
                                        .str("kind", "demote")
                                        .u64("slots", d.slots_collapsed as u64)
                                        .u64("dur_us", 0);
                                });
                            }
                        }
                        let children = self.spawn_children(
                            worker,
                            task.id,
                            pc_label.as_deref(),
                            &key,
                            &cons,
                            born_seq,
                            queue,
                            created,
                            registry,
                            prov,
                        );
                        PathOutcome::Split(children)
                    }
                }
            }
        };
        // a spilled lane's cohort cycles are carried into its continuation
        // so each path's cycle totals match a never-spilled run
        let seg_cycles = (sim.cycle() - seg_start) + task.carried;
        shard.add(CounterId::Cycles, seg_cycles);
        shard.observe(HistogramId::SegmentCycles, seg_cycles);
        if let Some(p) = prov {
            // drain this segment's first-toggle buffer; a spilled-lane
            // continuation (carried > 0) was already counted as a path when
            // its cohort packed, so it only contributes cycles here
            let obs: Vec<(u64, NetId, u64)> = sim
                .take_first_toggles()
                .unwrap_or_default()
                .into_iter()
                .map(|(net, cycle)| (task.id, net, cycle))
                .collect();
            p.lock().unwrap().submit(
                &obs,
                u64::from(task.carried == 0),
                seg_cycles,
                worker as i64,
                tr,
            );
        }
        if let Some(t) = tr {
            // engine-internal phase time is the delta of the simulator's
            // plain ns accumulators across the segment
            let before = engine_before.expect("taken when tracing");
            let after = sim.engine_stats();
            let settle_us = after.settle_ns.saturating_sub(before.settle_ns) / 1_000;
            let batch_us = after.batch_eval_ns.saturating_sub(before.batch_eval_ns) / 1_000;
            let event_us = after.event_eval_ns.saturating_sub(before.event_eval_ns) / 1_000;
            let seg_us = elapsed_us(seg_t0);
            shard.observe(HistogramId::PhaseSettleUs, settle_us);
            shard.observe(HistogramId::PhaseBatchEvalUs, batch_us);
            shard.observe(HistogramId::PhaseEventEvalUs, event_us);
            shard.observe(HistogramId::PhaseRestoreUs, restore_us);
            if save_us > 0 {
                shard.observe(HistogramId::PhaseSaveUs, save_us);
            }
            let children = match outcome {
                PathOutcome::Split(n) => n as u64,
                _ => 0,
            };
            t.emit(worker as i64, "path_end", |o| {
                o.u64("path", task.id)
                    .str("outcome", outcome_name(outcome))
                    .u64("cycles", seg_cycles)
                    .u64("children", children)
                    .u64("restore_us", restore_us)
                    .u64("exec_us", exec_us)
                    .u64("save_us", save_us)
                    .u64("csm_us", csm_us)
                    .u64("settle_us", settle_us)
                    .u64("batch_us", batch_us)
                    .u64("event_us", event_us)
                    .u64("wait_us", wait_us)
                    .u64("seg_us", seg_us);
            });
        }
        outcome
    }

    /// Simulates all member lanes of a cohort in one bit-plane pass, then
    /// demuxes each lane back into its own path outcome: finished/budget
    /// lanes close immediately, `$monitor_x` lanes queue an [`ObserveTask`]
    /// for their CSM observation, and spilled lanes queue a scalar
    /// continuation [`Task`] carrying the remaining segment budget.
    /// Continuations are pushed in ascending lane order so the LIFO pop
    /// resolves the highest lane first — the order event mode's scalar
    /// children would have run in.
    ///
    /// When the pack eligibility checks fail (symbol-carrying base state,
    /// non-anonymous policy, ...) the members fall back to exact scalar
    /// segments, also in lane order.
    #[allow(clippy::too_many_arguments)]
    fn run_cohort(
        &self,
        worker: usize,
        sim: &mut Simulator<'_>,
        task: CohortTask,
        queue: &WorkQueue<Work>,
        csm: &Mutex<ConservativeStateManager>,
        registry: &Arc<MetricsRegistry>,
        prov: Option<&Mutex<Collector>>,
    ) {
        let _span = trace::span("cohort");
        let tr = self.config.trace.as_deref();
        let shard = registry.shard(worker);
        let forces_of = |lane: usize| -> Vec<(NetId, Value)> {
            let combo = task.base_combo + lane;
            task.signals
                .iter()
                .enumerate()
                .map(|(j, &net)| (net, Value::from_bool(combo >> j & 1 == 1)))
                .collect()
        };
        // dequeue-time pre-split subsumption, lane by lane (the cohort
        // analogue of the screen at the top of `run_segment`): when any
        // lane is killed, the survivors are re-queued as maximal
        // contiguous lane runs with the check spent (`fork: None`) so the
        // bit-plane pass only carries lanes that still matter
        if let Some((key, born_seq)) = &task.fork {
            if matches!(self.config.policy, CsmPolicy::Adaptive { .. }) {
                let survivors: Vec<usize> = {
                    let guard = csm.lock().unwrap();
                    let mut probe = task.state.clone();
                    (0..task.n)
                        .filter(|&l| {
                            let combo = task.base_combo + l;
                            for (j, &net) in task.signals.iter().enumerate() {
                                probe.values[net.0 as usize] =
                                    Value::from_bool(combo >> j & 1 == 1);
                            }
                            !guard.covered_presplit(key, &probe, *born_seq)
                        })
                        .collect()
                };
                let killed = task.n - survivors.len();
                if killed > 0 {
                    shard.add(CounterId::PathsKilledPresplit, killed as u64);
                    debug!(
                        "path.presplit_kill",
                        { worker = worker, killed = killed, members = task.n },
                        "cohort lanes covered by a later-formed conservative state"
                    );
                    if let Some(t) = tr {
                        let pc_label = key.to_string();
                        let mut alive = vec![false; task.n];
                        for &l in &survivors {
                            alive[l] = true;
                        }
                        for (l, alive) in alive.iter().enumerate() {
                            if !alive {
                                t.emit(worker as i64, "csm", |o| {
                                    o.u64("path", task.first + l as u64)
                                        .str("pc", &pc_label)
                                        .str("kind", "kill")
                                        .u64("dur_us", 0);
                                });
                            }
                        }
                    }
                    let mut items: Vec<Work> = Vec::new();
                    let mut idx = 0usize;
                    while idx < survivors.len() {
                        let mut len = 1usize;
                        while idx + len < survivors.len()
                            && survivors[idx + len] == survivors[idx] + len
                        {
                            len += 1;
                        }
                        if len >= 2 {
                            items.push(Work::Cohort(CohortTask {
                                first: task.first + survivors[idx] as u64,
                                base_combo: task.base_combo + survivors[idx],
                                n: len,
                                state: task.state.clone(),
                                signals: task.signals.clone(),
                                fork: None,
                            }));
                        } else {
                            let l = survivors[idx];
                            items.push(Work::Seg(Task::fresh(
                                task.first + l as u64,
                                task.state.clone(),
                                forces_of(l),
                            )));
                        }
                        idx += len;
                    }
                    queue.push_local(worker, items);
                    return;
                }
            }
        }
        let Some(mut cohort) = sim.cohort_pack(&task.state, task.n) else {
            debug!(
                "cohort.fallback",
                { worker = worker, members = task.n },
                "cohort ineligible; members run as scalar segments"
            );
            queue.push_local(
                worker,
                (0..task.n).map(|l| {
                    Work::Seg(Task::fresh(
                        task.first + l as u64,
                        task.state.clone(),
                        forces_of(l),
                    ))
                }),
            );
            return;
        };
        shard.inc(CounterId::CohortsFormed);
        shard.add(CounterId::CohortMemberPaths, task.n as u64);
        // every member lane starts simulating here (spilled lanes continue
        // in a Seg with `carried > 0`, which does not re-count)
        shard.add(CounterId::PathsCreated, task.n as u64);
        shard.observe(HistogramId::CohortLaneOccupancy, task.n as u64);
        if let Some(t) = tr {
            let members: Vec<u64> = (0..task.n).map(|l| task.first + l as u64).collect();
            t.emit(worker as i64, "cohort", |o| {
                o.u64("first", task.first)
                    .u64("n", task.n as u64)
                    .u64_array("members", &members);
            });
            for &id in &members {
                t.emit(worker as i64, "path_start", |o| {
                    o.u64("path", id).u64("cycle", task.state.cycle);
                });
            }
        }
        // steer each lane down its branch combination: signal `j` carries
        // bit `j` of the lane's combo
        for (j, &net) in task.signals.iter().enumerate() {
            let mut lanes = Lanes::ZEROS;
            for l in 0..task.n {
                let bit = (task.base_combo + l) >> j & 1 == 1;
                lanes.set(l as u32, Value::from_bool(bit));
            }
            sim.cohort_force(&mut cohort, net, lanes);
        }
        sim.cohort_run(&mut cohort, self.config.max_cycles_per_segment);
        debug!(
            "cohort.done",
            { worker = worker, members = task.n },
            "cohort settled all member lanes"
        );
        let mut continuations: Vec<Work> = Vec::new();
        for l in 0..task.n {
            let id = task.first + l as u64;
            let lane_cycles = cohort.lane_cycles(l);
            let close = |outcome: PathOutcome, counter: CounterId| {
                shard.inc(CounterId::PathsSimulated);
                shard.inc(counter);
                shard.add(CounterId::Cycles, lane_cycles);
                shard.observe(HistogramId::SegmentCycles, lane_cycles);
                if let Some(t) = tr {
                    t.emit(worker as i64, "path_end", |o| {
                        o.u64("path", id)
                            .str("outcome", outcome_name(outcome))
                            .u64("cycles", lane_cycles)
                            .u64("children", 0);
                    });
                }
            };
            match cohort.outcome(l) {
                CohortLaneEnd::Finished => close(PathOutcome::Finished, CounterId::PathsFinished),
                CohortLaneEnd::Budget => {
                    close(PathOutcome::Budget, CounterId::PathsBudgetExhausted);
                }
                CohortLaneEnd::MonitorX => {
                    shard.inc(CounterId::PathsSimulated);
                    shard.add(CounterId::Cycles, lane_cycles);
                    shard.observe(HistogramId::SegmentCycles, lane_cycles);
                    continuations.push(Work::Observe(ObserveTask {
                        id,
                        state: sim.cohort_unpack(&cohort, l),
                        cycles: lane_cycles,
                    }));
                }
                CohortLaneEnd::Spilled => {
                    // the continuation does all of this segment's counting
                    // (PathsSimulated, Cycles, SegmentCycles) via `carried`
                    shard.inc(CounterId::CohortLaneSpills);
                    let total = 1 + self.config.max_cycles_per_segment;
                    continuations.push(Work::Seg(Task {
                        id,
                        state: sim.cohort_unpack(&cohort, l),
                        forces: Vec::new(),
                        budget: Some(total.saturating_sub(lane_cycles)),
                        carried: lane_cycles,
                        fork: None,
                    }));
                }
                CohortLaneEnd::Running => unreachable!("cohort_run ends every lane"),
            }
        }
        if let Some(p) = prov {
            // demux the cohort's per-lane first-toggle log: lane `l` is path
            // `first + l`. Spilled lanes defer their cycle accounting to the
            // scalar continuation (which carries them), matching the Cycles
            // counter; all member paths count now, matching PathsCreated.
            let mut obs: Vec<(u64, NetId, u64)> = Vec::new();
            for (net, lanes, cycle) in cohort.take_first_toggles() {
                for l in 0..task.n {
                    if lanes >> l & 1 == 1 {
                        obs.push((task.first + l as u64, NetId(net), cycle));
                    }
                }
            }
            let closed_cycles: u64 = (0..task.n)
                .filter(|&l| !matches!(cohort.outcome(l), CohortLaneEnd::Spilled))
                .map(|l| cohort.lane_cycles(l))
                .sum();
            p.lock()
                .unwrap()
                .submit(&obs, task.n as u64, closed_cycles, worker as i64, tr);
        }
        queue.push_local(worker, continuations);
    }

    /// Resolves a deferred CSM observation for a cohort lane's halt state:
    /// the covered/widen decision, skip accounting, and child spawning —
    /// exactly the `MonitorX` tail of [`CoAnalysis::run_segment`], at the
    /// same depth-first scheduler position.
    #[allow(clippy::too_many_arguments)]
    fn run_observe(
        &self,
        worker: usize,
        task: ObserveTask,
        queue: &WorkQueue<Work>,
        csm: &Mutex<ConservativeStateManager>,
        created: &AtomicUsize,
        registry: &Arc<MetricsRegistry>,
        prov: Option<&Mutex<Collector>>,
    ) {
        let tr = self.config.trace.as_deref();
        let shard = registry.shard(worker);
        let pc: Word = self
            .iface
            .pc
            .iter()
            .map(|&n| task.state.values[n.0 as usize])
            .collect();
        let key = pc_key(&pc);
        let pc_label = tr.map(|_| key.to_string());
        let csm_t0 = tr.map(|_| Instant::now());
        let (observation, demotion, born_seq) = {
            let mut guard = csm.lock().unwrap();
            let obs = guard.observe_key(key.clone(), &task.state);
            (obs, guard.take_demotion(), guard.formation_seq())
        };
        let csm_us = elapsed_us(csm_t0);
        let (outcome, children) = match observation {
            Observation::Covered => {
                shard.inc(CounterId::PathsSkipped);
                if let Some(t) = tr {
                    t.emit(worker as i64, "csm", |o| {
                        o.u64("path", task.id)
                            .str("pc", pc_label.as_deref().unwrap_or(""))
                            .str("kind", "cover")
                            .u64("dur_us", csm_us);
                    });
                }
                debug!(
                    "path.skip",
                    { worker = worker },
                    "halted state covered; path skipped"
                );
                (PathOutcome::Covered, 0)
            }
            Observation::NewConservative(cons) => {
                if let Some(t) = tr {
                    t.emit(worker as i64, "csm", |o| {
                        o.u64("path", task.id)
                            .str("pc", pc_label.as_deref().unwrap_or(""))
                            .str("kind", "widen")
                            .u64("dur_us", csm_us);
                    });
                    if let Some(d) = demotion {
                        t.emit(worker as i64, "csm", |o| {
                            o.u64("path", task.id)
                                .str("pc", pc_label.as_deref().unwrap_or(""))
                                .str("kind", "demote")
                                .u64("slots", d.slots_collapsed as u64)
                                .u64("dur_us", 0);
                        });
                    }
                }
                let n = self.spawn_children(
                    worker,
                    task.id,
                    pc_label.as_deref(),
                    &key,
                    &cons,
                    born_seq,
                    queue,
                    created,
                    registry,
                    prov,
                );
                (PathOutcome::Split(n), n)
            }
        };
        if let Some(t) = tr {
            t.emit(worker as i64, "path_end", |o| {
                o.u64("path", task.id)
                    .str("outcome", outcome_name(outcome))
                    .u64("cycles", task.cycles)
                    .u64("children", children as u64)
                    .u64("csm_us", csm_us);
            });
        }
    }

    /// Pushes one child task per concretization of the unknown monitored
    /// control signals in the conservative state, clamped to the remaining
    /// `max_paths` budget; dropped children are counted, never silently
    /// lost. Each child carries its fork's CSM key and formation sequence
    /// number (`born_seq`) so the dequeue-time pre-split subsumption screen
    /// can kill it if a conservative state formed after this fork covers
    /// its start state (`paths_killed_presplit`) — the halt-time cover
    /// check would only catch that one full segment later. In cohort eval
    /// mode, siblings are packed into cohort work items (up to 64 lanes
    /// each) instead of individual segments.
    #[allow(clippy::too_many_arguments)]
    fn spawn_children(
        &self,
        worker: usize,
        parent: u64,
        pc_label: Option<&str>,
        key: &CsmKey,
        cons: &SimState,
        born_seq: usize,
        queue: &WorkQueue<Work>,
        created: &AtomicUsize,
        registry: &Arc<MetricsRegistry>,
        prov: Option<&Mutex<Collector>>,
    ) -> usize {
        let mut xs: Vec<NetId> = Vec::new();
        if let Some(q) = self.iface.monitor.qualifier {
            if cons.values[q.0 as usize].is_unknown() {
                xs.push(q);
            }
        }
        let candidates = self
            .iface
            .split_signals
            .as_deref()
            .unwrap_or(&self.iface.monitor.signals);
        for &s in candidates {
            if cons.values[s.0 as usize].is_unknown() {
                xs.push(s);
            }
        }
        xs.truncate(self.config.max_split_signals);
        let combos = 1usize << xs.len();
        let shard = registry.shard(worker);
        // the fan-out histogram records the branch's concretization count
        // at fork time, before the path cap clamps it — the cohort sizing
        // (and lane-occupancy analysis) depends on it
        shard.observe(HistogramId::SplitFanout, combos as u64);
        let want = combos;

        // claim budget from the path cap *before* materializing children so
        // `paths_created` can never overshoot `max_paths`; the claimed range
        // `first..first + granted` doubles as the children's path ids
        let (first, granted) = loop {
            let so_far = created.load(Ordering::SeqCst);
            let remaining = self.config.max_paths.saturating_sub(so_far);
            let grant = want.min(remaining);
            if grant == 0 {
                break (so_far, 0);
            }
            if created
                .compare_exchange(so_far, so_far + grant, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break (so_far, grant);
            }
        };
        if granted < want {
            shard.add(CounterId::PathsDropped, (want - granted) as u64);
        }
        debug!(
            "path.fork",
            { worker = worker, children = granted, dropped = want - granted },
            "path split at a non-deterministic branch"
        );
        if granted == 0 {
            return 0;
        }
        if let Some(p) = prov {
            // one fork record reconstructs every child: child `first + i`
            // takes combination `i`, and the conservative state is a
            // copy-on-write clone shared with the child tasks below
            p.lock().unwrap().record_fork(
                parent,
                key.to_string(),
                first as u64,
                granted as u64,
                xs.clone(),
                cons.clone(),
            );
        }
        // `paths_created` is counted when a child actually starts (or when
        // its cohort packs), not here: children killed by the dequeue-time
        // subsumption screen consume id budget but are never counted
        if let Some(t) = self.config.trace.as_deref() {
            // one record per fork: child `first + i` takes branch
            // combination `i` in ascending order (bit j of a combo is the
            // value forced on `signals[j]`), so the per-child assignment
            // needs no per-child records
            let signals: Vec<u64> = xs.iter().map(|n| n.0 as u64).collect();
            t.emit(worker as i64, "fork", |o| {
                o.u64("parent", parent)
                    .str("pc", pc_label.unwrap_or(""))
                    .u64("first", first as u64)
                    .u64("n", granted as u64)
                    .u64("want", combos as u64)
                    .u64_array("signals", &signals);
            });
        }
        let fork = (key.clone(), born_seq);
        let cohort_ok = self.config.sim.eval_mode == EvalMode::Cohort
            && granted >= 2
            && self.config.activity_weights.is_none();
        if cohort_ok {
            // chunk the children into 64-lane cohorts (lane `l` of a chunk
            // is combo `base_combo + l`), chunks in ascending combo order:
            // LIFO pops the highest chunk (then the highest lane) first,
            // matching the scalar pop order combo-for-combo
            let mut items: Vec<Work> = Vec::new();
            let mut idx = 0usize;
            while idx < granted {
                let len = (granted - idx).min(64);
                if len >= 2 {
                    items.push(Work::Cohort(CohortTask {
                        first: (first + idx) as u64,
                        base_combo: idx,
                        n: len,
                        // cheap: copy-on-write pages, only dirty pages split
                        state: cons.clone(),
                        signals: xs.clone(),
                        fork: Some(fork.clone()),
                    }));
                } else {
                    let forces = xs
                        .iter()
                        .enumerate()
                        .map(|(i, &net)| (net, Value::from_bool(idx >> i & 1 == 1)))
                        .collect();
                    items.push(Work::Seg(Task::forked(
                        (first + idx) as u64,
                        cons.clone(),
                        forces,
                        fork.clone(),
                    )));
                }
                idx += len;
            }
            queue.push_local(worker, items);
        } else {
            queue.push_local(
                worker,
                (0..granted).map(|i| {
                    let forces = xs
                        .iter()
                        .enumerate()
                        .map(|(j, &net)| (net, Value::from_bool(i >> j & 1 == 1)))
                        .collect();
                    // cheap: copy-on-write pages, only dirty pages ever split
                    Work::Seg(Task::forked(
                        (first + i) as u64,
                        cons.clone(),
                        forces,
                        fork.clone(),
                    ))
                }),
            );
        }
        granted
    }
}

/// Microseconds since `t0`, or 0 when phase timing is off.
fn elapsed_us(t0: Option<Instant>) -> u64 {
    t0.map_or(0, |t| t.elapsed().as_micros() as u64)
}

/// The stable outcome name used in `path_end` trace records
/// ([`symsim_obs::tracefile::Outcome`] parses these back).
fn outcome_name(outcome: PathOutcome) -> &'static str {
    match outcome {
        PathOutcome::Finished => "finished",
        PathOutcome::Covered => "covered",
        PathOutcome::Split(_) => "split",
        PathOutcome::Budget => "budget",
        // killed paths never simulate, so no `path_end` carries this name
        PathOutcome::Killed => "killed",
    }
}

/// Canonical CSM key for a PC value: the integer when fully known, the
/// bit pattern otherwise — no string formatting on the hot path.
fn pc_key(pc: &Word) -> CsmKey {
    match pc.to_u64() {
        Some(v) => CsmKey::Concrete(v),
        None => CsmKey::Pattern(pc.iter().copied().collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_netlist::RtlBuilder;

    /// A miniature "processor": 3-bit PC counting up; at PC==2 a branch on
    /// an X input either jumps back to 0 or continues; finish at PC==5.
    fn branchy_design() -> (Netlist, DesignInterface) {
        let mut b = RtlBuilder::new("branchy");
        let cond_in = b.input("cond_in", 1);
        let pc = b.reg("pc", 3, 0);
        let pcq = pc.q.clone();
        let one3 = b.const_word(1, 3);
        let next_seq = b.add(&pcq, &one3);
        let two = b.const_word(2, 3);
        let at_branch_raw = b.eq(&pcq, &two);
        // monitored/forced nets must be the ones consumers read, so name
        // them in place via aliases that feed the datapath
        let at_branch = b.name_net("is_branch", at_branch_raw);
        let target = b.const_word(0, 3);
        let taken_raw = b.and1(at_branch, cond_in.bit(0));
        let taken = b.name_net("taken", taken_raw);
        let next = b.mux(taken, &next_seq, &target);
        b.drive_reg(pc, &next);
        let five = b.const_word(5, 3);
        let done_raw = b.eq(&pcq, &five);
        let done = b.name_net("done", done_raw);
        let done_b = symsim_netlist::Bus::from_nets(vec![done]);
        b.output("done_out", &done_b);
        let nl = b.finish().unwrap();
        let map = nl.net_name_map();
        let iface = DesignInterface {
            pc: (0..3).map(|i| map[format!("pc[{i}]").as_str()]).collect(),
            monitor: MonitorSpec {
                qualifier: Some(map["is_branch"]),
                signals: vec![map["taken"]],
            },
            split_signals: None,
            finish: map["done"],
        };
        (nl, iface)
    }

    #[test]
    fn explores_both_branch_outcomes() {
        let (nl, iface) = branchy_design();
        let config = CoAnalysisConfig {
            max_cycles_per_segment: 100,
            ..CoAnalysisConfig::default()
        };
        let analysis = CoAnalysis::new(&nl, iface, config).unwrap();
        let cond = nl.find_net("cond_in").unwrap();
        let report = analysis.run(|sim| {
            sim.poke(cond, Value::X);
        });
        // root + two children at the branch; the loop-back path re-reaches
        // the branch, is covered, and is skipped
        assert!(report.paths_created >= 3, "{report:?}");
        assert!(report.paths_skipped >= 1, "{report:?}");
        assert!(report.paths_finished >= 1, "{report:?}");
        assert_eq!(report.paths_dropped, 0, "no cap hit: {report:?}");
        assert!(report.simulated_cycles > 0);
        assert_eq!(report.total_gates, nl.total_gate_count());
        assert!(report.exercisable_gates <= report.total_gates);
        assert!(report.exercisable_gates > 0);
    }

    #[test]
    fn concrete_condition_yields_single_path() {
        let (nl, iface) = branchy_design();
        let analysis = CoAnalysis::new(&nl, iface, CoAnalysisConfig::default()).unwrap();
        let cond = nl.find_net("cond_in").unwrap();
        let report = analysis.run(|sim| {
            sim.poke(cond, Value::ZERO);
        });
        assert_eq!(report.paths_created, 1);
        assert_eq!(report.paths_skipped, 0);
        assert_eq!(report.paths_finished, 1);
    }

    #[test]
    fn parallel_matches_sequential_soundness() {
        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        let seq = CoAnalysis::new(&nl, iface.clone(), CoAnalysisConfig::default())
            .unwrap()
            .run(|sim| sim.poke(cond, Value::X));
        let par_cfg = CoAnalysisConfig {
            workers: 4,
            ..CoAnalysisConfig::default()
        };
        let par = CoAnalysis::new(&nl, iface, par_cfg)
            .unwrap()
            .run(|sim| sim.poke(cond, Value::X));
        // exercisable sets converge to the same fixpoint on this design
        assert_eq!(seq.exercisable_gates, par.exercisable_gates);
        assert_eq!(seq.paths_finished, par.paths_finished);
    }

    #[test]
    fn cohort_mode_matches_event_mode_exactly() {
        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        let run = |mode: EvalMode| {
            let registry = Arc::new(MetricsRegistry::new(1));
            let config = CoAnalysisConfig {
                sim: SimConfig {
                    eval_mode: mode,
                    ..SimConfig::default()
                },
                metrics: Some(Arc::clone(&registry)),
                ..CoAnalysisConfig::default()
            };
            let report = CoAnalysis::new(&nl, iface.clone(), config)
                .unwrap()
                .run(|sim| sim.poke(cond, Value::X));
            (report, registry)
        };
        let (event, _) = run(EvalMode::Event);
        let (cohort, reg) = run(EvalMode::Cohort);
        assert_eq!(event.paths_created, cohort.paths_created);
        assert_eq!(event.paths_skipped, cohort.paths_skipped);
        assert_eq!(event.paths_finished, cohort.paths_finished);
        assert_eq!(event.paths_simulated, cohort.paths_simulated);
        assert_eq!(event.paths_dropped, cohort.paths_dropped);
        assert_eq!(event.simulated_cycles, cohort.simulated_cycles);
        assert_eq!(
            event.metrics.counter("csm_widenings"),
            cohort.metrics.counter("csm_widenings")
        );
        assert_eq!(event.exercisable_gates, cohort.exercisable_gates);
        // the branch forks 2 children: every fork forms one 2-lane cohort
        assert!(reg.counter_total(CounterId::CohortsFormed) > 0);
        assert_eq!(
            reg.counter_total(CounterId::CohortMemberPaths),
            2 * reg.counter_total(CounterId::CohortsFormed)
        );
        // segment-cycle distributions agree sample-for-sample
        let (es, cs) = (event.metrics, cohort.metrics);
        assert_eq!(
            es.histograms[HistogramId::SegmentCycles as usize],
            cs.histograms[HistogramId::SegmentCycles as usize]
        );
        assert_eq!(
            es.histograms[HistogramId::SplitFanout as usize],
            cs.histograms[HistogramId::SplitFanout as usize]
        );
    }

    #[test]
    fn max_paths_caps_exploration() {
        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        let config = CoAnalysisConfig {
            max_paths: 1,
            ..CoAnalysisConfig::default()
        };
        let report = CoAnalysis::new(&nl, iface, config)
            .unwrap()
            .run(|sim| sim.poke(cond, Value::X));
        assert_eq!(report.paths_created, 1);
    }

    #[test]
    fn paths_created_never_exceeds_max_paths() {
        // regression: the cap used to be checked before the 2^n child count
        // was known, so `paths_created` could overshoot by up to 2^n - 1
        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        for cap in 1..=4usize {
            let config = CoAnalysisConfig {
                max_paths: cap,
                ..CoAnalysisConfig::default()
            };
            let report = CoAnalysis::new(&nl, iface.clone(), config)
                .unwrap()
                .run(|sim| sim.poke(cond, Value::X));
            assert!(
                report.paths_created <= cap,
                "cap {cap} overshot: {report:?}"
            );
            // the branch splits into 2 children; any cap that truncates the
            // full exploration must show up in the dropped counter
            if report.paths_created == cap && cap < 3 {
                assert!(report.paths_dropped > 0, "cap {cap}: {report:?}");
            }
        }
    }

    #[test]
    fn report_fields_match_metrics_snapshot() {
        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        let registry = Arc::new(MetricsRegistry::new(4));
        let config = CoAnalysisConfig {
            workers: 4,
            metrics: Some(Arc::clone(&registry)),
            ..CoAnalysisConfig::default()
        };
        let report = CoAnalysis::new(&nl, iface, config)
            .unwrap()
            .run(|sim| sim.poke(cond, Value::X));
        let m = &report.metrics;
        assert_eq!(m.counter("paths_created"), report.paths_created as u64);
        assert_eq!(m.counter("paths_dropped"), report.paths_dropped as u64);
        assert_eq!(m.counter("paths_skipped"), report.paths_skipped as u64);
        assert_eq!(m.counter("paths_finished"), report.paths_finished as u64);
        assert_eq!(m.counter("cycles"), report.simulated_cycles);
        assert_eq!(m.counter("batched_level_evals"), report.batched_level_evals);
        assert_eq!(m.counter("event_evals"), report.event_evals);
        // the live registry agrees with the embedded snapshot
        assert_eq!(
            registry.counter_total(CounterId::PathsCreated),
            report.paths_created as u64
        );
        // every claimed path was released and every queue drained
        assert_eq!(m.gauge("paths_live"), 0);
        assert_eq!(m.gauge("paths_queued"), 0);
        // the CSM gauges carry the authoritative end-of-run values
        assert_eq!(m.gauge("csm_distinct_pcs"), report.distinct_pcs as i64);
        // a segment ran for every simulated path
        let hist = &m.histograms[HistogramId::SegmentCycles as usize];
        assert_eq!(hist.name, "segment_cycles");
        assert_eq!(hist.samples, report.paths_simulated as u64);
    }

    #[test]
    fn traced_run_reconstructs_lineage_and_matches_report() {
        /// A `Write` the test can inspect after the run.
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        let buf = SharedBuf::default();
        let sink = Arc::new(symsim_obs::TraceSink::new(2, Box::new(buf.clone())));
        let config = CoAnalysisConfig {
            workers: 2,
            trace: Some(Arc::clone(&sink)),
            ..CoAnalysisConfig::default()
        };
        let report = CoAnalysis::new(&nl, iface, config)
            .unwrap()
            .run(|sim| sim.poke(cond, Value::X));
        let stats = sink.finish();
        assert!(stats.events > 0);
        assert_eq!(stats.dropped, 0);

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let trace = symsim_obs::Trace::parse(&text).expect("trace parses");
        let (design, workers) = trace.meta().expect("meta record");
        assert_eq!(design, "branchy");
        assert_eq!(workers, 2);
        // the traced totals equal the report's exactly
        assert_eq!(trace.paths_created(), report.paths_created as u64);
        assert_eq!(trace.total_cycles(), report.simulated_cycles);
        let oc = trace.outcome_counts();
        assert_eq!(oc.finished, report.paths_finished as u64);
        assert_eq!(oc.covered, report.paths_skipped as u64);
        assert_eq!(oc.total(), report.paths_simulated as u64);
        // the lineage is a tree rooted at path 0: the root has no fork
        // parent and every other ended path has exactly one
        let lineage = trace.lineage();
        assert!(!lineage.parent.contains_key(&0), "root must be parentless");
        for r in &trace.records {
            if let symsim_obs::TraceRecord::PathEnd { path, .. } = r {
                if *path != 0 {
                    assert!(
                        lineage.parent.contains_key(path),
                        "path {path} has no fork parent"
                    );
                }
            }
        }
        // forks happen at the branchy design's single branch PC
        let hotspots = trace.fork_hotspots();
        assert!(!hotspots.is_empty());
        // phase timings were recorded (exec covers the whole run loop)
        let phases = trace.phase_table();
        assert!(phases.iter().any(|(name, _)| *name == "exec"));
    }

    #[test]
    fn attribution_resolves_and_replays() {
        let (nl, iface) = branchy_design();
        let cond = nl.find_net("cond_in").unwrap();
        let config = CoAnalysisConfig {
            sim: SimConfig {
                attribution: true,
                ..SimConfig::default()
            },
            ..CoAnalysisConfig::default()
        };
        let report = CoAnalysis::new(&nl, iface, config)
            .unwrap()
            .run(|sim| sim.poke(cond, Value::X));
        let prov = report.provenance.as_ref().expect("attribution was on");
        // the provenance map covers exactly the toggled nets
        assert_eq!(prov.attributed_count(), report.profile.toggled_count());
        for a in prov.attributions() {
            assert!(report.profile.is_toggled(a.net), "net {}", a.net.0);
        }
        // synthetic reset attributions are exactly the baseline unknowns
        let resets: Vec<NetId> = prov
            .attributions()
            .iter()
            .filter(|a| a.reset)
            .map(|a| a.net)
            .collect();
        assert_eq!(resets, report.profile.baseline_unknowns());
        // every attribution has a lineage and a witness that replays to the
        // recorded cycle
        for a in prov.attributions() {
            assert!(prov.lineage(a.path).is_some(), "path {}", a.path);
            let w = prov.witness(a.net, nl.net_name(a.net)).unwrap();
            let back = crate::provenance::Witness::from_json(&w.to_json()).unwrap();
            let replay = crate::provenance::replay_witness(&nl, &back).unwrap();
            assert!(
                replay.ok(),
                "net {} ({}): {replay}",
                a.net.0,
                nl.net_name(a.net)
            );
        }
        // the coverage curve ends at the attributed count
        let last = prov.samples().last().unwrap();
        assert_eq!(last.covered as usize, prov.attributed_count());
        let conv = prov.convergence().unwrap();
        assert!(conv.cycles_to_50 <= conv.cycles_to_100);
        // an unattributed run carries no map
        let (nl2, iface2) = branchy_design();
        let plain = CoAnalysis::new(&nl2, iface2, CoAnalysisConfig::default())
            .unwrap()
            .run(|sim| sim.poke(nl2.find_net("cond_in").unwrap(), Value::X));
        assert!(plain.provenance.is_none());
    }

    #[test]
    fn pc_key_forms() {
        assert_eq!(pc_key(&Word::from_u64(12, 8)), CsmKey::Concrete(12));
        let mut w = Word::from_u64(0, 2);
        w.set_bit(1, Value::X);
        let CsmKey::Pattern(bits) = pc_key(&w) else {
            panic!("partially-unknown PC must key by bit pattern");
        };
        assert_eq!(&*bits, &[Value::ZERO, Value::X]);
    }
}
