use std::collections::HashMap;
use std::sync::Arc;

use symsim_logic::Value;
use symsim_netlist::NetId;
use symsim_obs::{debug, CounterId, GaugeId, HistogramId, MetricsRegistry};
use symsim_sim::SimState;

/// How conservative states are formed (paper Fig. 3).
///
/// Each policy trades simulation effort against over-approximation:
///
/// * [`CsmPolicy::SingleMerge`] — one conservative state per PC, formed by
///   replacing all differing bits with `X`s ("uber-conservative", Fig. 3
///   third row). Fastest convergence, most over-approximation. This is the
///   policy of the prior-work flow and of the paper's evaluation.
/// * [`CsmPolicy::MultiState`] — up to `max_states` separate conservative
///   states per PC (Fig. 3 second row). New states open a fresh slot while
///   one is free; afterwards the closest existing state (fewest newly-
///   unknown bits) absorbs the newcomer. Less over-approximation, more
///   simulated paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CsmPolicy {
    /// One merged superstate per PC.
    #[default]
    SingleMerge,
    /// Up to `max_states` conservative states per PC.
    MultiState {
        /// Slots per PC (must be ≥ 1).
        max_states: usize,
    },
}

/// An application constraint pinning a net to a known value in every
/// conservative state (the constraint-file mechanism of paper §3.3, after
/// the constrained co-analysis of Hegde et al., ASP-DAC'21). Constraints
/// reduce over-approximation when the designer knows an input can never
/// take certain values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateConstraint {
    /// The net to constrain.
    pub net: NetId,
    /// The value it is known to hold whenever a state is formed.
    pub value: Value,
}

/// Result of presenting a halted state to the CSM.
#[derive(Debug, Clone, PartialEq)]
pub enum Observation {
    /// The state is a subset of an already-simulated conservative state:
    /// this path requires no further simulation (Algorithm 1 line 25).
    Covered,
    /// A new, more conservative superstate was formed; simulation must
    /// continue from it (Algorithm 1 lines 22-24).
    NewConservative(SimState),
}

/// Index of a conservative-state repository entry: the program-counter
/// value when fully known, its bit pattern otherwise.
///
/// Keying by value rather than by a formatted string keeps the hot
/// `observe` path free of allocation and string hashing; the `Pattern`
/// variant only appears when the PC itself carries unknowns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CsmKey {
    /// A fully-known PC.
    Concrete(u64),
    /// A PC with unknown bits, keyed by its exact bit pattern (LSB first).
    Pattern(Box<[Value]>),
}

impl From<u64> for CsmKey {
    fn from(pc: u64) -> CsmKey {
        CsmKey::Concrete(pc)
    }
}

impl std::fmt::Display for CsmKey {
    /// `0x`-hex for concrete PCs; `b` + the bit pattern MSB-first (the
    /// storage order is LSB-first) otherwise — the format trace records and
    /// hot-spot tables key fork sites by.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsmKey::Concrete(pc) => write!(f, "0x{pc:x}"),
            CsmKey::Pattern(bits) => {
                f.write_str("b")?;
                for v in bits.iter().rev() {
                    write!(f, "{v}")?;
                }
                Ok(())
            }
        }
    }
}

/// One stored conservative state plus its cached unknown-bit count, the
/// basis of the early-out subset check: `a.covers(b)` requires every
/// unknown bit of `b` to be unknown in `a`, so a stored state with fewer
/// unknown bits than the incoming state can never cover it and the full
/// bit-by-bit comparison is skipped.
#[derive(Debug, Clone)]
struct Slot {
    state: SimState,
    unknown_bits: usize,
}

impl Slot {
    fn new(state: SimState) -> Slot {
        let unknown_bits = unknown_count(&state);
        Slot {
            state,
            unknown_bits,
        }
    }
}

fn unknown_count(state: &SimState) -> usize {
    state.values.iter().filter(|v| v.is_unknown()).count()
}

/// The Conservative State Manager: "a program that maintains a repository of
/// previously-simulated states", indexed by the PC of the PC-changing
/// instruction at which each was observed (paper §3).
///
/// # Example
///
/// ```
/// use symsim_core::{ConservativeStateManager, CsmPolicy, Observation};
/// use symsim_logic::Value;
/// use symsim_sim::SimState;
///
/// let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
/// let s1 = SimState { values: vec![Value::ZERO, Value::ZERO], mems: vec![], cycle: 1 };
/// let s2 = SimState { values: vec![Value::ZERO, Value::ONE], mems: vec![], cycle: 2 };
///
/// // first observation at PC 4 forms a conservative state
/// assert!(matches!(csm.observe(4, &s1), Observation::NewConservative(_)));
/// // a differing state widens it (bit 1 becomes X)
/// let Observation::NewConservative(merged) = csm.observe(4, &s2) else { panic!() };
/// assert!(merged.values[1].is_x());
/// // any covered state is skipped
/// assert!(matches!(csm.observe(4, &s1), Observation::Covered));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConservativeStateManager {
    policy: CsmPolicy,
    constraints: Vec<StateConstraint>,
    table: HashMap<CsmKey, Vec<Slot>>,
    observations: usize,
    covered: usize,
    widenings: usize,
    cover_checks_elided: usize,
    /// Mirrors the counters above into the shared registry. The CSM is
    /// accessed under the explorer's lock, so shard 0 is single-writer here
    /// and `gauge_set` for the repository-size gauges is safe.
    metrics: Option<Arc<MetricsRegistry>>,
    /// When set (and metrics are attached), the subset check and the widen
    /// are individually timed into the `phase_csm_check_us` /
    /// `phase_csm_widen_us` histograms. Off by default so the hot path
    /// takes no timestamps.
    profile: bool,
}

impl ConservativeStateManager {
    /// Creates a CSM with the given formation policy.
    pub fn new(policy: CsmPolicy) -> ConservativeStateManager {
        if let CsmPolicy::MultiState { max_states } = policy {
            assert!(max_states >= 1, "MultiState needs at least one slot");
        }
        ConservativeStateManager {
            policy,
            ..ConservativeStateManager::default()
        }
    }

    /// Installs application constraints applied to every formed state.
    pub fn set_constraints(&mut self, constraints: Vec<StateConstraint>) {
        self.constraints = constraints;
    }

    /// Mirrors observation/coverage/widening counts and repository-size
    /// gauges into `registry` (shard 0) on every [`observe`] call.
    ///
    /// [`observe`]: ConservativeStateManager::observe
    pub fn set_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.metrics = Some(registry);
    }

    /// Enables per-observation phase timing (subset check vs. widen) into
    /// the metrics histograms. No-op unless metrics are also attached.
    pub fn set_profile(&mut self, on: bool) {
        self.profile = on;
    }

    /// The active policy.
    pub fn policy(&self) -> CsmPolicy {
        self.policy
    }

    /// Number of distinct PCs with stored conservative states.
    pub fn distinct_pcs(&self) -> usize {
        self.table.len()
    }

    /// Total states currently stored.
    pub fn stored_states(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }

    /// `(observations, covered, widenings)` counters.
    pub fn stats(&self) -> (usize, usize, usize) {
        (self.observations, self.covered, self.widenings)
    }

    /// Full subset checks skipped because the stored state's unknown-bit
    /// count proved it could not cover the incoming state.
    pub fn cover_checks_elided(&self) -> usize {
        self.cover_checks_elided
    }

    /// Presents a state halted at `pc` to the CSM (Algorithm 1 lines 20-27):
    /// covered states are skipped; otherwise a widened conservative
    /// superstate is stored and returned for continued simulation.
    pub fn observe(&mut self, pc: u64, state: &SimState) -> Observation {
        self.observe_key(CsmKey::Concrete(pc), state)
    }

    /// [`ConservativeStateManager::observe`] with an explicit [`CsmKey`]
    /// (co-analysis keys by the PC bit pattern when the PC carries `X`s).
    pub fn observe_key(&mut self, key: CsmKey, state: &SimState) -> Observation {
        self.observations += 1;
        let profile = self.profile && self.metrics.is_some();
        let check_t0 = profile.then(std::time::Instant::now);
        let incoming_unknowns = unknown_count(state);
        let entry = self.table.entry(key).or_default();
        // early-out: covering requires unknown(cover) ⊇ unknown(covered),
        // so a slot with fewer unknown bits cannot cover and is skipped
        // without touching its state
        let mut elided = 0usize;
        let covered = entry.iter().any(|slot| {
            if slot.unknown_bits < incoming_unknowns {
                elided += 1;
                return false;
            }
            slot.state.covers(state)
        });
        self.cover_checks_elided += elided;
        if let Some(t0) = check_t0 {
            if let Some(m) = &self.metrics {
                m.shard(0).observe(
                    HistogramId::PhaseCsmCheckUs,
                    t0.elapsed().as_micros() as u64,
                );
            }
        }
        if covered {
            self.covered += 1;
            if let Some(m) = &self.metrics {
                let shard = m.shard(0);
                shard.inc(CounterId::CsmObservations);
                shard.add(CounterId::CsmCoverChecksElided, elided as u64);
                shard.inc(CounterId::CsmCovered);
            }
            debug!(
                "csm.cover",
                { unknown_bits = incoming_unknowns },
                "state subset-covered; path requires no further simulation"
            );
            return Observation::Covered;
        }
        self.widenings += 1;
        let widen_t0 = profile.then(std::time::Instant::now);
        let formed_index = match self.policy {
            CsmPolicy::SingleMerge => {
                if entry.is_empty() {
                    entry.push(Slot::new(state.clone()));
                } else {
                    let merged = entry[0].state.merge(state);
                    entry[0] = Slot::new(merged);
                    entry.truncate(1);
                }
                0
            }
            CsmPolicy::MultiState { max_states } => {
                if entry.len() < max_states {
                    entry.push(Slot::new(state.clone()));
                    entry.len() - 1
                } else {
                    // absorb into the closest state (fewest newly-unknown bits)
                    let best = (0..entry.len())
                        .min_by_key(|&i| widening_cost(&entry[i].state, state))
                        .expect("max_states >= 1");
                    let merged = entry[best].state.merge(state);
                    entry[best] = Slot::new(merged);
                    best
                }
            }
        };
        // constraints narrow the formed state before further simulation;
        // store the constrained state in the slot it was formed in so
        // coverage checks see it
        if !self.constraints.is_empty() {
            let mut constrained = entry[formed_index].state.clone();
            for c in &self.constraints {
                constrained.values[c.net.0 as usize] = c.value;
            }
            entry[formed_index] = Slot::new(constrained);
        }
        let formed = entry[formed_index].state.clone();
        if let Some(m) = &self.metrics {
            let shard = m.shard(0);
            shard.inc(CounterId::CsmObservations);
            shard.add(CounterId::CsmCoverChecksElided, elided as u64);
            shard.inc(CounterId::CsmWidenings);
            shard.gauge_set(GaugeId::CsmStoredStates, self.stored_states() as i64);
            shard.gauge_set(GaugeId::CsmDistinctPcs, self.distinct_pcs() as i64);
            if let Some(t0) = widen_t0 {
                shard.observe(
                    HistogramId::PhaseCsmWidenUs,
                    t0.elapsed().as_micros() as u64,
                );
            }
        }
        debug!(
            "csm.widen",
            { slot = formed_index, unknown_bits = unknown_count(&formed) },
            "formed conservative superstate; simulation continues from it"
        );
        Observation::NewConservative(formed)
    }
}

/// Unknown-bit count of the state that merging `incoming` into `existing`
/// would produce: the absorption heuristic prefers the slot whose widened
/// result stays least conservative.
fn widening_cost(existing: &SimState, incoming: &SimState) -> usize {
    existing
        .values
        .iter()
        .zip(&incoming.values)
        .filter(|(a, b)| a.merge(**b).is_unknown())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(bits: &[Value]) -> SimState {
        SimState {
            values: bits.to_vec(),
            mems: vec![],
            cycle: 0,
        }
    }

    #[test]
    fn single_merge_widens_monotonically() {
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let s000 = state(&[Value::ZERO, Value::ZERO, Value::ZERO]);
        let s001 = state(&[Value::ONE, Value::ZERO, Value::ZERO]);
        let s100 = state(&[Value::ZERO, Value::ZERO, Value::ONE]);
        assert!(matches!(
            csm.observe(0, &s000),
            Observation::NewConservative(_)
        ));
        let Observation::NewConservative(c1) = csm.observe(0, &s001) else {
            panic!()
        };
        assert!(c1.values[0].is_x());
        assert!(c1.values[2].is_known());
        let Observation::NewConservative(c2) = csm.observe(0, &s100) else {
            panic!()
        };
        assert!(c2.values[0].is_x() && c2.values[2].is_x());
        // everything is now covered
        assert!(matches!(csm.observe(0, &s000), Observation::Covered));
        assert!(matches!(csm.observe(0, &s001), Observation::Covered));
        assert_eq!(csm.stored_states(), 1);
        let (obs, cov, wid) = csm.stats();
        assert_eq!((obs, cov, wid), (5, 2, 3));
    }

    #[test]
    fn pcs_are_independent() {
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let s = state(&[Value::ZERO]);
        csm.observe(0, &s);
        csm.observe(4, &s);
        assert_eq!(csm.distinct_pcs(), 2);
    }

    #[test]
    fn pattern_keys_are_distinct_from_concrete_keys() {
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let s = state(&[Value::ZERO]);
        csm.observe_key(CsmKey::Concrete(0), &s);
        csm.observe_key(CsmKey::Pattern(Box::new([Value::ZERO, Value::X])), &s);
        csm.observe_key(CsmKey::Pattern(Box::new([Value::X, Value::ZERO])), &s);
        assert_eq!(csm.distinct_pcs(), 3);
        // the same pattern maps back to the same entry
        assert!(matches!(
            csm.observe_key(CsmKey::Pattern(Box::new([Value::ZERO, Value::X])), &s),
            Observation::Covered
        ));
    }

    #[test]
    fn unknown_count_elides_impossible_cover_checks() {
        let mut csm = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: 2 });
        // slot with zero unknown bits
        let s_00 = state(&[Value::ZERO, Value::ZERO]);
        csm.observe(0, &s_00);
        assert_eq!(csm.cover_checks_elided(), 0);
        // an incoming state with an X cannot be covered by the fully-known
        // slot; the early-out skips the bit-by-bit check entirely
        let s_x0 = state(&[Value::X, Value::ZERO]);
        let Observation::NewConservative(_) = csm.observe(0, &s_x0) else {
            panic!()
        };
        assert_eq!(csm.cover_checks_elided(), 1);
        // a fully-known incoming state still runs the real check and is
        // covered by the widened slot
        assert!(matches!(csm.observe(0, &s_00), Observation::Covered));
    }

    #[test]
    fn multi_state_avoids_uber_merge() {
        // Fig. 3: states 0XX and 100 can coexist instead of becoming XXX
        let mut csm = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: 2 });
        let s_0xx = state(&[Value::X, Value::X, Value::ZERO]);
        let s_100 = state(&[Value::ZERO, Value::ZERO, Value::ONE]);
        csm.observe(0, &s_0xx);
        csm.observe(0, &s_100);
        assert_eq!(csm.stored_states(), 2);
        // 010 is covered by 0XX without widening
        let s_010 = state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        assert!(matches!(csm.observe(0, &s_010), Observation::Covered));
        // a third distinct state must be absorbed into the closest slot
        let s_101 = state(&[Value::ONE, Value::ZERO, Value::ONE]);
        let Observation::NewConservative(c) = csm.observe(0, &s_101) else {
            panic!()
        };
        assert_eq!(csm.stored_states(), 2);
        assert!(c.values[2] == Value::ONE, "absorbed into the 100 slot");
    }

    #[test]
    fn constraints_pin_bits() {
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        csm.set_constraints(vec![StateConstraint {
            net: NetId(1),
            value: Value::ZERO,
        }]);
        let a = state(&[Value::ZERO, Value::ZERO]);
        let b = state(&[Value::ONE, Value::ONE]);
        csm.observe(0, &a);
        let Observation::NewConservative(c) = csm.observe(0, &b) else {
            panic!()
        };
        assert!(c.values[0].is_x());
        assert_eq!(c.values[1], Value::ZERO, "constraint keeps bit 1 pinned");
    }

    #[test]
    fn constraints_with_multi_state_update_the_formed_slot() {
        // regression: the constrained state must land in the slot that
        // absorbed the observation, not blindly in the last slot
        let mut csm = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: 2 });
        csm.set_constraints(vec![StateConstraint {
            net: NetId(2),
            value: Value::ZERO,
        }]);
        let s_a = state(&[Value::ZERO, Value::ZERO, Value::ZERO]);
        let s_b = state(&[Value::ONE, Value::ONE, Value::ZERO]);
        csm.observe(0, &s_a); // slot 0
        csm.observe(0, &s_b); // slot 1
                              // absorbs into slot 0 (closest); slot 1 must remain intact
        let s_a2 = state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        let Observation::NewConservative(c) = csm.observe(0, &s_a2) else {
            panic!("not covered yet")
        };
        assert_eq!(c.values[2], Value::ZERO, "constraint applied");
        assert!(
            matches!(csm.observe(0, &s_b), Observation::Covered),
            "slot 1 must not have been clobbered"
        );
        assert!(matches!(csm.observe(0, &s_a2), Observation::Covered));
    }

    #[test]
    fn csm_keys_render_for_trace_records() {
        assert_eq!(CsmKey::Concrete(0x1f4).to_string(), "0x1f4");
        // pattern storage is LSB-first; rendering is MSB-first
        let k = CsmKey::Pattern(Box::new([Value::ZERO, Value::ONE, Value::X]));
        assert_eq!(k.to_string(), "bx10");
    }

    #[test]
    fn widening_cost_counts_resulting_unknowns() {
        let a = state(&[Value::ZERO, Value::ONE, Value::X]);
        let b = state(&[Value::ONE, Value::ONE, Value::ZERO]);
        // merged = [X, 1, X]
        assert_eq!(widening_cost(&a, &b), 2);
    }
}
