use std::collections::HashMap;
use std::sync::Arc;

use symsim_logic::Value;
use symsim_netlist::NetId;
use symsim_obs::{debug, warn, CounterId, GaugeId, HistogramId, MetricsRegistry};
use symsim_sim::SimState;

/// How conservative states are formed (paper Fig. 3).
///
/// Each policy trades simulation effort against over-approximation:
///
/// * [`CsmPolicy::SingleMerge`] — one conservative state per PC, formed by
///   replacing all differing bits with `X`s ("uber-conservative", Fig. 3
///   third row). Fastest convergence, most over-approximation. This is the
///   policy of the prior-work flow and of the paper's evaluation.
/// * [`CsmPolicy::MultiState`] — up to `max_states` separate conservative
///   states per PC (Fig. 3 second row). New states open a fresh slot while
///   one is free; afterwards the closest existing state (fewest newly-
///   unknown bits) absorbs the newcomer. Less over-approximation, more
///   simulated paths.
/// * [`CsmPolicy::Adaptive`] — per-PC policy selection driven by the
///   observation/widening counters the trace subsystem surfaced: every PC
///   entry starts out multi-state (precision while cold), and once its
///   counters cross the demotion thresholds the entry collapses to the
///   single-merge uber-state (cheap convergence where forking is hot).
///   Sibling slots let the explorer kill split children whose forced start
///   state is already covered ([`ConservativeStateManager::covered_presplit`]),
///   which is where the path-count reduction comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CsmPolicy {
    /// One merged superstate per PC.
    #[default]
    SingleMerge,
    /// Up to `max_states` conservative states per PC.
    MultiState {
        /// Slots per PC (must be ≥ 1).
        max_states: usize,
    },
    /// Per-PC policy: multi-state while cold, demoted to single-merge when
    /// the entry's counters cross either threshold.
    Adaptive {
        /// Slots per PC before demotion (must be ≥ 1).
        max_states: usize,
        /// Widenings at one PC that trigger demotion.
        demote_widenings: usize,
        /// Observations at one PC that trigger demotion.
        demote_observations: usize,
    },
}

impl CsmPolicy {
    /// The adaptive policy with its default thresholds (the values the
    /// `--csm-policy adaptive` CLI flag and the benchmarks use).
    pub fn adaptive() -> CsmPolicy {
        CsmPolicy::Adaptive {
            max_states: 4,
            demote_widenings: 2,
            demote_observations: 32,
        }
    }

    /// Stable policy family name (`single`, `multi`, `adaptive`) used in
    /// bench sections and reports.
    pub fn name(self) -> &'static str {
        match self {
            CsmPolicy::SingleMerge => "single",
            CsmPolicy::MultiState { .. } => "multi",
            CsmPolicy::Adaptive { .. } => "adaptive",
        }
    }
}

/// An application constraint pinning a net to a known value in every
/// conservative state (the constraint-file mechanism of paper §3.3, after
/// the constrained co-analysis of Hegde et al., ASP-DAC'21). Constraints
/// reduce over-approximation when the designer knows an input can never
/// take certain values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateConstraint {
    /// The net to constrain.
    pub net: NetId,
    /// The value it is known to hold whenever a state is formed.
    pub value: Value,
}

/// Validates a constraint set against a design of `net_count` nets: every
/// net must be in range, every pinned value known, and no net may be pinned
/// to two different values. [`ConservativeStateManager::set_constraints`]
/// runs this, and `CoAnalysis::new` runs it up front so a bad constraint is
/// an error before exploration rather than a panic in the middle of it.
pub fn validate_constraints(
    constraints: &[StateConstraint],
    net_count: usize,
) -> Result<(), String> {
    for (i, c) in constraints.iter().enumerate() {
        if c.net.0 as usize >= net_count {
            return Err(format!(
                "constraint {} pins net {} but the design has only {} nets",
                i, c.net.0, net_count
            ));
        }
        if !c.value.is_known() {
            return Err(format!(
                "constraint {} pins net {} to an unknown value (must be 0 or 1)",
                i, c.net.0
            ));
        }
        if let Some(prev) = constraints[..i]
            .iter()
            .find(|p| p.net == c.net && p.value != c.value)
        {
            return Err(format!(
                "net {} is constrained to both {} and {}",
                c.net.0, prev.value, c.value
            ));
        }
    }
    Ok(())
}

/// Result of presenting a halted state to the CSM.
#[derive(Debug, Clone, PartialEq)]
pub enum Observation {
    /// The state is a subset of an already-simulated conservative state:
    /// this path requires no further simulation (Algorithm 1 line 25).
    Covered,
    /// A new, more conservative superstate was formed; simulation must
    /// continue from it (Algorithm 1 lines 22-24).
    NewConservative(SimState),
}

/// An adaptive-policy demotion performed by the last
/// [`ConservativeStateManager::observe_key`] call, handed to the explorer
/// (via [`ConservativeStateManager::take_demotion`]) so the trace record
/// carries the observing path's context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyDemotion {
    /// Sibling slots merged away by the collapse (0 when the entry held a
    /// single slot already and only the policy flag flipped).
    pub slots_collapsed: usize,
}

/// Index of a conservative-state repository entry: the program-counter
/// value when fully known, its bit pattern otherwise.
///
/// Keying by value rather than by a formatted string keeps the hot
/// `observe` path free of allocation and string hashing; the `Pattern`
/// variant only appears when the PC itself carries unknowns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CsmKey {
    /// A fully-known PC.
    Concrete(u64),
    /// A PC with unknown bits, keyed by its exact bit pattern (LSB first).
    Pattern(Box<[Value]>),
}

impl From<u64> for CsmKey {
    fn from(pc: u64) -> CsmKey {
        CsmKey::Concrete(pc)
    }
}

impl std::fmt::Display for CsmKey {
    /// `0x`-hex for concrete PCs; `b` + the bit pattern MSB-first (the
    /// storage order is LSB-first) otherwise — the format trace records and
    /// hot-spot tables key fork sites by.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsmKey::Concrete(pc) => write!(f, "0x{pc:x}"),
            CsmKey::Pattern(bits) => {
                f.write_str("b")?;
                for v in bits.iter().rev() {
                    write!(f, "{v}")?;
                }
                Ok(())
            }
        }
    }
}

/// One stored conservative state plus its cached unknown-bit count, the
/// basis of the early-out subset check: `a.covers(b)` requires every
/// unknown bit of `b` to be unknown in `a`, so a stored state with fewer
/// unknown bits than the incoming state can never cover it and the full
/// bit-by-bit comparison is skipped.
#[derive(Debug, Clone)]
struct Slot {
    state: SimState,
    unknown_bits: usize,
    /// The widening sequence number that last formed this slot's value —
    /// i.e. the fork event whose children enumerate this value's
    /// concretizations. The pre-split check kills a queued child only
    /// against slots formed *after* the child's own fork, which keeps the
    /// delegation of coverage obligations well-founded (always forward in
    /// formation order, grounded at the run's final widening, whose
    /// children nothing can kill).
    seq: usize,
}

impl Slot {
    fn new(state: SimState, seq: usize) -> Slot {
        let unknown_bits = unknown_count(&state);
        Slot {
            state,
            unknown_bits,
            seq,
        }
    }
}

/// One PC's repository entry: its conservative-state slots plus the per-PC
/// counters the adaptive policy demotes on.
#[derive(Debug, Clone, Default)]
struct Entry {
    slots: Vec<Slot>,
    /// States presented at this PC.
    observations: usize,
    /// Widenings performed at this PC.
    widenings: usize,
    /// An adaptive entry that crossed a demotion threshold; behaves as
    /// single-merge from then on.
    demoted: bool,
    /// Slot index of the most recent widening, used by the subsumption
    /// pruning pass.
    formed: usize,
}

fn unknown_count(state: &SimState) -> usize {
    state.values.iter().filter(|v| v.is_unknown()).count()
}

/// The Conservative State Manager: "a program that maintains a repository of
/// previously-simulated states", indexed by the PC of the PC-changing
/// instruction at which each was observed (paper §3).
///
/// # Example
///
/// ```
/// use symsim_core::{ConservativeStateManager, CsmPolicy, Observation};
/// use symsim_logic::Value;
/// use symsim_sim::SimState;
///
/// let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
/// let s1 = SimState { values: vec![Value::ZERO, Value::ZERO], mems: vec![], cycle: 1 };
/// let s2 = SimState { values: vec![Value::ZERO, Value::ONE], mems: vec![], cycle: 2 };
///
/// // first observation at PC 4 forms a conservative state
/// assert!(matches!(csm.observe(4, &s1), Observation::NewConservative(_)));
/// // a differing state widens it (bit 1 becomes X)
/// let Observation::NewConservative(merged) = csm.observe(4, &s2) else { panic!() };
/// assert!(merged.values[1].is_x());
/// // any covered state is skipped
/// assert!(matches!(csm.observe(4, &s1), Observation::Covered));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConservativeStateManager {
    policy: CsmPolicy,
    constraints: Vec<StateConstraint>,
    table: HashMap<CsmKey, Entry>,
    observations: usize,
    covered: usize,
    widenings: usize,
    cover_checks_elided: usize,
    slots_pruned: usize,
    policy_demotions: usize,
    constraint_conflicts: usize,
    /// The conflict warning is emitted once per run; later conflicts only
    /// count.
    conflict_warned: bool,
    /// Demotion performed by the last `observe_key`, until the explorer
    /// collects it for its trace record.
    last_demotion: Option<PolicyDemotion>,
    /// Mirrors the counters above into the shared registry. The CSM is
    /// accessed under the explorer's lock, so shard 0 is single-writer here
    /// and `gauge_set` for the repository-size gauges is safe.
    metrics: Option<Arc<MetricsRegistry>>,
    /// When set (and metrics are attached), the subset check and the widen
    /// are individually timed into the `phase_csm_check_us` /
    /// `phase_csm_widen_us` histograms. Off by default so the hot path
    /// takes no timestamps.
    profile: bool,
}

impl ConservativeStateManager {
    /// Creates a CSM with the given formation policy.
    pub fn new(policy: CsmPolicy) -> ConservativeStateManager {
        match policy {
            CsmPolicy::MultiState { max_states } | CsmPolicy::Adaptive { max_states, .. } => {
                assert!(max_states >= 1, "the policy needs at least one slot");
            }
            CsmPolicy::SingleMerge => {}
        }
        ConservativeStateManager {
            policy,
            ..ConservativeStateManager::default()
        }
    }

    /// Installs application constraints applied to every formed state,
    /// validated against a design of `net_count` nets (see
    /// [`validate_constraints`]). A constraint naming a net outside the
    /// state is an error here rather than an index panic mid-exploration.
    pub fn set_constraints(
        &mut self,
        constraints: Vec<StateConstraint>,
        net_count: usize,
    ) -> Result<(), String> {
        validate_constraints(&constraints, net_count)?;
        self.constraints = constraints;
        Ok(())
    }

    /// Mirrors observation/coverage/widening counts and repository-size
    /// gauges into `registry` (shard 0) on every [`observe`] call.
    ///
    /// [`observe`]: ConservativeStateManager::observe
    pub fn set_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.metrics = Some(registry);
    }

    /// Enables per-observation phase timing (subset check vs. widen) into
    /// the metrics histograms. No-op unless metrics are also attached.
    pub fn set_profile(&mut self, on: bool) {
        self.profile = on;
    }

    /// The active policy.
    pub fn policy(&self) -> CsmPolicy {
        self.policy
    }

    /// Number of distinct PCs with stored conservative states.
    pub fn distinct_pcs(&self) -> usize {
        self.table.len()
    }

    /// Total states currently stored.
    pub fn stored_states(&self) -> usize {
        self.table.values().map(|e| e.slots.len()).sum()
    }

    /// `(observations, covered, widenings)` counters.
    pub fn stats(&self) -> (usize, usize, usize) {
        (self.observations, self.covered, self.widenings)
    }

    /// Full subset checks skipped because the stored state's unknown-bit
    /// count proved it could not cover the incoming state.
    pub fn cover_checks_elided(&self) -> usize {
        self.cover_checks_elided
    }

    /// Stored states absorbed by a sibling slot that widened enough to
    /// cover them (cross-slot subsumption pruning).
    pub fn slots_pruned(&self) -> usize {
        self.slots_pruned
    }

    /// Adaptive-policy PC entries demoted to single-merge.
    pub fn policy_demotions(&self) -> usize {
        self.policy_demotions
    }

    /// Observations rejected because the state contradicted a constraint.
    pub fn constraint_conflicts(&self) -> usize {
        self.constraint_conflicts
    }

    /// The demotion performed by the last [`observe_key`] call, if any.
    /// Consuming: the explorer calls this (under the same lock) to emit the
    /// `demote` trace record with the observing path's identity.
    ///
    /// [`observe_key`]: ConservativeStateManager::observe_key
    pub fn take_demotion(&mut self) -> Option<PolicyDemotion> {
        self.last_demotion.take()
    }

    /// Presents a state halted at `pc` to the CSM (Algorithm 1 lines 20-27):
    /// covered states are skipped; otherwise a widened conservative
    /// superstate is stored and returned for continued simulation.
    pub fn observe(&mut self, pc: u64, state: &SimState) -> Observation {
        self.observe_key(CsmKey::Concrete(pc), state)
    }

    /// [`ConservativeStateManager::observe`] with an explicit [`CsmKey`]
    /// (co-analysis keys by the PC bit pattern when the PC carries `X`s).
    pub fn observe_key(&mut self, key: CsmKey, state: &SimState) -> Observation {
        self.observations += 1;
        // a state contradicting a designer constraint is infeasible: the
        // over-approximation concretized a value the constraint rules out.
        // Treat it as covered — merging it in and re-pinning the bit would
        // leave the incoming state never covered and the same PC widening
        // on every visit (livelock)
        if let Some((net, pinned)) = self.constraint_conflict(state) {
            self.constraint_conflicts += 1;
            self.covered += 1;
            if !self.conflict_warned {
                self.conflict_warned = true;
                warn!(
                    "csm.conflict",
                    { net = net.0 as u64, pinned = pinned.to_string() },
                    "observed state contradicts the constraint pinning net {} to {}; \
                     treating such states as infeasible (counted in \
                     csm_constraint_conflicts, warned once)",
                    net.0, pinned
                );
            }
            if let Some(m) = &self.metrics {
                let shard = m.shard(0);
                shard.inc(CounterId::CsmObservations);
                shard.inc(CounterId::CsmCovered);
                shard.inc(CounterId::CsmConstraintConflicts);
            }
            return Observation::Covered;
        }
        let profile = self.profile && self.metrics.is_some();
        let check_t0 = profile.then(std::time::Instant::now);
        let incoming_unknowns = unknown_count(state);
        let entry = self.table.entry(key).or_default();
        entry.observations += 1;
        // early-out: covering requires unknown(cover) ⊇ unknown(covered),
        // so a slot with fewer unknown bits cannot cover and is skipped
        // without touching its state
        let mut elided = 0usize;
        let covered = entry.slots.iter().any(|slot| {
            if slot.unknown_bits < incoming_unknowns {
                elided += 1;
                return false;
            }
            slot.state.covers(state)
        });
        self.cover_checks_elided += elided;
        if let Some(t0) = check_t0 {
            if let Some(m) = &self.metrics {
                m.shard(0).observe(
                    HistogramId::PhaseCsmCheckUs,
                    t0.elapsed().as_micros() as u64,
                );
            }
        }
        if covered {
            self.covered += 1;
            if let Some(m) = &self.metrics {
                let shard = m.shard(0);
                shard.inc(CounterId::CsmObservations);
                shard.add(CounterId::CsmCoverChecksElided, elided as u64);
                shard.inc(CounterId::CsmCovered);
            }
            debug!(
                "csm.cover",
                { unknown_bits = incoming_unknowns },
                "state subset-covered; path requires no further simulation"
            );
            return Observation::Covered;
        }
        self.widenings += 1;
        entry.widenings += 1;
        let widen_t0 = profile.then(std::time::Instant::now);
        // resolve this entry's effective slot budget; adaptive entries that
        // cross a demotion threshold collapse to single-merge first
        let mut demoted_now = false;
        let cap = match self.policy {
            CsmPolicy::SingleMerge => 1,
            CsmPolicy::MultiState { max_states } => max_states,
            CsmPolicy::Adaptive {
                max_states,
                demote_widenings,
                demote_observations,
            } => {
                if !entry.demoted
                    && (entry.widenings >= demote_widenings
                        || entry.observations >= demote_observations)
                {
                    entry.demoted = true;
                    demoted_now = true;
                }
                if entry.demoted {
                    1
                } else {
                    max_states
                }
            }
        };
        // the value formed by this call carries this widening's sequence
        // number: its children belong to fork event `seq`
        let seq = self.widenings;
        if demoted_now {
            let collapsed = entry.slots.len().saturating_sub(1);
            if collapsed > 0 {
                let mut merged = entry.slots[0].state.clone();
                for slot in &entry.slots[1..] {
                    merged = merged.merge(&slot.state);
                }
                entry.slots.clear();
                entry.slots.push(Slot::new(merged, seq));
            }
            entry.formed = 0;
            self.policy_demotions += 1;
            self.last_demotion = Some(PolicyDemotion {
                slots_collapsed: collapsed,
            });
            debug!(
                "csm.demote",
                { widenings = entry.widenings, slots_collapsed = collapsed },
                "hot PC demoted to single-merge"
            );
        }
        let formed_index = if entry.slots.len() < cap {
            entry.slots.push(Slot::new(state.clone(), seq));
            entry.slots.len() - 1
        } else {
            // absorb into the closest state (fewest newly-unknown bits)
            let best = (0..entry.slots.len())
                .min_by_key(|&i| widening_cost(&entry.slots[i].state, state))
                .expect("at least one slot");
            let merged = entry.slots[best].state.merge(state);
            entry.slots[best] = Slot::new(merged, seq);
            best
        };
        // constraints narrow the formed state before further simulation;
        // store the constrained state in the slot it was formed in so
        // coverage checks see it
        if !self.constraints.is_empty() {
            let mut constrained = entry.slots[formed_index].state.clone();
            for c in &self.constraints {
                // in range by set_constraints validation
                if let Some(v) = constrained.values.get_mut(c.net.0 as usize) {
                    *v = c.value;
                }
            }
            entry.slots[formed_index] = Slot::new(constrained, seq);
        }
        entry.formed = formed_index;
        // cross-slot subsumption: a widened slot may now cover siblings,
        // which would otherwise sit in the entry forever inflating
        // csm_stored_states and wasting a cover check per observation
        let pruned = prune_covered_siblings(entry);
        self.slots_pruned += pruned;
        let formed = entry.slots[entry.formed].state.clone();
        let formed_index = entry.formed;
        if let Some(m) = &self.metrics {
            let shard = m.shard(0);
            shard.inc(CounterId::CsmObservations);
            shard.add(CounterId::CsmCoverChecksElided, elided as u64);
            shard.inc(CounterId::CsmWidenings);
            if demoted_now {
                shard.inc(CounterId::CsmPolicyDemotions);
            }
            shard.add(CounterId::CsmSlotsPruned, pruned as u64);
            shard.gauge_set(GaugeId::CsmStoredStates, self.stored_states() as i64);
            shard.gauge_set(GaugeId::CsmDistinctPcs, self.distinct_pcs() as i64);
            if let Some(t0) = widen_t0 {
                shard.observe(
                    HistogramId::PhaseCsmWidenUs,
                    t0.elapsed().as_micros() as u64,
                );
            }
        }
        debug!(
            "csm.widen",
            { slot = formed_index, unknown_bits = unknown_count(&formed) },
            "formed conservative superstate; simulation continues from it"
        );
        Observation::NewConservative(formed)
    }

    /// Pre-split path subsumption (adaptive policy only): whether `state` —
    /// a queued split child's forced start state at the fork PC — is covered
    /// by a conservative state formed *after* the child's own fork event
    /// `born_seq`. Such a later formation merged in everything the child's
    /// parent state held, so the child's concretizations — and, by
    /// monotonicity, its toggle activity — are enumerated by the later
    /// fork's own children. The explorer kills the stale child when it is
    /// dequeued, before it costs a segment (the halt-time cover check would
    /// only catch it one full segment later, at its next halt).
    ///
    /// The strictly-after rule is what keeps the scheme sound: coverage
    /// obligations are only ever delegated forward in formation order, so
    /// delegation chains are grounded at the key's final widening, whose
    /// children nothing can kill. Allowing kills by *earlier* formed states
    /// as well would let two children delegate to each other's fork and
    /// both die with their shared concretizations never simulated.
    pub fn covered_presplit(&self, key: &CsmKey, state: &SimState, born_seq: usize) -> bool {
        if !matches!(self.policy, CsmPolicy::Adaptive { .. }) {
            // legacy policies keep their exact path counts
            return false;
        }
        let Some(entry) = self.table.get(key) else {
            return false;
        };
        let incoming_unknowns = unknown_count(state);
        entry.slots.iter().any(|slot| {
            slot.seq > born_seq
                && slot.unknown_bits >= incoming_unknowns
                && slot.state.covers(state)
        })
    }

    /// The sequence number of the most recent widening — the fork event id
    /// stamped on split children spawned from it, read under the same lock
    /// as the [`ConservativeStateManager::observe_key`] call that formed
    /// the state.
    pub fn formation_seq(&self) -> usize {
        self.widenings
    }

    /// The first constraint the state's observed values contradict, if any.
    /// An unknown observed bit is never a conflict — the constraint simply
    /// narrows it when the state is formed.
    fn constraint_conflict(&self, state: &SimState) -> Option<(NetId, Value)> {
        self.constraints
            .iter()
            .find(|c| {
                state
                    .values
                    .get(c.net.0 as usize)
                    .is_some_and(|v| v.is_known() && *v != c.value)
            })
            .map(|c| (c.net, c.value))
    }
}

/// Removes every slot covered by the just-widened one, fixing up
/// `entry.formed`; returns how many were absorbed.
fn prune_covered_siblings(entry: &mut Entry) -> usize {
    if entry.slots.len() < 2 {
        return 0;
    }
    let formed = entry.formed;
    let formed_unknowns = entry.slots[formed].unknown_bits;
    let mut pruned = 0;
    let mut i = 0;
    while i < entry.slots.len() {
        // the same early-out as the cover check: fewer unknown bits in the
        // formed slot means it cannot cover slot i
        if i != entry.formed
            && formed_unknowns >= entry.slots[i].unknown_bits
            && entry.slots[entry.formed]
                .state
                .covers(&entry.slots[i].state)
        {
            entry.slots.remove(i);
            if i < entry.formed {
                entry.formed -= 1;
            }
            pruned += 1;
        } else {
            i += 1;
        }
    }
    pruned
}

/// Unknown-bit count of the state that merging `incoming` into `existing`
/// would produce: the absorption heuristic prefers the slot whose widened
/// result stays least conservative.
fn widening_cost(existing: &SimState, incoming: &SimState) -> usize {
    existing
        .values
        .iter()
        .zip(&incoming.values)
        .filter(|(a, b)| a.merge(**b).is_unknown())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(bits: &[Value]) -> SimState {
        SimState {
            values: bits.to_vec(),
            mems: vec![],
            cycle: 0,
        }
    }

    #[test]
    fn single_merge_widens_monotonically() {
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let s000 = state(&[Value::ZERO, Value::ZERO, Value::ZERO]);
        let s001 = state(&[Value::ONE, Value::ZERO, Value::ZERO]);
        let s100 = state(&[Value::ZERO, Value::ZERO, Value::ONE]);
        assert!(matches!(
            csm.observe(0, &s000),
            Observation::NewConservative(_)
        ));
        let Observation::NewConservative(c1) = csm.observe(0, &s001) else {
            panic!()
        };
        assert!(c1.values[0].is_x());
        assert!(c1.values[2].is_known());
        let Observation::NewConservative(c2) = csm.observe(0, &s100) else {
            panic!()
        };
        assert!(c2.values[0].is_x() && c2.values[2].is_x());
        // everything is now covered
        assert!(matches!(csm.observe(0, &s000), Observation::Covered));
        assert!(matches!(csm.observe(0, &s001), Observation::Covered));
        assert_eq!(csm.stored_states(), 1);
        let (obs, cov, wid) = csm.stats();
        assert_eq!((obs, cov, wid), (5, 2, 3));
    }

    #[test]
    fn pcs_are_independent() {
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let s = state(&[Value::ZERO]);
        csm.observe(0, &s);
        csm.observe(4, &s);
        assert_eq!(csm.distinct_pcs(), 2);
    }

    #[test]
    fn pattern_keys_are_distinct_from_concrete_keys() {
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let s = state(&[Value::ZERO]);
        csm.observe_key(CsmKey::Concrete(0), &s);
        csm.observe_key(CsmKey::Pattern(Box::new([Value::ZERO, Value::X])), &s);
        csm.observe_key(CsmKey::Pattern(Box::new([Value::X, Value::ZERO])), &s);
        assert_eq!(csm.distinct_pcs(), 3);
        // the same pattern maps back to the same entry
        assert!(matches!(
            csm.observe_key(CsmKey::Pattern(Box::new([Value::ZERO, Value::X])), &s),
            Observation::Covered
        ));
    }

    #[test]
    fn pattern_keys_hold_multi_state_slots() {
        // an X-bearing PC must get the same multi-slot treatment as a
        // concrete one: distinct states coexist instead of uber-merging
        let mut csm = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: 2 });
        let key = || CsmKey::Pattern(Box::new([Value::X, Value::ONE]));
        let s_0xx = state(&[Value::X, Value::X, Value::ZERO]);
        let s_100 = state(&[Value::ZERO, Value::ZERO, Value::ONE]);
        csm.observe_key(key(), &s_0xx);
        csm.observe_key(key(), &s_100);
        assert_eq!(csm.distinct_pcs(), 1);
        assert_eq!(csm.stored_states(), 2);
        let s_010 = state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        assert!(matches!(
            csm.observe_key(key(), &s_010),
            Observation::Covered
        ));
        // a concrete key with the same numeric flavor stays separate
        assert!(matches!(
            csm.observe_key(CsmKey::Concrete(1), &s_010),
            Observation::NewConservative(_)
        ));
        assert_eq!(csm.distinct_pcs(), 2);
    }

    #[test]
    fn pattern_keys_demote_independently_under_adaptive() {
        // each PC entry demotes on its own counters: a hot pattern key
        // collapses to one slot while a cold concrete key keeps precision
        let policy = CsmPolicy::Adaptive {
            max_states: 2,
            demote_widenings: 3,
            demote_observations: 100,
        };
        let mut csm = ConservativeStateManager::new(policy);
        let hot = || CsmKey::Pattern(Box::new([Value::X, Value::ZERO]));
        let a = state(&[Value::ZERO, Value::ZERO, Value::ZERO]);
        let b = state(&[Value::ONE, Value::ONE, Value::ZERO]);
        let c = state(&[Value::ZERO, Value::ONE, Value::ONE]);
        csm.observe_key(hot(), &a); // widening 1: slot 0
        csm.observe_key(hot(), &b); // widening 2: slot 1
        assert_eq!(csm.stored_states(), 2);
        assert!(csm.take_demotion().is_none());
        // widening 3 crosses the threshold: slots collapse to one
        let Observation::NewConservative(merged) = csm.observe_key(hot(), &c) else {
            panic!("c is not covered")
        };
        assert_eq!(
            csm.take_demotion(),
            Some(PolicyDemotion { slots_collapsed: 1 })
        );
        assert_eq!(csm.policy_demotions(), 1);
        assert_eq!(csm.stored_states(), 1);
        assert!(merged.covers(&a) && merged.covers(&b) && merged.covers(&c));
        // the cold concrete entry still opens fresh slots
        csm.observe(7, &a);
        csm.observe(7, &b);
        assert_eq!(csm.stored_states(), 3);
        assert_eq!(csm.policy_demotions(), 1, "cold PC must not demote");
    }

    #[test]
    fn unknown_count_elides_impossible_cover_checks() {
        let mut csm = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: 2 });
        // slot with zero unknown bits
        let s_00 = state(&[Value::ZERO, Value::ZERO]);
        csm.observe(0, &s_00);
        assert_eq!(csm.cover_checks_elided(), 0);
        // an incoming state with an X cannot be covered by the fully-known
        // slot; the early-out skips the bit-by-bit check entirely
        let s_x0 = state(&[Value::X, Value::ZERO]);
        let Observation::NewConservative(_) = csm.observe(0, &s_x0) else {
            panic!()
        };
        assert_eq!(csm.cover_checks_elided(), 1);
        // a fully-known incoming state still runs the real check and is
        // covered by the widened slot
        assert!(matches!(csm.observe(0, &s_00), Observation::Covered));
    }

    #[test]
    fn multi_state_avoids_uber_merge() {
        // Fig. 3: states 0XX and 100 can coexist instead of becoming XXX
        let mut csm = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: 2 });
        let s_0xx = state(&[Value::X, Value::X, Value::ZERO]);
        let s_100 = state(&[Value::ZERO, Value::ZERO, Value::ONE]);
        csm.observe(0, &s_0xx);
        csm.observe(0, &s_100);
        assert_eq!(csm.stored_states(), 2);
        // 010 is covered by 0XX without widening
        let s_010 = state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        assert!(matches!(csm.observe(0, &s_010), Observation::Covered));
        // a third distinct state must be absorbed into the closest slot
        let s_101 = state(&[Value::ONE, Value::ZERO, Value::ONE]);
        let Observation::NewConservative(c) = csm.observe(0, &s_101) else {
            panic!()
        };
        assert_eq!(csm.stored_states(), 2);
        assert!(c.values[2] == Value::ONE, "absorbed into the 100 slot");
    }

    #[test]
    fn widened_slot_absorbs_covered_siblings() {
        // regression: absorption used to leave a sibling slot in place even
        // when the merged slot now covered it, inflating csm_stored_states
        // and wasting a cover check on every later observation
        let mut csm = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: 2 });
        let s_000 = state(&[Value::ZERO, Value::ZERO, Value::ZERO]);
        let s_011 = state(&[Value::ONE, Value::ONE, Value::ZERO]);
        csm.observe(0, &s_000); // slot 0: 000
        csm.observe(0, &s_011); // slot 1: 011
        assert_eq!(csm.stored_states(), 2);
        // 101 is closest to slot 1? widening costs: merge(000,101)=X0X (2),
        // merge(011,101)=XX1 -> cost 2; tie goes to slot 0 => X0X. That
        // does not cover slot 1 (011). Use a state that makes one slot
        // swallow the other: 110 -> merge(000,110)=XX0 covers neither;
        // merge(011,110)=X1X covers nothing. Instead widen slot 0 with a
        // state whose merge covers slot 1: 111 -> merge(000,111)=XXX
        let s_111 = state(&[Value::ONE, Value::ONE, Value::ONE]);
        let Observation::NewConservative(c) = csm.observe(0, &s_111) else {
            panic!()
        };
        if unknown_count(&c) == 3 {
            // the formed slot became XXX: it must have absorbed the sibling
            assert_eq!(csm.stored_states(), 1, "covered sibling not pruned");
            assert!(csm.slots_pruned() >= 1);
        }
        // regardless of which slot absorbed, every past state stays covered
        for s in [&s_000, &s_011, &s_111] {
            assert!(matches!(csm.observe(0, s), Observation::Covered));
        }
    }

    #[test]
    fn pruning_keeps_formed_slot_index_valid() {
        // force a prune of a slot *before* the formed one and check the
        // next observation still lands correctly (the formed index must be
        // fixed up when earlier slots are removed)
        let mut csm = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: 3 });
        let s_100 = state(&[Value::ZERO, Value::ZERO, Value::ONE]);
        let s_001 = state(&[Value::ONE, Value::ZERO, Value::ZERO]);
        let s_011 = state(&[Value::ONE, Value::ONE, Value::ZERO]);
        csm.observe(0, &s_100); // slot 0
        csm.observe(0, &s_001); // slot 1
        csm.observe(0, &s_011); // slot 2 -> covered? no: 011 vs 001 differ
        let stored_before = csm.stored_states();
        // widen slot 1/2 region into XXX via a far state; whichever slot
        // forms XXX covers (and prunes) the others
        let s_x = state(&[Value::X, Value::X, Value::X]);
        let Observation::NewConservative(c) = csm.observe(0, &s_x) else {
            panic!()
        };
        assert_eq!(unknown_count(&c), 3);
        assert_eq!(csm.stored_states(), 1, "XXX covers all siblings");
        assert!(csm.slots_pruned() >= stored_before - 1);
        assert!(matches!(csm.observe(0, &s_100), Observation::Covered));
    }

    #[test]
    fn constraints_pin_bits() {
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        csm.set_constraints(
            vec![StateConstraint {
                net: NetId(1),
                value: Value::ZERO,
            }],
            2,
        )
        .unwrap();
        let a = state(&[Value::ZERO, Value::ZERO]);
        let b = state(&[Value::ONE, Value::X]);
        csm.observe(0, &a);
        let Observation::NewConservative(c) = csm.observe(0, &b) else {
            panic!()
        };
        assert!(c.values[0].is_x());
        assert_eq!(c.values[1], Value::ZERO, "constraint keeps bit 1 pinned");
    }

    #[test]
    fn out_of_range_constraints_are_rejected() {
        // regression: a constraint naming a net outside the state width
        // used to panic on an unchecked index in the middle of exploration;
        // it must be a proper error at installation time instead
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        let err = csm
            .set_constraints(
                vec![StateConstraint {
                    net: NetId(9),
                    value: Value::ONE,
                }],
                2,
            )
            .unwrap_err();
        assert!(err.contains("net 9"), "{err}");
        assert!(err.contains("2 nets"), "{err}");
        // nothing was installed; observing 2-bit states cannot panic
        let s = state(&[Value::ZERO, Value::ONE]);
        assert!(matches!(
            csm.observe(0, &s),
            Observation::NewConservative(_)
        ));
    }

    #[test]
    fn conflicting_and_unknown_constraints_are_rejected() {
        assert!(validate_constraints(
            &[
                StateConstraint {
                    net: NetId(0),
                    value: Value::ZERO
                },
                StateConstraint {
                    net: NetId(0),
                    value: Value::ONE
                },
            ],
            4
        )
        .unwrap_err()
        .contains("both"));
        assert!(validate_constraints(
            &[StateConstraint {
                net: NetId(0),
                value: Value::X
            }],
            4
        )
        .unwrap_err()
        .contains("unknown"));
        // duplicates agreeing on the value are harmless
        validate_constraints(
            &[
                StateConstraint {
                    net: NetId(1),
                    value: Value::ONE,
                },
                StateConstraint {
                    net: NetId(1),
                    value: Value::ONE,
                },
            ],
            4,
        )
        .unwrap();
    }

    #[test]
    fn contradicting_observation_terminates_instead_of_livelocking() {
        // regression: a state whose observed value contradicts a constraint
        // used to re-widen its PC forever — the merge set the bit to X, the
        // constraint pinned it back, and the state was never covered. It
        // must be treated as infeasible (covered) and counted
        let mut csm = ConservativeStateManager::new(CsmPolicy::SingleMerge);
        csm.set_constraints(
            vec![StateConstraint {
                net: NetId(1),
                value: Value::ZERO,
            }],
            2,
        )
        .unwrap();
        let feasible = state(&[Value::ZERO, Value::ZERO]);
        let contradicting = state(&[Value::ZERO, Value::ONE]);
        assert!(matches!(
            csm.observe(0, &feasible),
            Observation::NewConservative(_)
        ));
        let (_, _, widenings_before) = csm.stats();
        // every visit of the contradicting state is terminal, never a widen
        for _ in 0..3 {
            assert!(matches!(
                csm.observe(0, &contradicting),
                Observation::Covered
            ));
        }
        let (_, _, widenings_after) = csm.stats();
        assert_eq!(widenings_before, widenings_after, "livelock: PC re-widened");
        assert_eq!(csm.constraint_conflicts(), 3);
        // an unknown observed bit is narrowed, not a conflict
        let unknown_bit = state(&[Value::ONE, Value::X]);
        let Observation::NewConservative(c) = csm.observe(0, &unknown_bit) else {
            panic!("unknown bit must widen, not conflict")
        };
        assert_eq!(c.values[1], Value::ZERO);
        assert_eq!(csm.constraint_conflicts(), 3);
    }

    #[test]
    fn constraints_with_multi_state_update_the_formed_slot() {
        // regression: the constrained state must land in the slot that
        // absorbed the observation, not blindly in the last slot
        let mut csm = ConservativeStateManager::new(CsmPolicy::MultiState { max_states: 2 });
        csm.set_constraints(
            vec![StateConstraint {
                net: NetId(2),
                value: Value::ZERO,
            }],
            3,
        )
        .unwrap();
        let s_a = state(&[Value::ZERO, Value::ZERO, Value::ZERO]);
        let s_b = state(&[Value::ONE, Value::ONE, Value::ZERO]);
        csm.observe(0, &s_a); // slot 0
        csm.observe(0, &s_b); // slot 1
                              // absorbs into slot 0 (closest); slot 1 must remain intact
        let s_a2 = state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        let Observation::NewConservative(c) = csm.observe(0, &s_a2) else {
            panic!("not covered yet")
        };
        assert_eq!(c.values[2], Value::ZERO, "constraint applied");
        assert!(
            matches!(csm.observe(0, &s_b), Observation::Covered),
            "slot 1 must not have been clobbered"
        );
        assert!(matches!(csm.observe(0, &s_a2), Observation::Covered));
    }

    #[test]
    fn presplit_kills_only_by_later_formed_states() {
        // a queued child may only be killed by a conservative state formed
        // strictly after its own fork: delegation runs forward in formation
        // order and is grounded at the key's final widening, whose children
        // nothing can kill
        let policy = CsmPolicy::Adaptive {
            max_states: 1,
            demote_widenings: 100,
            demote_observations: 100,
        };
        let mut csm = ConservativeStateManager::new(policy);
        let key = CsmKey::Concrete(0);
        let s_001 = state(&[Value::ZERO, Value::ZERO, Value::ONE]);
        let s_101 = state(&[Value::ONE, Value::ZERO, Value::ONE]);
        csm.observe(0, &s_001); // widening 1 forms 001
        let born = csm.formation_seq();
        assert_eq!(born, 1);
        // children of the fork that just formed are never killed by it
        assert!(!csm.covered_presplit(&key, &s_001, born));
        csm.observe(0, &s_101); // widening 2 merges to X01
                                // the child queued at widening 1 is now stale: widening 2's own
                                // children enumerate its concretizations
        assert!(csm.covered_presplit(&key, &s_001, born));
        // children born at widening 2 are the live frontier: not killable
        assert!(!csm.covered_presplit(&key, &s_001, csm.formation_seq()));
        // unknown PC entries never kill
        assert!(!csm.covered_presplit(&CsmKey::Concrete(9), &s_001, 0));
    }

    #[test]
    fn presplit_is_an_adaptive_only_optimization() {
        // SingleMerge and MultiState keep their exact legacy path counts:
        // covered_presplit never fires for them even when a later-formed
        // state covers the queued child
        let key = CsmKey::Concrete(0);
        let s_001 = state(&[Value::ZERO, Value::ZERO, Value::ONE]);
        let s_101 = state(&[Value::ONE, Value::ZERO, Value::ONE]);
        for policy in [
            CsmPolicy::SingleMerge,
            CsmPolicy::MultiState { max_states: 1 },
        ] {
            let mut csm = ConservativeStateManager::new(policy);
            csm.observe(0, &s_001);
            csm.observe(0, &s_101); // merges to X01, which covers 001
            assert!(
                !csm.covered_presplit(&key, &s_001, 0),
                "{policy:?} must never kill"
            );
        }
    }

    #[test]
    fn demotion_fold_kills_stale_children_from_earlier_forks() {
        // the demoted single slot carries the demotion widening's sequence
        // number and covers every pre-fold slot, so children queued by
        // earlier forks at this key become killable — the demoted fork's
        // own children enumerate their concretizations
        let policy = CsmPolicy::Adaptive {
            max_states: 2,
            demote_widenings: 3,
            demote_observations: 100,
        };
        let mut csm = ConservativeStateManager::new(policy);
        let key = CsmKey::Concrete(0);
        let a = state(&[Value::ZERO, Value::ZERO, Value::ZERO]);
        let b = state(&[Value::ONE, Value::ONE, Value::ZERO]);
        let c = state(&[Value::ZERO, Value::ONE, Value::ONE]);
        csm.observe(0, &a); // widening 1: slot 0 = 000
        let born_first = csm.formation_seq();
        csm.observe(0, &b); // widening 2: slot 1 = 110
        csm.observe(0, &c); // widening 3: demotes, folds to XX0, absorbs c
        assert_eq!(csm.policy_demotions(), 1);
        // children of the first two forks are stale against the demoted
        // slot (seq 3), which covers everything they would explore
        assert!(csm.covered_presplit(&key, &a, born_first));
        assert!(csm.covered_presplit(&key, &b, born_first));
        // children of the demotion fork itself stay alive
        assert!(!csm.covered_presplit(&key, &a, csm.formation_seq()));
    }

    #[test]
    fn adaptive_demoted_entry_behaves_as_single_merge() {
        let policy = CsmPolicy::Adaptive {
            max_states: 3,
            demote_widenings: 2,
            demote_observations: 100,
        };
        let mut csm = ConservativeStateManager::new(policy);
        assert_eq!(policy.name(), "adaptive");
        let a = state(&[Value::ZERO, Value::ZERO]);
        let b = state(&[Value::ONE, Value::ZERO]);
        let c = state(&[Value::ZERO, Value::ONE]);
        csm.observe(0, &a);
        csm.observe(0, &b); // widening 2: demotes, collapses to merge
        assert_eq!(csm.stored_states(), 1);
        assert_eq!(csm.policy_demotions(), 1);
        // post-demotion the entry uber-merges like SingleMerge
        let Observation::NewConservative(m) = csm.observe(0, &c) else {
            panic!()
        };
        assert_eq!(csm.stored_states(), 1);
        assert!(m.values[0].is_x() && m.values[1].is_x());
        // demotion happens once per entry
        assert_eq!(csm.policy_demotions(), 1);
    }

    #[test]
    fn csm_keys_render_for_trace_records() {
        assert_eq!(CsmKey::Concrete(0x1f4).to_string(), "0x1f4");
        // pattern storage is LSB-first; rendering is MSB-first
        let k = CsmKey::Pattern(Box::new([Value::ZERO, Value::ONE, Value::X]));
        assert_eq!(k.to_string(), "bx10");
    }

    #[test]
    fn widening_cost_counts_resulting_unknowns() {
        let a = state(&[Value::ZERO, Value::ONE, Value::X]);
        let b = state(&[Value::ONE, Value::ONE, Value::ZERO]);
        // merged = [X, 1, X]
        assert_eq!(widening_cost(&a, &b), 2);
    }
}
