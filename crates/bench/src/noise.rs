//! Shared best-of-N / noise-band helpers for the bench overhead checks.
//!
//! Three smoke checks (traced-vs-untraced, attribution off-vs-on, and
//! ledger on-vs-off) share the same shape: run each configuration three
//! times, keep the best wall time, and assert the supposedly-free
//! configuration stays within the repo's one smoke noise band
//! ([`symsim_obs::stats::within_smoke_noise`] — 25% relative + 0.1 s
//! absolute, the same allowance the `symsim runs diff` perf gate uses as
//! its band floor). This module is that shape, written once.

use std::time::Duration;

use symsim_obs::stats;

/// Runs `f` three times; returns the best (minimum) wall time in seconds
/// and the last result. Taking the *minimum* discards scheduler noise —
/// a run can only be slowed down by interference, never sped up.
pub fn best_of_3<T>(mut f: impl FnMut() -> (Duration, T)) -> (f64, T) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..3 {
        let (wall, result) = f();
        best = best.min(wall);
        last = Some(result);
    }
    (best.as_secs_f64(), last.expect("best_of_3 ran"))
}

/// Asserts `candidate_s` stays within the shared smoke noise band of
/// `reference_s`; `what` names the configuration pair in the panic
/// message (e.g. `"tracing-off vs traced"`).
///
/// # Panics
///
/// Panics when the candidate exceeds the band — meaning the configuration
/// that is supposed to be free is paying measurable hot-path cost.
pub fn assert_within_noise(what: &str, reference_s: f64, candidate_s: f64) {
    assert!(
        stats::within_smoke_noise(reference_s, candidate_s),
        "{what}: {candidate_s:.3}s exceeds the noise band of {reference_s:.3}s \
         (allowance: {}% + {}s)",
        stats::SMOKE_NOISE_REL * 100.0,
        stats::SMOKE_NOISE_ABS_S,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_3_keeps_minimum_wall_and_last_result() {
        let mut calls = 0;
        let walls = [30, 10, 20];
        let (best, last) = best_of_3(|| {
            let w = Duration::from_millis(walls[calls]);
            calls += 1;
            (w, calls)
        });
        assert_eq!(calls, 3);
        assert_eq!(last, 3);
        assert!((best - 0.010).abs() < 1e-9);
    }

    #[test]
    fn noise_assert_matches_the_historic_band() {
        assert_within_noise("ok", 1.0, 1.3);
        let r = std::panic::catch_unwind(|| assert_within_noise("bad", 1.0, 1.4));
        assert!(r.is_err());
    }
}
