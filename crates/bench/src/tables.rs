//! Formatting of every table and figure of the paper's evaluation.

use std::fmt::Write as _;

use symsim_core::{CoAnalysis, CoAnalysisConfig, CsmPolicy};
use symsim_cpu::BENCHMARK_NAMES;
use symsim_logic::{ops, PropagationPolicy, Value};
use symsim_netlist::NetlistStats;
use symsim_sim::{HaltReason, SimConfig, Simulator};

use crate::experiment::{run_experiment, CpuKind, ExperimentResult};

/// Table 1: the benchmark applications.
pub fn table1() -> String {
    let rows = [
        ("Div", "Unsigned integer division"),
        ("inSort", "In-place insertion sort"),
        ("binSearch", "Binary search"),
        ("tHold", "Digital threshold detector"),
        ("mult", "Unsigned multiplication"),
        ("tea8", "TEA encryption algorithm"),
    ];
    let mut out = String::from("Table 1. Benchmark Applications\n");
    let _ = writeln!(out, "{:<12} Description", "Benchmark");
    for (n, d) in rows {
        let _ = writeln!(out, "{n:<12} {d}");
    }
    out
}

/// Table 2: target platform characterization (gate counts measured from the
/// actual netlists).
pub fn table2() -> String {
    let mut out = String::from("Table 2. Target Platform Characterization\n");
    let _ = writeln!(
        out,
        "{:<10} {:<8} {:>11} {:>8} {:>10}  Features",
        "Design", "ISA", "total gates", "DFFs", "area"
    );
    for kind in CpuKind::all() {
        let cpu = kind.build();
        let stats = NetlistStats::of(&cpu.netlist);
        let _ = writeln!(
            out,
            "{:<10} {:<8} {:>11} {:>8} {:>10.0}  {}",
            kind.name(),
            kind.isa(),
            stats.total_gates,
            stats.dffs,
            stats.area,
            kind.features()
        );
    }
    out
}

fn by(results: &[ExperimentResult], cpu: CpuKind, bench: &str) -> ExperimentResult {
    results
        .iter()
        .find(|r| r.cpu == cpu && r.bench == bench)
        .unwrap_or_else(|| panic!("missing result {}/{bench}", cpu.name()))
        .clone()
}

/// Table 3: exercisable gate count and % reduction per benchmark × CPU.
pub fn table3(results: &[ExperimentResult]) -> String {
    let mut out = String::from("Table 3. Gate count analysis\n");
    let mut header = format!("{:<10}", "Benchmark");
    for kind in CpuKind::all() {
        let tgc = kind.build().netlist.total_gate_count();
        let _ = write!(header, " | {} tgc: {:<6}", kind.name(), tgc);
        let _ = write!(header, " {:>9} {:>7}", "GateCount", "%red");
    }
    let _ = writeln!(out, "{header}");
    for bench in BENCHMARK_NAMES {
        let mut row = format!("{bench:<10}");
        for kind in CpuKind::all() {
            let r = by(results, kind, bench);
            let _ = write!(
                row,
                " | {:<17} {:>9} {:>6.2}%",
                "",
                r.gate_count(),
                r.reduction()
            );
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Table 4: simulation path and runtime analysis.
pub fn table4(results: &[ExperimentResult]) -> String {
    let mut out = String::from("Table 4. Simulation path and runtime analysis\n");
    let mut header = format!("{:<10}", "Benchmark");
    for kind in CpuKind::all() {
        let _ = write!(
            header,
            " | {:>7} {:>7} {:>9} ({})",
            "created",
            "skipped",
            "cycles",
            kind.name()
        );
    }
    let _ = writeln!(out, "{header}");
    for bench in BENCHMARK_NAMES {
        let mut row = format!("{bench:<10}");
        for kind in CpuKind::all() {
            let r = by(results, kind, bench);
            let _ = write!(
                row,
                " | {:>7} {:>7} {:>9} {:8}",
                r.report.paths_created, r.report.paths_skipped, r.report.simulated_cycles, ""
            );
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

fn bar(percent: f64, scale: f64) -> String {
    "#".repeat((percent * scale).round().max(0.0) as usize)
}

/// Fig. 5: % reduction in exercisable gates per benchmark (ASCII bars).
pub fn fig5(results: &[ExperimentResult]) -> String {
    let mut out = String::from(
        "Figure 5. Reduction in exercisable gate count per benchmark\n\
         (omsp16 highest: unused peripherals; dr5 lowest: no peripherals)\n",
    );
    for bench in BENCHMARK_NAMES {
        let _ = writeln!(out, "{bench}:");
        for kind in CpuKind::all() {
            let r = by(results, kind, bench);
            let _ = writeln!(
                out,
                "  {:<7} {:>6.2}% {}",
                kind.name(),
                r.reduction(),
                bar(r.reduction(), 0.6)
            );
        }
    }
    out
}

/// Fig. 6: number of simulated paths per benchmark (ASCII bars, log scale).
pub fn fig6(results: &[ExperimentResult]) -> String {
    let mut out = String::from(
        "Figure 6. Simulation paths per benchmark\n\
         (bm32/dr5 split on wide compare-result registers; omsp16 on 1-bit flags)\n",
    );
    for bench in BENCHMARK_NAMES {
        let _ = writeln!(out, "{bench}:");
        for kind in CpuKind::all() {
            let r = by(results, kind, bench);
            let paths = r.report.paths_created;
            let log_bar = "#".repeat(((paths as f64).ln().max(0.0) * 4.0) as usize);
            let _ = writeln!(out, "  {:<7} {:>6} {}", kind.name(), paths, log_bar);
        }
    }
    out
}

/// Fig. 3 ablation: conservative-state formation policies on path counts
/// and over-approximation (exercisable gates).
pub fn fig3_ablation() -> String {
    let mut out = String::from(
        "Figure 3 ablation. Conservative-state policies (omsp16/insort + thold)\n\
         single uber-merge converges fastest; extra slots cost proportional\n\
         simulation effort and can only tighten the exercisable set\n",
    );
    let _ = writeln!(
        out,
        "{:<10} {:<18} {:>7} {:>7} {:>12} {:>9}",
        "bench", "policy", "created", "skipped", "exercisable", "cycles"
    );
    for bench in ["insort", "thold"] {
        for (label, policy) in [
            ("single-merge", CsmPolicy::SingleMerge),
            ("multi-state(2)", CsmPolicy::MultiState { max_states: 2 }),
            ("multi-state(4)", CsmPolicy::MultiState { max_states: 4 }),
        ] {
            let config = CoAnalysisConfig {
                policy,
                ..CoAnalysisConfig::default()
            };
            let r = run_experiment(CpuKind::Omsp16, bench, config);
            let _ = writeln!(
                out,
                "{:<10} {:<18} {:>7} {:>7} {:>12} {:>9}",
                bench,
                label,
                r.report.paths_created,
                r.report.paths_skipped,
                r.report.exercisable_gates,
                r.report.simulated_cycles
            );
        }
    }
    out
}

/// Fig. 4 ablation: anonymous vs tagged symbol propagation, on the paper's
/// XOR-recombination circuit and on a full CPU benchmark.
pub fn fig4_ablation() -> String {
    let mut out = String::from("Figure 4 ablation. Symbol propagation policies\n");
    // the canonical circuit: one unknown input fans out and recombines at XOR
    let s = Value::symbol(0);
    let anon = ops::xor(s, s, PropagationPolicy::Anonymous);
    let tagged = ops::xor(s, s, PropagationPolicy::Tagged);
    let _ = writeln!(
        out,
        "x XOR x  — anonymous: {anon} (unknown), tagged: {tagged} (known 0)"
    );

    // full-CPU comparison on two workloads: `div` (no recombination — the
    // policies coincide) and an input-masking kernel where the same symbol
    // recombines at an XOR, so the tagged policy proves the branch dead
    // (Fig. 4 left) while anonymous X must split (Fig. 4 right)
    let recombine = "
        movi r0, 0
        ld   r1, 0(r0)     ; x (application input)
        mov  r2, r1
        xor  r1, r2        ; x XOR x — 0 under tagged, X under anonymous
        jnz  taken         ; splits only under the anonymous policy
        st   r1, 1(r0)
        halt
    taken:
        movi r3, 1
        st   r3, 1(r0)
        halt
    ";
    for (bench_name, source) in [("div", None), ("xor-recombine", Some(recombine))] {
        for (label, policy, tagged_inputs) in [
            ("anonymous", PropagationPolicy::Anonymous, false),
            ("tagged", PropagationPolicy::Tagged, true),
        ] {
            let kind = CpuKind::Omsp16;
            let cpu = kind.build();
            let (program, data, budget) = match source {
                None => {
                    let bench = kind.benchmark(bench_name);
                    (kind.assemble(bench.source), bench.data, bench.max_cycles)
                }
                Some(src) => (
                    kind.assemble(src),
                    symsim_cpu::DataImage {
                        concrete: vec![],
                        inputs: vec![0],
                    },
                    1_000,
                ),
            };
            let config = CoAnalysisConfig {
                sim: SimConfig {
                    policy,
                    ..SimConfig::default()
                },
                max_cycles_per_segment: budget,
                ..CoAnalysisConfig::default()
            };
            let analysis =
                CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
            let report = analysis.run(|sim| {
                if tagged_inputs {
                    cpu.prepare_symbolic_tagged(sim, &program, &data);
                } else {
                    cpu.prepare_symbolic(sim, &program, &data);
                }
            });
            let _ = writeln!(
                out,
                "omsp16/{bench_name:<13} {label:<10} exercisable {} / {}  paths {}  cycles {}",
                report.exercisable_gates,
                report.total_gates,
                report.paths_created,
                report.simulated_cycles
            );
        }
    }
    out
}

/// Extension table: the crc16/fir/blink benchmarks beyond the paper's
/// Table 1, run through the same co-analysis. `blink` (omsp16 only) uses
/// the timer and GPIO, demonstrating that peripheral-using applications
/// keep their peripherals (smaller reduction).
pub fn ext_table() -> String {
    let mut out = String::from("Extension benchmarks (beyond Table 1)\n");
    let _ = writeln!(
        out,
        "{:<8} {:<8} {:>11} {:>7} {:>8} {:>8} {:>9}",
        "cpu", "bench", "exercisable", "%red", "created", "skipped", "cycles"
    );
    for kind in CpuKind::all() {
        let cpu = kind.build();
        let benches = match kind {
            CpuKind::Omsp16 => symsim_cpu::omsp16::extended_benchmarks(),
            CpuKind::Bm32 => symsim_cpu::bm32::extended_benchmarks(),
            CpuKind::Dr5 => symsim_cpu::dr5::extended_benchmarks(),
        };
        for bench in benches {
            let program = kind.assemble(bench.source);
            let config = CoAnalysisConfig {
                max_cycles_per_segment: bench.max_cycles,
                max_paths: 20_000,
                ..CoAnalysisConfig::default()
            };
            let analysis =
                CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
            let report = analysis.run(|sim| cpu.prepare_symbolic(sim, &program, &bench.data));
            let _ = writeln!(
                out,
                "{:<8} {:<8} {:>6} of {:<5} {:>6.2}% {:>8} {:>8} {:>9}{}",
                kind.name(),
                bench.name,
                report.exercisable_gates,
                report.total_gates,
                report.reduction_percent(),
                report.paths_created,
                report.paths_skipped,
                report.simulated_cycles,
                if report.converged() { "" } else { "  (capped)" },
            );
        }
    }
    out
}

/// Extension table: scalability of the conservative-state approach — paths
/// and cycles as a function of how many input bits are actually unknown.
/// Exhaustive path enumeration would grow exponentially in the unknown
/// width; conservative states keep the growth shallow (the "scalable" in
/// the paper's title).
pub fn scaling_table() -> String {
    let mut out = String::from(
        "Extension: path-count scaling vs symbolic input width (omsp16/div)\n\
         (dividend/divisor have k unknown low bits; the rest are concrete)\n",
    );
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>8} {:>9} {:>11}",
        "k bits", "created", "skipped", "cycles", "wall"
    );
    let kind = CpuKind::Omsp16;
    let cpu = kind.build();
    let bench = kind.benchmark("div");
    let program = kind.assemble(bench.source);
    for k in [2usize, 4, 8, 12, 16] {
        let config = CoAnalysisConfig {
            max_cycles_per_segment: bench.max_cycles,
            ..CoAnalysisConfig::default()
        };
        let analysis =
            CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
        let report = analysis.run(|sim| {
            cpu.prepare_symbolic(sim, &program, &bench.data);
            // narrow the unknowns: only the low k bits of each input word
            // are symbolic; higher bits are concrete (dividend 0b1..., a
            // nonzero divisor pattern keeps the loop finite)
            let dmem = cpu.dmem;
            for (&addr, base) in bench.data.inputs.iter().zip([0x40u64, 0x03]) {
                let mut word = symsim_logic::Word::from_u64(base, cpu.data_width);
                for bit in 0..k.min(cpu.data_width) {
                    word.set_bit(bit, Value::X);
                }
                sim.write_mem_word(dmem, addr, &word);
            }
        });
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>8} {:>9} {:>9.0}ms",
            k,
            report.paths_created,
            report.paths_skipped,
            report.simulated_cycles,
            report.wall_time.as_secs_f64() * 1e3
        );
    }
    out.push_str(
        "path counts stay flat while the concrete input space grows as 2^(2k):\n\
         conservative states absorb the blow-up that exhaustive path\n\
         enumeration (2^(2k) starts) could not survive\n",
    );
    out
}

/// Extension table: the application-specific power analyses enabled by
/// co-analysis activity profiles (paper §1's downstream uses — peak
/// power/energy bounds, power-gating candidates, timing slack).
pub fn power_table() -> String {
    let mut out = String::from(
        "Extension: application-specific power analysis (omsp16)\n\
         peak/avg in switching-energy units; slack in logic levels\n",
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>9} {:>7} {:>11} {:>7}",
        "bench", "peak", "avg", "p/a", "gating<10%", "slack"
    );
    for bench_name in BENCHMARK_NAMES {
        let kind = CpuKind::Omsp16;
        let cpu = kind.build();
        let bench = kind.benchmark(bench_name);
        let program = kind.assemble(bench.source);
        let config = CoAnalysisConfig {
            max_cycles_per_segment: bench.max_cycles,
            activity_weights: Some(symsim_power::switching_weights(&cpu.netlist)),
            ..CoAnalysisConfig::default()
        };
        let analysis =
            CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
        let report = analysis.run(|sim| cpu.prepare_symbolic(sim, &program, &bench.data));
        let power = symsim_power::PowerReport::from_report(&report).expect("activity");
        let activity = report.activity.as_ref().expect("activity");
        let gating = symsim_power::gating_candidates(&cpu.netlist, &report.profile, activity, 0.1);
        let slack = symsim_power::timing_slack(&cpu.netlist, &report.profile);
        let _ = writeln!(
            out,
            "{:<10} {:>9.1} {:>9.1} {:>7.2} {:>11} {:>4}/{:<3}",
            bench_name,
            power.peak_cycle_energy,
            power.avg_cycle_energy,
            power.peak_to_avg(),
            gating.len(),
            slack.exercised_depth,
            slack.design_depth
        );
    }
    out
}

/// §5.0.1 validation: bespoke equivalence on concrete inputs and the
/// exercised-subset check, for every CPU on `div`.
pub fn validate() -> String {
    let mut out = String::from("Validation (paper 5.0.1)\n");
    for kind in CpuKind::all() {
        let cpu = kind.build();
        let bench = kind.benchmark("div");
        let program = kind.assemble(bench.source);

        // symbolic co-analysis + bespoke generation
        let config = CoAnalysisConfig {
            max_cycles_per_segment: bench.max_cycles,
            ..CoAnalysisConfig::default()
        };
        let analysis =
            CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
        let report = analysis.run(|sim| cpu.prepare_symbolic(sim, &program, &bench.data));
        let bespoke = symsim_bespoke::generate(&cpu.netlist, &report.profile);

        // concrete run on both netlists; architectural state must agree
        let run = |netlist: &symsim_netlist::Netlist| {
            let mut sim = Simulator::new(netlist, SimConfig::default());
            cpu.prepare_concrete(&mut sim, &program, &bench.data, &bench.example_inputs);
            sim.set_finish_net(cpu.finish);
            sim.arm_toggle_observer();
            let halt = sim.run(bench.max_cycles);
            let regs: Vec<_> = (0..cpu.reg_nets.len())
                .map(|r| cpu.read_reg(&sim, r))
                .collect();
            let mem: Vec<_> = (0..8).map(|a| cpu.read_data(&sim, a)).collect();
            let profile = sim.take_toggle_profile().expect("armed");
            (halt, regs, mem, profile)
        };
        let (halt_a, regs_a, mem_a, concrete_profile) = run(&cpu.netlist);
        let (halt_b, regs_b, mem_b, _) = run(&bespoke.netlist);
        let outputs_match = halt_a == HaltReason::Finished
            && halt_a == halt_b
            && regs_a == regs_b
            && mem_a == mem_b;
        let subset = report.profile.covers_activity(&concrete_profile);
        let _ = writeln!(
            out,
            "{:<8} outputs match: {:5}  exercised subset of exercisable: {:5}  \
             ({} -> {} gates, {:.2}% reduction)",
            kind.name(),
            outputs_match,
            subset,
            bespoke.report.original_gates,
            bespoke.report.bespoke_gates,
            bespoke.report.reduction_percent()
        );
        assert!(outputs_match, "{} bespoke diverged", kind.name());
        assert!(subset, "{} exercised set not covered", kind.name());
    }
    out
}
