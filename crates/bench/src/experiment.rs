use symsim_bespoke::BespokeReport;
use symsim_core::{CoAnalysis, CoAnalysisConfig, CoAnalysisReport};
use symsim_cpu::{bm32, dr5, omsp16, Benchmark, Cpu};

/// The three evaluation processors (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuKind {
    /// openMSP430-style 16-bit microcontroller with peripherals.
    Omsp16,
    /// MIPS32-style core with hardware multiplier.
    Bm32,
    /// RV32E-style core without multiplier.
    Dr5,
}

impl CpuKind {
    /// All three, in the paper's column order (bm32, omsp430, darkriscv).
    pub fn all() -> [CpuKind; 3] {
        [CpuKind::Bm32, CpuKind::Omsp16, CpuKind::Dr5]
    }

    /// Display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            CpuKind::Omsp16 => "omsp16",
            CpuKind::Bm32 => "bm32",
            CpuKind::Dr5 => "dr5",
        }
    }

    /// Builds the gate-level processor.
    pub fn build(self) -> Cpu {
        match self {
            CpuKind::Omsp16 => omsp16::build(),
            CpuKind::Bm32 => bm32::build(),
            CpuKind::Dr5 => dr5::build(),
        }
    }

    /// The six Table 1 benchmarks in this CPU's ISA.
    pub fn benchmarks(self) -> Vec<Benchmark> {
        match self {
            CpuKind::Omsp16 => omsp16::benchmarks(),
            CpuKind::Bm32 => bm32::benchmarks(),
            CpuKind::Dr5 => dr5::benchmarks(),
        }
    }

    /// The benchmark named `name`.
    pub fn benchmark(self, name: &str) -> Benchmark {
        match self {
            CpuKind::Omsp16 => omsp16::benchmark(name),
            CpuKind::Bm32 => bm32::benchmark(name),
            CpuKind::Dr5 => dr5::benchmark(name),
        }
    }

    /// Assembles `src` for this CPU's ISA.
    ///
    /// # Panics
    ///
    /// Panics on assembly errors (benchmark sources are known-good).
    pub fn assemble(self, src: &str) -> Vec<u32> {
        match self {
            CpuKind::Omsp16 => omsp16::assemble(src),
            CpuKind::Bm32 => bm32::assemble(src),
            CpuKind::Dr5 => dr5::assemble(src),
        }
        .expect("benchmark source assembles")
    }

    /// The ISA label for Table 2.
    pub fn isa(self) -> &'static str {
        match self {
            CpuKind::Omsp16 => "MSP430",
            CpuKind::Bm32 => "MIPS32",
            CpuKind::Dr5 => "RV32e",
        }
    }

    /// The feature summary for Table 2.
    pub fn features(self) -> &'static str {
        match self {
            CpuKind::Omsp16 => {
                "16-bit microcontroller with 16x16 hardware multiplier, watchdog, GPIO, timer"
            }
            CpuKind::Bm32 => "32-bit MIPS implementation with hardware multiplier",
            CpuKind::Dr5 => "32-bit RISC-V embedded ISA, 16 integer registers, no multiplier",
        }
    }
}

/// One (processor, benchmark) co-analysis outcome plus the bespoke
/// generation that consumed it.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Which processor.
    pub cpu: CpuKind,
    /// Benchmark name.
    pub bench: &'static str,
    /// Algorithm-1 results (paths, cycles, exercisable gates).
    pub report: CoAnalysisReport,
    /// Bespoke pruning results (gate counts, area).
    pub bespoke: BespokeReport,
    /// Design-structure content hash (run-ledger identity; the program is
    /// assembled inside [`run_experiment`], so the fingerprints are
    /// exposed here rather than recomputable by the caller).
    pub design_hash: u64,
    /// Program-image content hash.
    pub program_hash: u64,
    /// Canonical configuration string
    /// ([`symsim_core::fingerprint::config_string`]) of the run.
    pub config: String,
}

impl ExperimentResult {
    /// The paper's Table 3 `GateCount`: exercisable gates.
    pub fn gate_count(&self) -> usize {
        self.report.exercisable_gates
    }

    /// The paper's Table 3 `% reduction`.
    pub fn reduction(&self) -> f64 {
        self.report.reduction_percent()
    }
}

/// Runs symbolic co-analysis plus bespoke generation for one benchmark on
/// one processor, with the given configuration (policy, workers, ...).
pub fn run_experiment(
    kind: CpuKind,
    bench_name: &str,
    mut config: CoAnalysisConfig,
) -> ExperimentResult {
    let cpu = kind.build();
    let bench = kind.benchmark(bench_name);
    let program = kind.assemble(bench.source);
    config.max_cycles_per_segment = bench.max_cycles;
    let design_hash = symsim_core::fingerprint::design_fingerprint(&cpu.netlist);
    let program_hash = symsim_core::fingerprint::program_fingerprint(&program);
    let config_str = symsim_core::fingerprint::config_string(&config);
    let analysis = CoAnalysis::new(&cpu.netlist, cpu.interface(), config).expect("valid config");
    let report = analysis.run(|sim| cpu.prepare_symbolic(sim, &program, &bench.data));
    let bespoke = symsim_bespoke::generate(&cpu.netlist, &report.profile);
    ExperimentResult {
        cpu: kind,
        bench: bench.name,
        report,
        bespoke: bespoke.report,
        design_hash,
        program_hash,
        config: config_str,
    }
}

/// Runs the full 3-CPU × 6-benchmark sweep behind Tables 3-4 and Figs 5-6.
pub fn sweep(config: &CoAnalysisConfig) -> Vec<ExperimentResult> {
    let mut out = Vec::with_capacity(18);
    for kind in CpuKind::all() {
        for bench in symsim_cpu::BENCHMARK_NAMES {
            out.push(run_experiment(kind, bench, config.clone()));
        }
    }
    out
}
