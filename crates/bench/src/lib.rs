//! # symsim-bench
//!
//! The evaluation harness reproducing every table and figure of the DAC'22
//! paper on the three from-scratch processors:
//!
//! * Table 1 — benchmark applications,
//! * Table 2 — target platform characterization,
//! * Table 3 / Fig. 5 — exercisable gate counts and % reduction,
//! * Table 4 / Fig. 6 — simulation paths created/skipped and simulated
//!   cycles,
//! * Fig. 3 ablation — conservative-state formation policies,
//! * Fig. 4 ablation — anonymous vs tagged symbol propagation,
//! * §5.0.1 validation — bespoke equivalence and activity-subset checks.
//!
//! Run `cargo run --release -p symsim-bench --bin tables -- all` to
//! regenerate everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
pub mod noise;
mod tables;

pub use experiment::{run_experiment, sweep, CpuKind, ExperimentResult};
pub use tables::{
    ext_table, fig3_ablation, fig4_ablation, fig5, fig6, power_table, scaling_table, table1,
    table2, table3, table4, validate,
};
