//! Emits `BENCH_coanalysis.json`: throughput and snapshot-cost numbers
//! for the co-analysis engine, in the same spirit as the `tables` binary.
//!
//! ```text
//! cargo run --release -p symsim-bench --bin bench_coanalysis [-- --smoke]
//! ```
//!
//! Each (cpu, benchmark) pair runs twice — event-driven and hybrid
//! batched dispatch — with a single worker so the explorations are
//! deterministic and comparable. The binary *asserts* that both modes
//! produce identical `paths_created`/`simulated_cycles`/exercisable-gate
//! results (the batched kernel must only change speed, never results) and
//! records both throughputs so the speedup is visible in-repo.
//!
//! Modes and observability flags:
//!
//! * `--smoke` runs only the smallest pair in `event` and `batch` modes and
//!   writes no bench file: the CI divergence check.
//! * `--pair cpu/bench` (e.g. `dr5/binsearch`) runs that single pair once
//!   (`--eval-mode`, default hybrid) and prints the report as JSON.
//! * `--log-format pretty|json`, `--log-level L` configure the trace layer;
//!   `--heartbeat-secs S` emits NDJSON progress (to `--progress-out` or
//!   stderr); `--metrics-out FILE` writes the metrics snapshot of the last
//!   run. Every run gets a fresh registry — one registry serves one run, so
//!   cross-mode identity checks stay exact.

use std::sync::Arc;
use std::time::{Duration, Instant};

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::{CoAnalysisConfig, CoAnalysisReport};
use symsim_obs::{info, Heartbeat, HeartbeatOut, MetricsRegistry};
use symsim_sim::{cow_clone_stats, reset_cow_clone_stats, EvalMode, MemArray, SimConfig};

/// The (cpu, benchmark) pairs measured: small enough to run in CI, big
/// enough to exercise forking and level batching.
const RUNS: [(CpuKind, &str); 3] = [
    (CpuKind::Omsp16, "div"),
    (CpuKind::Bm32, "insort"),
    (CpuKind::Dr5, "binsearch"),
];

/// The pair used by `--smoke` (the fastest of [`RUNS`]).
const SMOKE: (CpuKind, &str) = (CpuKind::Omsp16, "div");

#[derive(Default)]
struct Opts {
    smoke: bool,
    pair: Option<(CpuKind, String)>,
    eval_mode: Option<EvalMode>,
    metrics_out: Option<String>,
    heartbeat_secs: f64,
    progress_out: Option<String>,
}

fn parse_cpu(name: &str) -> CpuKind {
    match name {
        "omsp16" => CpuKind::Omsp16,
        "bm32" => CpuKind::Bm32,
        "dr5" => CpuKind::Dr5,
        other => panic!("unknown cpu \"{other}\" (expected omsp16, bm32, or dr5)"),
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts::default();
    let mut level = symsim_obs::Level::Info;
    let mut format = symsim_obs::LogFormat::Pretty;
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--pair" => {
                let spec = value("--pair", &mut args);
                let (cpu, bench) = spec
                    .split_once('/')
                    .unwrap_or_else(|| panic!("--pair expects cpu/bench, got \"{spec}\""));
                opts.pair = Some((parse_cpu(cpu), bench.to_string()));
            }
            "--eval-mode" => {
                opts.eval_mode = Some(
                    value("--eval-mode", &mut args)
                        .parse()
                        .expect("--eval-mode"),
                );
            }
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out", &mut args)),
            "--heartbeat-secs" => {
                opts.heartbeat_secs = value("--heartbeat-secs", &mut args)
                    .parse()
                    .expect("--heartbeat-secs");
            }
            "--progress-out" => opts.progress_out = Some(value("--progress-out", &mut args)),
            "--log-level" => {
                level = value("--log-level", &mut args)
                    .parse()
                    .expect("--log-level")
            }
            "--log-format" => {
                format = value("--log-format", &mut args)
                    .parse()
                    .expect("--log-format");
            }
            other => panic!("unknown flag \"{other}\""),
        }
    }
    symsim_obs::trace::init(level, format, None);
    opts
}

/// Runs one (cpu, bench, mode) co-analysis with a fresh registry and,
/// when requested, a heartbeat. Successive runs append to `--progress-out`
/// so one invocation yields one NDJSON stream.
fn run_mode(kind: CpuKind, bench: &str, mode: EvalMode, opts: &Opts) -> CoAnalysisReport {
    let registry = Arc::new(MetricsRegistry::new(1));
    let config = CoAnalysisConfig {
        // one worker: path creation order (and thus CSM coverage) is
        // deterministic, so cross-mode identity is a meaningful check
        workers: 1,
        sim: SimConfig {
            eval_mode: mode,
            ..SimConfig::default()
        },
        metrics: Some(Arc::clone(&registry)),
        ..CoAnalysisConfig::default()
    };
    let heartbeat = if opts.heartbeat_secs > 0.0 {
        let out = match &opts.progress_out {
            Some(path) => {
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .expect("open --progress-out");
                HeartbeatOut::Writer(Box::new(file))
            }
            None => HeartbeatOut::Stderr,
        };
        Some(Heartbeat::start(
            Arc::clone(&registry),
            Duration::from_secs_f64(opts.heartbeat_secs),
            out,
        ))
    } else {
        None
    };
    let report = run_experiment(kind, bench, config).report;
    if let Some(hb) = heartbeat {
        hb.stop();
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, report.metrics.to_json()).expect("write --metrics-out");
    }
    report
}

/// Panics if `other` diverged from the event-mode reference — the batched
/// kernel is only allowed to change *how fast* results arrive.
fn assert_equivalent(
    kind: CpuKind,
    bench: &str,
    event: &CoAnalysisReport,
    other: &CoAnalysisReport,
    mode: EvalMode,
) {
    let pair = format!("{}/{bench} ({})", kind.name(), mode.name());
    assert_eq!(
        event.paths_created, other.paths_created,
        "{pair}: paths_created diverged from event mode"
    );
    assert_eq!(
        event.simulated_cycles, other.simulated_cycles,
        "{pair}: simulated_cycles diverged from event mode"
    );
    assert_eq!(
        event.exercisable_gates, other.exercisable_gates,
        "{pair}: exercisable_gates diverged from event mode"
    );
}

fn entry(kind: CpuKind, bench: &str, mode: EvalMode, r: &CoAnalysisReport) -> String {
    let secs = r.wall_time.as_secs_f64().max(1e-9);
    format!(
        "    {{ \"cpu\": \"{}\", \"bench\": \"{}\", \"eval_mode\": \"{}\", \
         \"paths_created\": {}, \"paths_dropped\": {}, \"simulated_cycles\": {}, \
         \"batched_level_evals\": {}, \"event_evals\": {}, \"wall_seconds\": {:.6}, \
         \"cycles_per_sec\": {:.1}, \"paths_per_sec\": {:.1}, \"metrics\": {} }}",
        kind.name(),
        bench,
        mode.name(),
        r.paths_created,
        r.paths_dropped,
        r.simulated_cycles,
        r.batched_level_evals,
        r.event_evals,
        secs,
        r.simulated_cycles as f64 / secs,
        r.paths_simulated as f64 / secs,
        r.metrics.to_json_compact(),
    )
}

fn main() {
    let opts = parse_opts();

    if let Some((kind, bench)) = &opts.pair {
        let mode = opts.eval_mode.unwrap_or(EvalMode::Hybrid);
        info!(
            "bench",
            { cpu = kind.name(), bench = bench.as_str(), mode = mode.name() },
            "single-pair co-analysis: {} / {bench} ({})", kind.name(), mode.name()
        );
        let report = run_mode(*kind, bench, mode, &opts);
        println!("{}", report.to_json());
        return;
    }

    if opts.smoke {
        let (kind, bench) = SMOKE;
        info!(
            "bench",
            "smoke: {} / {bench} in event and batch modes...",
            kind.name()
        );
        let event = run_mode(kind, bench, EvalMode::Event, &opts);
        let batch = run_mode(kind, bench, EvalMode::Batch, &opts);
        assert_equivalent(kind, bench, &event, &batch, EvalMode::Batch);
        info!(
            "bench",
            { cycles = event.simulated_cycles, exercisable = event.exercisable_gates },
            "smoke ok: {} cycles, {} gates exercisable in both modes",
            event.simulated_cycles, event.exercisable_gates
        );
        return;
    }

    let mut entries = Vec::new();
    for (kind, bench) in RUNS {
        info!("bench", "co-analysis: {} / {bench} (event)...", kind.name());
        let event = run_mode(kind, bench, EvalMode::Event, &opts);
        info!(
            "bench",
            "co-analysis: {} / {bench} (hybrid)...",
            kind.name()
        );
        let hybrid = run_mode(kind, bench, EvalMode::Hybrid, &opts);
        assert_equivalent(kind, bench, &event, &hybrid, EvalMode::Hybrid);
        let speedup =
            event.wall_time.as_secs_f64().max(1e-9) / hybrid.wall_time.as_secs_f64().max(1e-9);
        info!(
            "bench",
            "  {} / {bench}: {:.1} -> {:.1} cycles/sec ({speedup:.2}x)",
            kind.name(),
            event.simulated_cycles as f64 / event.wall_time.as_secs_f64().max(1e-9),
            hybrid.simulated_cycles as f64 / hybrid.wall_time.as_secs_f64().max(1e-9),
        );
        entries.push(entry(kind, bench, EvalMode::Event, &event));
        entries.push(entry(kind, bench, EvalMode::Hybrid, &hybrid));
    }
    let mut runs = String::new();
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            runs.push_str(",\n");
        }
        runs.push_str(e);
    }

    let snap = snapshot_cost();
    let json = format!("{{\n  \"runs\": [\n{runs}\n  ],\n  \"snapshot\": {snap}\n}}\n");
    std::fs::write("BENCH_coanalysis.json", &json).expect("write BENCH_coanalysis.json");
    info!("bench", "wrote BENCH_coanalysis.json");
    print!("{json}");
}

/// Measures snapshot cost on the omsp16 core: bytes an eager memory copy
/// would move per fork versus the bytes copy-on-write actually clones
/// across one save + N restore/dirty cycles of the `div` benchmark's
/// exploration root.
fn snapshot_cost() -> String {
    let cpu = CpuKind::Omsp16.build();
    let bench = CpuKind::Omsp16.benchmark("div");
    let program = CpuKind::Omsp16.assemble(bench.source);
    let mut sim = symsim_sim::Simulator::new(&cpu.netlist, Default::default());
    cpu.prepare_symbolic(&mut sim, &program, &bench.data);
    sim.settle();
    let snapshot = sim.save_state();
    let eager_mem_bytes: usize = snapshot.mems.iter().map(MemArray::content_bytes).sum();

    const FORKS: u64 = 32;
    reset_cow_clone_stats();
    let start = Instant::now();
    for _ in 0..FORKS {
        sim.load_state(&snapshot);
        // a short segment dirties the pages a real child would
        sim.run(50);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (pages, bytes) = cow_clone_stats();
    let per_fork = bytes / FORKS;
    format!(
        "{{ \"eager_mem_bytes\": {eager_mem_bytes}, \"cow_bytes_per_fork\": {per_fork}, \
         \"cow_pages_per_fork\": {:.2}, \"reduction_factor\": {:.1}, \
         \"owned_bytes_per_snapshot\": {}, \"fork_restore_per_sec\": {:.1} }}",
        pages as f64 / FORKS as f64,
        eager_mem_bytes as f64 / per_fork.max(1) as f64,
        snapshot.owned_bytes(),
        FORKS as f64 / elapsed.max(1e-9),
    )
}
