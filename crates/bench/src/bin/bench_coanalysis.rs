//! Emits `BENCH_coanalysis.json`: throughput and snapshot-cost numbers
//! for the co-analysis engine, in the same spirit as the `tables` binary.
//!
//! ```text
//! cargo run --release -p symsim-bench --bin bench_coanalysis [-- --smoke]
//! ```
//!
//! Each (cpu, benchmark) pair runs five times — event-driven, hybrid
//! batched dispatch, path-cohort lane evaluation, the compiled native
//! kernel, and a hybrid run under the adaptive CSM policy — with a single
//! worker so the explorations are deterministic and comparable. The binary
//! *asserts* that the four eval modes produce identical
//! `paths_created`/`simulated_cycles`/exercisable-gate results (the
//! batched, cohort, and compiled kernels must only change speed, never
//! results) and records every throughput so the speedups are visible
//! in-repo. Cohort runs additionally carry a `cohort` section per entry
//! (cohorts formed, mean/max lane occupancy, scalar spills); compiled runs
//! carry a `compiled` section (kernel settles, cache hit/miss, and the
//! cold-start wall time of the run that paid codegen — the measured entry
//! itself runs on a warm cache, so `rustc` cost is excluded).
//!
//! Modes and observability flags:
//!
//! * `--smoke` runs only the smallest pair in `event`, `batch`, `cohort`,
//!   and `compiled` modes and writes no bench file: the CI divergence check
//!   (all results are asserted identical to event mode, and the second
//!   compiled run must hit the kernel cache).
//! * `--pair cpu/bench` (e.g. `dr5/binsearch`) runs that single pair once
//!   (`--eval-mode`, default hybrid; `--csm-policy single|multi:N|adaptive`,
//!   default single) and prints the report as JSON.
//! * The adaptive leg asserts the exercisable-gate verdict is bit-identical
//!   to the single-merge runs on every pair, and that `paths_created` drops
//!   by at least 15% on bm32/insort and dr5/binsearch (each entry carries a
//!   `csm` section with the policy's demotion/prune/pre-split-kill counts).
//! * `--log-format pretty|json`, `--log-level L` configure the trace layer;
//!   `--heartbeat-secs S` emits NDJSON progress (to `--progress-out` or
//!   stderr); `--metrics-out FILE` writes the metrics snapshot of the last
//!   run. Every run gets a fresh registry — one registry serves one run, so
//!   cross-mode identity checks stay exact.
//! * `--trace-out FILE` records the run trace (`docs/schema/trace.schema.json`);
//!   successive runs overwrite it, so the file holds the last run's trace.
//!   Each bench entry carries a `trace` section (event/drop/byte counts) for
//!   its own run. In `--smoke` the flag additionally runs a best-of-3
//!   traced-vs-untraced comparison and asserts the tracing-off run stays
//!   within noise (the dormant hooks must cost nothing measurable).
//! * Each pair additionally runs once in event mode with first-exercise
//!   attribution on (`--attribution` enables it for `--pair` runs too). The
//!   attributed run must match the event reference exactly, its attributed
//!   net count must equal the toggle profile's, and its entry carries a
//!   `provenance` section (attributed/reset counts and the cycles/paths to
//!   50/90/100% coverage). `--smoke` adds a best-of-3
//!   attributed-vs-unattributed comparison asserting the attribution-off
//!   run stays within noise — the one-shot first-toggle hook must be free
//!   when the flag is off.
//! * Every run appends one record to the persistent run ledger
//!   (`--ledger FILE|off`, else `$SYMSIM_LEDGER`, else
//!   `.symsim/ledger.ndjson`) — inspect with `symsim runs`. The final JSON
//!   carries a top-level `env` block (git commit, rustc, host). `--smoke`
//!   adds a best-of-3 ledger-on vs ledger-off comparison (the append must
//!   be free) plus an append → read-back → self-diff round trip.

use std::sync::Arc;
use std::time::{Duration, Instant};

use symsim_bench::{noise, run_experiment, CpuKind};
use symsim_core::{CoAnalysisConfig, CoAnalysisReport, CsmPolicy};
use symsim_obs::{
    info, tracefile, Heartbeat, HeartbeatOut, MetricsRegistry, TraceSink, TraceStats,
};
use symsim_sim::{cow_clone_stats, reset_cow_clone_stats, EvalMode, MemArray, SimConfig};

/// The (cpu, benchmark) pairs measured: small enough to run in CI, big
/// enough to exercise forking and level batching.
const RUNS: [(CpuKind, &str); 3] = [
    (CpuKind::Omsp16, "div"),
    (CpuKind::Bm32, "insort"),
    (CpuKind::Dr5, "binsearch"),
];

/// The pair used by `--smoke` (the fastest of [`RUNS`]).
const SMOKE: (CpuKind, &str) = (CpuKind::Omsp16, "div");

#[derive(Default, Clone)]
struct Opts {
    smoke: bool,
    pair: Option<(CpuKind, String)>,
    eval_mode: Option<EvalMode>,
    csm_policy: Option<CsmPolicy>,
    metrics_out: Option<String>,
    heartbeat_secs: f64,
    progress_out: Option<String>,
    trace_out: Option<String>,
    attribution: bool,
    /// `--ledger FILE|off`: run-ledger destination override (default
    /// `$SYMSIM_LEDGER`, else `.symsim/ledger.ndjson`).
    ledger: Option<String>,
}

fn parse_policy_spec(spec: &str) -> CsmPolicy {
    match spec {
        "single" => CsmPolicy::SingleMerge,
        "adaptive" => CsmPolicy::adaptive(),
        other => {
            let n = other
                .strip_prefix("multi:")
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| {
                    panic!("--csm-policy: expected single, multi:N, or adaptive, got \"{other}\"")
                });
            CsmPolicy::MultiState { max_states: n }
        }
    }
}

fn parse_cpu(name: &str) -> CpuKind {
    match name {
        "omsp16" => CpuKind::Omsp16,
        "bm32" => CpuKind::Bm32,
        "dr5" => CpuKind::Dr5,
        other => panic!("unknown cpu \"{other}\" (expected omsp16, bm32, or dr5)"),
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts::default();
    let mut level = symsim_obs::Level::Info;
    let mut format = symsim_obs::LogFormat::Pretty;
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--pair" => {
                let spec = value("--pair", &mut args);
                let (cpu, bench) = spec
                    .split_once('/')
                    .unwrap_or_else(|| panic!("--pair expects cpu/bench, got \"{spec}\""));
                opts.pair = Some((parse_cpu(cpu), bench.to_string()));
            }
            "--eval-mode" => {
                opts.eval_mode = Some(
                    value("--eval-mode", &mut args)
                        .parse()
                        .expect("--eval-mode"),
                );
            }
            "--csm-policy" => {
                opts.csm_policy = Some(parse_policy_spec(&value("--csm-policy", &mut args)));
            }
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out", &mut args)),
            "--heartbeat-secs" => {
                opts.heartbeat_secs = value("--heartbeat-secs", &mut args)
                    .parse()
                    .expect("--heartbeat-secs");
            }
            "--progress-out" => opts.progress_out = Some(value("--progress-out", &mut args)),
            "--trace-out" => opts.trace_out = Some(value("--trace-out", &mut args)),
            "--ledger" => opts.ledger = Some(value("--ledger", &mut args)),
            "--attribution" => opts.attribution = true,
            "--log-level" => {
                level = value("--log-level", &mut args)
                    .parse()
                    .expect("--log-level")
            }
            "--log-format" => {
                format = value("--log-format", &mut args)
                    .parse()
                    .expect("--log-format");
            }
            other => panic!("unknown flag \"{other}\""),
        }
    }
    symsim_obs::trace::init(level, format, None);
    opts
}

/// One `run_mode` result: the report plus, when the run was traced, the
/// sink's final event/drop/byte counts.
struct RunResult {
    report: CoAnalysisReport,
    trace: Option<TraceStats>,
}

/// Runs one (cpu, bench, mode) co-analysis with a fresh registry and,
/// when requested, a heartbeat. Successive runs append to `--progress-out`
/// so one invocation yields one NDJSON stream. With `traced` set and
/// `--trace-out` given, the run writes a fresh trace to that path
/// (successive traced runs overwrite it).
fn run_mode(
    kind: CpuKind,
    bench: &str,
    mode: EvalMode,
    policy: CsmPolicy,
    opts: &Opts,
    traced: bool,
    attribution: bool,
) -> RunResult {
    let registry = Arc::new(MetricsRegistry::new(1));
    let sink = match (&opts.trace_out, traced) {
        (Some(path), true) => {
            let sink = TraceSink::to_file(path, 1).expect("create --trace-out");
            tracefile::install_global(&sink);
            Some(sink)
        }
        _ => None,
    };
    let config = CoAnalysisConfig {
        // one worker: path creation order (and thus CSM coverage) is
        // deterministic, so cross-mode identity is a meaningful check
        workers: 1,
        sim: SimConfig {
            eval_mode: mode,
            attribution,
            ..SimConfig::default()
        },
        policy,
        metrics: Some(Arc::clone(&registry)),
        trace: sink.clone(),
        ..CoAnalysisConfig::default()
    };
    let heartbeat = if opts.heartbeat_secs > 0.0 {
        let out = match &opts.progress_out {
            Some(path) => {
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .expect("open --progress-out");
                HeartbeatOut::Writer(Box::new(file))
            }
            None => HeartbeatOut::Stderr,
        };
        Some(Heartbeat::start(
            Arc::clone(&registry),
            Duration::from_secs_f64(opts.heartbeat_secs),
            out,
        ))
    } else {
        None
    };
    let result = run_experiment(kind, bench, config);
    if let Some(hb) = heartbeat {
        hb.stop();
    }
    let report = result.report;
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, report.metrics.to_json()).expect("write --metrics-out");
    }
    // every bench run appends one record to the persistent run ledger
    // (--ledger FILE|off, else $SYMSIM_LEDGER, else .symsim/ledger.ndjson)
    if let Some(path) = symsim_obs::ledger::resolve_path(opts.ledger.as_deref()) {
        let record = report.ledger_record(
            "bench",
            &format!("{}/{bench}", kind.name()),
            result.design_hash,
            result.program_hash,
            &result.config,
        );
        if let Err(e) = symsim_obs::ledger::append(&path, &record) {
            symsim_obs::warn!("bench", "cannot append run-ledger record: {e}");
        }
    }
    let trace = sink.map(|sink| {
        tracefile::clear_global();
        sink.finish()
    });
    RunResult { report, trace }
}

/// Panics if `other` diverged from the event-mode reference — the batched
/// kernel is only allowed to change *how fast* results arrive.
fn assert_equivalent(
    kind: CpuKind,
    bench: &str,
    event: &CoAnalysisReport,
    other: &CoAnalysisReport,
    mode: EvalMode,
) {
    let pair = format!("{}/{bench} ({})", kind.name(), mode.name());
    assert_eq!(
        event.paths_created, other.paths_created,
        "{pair}: paths_created diverged from event mode"
    );
    assert_eq!(
        event.simulated_cycles, other.simulated_cycles,
        "{pair}: simulated_cycles diverged from event mode"
    );
    assert_eq!(
        event.paths_skipped, other.paths_skipped,
        "{pair}: paths_skipped diverged from event mode"
    );
    assert_eq!(
        event.metrics.counter("csm_widenings"),
        other.metrics.counter("csm_widenings"),
        "{pair}: csm_widenings diverged from event mode"
    );
    assert_eq!(
        event.exercisable_gates, other.exercisable_gates,
        "{pair}: exercisable_gates diverged from event mode"
    );
}

/// The per-entry `cohort` section: lane-packing effectiveness read from
/// the run's metrics snapshot. `null` when the run formed no cohorts
/// (event/hybrid entries, or a cohort run that never forked).
fn cohort_section(r: &CoAnalysisReport) -> String {
    let formed = r.metrics.counter("cohorts_formed");
    if formed == 0 {
        return "null".to_string();
    }
    let members = r.metrics.counter("cohort_member_paths");
    let spills = r.metrics.counter("cohort_lane_spills");
    // highest non-empty bucket of the occupancy histogram bounds the
    // largest cohort actually packed
    let max_occupancy = r
        .metrics
        .histograms
        .iter()
        .find(|h| h.name == "cohort_lane_occupancy")
        .map_or(0, |h| {
            h.counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, _)| h.bounds.get(i).copied().unwrap_or(64))
                .max()
                .unwrap_or(0)
        });
    format!(
        "{{ \"cohorts_formed\": {formed}, \"member_paths\": {members}, \
         \"mean_occupancy\": {:.2}, \"max_occupancy\": {max_occupancy}, \
         \"lane_spills\": {spills} }}",
        members as f64 / formed as f64,
    )
}

/// The per-entry `compiled` section: native-kernel effectiveness read from
/// the run's report. `null` for runs that never touched the compiled
/// backend. `cold_wall_s` is the wall time of the cache-cold run that paid
/// codegen + `rustc` (the measured entry runs warm).
fn compiled_section(r: &CoAnalysisReport, cold_wall_s: Option<f64>) -> String {
    let hits = r.metrics.counter("compiled_cache_hits");
    let misses = r.metrics.counter("compiled_cache_misses");
    if r.compiled_evals == 0 && hits == 0 && misses == 0 {
        return "null".to_string();
    }
    let cold = match cold_wall_s {
        Some(s) => format!("{s:.6}"),
        None => "null".to_string(),
    };
    format!(
        "{{ \"effective_eval_mode\": \"{}\", \"kernel_settles\": {}, \
         \"cache_hits\": {hits}, \"cache_misses\": {misses}, \
         \"cold_wall_seconds\": {cold} }}",
        r.eval_mode, r.compiled_evals,
    )
}

/// The per-entry `csm` section: which policy governed the run and what the
/// Conservative State Manager did with it — repository size, cover/widen
/// traffic, adaptive demotions, subsumption prunes, pre-split kills, and
/// constraint conflicts.
fn csm_section(r: &CoAnalysisReport, policy: CsmPolicy) -> String {
    format!(
        "{{ \"policy\": \"{}\", \"stored_states\": {}, \"distinct_pcs\": {}, \
         \"observations\": {}, \"covered\": {}, \"widenings\": {}, \
         \"policy_demotions\": {}, \"slots_pruned\": {}, \
         \"paths_killed_presplit\": {}, \"constraint_conflicts\": {} }}",
        policy.name(),
        r.metrics.gauge("csm_stored_states"),
        r.metrics.gauge("csm_distinct_pcs"),
        r.metrics.counter("csm_observations"),
        r.metrics.counter("csm_covered"),
        r.metrics.counter("csm_widenings"),
        r.csm_policy_demotions,
        r.csm_slots_pruned,
        r.paths_killed_presplit,
        r.csm_constraint_conflicts,
    )
}

/// The per-entry `provenance` section: first-exercise attribution counts
/// and coverage-convergence statistics. `null` for unattributed runs.
fn provenance_section(r: &CoAnalysisReport) -> String {
    let Some(p) = &r.provenance else {
        return "null".to_string();
    };
    let mut s = format!(
        "{{ \"attributed\": {}, \"reset\": {}, \"coverage_samples\": {}",
        p.attributed_count(),
        p.reset_count(),
        p.samples().len(),
    );
    if let Some(c) = p.convergence() {
        s.push_str(&format!(
            ", \"cycles_to_50\": {}, \"cycles_to_90\": {}, \"cycles_to_100\": {}, \
             \"paths_to_50\": {}, \"paths_to_90\": {}, \"paths_to_100\": {}",
            c.cycles_to_50,
            c.cycles_to_90,
            c.cycles_to_100,
            c.paths_to_50,
            c.paths_to_90,
            c.paths_to_100,
        ));
    }
    s.push_str(" }");
    s
}

fn entry(
    kind: CpuKind,
    bench: &str,
    mode: EvalMode,
    policy: CsmPolicy,
    run: &RunResult,
    cold_wall_s: Option<f64>,
) -> String {
    let r = &run.report;
    let secs = r.wall_time.as_secs_f64().max(1e-9);
    let trace = match &run.trace {
        Some(t) => format!(
            "{{ \"events\": {}, \"dropped\": {}, \"bytes\": {} }}",
            t.events, t.dropped, t.bytes
        ),
        None => "null".to_string(),
    };
    format!(
        "    {{ \"cpu\": \"{}\", \"bench\": \"{}\", \"eval_mode\": \"{}\", \
         \"paths_created\": {}, \"paths_dropped\": {}, \"simulated_cycles\": {}, \
         \"batched_level_evals\": {}, \"event_evals\": {}, \"wall_seconds\": {:.6}, \
         \"cycles_per_sec\": {:.1}, \"paths_per_sec\": {:.1}, \"trace\": {trace}, \
         \"cohort\": {}, \"compiled\": {}, \"csm\": {}, \"provenance\": {}, \
         \"metrics\": {} }}",
        kind.name(),
        bench,
        mode.name(),
        r.paths_created,
        r.paths_dropped,
        r.simulated_cycles,
        r.batched_level_evals,
        r.event_evals,
        secs,
        r.simulated_cycles as f64 / secs,
        r.paths_simulated as f64 / secs,
        cohort_section(r),
        compiled_section(r, cold_wall_s),
        csm_section(r, policy),
        provenance_section(r),
        r.metrics.to_json_compact(),
    )
}

fn main() {
    let opts = parse_opts();

    if let Some((kind, bench)) = &opts.pair {
        let mode = opts.eval_mode.unwrap_or(EvalMode::Hybrid);
        info!(
            "bench",
            { cpu = kind.name(), bench = bench.as_str(), mode = mode.name() },
            "single-pair co-analysis: {} / {bench} ({})", kind.name(), mode.name()
        );
        let policy = opts.csm_policy.unwrap_or(CsmPolicy::SingleMerge);
        let run = run_mode(*kind, bench, mode, policy, &opts, true, opts.attribution);
        if let Some(t) = &run.trace {
            info!(
                "bench",
                { events = t.events, dropped = t.dropped, bytes = t.bytes },
                "wrote run trace ({} events, {} dropped, {} bytes)",
                t.events, t.dropped, t.bytes
            );
        }
        println!("{}", run.report.to_json());
        return;
    }

    if opts.smoke {
        let (kind, bench) = SMOKE;
        info!(
            "bench",
            "smoke: {} / {bench} in event, batch, cohort, and compiled modes...",
            kind.name()
        );
        let single = CsmPolicy::SingleMerge;
        let event = run_mode(kind, bench, EvalMode::Event, single, &opts, false, false).report;
        let batch = run_mode(kind, bench, EvalMode::Batch, single, &opts, false, false).report;
        assert_equivalent(kind, bench, &event, &batch, EvalMode::Batch);
        let cohort = run_mode(kind, bench, EvalMode::Cohort, single, &opts, false, false).report;
        assert_equivalent(kind, bench, &event, &cohort, EvalMode::Cohort);
        assert!(
            cohort.metrics.counter("cohorts_formed") > 0,
            "smoke: cohort mode never packed a lane cohort"
        );
        // first compiled run may pay codegen; second must hit the cache
        let cold = run_mode(kind, bench, EvalMode::Compiled, single, &opts, false, false).report;
        assert_equivalent(kind, bench, &event, &cold, EvalMode::Compiled);
        let warm = run_mode(kind, bench, EvalMode::Compiled, single, &opts, false, false).report;
        assert_equivalent(kind, bench, &event, &warm, EvalMode::Compiled);
        if warm.eval_mode == "compiled" {
            assert!(
                warm.compiled_evals > 0,
                "smoke: compiled mode never ran the native kernel"
            );
            assert_eq!(
                warm.metrics.counter("compiled_cache_hits"),
                1,
                "smoke: second compiled run missed the kernel cache"
            );
        } else {
            info!(
                "bench",
                "smoke: no usable rustc, compiled legs degraded to hybrid"
            );
        }
        // the adaptive CSM may prune paths but must land on the identical
        // exercisable-gate verdict
        let adaptive = run_mode(
            kind,
            bench,
            EvalMode::Hybrid,
            CsmPolicy::adaptive(),
            &opts,
            false,
            false,
        )
        .report;
        assert_eq!(
            event.exercisable_gates, adaptive.exercisable_gates,
            "smoke: adaptive CSM changed the exercisable-gate result"
        );
        assert!(
            adaptive.paths_created <= event.paths_created,
            "smoke: adaptive CSM created more paths than single-merge"
        );
        // attribution must not perturb results, must attribute every
        // toggled net, and must cost nothing when off
        let attributed = run_mode(kind, bench, EvalMode::Event, single, &opts, false, true).report;
        assert_equivalent(kind, bench, &event, &attributed, EvalMode::Event);
        let prov = attributed
            .provenance
            .as_ref()
            .expect("smoke: attributed run yields no provenance");
        assert_eq!(
            prov.attributed_count(),
            attributed.profile.toggled_count(),
            "smoke: attribution missed toggled nets"
        );
        smoke_attribution_check(kind, bench, &event, &opts);
        smoke_ledger_check(kind, bench, &event, &opts);
        info!(
            "bench",
            { cycles = event.simulated_cycles, exercisable = event.exercisable_gates },
            "smoke ok: {} cycles, {} gates exercisable in all four modes",
            event.simulated_cycles, event.exercisable_gates
        );
        if opts.trace_out.is_some() {
            smoke_trace_check(kind, bench, &event, &opts);
        }
        return;
    }

    let mut entries = Vec::new();
    for (kind, bench) in RUNS {
        info!("bench", "co-analysis: {} / {bench} (event)...", kind.name());
        let single = CsmPolicy::SingleMerge;
        let event = run_mode(kind, bench, EvalMode::Event, single, &opts, true, false);
        info!(
            "bench",
            "co-analysis: {} / {bench} (hybrid)...",
            kind.name()
        );
        let hybrid = run_mode(kind, bench, EvalMode::Hybrid, single, &opts, true, false);
        assert_equivalent(kind, bench, &event.report, &hybrid.report, EvalMode::Hybrid);
        info!(
            "bench",
            "co-analysis: {} / {bench} (cohort)...",
            kind.name()
        );
        let cohort = run_mode(kind, bench, EvalMode::Cohort, single, &opts, true, false);
        assert_equivalent(kind, bench, &event.report, &cohort.report, EvalMode::Cohort);
        info!(
            "bench",
            "co-analysis: {} / {bench} (compiled, cold then warm)...",
            kind.name()
        );
        // the cold run pays codegen + rustc and primes the kernel cache; the
        // warm run is the recorded entry, so the benchmark measures steady
        // state and the one-time compile cost is reported separately
        let compiled_cold = run_mode(kind, bench, EvalMode::Compiled, single, &opts, false, false);
        let compiled = run_mode(kind, bench, EvalMode::Compiled, single, &opts, true, false);
        assert_equivalent(
            kind,
            bench,
            &event.report,
            &compiled.report,
            EvalMode::Compiled,
        );
        info!(
            "bench",
            "co-analysis: {} / {bench} (adaptive csm)...",
            kind.name()
        );
        // the adaptive leg is allowed — expected — to diverge on path counts:
        // pre-split subsumption kills sibling paths the single-merge CSM
        // would simulate. What it may never change is the verdict.
        let adaptive = run_mode(
            kind,
            bench,
            EvalMode::Hybrid,
            CsmPolicy::adaptive(),
            &opts,
            true,
            false,
        );
        assert_eq!(
            event.report.exercisable_gates,
            adaptive.report.exercisable_gates,
            "{}/{bench}: adaptive CSM changed the exercisable-gate result",
            kind.name()
        );
        if matches!(
            (kind, bench),
            (CpuKind::Bm32, "insort") | (CpuKind::Dr5, "binsearch")
        ) {
            let base = event.report.paths_created;
            let adapted = adaptive.report.paths_created;
            assert!(
                (adapted as f64) <= base as f64 * 0.85,
                "{}/{bench}: adaptive paths_created {adapted} is not >=15% below \
                 single-merge {base}",
                kind.name()
            );
        }
        info!(
            "bench",
            "co-analysis: {} / {bench} (event, attributed)...",
            kind.name()
        );
        // first-exercise attribution must not perturb the exploration and
        // must account for every net the toggle profile marks
        let attributed = run_mode(kind, bench, EvalMode::Event, single, &opts, false, true);
        assert_equivalent(
            kind,
            bench,
            &event.report,
            &attributed.report,
            EvalMode::Event,
        );
        let prov = attributed.report.provenance.as_ref().unwrap_or_else(|| {
            panic!(
                "{}/{bench}: attributed run yields no provenance",
                kind.name()
            )
        });
        assert_eq!(
            prov.attributed_count(),
            attributed.report.profile.toggled_count(),
            "{}/{bench}: attribution missed toggled nets",
            kind.name()
        );
        if let Some(c) = prov.convergence() {
            info!(
                "bench",
                "  {} / {bench}: {} nets attributed ({} at reset); 50/90/100% coverage \
                 after {}/{}/{} cycles, {}/{}/{} paths",
                kind.name(),
                prov.attributed_count(),
                prov.reset_count(),
                c.cycles_to_50,
                c.cycles_to_90,
                c.cycles_to_100,
                c.paths_to_50,
                c.paths_to_90,
                c.paths_to_100,
            );
        }
        let event_secs = event.report.wall_time.as_secs_f64().max(1e-9);
        let hybrid_secs = hybrid.report.wall_time.as_secs_f64().max(1e-9);
        let cohort_secs = cohort.report.wall_time.as_secs_f64().max(1e-9);
        let compiled_secs = compiled.report.wall_time.as_secs_f64().max(1e-9);
        info!(
            "bench",
            "  {} / {bench}: {:.1} -> {:.1} (hybrid, {:.2}x) -> {:.1} (cohort, {:.2}x) \
             -> {:.1} (compiled, {:.2}x) cycles/sec",
            kind.name(),
            event.report.simulated_cycles as f64 / event_secs,
            hybrid.report.simulated_cycles as f64 / hybrid_secs,
            event_secs / hybrid_secs,
            cohort.report.simulated_cycles as f64 / cohort_secs,
            event_secs / cohort_secs,
            compiled.report.simulated_cycles as f64 / compiled_secs,
            event_secs / compiled_secs,
        );
        info!(
            "bench",
            "  {} / {bench}: adaptive csm {} -> {} paths_created ({} killed pre-split, \
             {} demotions)",
            kind.name(),
            event.report.paths_created,
            adaptive.report.paths_created,
            adaptive.report.paths_killed_presplit,
            adaptive.report.csm_policy_demotions,
        );
        entries.push(entry(kind, bench, EvalMode::Event, single, &event, None));
        entries.push(entry(kind, bench, EvalMode::Hybrid, single, &hybrid, None));
        entries.push(entry(kind, bench, EvalMode::Cohort, single, &cohort, None));
        entries.push(entry(
            kind,
            bench,
            EvalMode::Compiled,
            single,
            &compiled,
            Some(compiled_cold.report.wall_time.as_secs_f64()),
        ));
        entries.push(entry(
            kind,
            bench,
            EvalMode::Hybrid,
            CsmPolicy::adaptive(),
            &adaptive,
            None,
        ));
        entries.push(entry(
            kind,
            bench,
            EvalMode::Event,
            single,
            &attributed,
            None,
        ));
    }
    let mut runs = String::new();
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            runs.push_str(",\n");
        }
        runs.push_str(e);
    }

    let snap = snapshot_cost();
    let env = symsim_obs::env_fingerprint(1).to_json();
    let json =
        format!("{{\n  \"runs\": [\n{runs}\n  ],\n  \"snapshot\": {snap},\n  \"env\": {env}\n}}\n");
    std::fs::write("BENCH_coanalysis.json", &json).expect("write BENCH_coanalysis.json");
    info!("bench", "wrote BENCH_coanalysis.json");
    print!("{json}");
}

/// The `--smoke --trace-out` check: best-of-3 untraced vs best-of-3 traced
/// batch runs of the smoke pair. Asserts the traced run reproduces the
/// reference results and records cleanly (events, no drops), and that the
/// untraced run stays within noise — tracing can only ever *add* work, so
/// an untraced run slower than the traced one beyond noise means the
/// dormant hooks are paying real hot-path cost.
fn smoke_trace_check(kind: CpuKind, bench: &str, reference: &CoAnalysisReport, opts: &Opts) {
    let best_of_3 = |traced: bool| {
        noise::best_of_3(|| {
            let run = run_mode(
                kind,
                bench,
                EvalMode::Batch,
                CsmPolicy::SingleMerge,
                opts,
                traced,
                false,
            );
            (run.report.wall_time, run)
        })
    };
    let (off_s, off_run) = best_of_3(false);
    let (on_s, on_run) = best_of_3(true);
    assert_equivalent(kind, bench, reference, &off_run.report, EvalMode::Batch);
    assert_equivalent(kind, bench, reference, &on_run.report, EvalMode::Batch);
    let stats = on_run.trace.expect("traced smoke run yields trace stats");
    assert!(stats.events > 0, "smoke trace recorded no events");
    assert_eq!(stats.dropped, 0, "smoke trace dropped records");
    noise::assert_within_noise("tracing-off vs traced smoke run", on_s, off_s);
    info!(
        "bench",
        { events = stats.events, bytes = stats.bytes },
        "smoke trace ok: best-of-3 {off_s:.3}s untraced vs {on_s:.3}s traced; \
         {} events / {} bytes",
        stats.events, stats.bytes
    );
}

/// The `--smoke` attribution-cost check: best-of-3 unattributed vs
/// best-of-3 attributed batch runs of the smoke pair. The attributed run
/// must reproduce the reference results; the attribution-off run must stay
/// within noise of the attributed one — the one-shot first-toggle hook is
/// behind an `Option` check, so with the flag off it must cost nothing
/// measurable.
fn smoke_attribution_check(kind: CpuKind, bench: &str, reference: &CoAnalysisReport, opts: &Opts) {
    let best_of_3 = |attribution: bool| {
        noise::best_of_3(|| {
            let run = run_mode(
                kind,
                bench,
                EvalMode::Batch,
                CsmPolicy::SingleMerge,
                opts,
                false,
                attribution,
            );
            (run.report.wall_time, run)
        })
    };
    let (off_s, off_run) = best_of_3(false);
    let (on_s, on_run) = best_of_3(true);
    assert_equivalent(kind, bench, reference, &off_run.report, EvalMode::Batch);
    assert_equivalent(kind, bench, reference, &on_run.report, EvalMode::Batch);
    let on_prov = on_run
        .report
        .provenance
        .as_ref()
        .expect("attributed smoke run yields provenance");
    assert!(
        off_run.report.provenance.is_none(),
        "unattributed run grew a provenance map"
    );
    noise::assert_within_noise("attribution-off vs attributed smoke run", on_s, off_s);
    info!(
        "bench",
        { attributed = on_prov.attributed_count() as u64 },
        "smoke attribution ok: best-of-3 {off_s:.3}s off vs {on_s:.3}s on; \
         {} nets attributed",
        on_prov.attributed_count()
    );
}

/// The `--smoke` ledger-cost check: best-of-3 ledger-off vs best-of-3
/// ledger-on batch runs of the smoke pair. The ledger record is built once
/// at report assembly and appended after the run, so the enabled run must
/// stay within the shared noise band of the disabled one. The three
/// appended records are then read back and the last is diffed against the
/// first two — a self-diff of identical runs must report no verdict drift.
fn smoke_ledger_check(kind: CpuKind, bench: &str, reference: &CoAnalysisReport, opts: &Opts) {
    let tmp =
        std::env::temp_dir().join(format!("symsim-smoke-ledger-{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&tmp);
    let mut off_opts = opts.clone();
    off_opts.ledger = Some("off".into());
    let mut on_opts = opts.clone();
    on_opts.ledger = Some(tmp.to_string_lossy().into_owned());
    let best_of_3 = |o: &Opts| {
        noise::best_of_3(|| {
            let run = run_mode(
                kind,
                bench,
                EvalMode::Batch,
                CsmPolicy::SingleMerge,
                o,
                false,
                false,
            );
            (run.report.wall_time, run)
        })
    };
    let (off_s, off_run) = best_of_3(&off_opts);
    let (on_s, on_run) = best_of_3(&on_opts);
    assert_equivalent(kind, bench, reference, &off_run.report, EvalMode::Batch);
    assert_equivalent(kind, bench, reference, &on_run.report, EvalMode::Batch);
    // acceptance: ledger-enabled run within noise of the disabled run
    noise::assert_within_noise("ledger-on vs ledger-off smoke run", off_s, on_s);
    let entries = symsim_obs::ledger::read(&tmp).expect("read back the smoke ledger");
    assert_eq!(entries.len(), 3, "each ledger-on run appends one record");
    let baseline: Vec<&symsim_obs::LedgerEntry> = entries[..2].iter().collect();
    let diff = symsim_obs::ledger::compare(
        &entries[2],
        &baseline,
        &symsim_obs::ledger::DiffOpts::default(),
    );
    assert!(
        diff.verdict_drift.is_none(),
        "smoke: identical runs drifted in the ledger diff"
    );
    assert!(
        !diff.fingerprint_mismatch,
        "smoke: identical runs got different fingerprints"
    );
    let _ = std::fs::remove_file(&tmp);
    info!(
        "bench",
        "smoke ledger ok: best-of-3 {off_s:.3}s off vs {on_s:.3}s on; \
         3 records round-tripped, self-diff clean"
    );
}

/// Measures snapshot cost on the omsp16 core: bytes an eager memory copy
/// would move per fork versus the bytes copy-on-write actually clones
/// across one save + N restore/dirty cycles of the `div` benchmark's
/// exploration root.
fn snapshot_cost() -> String {
    let cpu = CpuKind::Omsp16.build();
    let bench = CpuKind::Omsp16.benchmark("div");
    let program = CpuKind::Omsp16.assemble(bench.source);
    let mut sim = symsim_sim::Simulator::new(&cpu.netlist, Default::default());
    cpu.prepare_symbolic(&mut sim, &program, &bench.data);
    sim.settle();
    let snapshot = sim.save_state();
    let eager_mem_bytes: usize = snapshot.mems.iter().map(MemArray::content_bytes).sum();

    const FORKS: u64 = 32;
    reset_cow_clone_stats();
    let start = Instant::now();
    for _ in 0..FORKS {
        sim.load_state(&snapshot);
        // a short segment dirties the pages a real child would
        sim.run(50);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (pages, bytes) = cow_clone_stats();
    let per_fork = bytes / FORKS;
    format!(
        "{{ \"eager_mem_bytes\": {eager_mem_bytes}, \"cow_bytes_per_fork\": {per_fork}, \
         \"cow_pages_per_fork\": {:.2}, \"reduction_factor\": {:.1}, \
         \"owned_bytes_per_snapshot\": {}, \"fork_restore_per_sec\": {:.1} }}",
        pages as f64 / FORKS as f64,
        eager_mem_bytes as f64 / per_fork.max(1) as f64,
        snapshot.owned_bytes(),
        FORKS as f64 / elapsed.max(1e-9),
    )
}
