//! Emits `BENCH_coanalysis.json`: throughput and snapshot-cost numbers
//! for the co-analysis engine, in the same spirit as the `tables` binary.
//!
//! ```text
//! cargo run --release -p symsim-bench --bin bench_coanalysis
//! ```
//!
//! The JSON records, per (cpu, benchmark) pair, simulated cycles/second
//! and explored paths/second, plus a snapshot section measuring the
//! copy-on-write fork cost against the eager memory copy it replaced.

use std::fmt::Write as _;
use std::time::Instant;

use symsim_bench::{run_experiment, CpuKind};
use symsim_core::CoAnalysisConfig;
use symsim_sim::{cow_clone_stats, reset_cow_clone_stats, MemArray};

/// The (cpu, benchmark) pairs measured: small enough to run in CI, big
/// enough to exercise forking and the work-stealing scheduler.
const RUNS: [(CpuKind, &str); 3] = [
    (CpuKind::Omsp16, "div"),
    (CpuKind::Bm32, "insort"),
    (CpuKind::Dr5, "binsearch"),
];

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1);
    let mut entries = String::new();
    for (i, (kind, bench)) in RUNS.iter().enumerate() {
        eprintln!(
            "co-analysis: {} / {bench} ({workers} workers)...",
            kind.name()
        );
        let config = CoAnalysisConfig {
            workers,
            ..CoAnalysisConfig::default()
        };
        let r = run_experiment(*kind, bench, config);
        let secs = r.report.wall_time.as_secs_f64().max(1e-9);
        if i > 0 {
            entries.push_str(",\n");
        }
        write!(
            entries,
            "    {{ \"cpu\": \"{}\", \"bench\": \"{}\", \"paths_created\": {}, \
             \"paths_dropped\": {}, \"simulated_cycles\": {}, \"wall_seconds\": {:.6}, \
             \"cycles_per_sec\": {:.1}, \"paths_per_sec\": {:.1} }}",
            kind.name(),
            bench,
            r.report.paths_created,
            r.report.paths_dropped,
            r.report.simulated_cycles,
            secs,
            r.report.simulated_cycles as f64 / secs,
            r.report.paths_simulated as f64 / secs,
        )
        .expect("write to string");
    }

    let snap = snapshot_cost();
    let json = format!("{{\n  \"runs\": [\n{entries}\n  ],\n  \"snapshot\": {snap}\n}}\n");
    std::fs::write("BENCH_coanalysis.json", &json).expect("write BENCH_coanalysis.json");
    eprintln!("wrote BENCH_coanalysis.json");
    print!("{json}");
}

/// Measures snapshot cost on the omsp16 core: bytes an eager memory copy
/// would move per fork versus the bytes copy-on-write actually clones
/// across one save + N restore/dirty cycles of the `div` benchmark's
/// exploration root.
fn snapshot_cost() -> String {
    let cpu = CpuKind::Omsp16.build();
    let bench = CpuKind::Omsp16.benchmark("div");
    let program = CpuKind::Omsp16.assemble(bench.source);
    let mut sim = symsim_sim::Simulator::new(&cpu.netlist, Default::default());
    cpu.prepare_symbolic(&mut sim, &program, &bench.data);
    sim.settle();
    let snapshot = sim.save_state();
    let eager_mem_bytes: usize = snapshot.mems.iter().map(MemArray::content_bytes).sum();

    const FORKS: u64 = 32;
    reset_cow_clone_stats();
    let start = Instant::now();
    for _ in 0..FORKS {
        sim.load_state(&snapshot);
        // a short segment dirties the pages a real child would
        sim.run(50);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (pages, bytes) = cow_clone_stats();
    let per_fork = bytes / FORKS;
    format!(
        "{{ \"eager_mem_bytes\": {eager_mem_bytes}, \"cow_bytes_per_fork\": {per_fork}, \
         \"cow_pages_per_fork\": {:.2}, \"reduction_factor\": {:.1}, \
         \"owned_bytes_per_snapshot\": {}, \"fork_restore_per_sec\": {:.1} }}",
        pages as f64 / FORKS as f64,
        eager_mem_bytes as f64 / per_fork.max(1) as f64,
        snapshot.owned_bytes(),
        FORKS as f64 / elapsed.max(1e-9),
    )
}
