//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p symsim-bench --bin tables -- all
//! cargo run --release -p symsim-bench --bin tables -- table3 table4
//! ```

use symsim_bench::{
    ext_table, fig3_ablation, fig4_ablation, fig5, fig6, power_table, scaling_table, sweep, table1,
    table2, table3, table4, validate,
};
use symsim_core::CoAnalysisConfig;

/// Every artifact this binary can regenerate.
const KNOWN: [&str; 13] = [
    "all",
    "table1",
    "table2",
    "table3",
    "table4",
    "fig5",
    "fig6",
    "fig3_ablation",
    "fig4_ablation",
    "validate",
    "power",
    "ext",
    "scaling",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for arg in &args {
        if !KNOWN.contains(&arg.as_str()) {
            eprintln!("unknown artifact \"{arg}\"; known: {}", KNOWN.join(" "));
            std::process::exit(2);
        }
    }
    let wants = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    if wants("table1") {
        println!("{}", table1());
    }
    if wants("table2") {
        println!("{}", table2());
    }

    let needs_sweep = ["table3", "table4", "fig5", "fig6"]
        .iter()
        .any(|t| wants(t));
    if needs_sweep {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1);
        let config = CoAnalysisConfig {
            workers,
            ..CoAnalysisConfig::default()
        };
        eprintln!("running the 3 CPUs x 6 benchmarks sweep ({workers} workers)...");
        let results = sweep(&config);
        if wants("table3") {
            println!("{}", table3(&results));
        }
        if wants("table4") {
            println!("{}", table4(&results));
        }
        if wants("fig5") {
            println!("{}", fig5(&results));
        }
        if wants("fig6") {
            println!("{}", fig6(&results));
        }
        for r in &results {
            if !r.report.converged() {
                eprintln!(
                    "warning: {}/{} exhausted its cycle budget on {} paths",
                    r.cpu.name(),
                    r.bench,
                    r.report.paths_budget_exhausted
                );
            }
        }
    }

    if wants("fig3_ablation") {
        println!("{}", fig3_ablation());
    }
    if wants("fig4_ablation") {
        println!("{}", fig4_ablation());
    }
    if wants("validate") {
        println!("{}", validate());
    }
    if wants("power") {
        println!("{}", power_table());
    }
    if wants("ext") {
        println!("{}", ext_table());
    }
    if wants("scaling") {
        println!("{}", scaling_table());
    }
}
