//! Materializes one (cpu, benchmark) pair as the on-disk artifacts the
//! `symsim` CLI consumes — the bridge between the in-crate processor
//! builders and file-driven workflows (CI smoke runs, manual poking):
//!
//! ```text
//! cargo run --release -p symsim-bench --bin dump_pair -- \
//!     --pair omsp16/div --out work/
//! ```
//!
//! Writes into `--out`:
//!
//! * `design.v`     — the gate-level netlist as structural Verilog
//! * `program.hex`  — the assembled benchmark, one 32-bit word per line
//! * `monitor.ini`  — qualifier/signal/split lines (paper Listing 1 style)
//! * `analyze.flags` — the remaining `symsim analyze` flags for this pair
//!   (`--pc`, `--finish`, `--inputs`, `--data`, `--max-cycles`), one line,
//!   ready for shell substitution
//!
//! and prints the flags line to stdout.

use std::fs;
use std::path::PathBuf;

use symsim_bench::CpuKind;

fn parse_cpu(name: &str) -> CpuKind {
    match name {
        "omsp16" => CpuKind::Omsp16,
        "bm32" => CpuKind::Bm32,
        "dr5" => CpuKind::Dr5,
        other => panic!("unknown cpu \"{other}\" (expected omsp16, bm32, or dr5)"),
    }
}

/// The bus base name of a net named like `pc[3]`.
fn base_name(name: &str) -> &str {
    name.split('[').next().unwrap_or(name)
}

fn main() {
    let mut pair: Option<(CpuKind, String)> = None;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pair" => {
                let spec = args.next().expect("--pair needs cpu/bench");
                let (cpu, bench) = spec
                    .split_once('/')
                    .unwrap_or_else(|| panic!("--pair expects cpu/bench, got \"{spec}\""));
                pair = Some((parse_cpu(cpu), bench.to_string()));
            }
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a directory"))),
            other => panic!("unknown flag \"{other}\""),
        }
    }
    let (kind, bench_name) = pair.expect("usage: dump_pair --pair cpu/bench --out DIR");
    let dir = out.expect("usage: dump_pair --pair cpu/bench --out DIR");

    let cpu = kind.build();
    let bench = kind.benchmark(&bench_name);
    let program = kind.assemble(bench.source);
    fs::create_dir_all(&dir).expect("create --out directory");

    fs::write(
        dir.join("design.v"),
        symsim_verilog::write_netlist(&cpu.netlist),
    )
    .expect("write design.v");

    let hex: String = program.iter().map(|w| format!("{w:08x}\n")).collect();
    fs::write(dir.join("program.hex"), hex).expect("write program.hex");

    let nl = &cpu.netlist;
    let mut ini = format!(
        "# {}/{}: monitored control signals (paper Listing 1)\nqualifier {}\n",
        kind.name(),
        bench.name,
        nl.net_name(cpu.monitor_qualifier)
    );
    for &s in &cpu.monitor_signals {
        ini.push_str(&format!("signal {}\n", nl.net_name(s)));
    }
    if let Some(split) = &cpu.split_signals {
        for &s in split {
            ini.push_str(&format!("split {}\n", nl.net_name(s)));
        }
    }
    fs::write(dir.join("monitor.ini"), ini).expect("write monitor.ini");

    let mut flags = format!(
        "--pc {} --finish {} --max-cycles {}",
        base_name(nl.net_name(cpu.pc[0])),
        nl.net_name(cpu.finish),
        bench.max_cycles,
    );
    if !bench.data.inputs.is_empty() {
        let inputs: Vec<String> = bench.data.inputs.iter().map(ToString::to_string).collect();
        flags.push_str(&format!(" --inputs {}", inputs.join(",")));
    }
    if !bench.data.concrete.is_empty() {
        let data: Vec<String> = bench
            .data
            .concrete
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect();
        flags.push_str(&format!(" --data {}", data.join(",")));
    }
    fs::write(dir.join("analyze.flags"), format!("{flags}\n")).expect("write analyze.flags");

    eprintln!(
        "dump_pair: wrote {}/{} ({} nets, {} program words) to {}",
        kind.name(),
        bench.name,
        nl.net_count(),
        program.len(),
        dir.display()
    );
    println!("{flags}");
}
