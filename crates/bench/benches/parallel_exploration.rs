//! E10 (§3.3): sequential vs parallel path exploration. The paper notes
//! that "launching these processes in parallel can drastically improve
//! simulation time"; here workers share the CSM and worklist.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symsim_bench::{run_experiment, CpuKind};
use symsim_core::CoAnalysisConfig;

fn parallel_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_exploration");
    group.sample_size(10);
    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1);
    let mut configs = vec![1, 2, max_workers];
    configs.sort_unstable();
    configs.dedup();
    for workers in configs {
        group.bench_with_input(
            BenchmarkId::new("omsp16_insort_workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    run_experiment(
                        CpuKind::Omsp16,
                        "insort",
                        CoAnalysisConfig {
                            workers,
                            ..CoAnalysisConfig::default()
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, parallel_exploration);
criterion_main!(benches);
