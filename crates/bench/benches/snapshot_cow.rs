//! Snapshot micro-benchmarks on a 4 KB-memory design: save, fork
//! (clone), restore, and the fork-then-dirty pattern path exploration
//! uses. Also reports the copy-on-write payoff — bytes actually cloned
//! per fork versus the eager memory copy the old snapshot code made.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use symsim_logic::{Value, Word};
use symsim_netlist::{NetId, Netlist, RtlBuilder};
use symsim_sim::{cow_clone_stats, reset_cow_clone_stats, MemArray, SimConfig, Simulator};

struct RamPorts {
    addr: Vec<NetId>,
    wdata: Vec<NetId>,
    we: NetId,
}

/// A single-port RAM of 2048 x 16 bits: 4 KB of memory contents.
fn ram_4kb() -> (Netlist, RamPorts) {
    let mut b = RtlBuilder::new("ram4kb");
    let addr = b.input("addr", 11);
    let wdata = b.input("wdata", 16);
    let we = b.input("we", 1);
    let m = b.memory("ram", 2048, 16);
    let rdata = b.mem_read(m, &addr);
    b.mem_write(m, &addr, &wdata, we.bit(0));
    b.output("rdata", &rdata);
    let ports = RamPorts {
        addr: (0..11).map(|i| addr.bit(i)).collect(),
        wdata: (0..16).map(|i| wdata.bit(i)).collect(),
        we: we.bit(0),
    };
    (b.finish().expect("ram design validates"), ports)
}

fn write(sim: &mut Simulator<'_>, p: &RamPorts, addr: u64, data: u64) {
    sim.poke_bus(&p.addr, &Word::from_u64(addr, p.addr.len()));
    sim.poke_bus(&p.wdata, &Word::from_u64(data, p.wdata.len()));
    sim.poke(p.we, Value::ONE);
    sim.step_cycle();
    sim.poke(p.we, Value::ZERO);
}

fn bench_snapshots(c: &mut Criterion) {
    let (nl, ports) = ram_4kb();
    let mut sim = Simulator::new(&nl, SimConfig::default());
    for a in 0..2048 {
        write(&mut sim, &ports, a, a & 0xffff);
    }
    let snapshot = sim.save_state();

    let mut g = c.benchmark_group("snapshot_4kb");
    g.sample_size(200);
    g.bench_function("save_state", |b| {
        b.iter(|| black_box(sim.save_state()));
    });
    g.bench_function("fork_clone", |b| {
        b.iter(|| black_box(snapshot.clone()));
    });
    g.bench_function("restore", |b| {
        b.iter(|| sim.load_state(black_box(&snapshot)));
    });
    g.bench_function("fork_dirty_2_words", |b| {
        let mut i = 0u64;
        b.iter(|| {
            sim.load_state(&snapshot);
            write(&mut sim, &ports, i % 64, 0xdead);
            write(&mut sim, &ports, 1024 + i % 64, 0xbeef);
            i += 1;
        });
    });
    g.finish();

    // report the CoW payoff: bytes cloned per fork vs an eager memory copy
    let eager: usize = snapshot.mems.iter().map(MemArray::content_bytes).sum();
    const FORKS: u64 = 64;
    reset_cow_clone_stats();
    for i in 0..FORKS {
        sim.load_state(&snapshot);
        write(&mut sim, &ports, i % 64, 0xdead);
        write(&mut sim, &ports, 1024 + i % 64, 0xbeef);
    }
    let (pages, bytes) = cow_clone_stats();
    let per_fork = bytes / FORKS;
    println!(
        "snapshot_4kb/cow_payoff: {per_fork} B cloned per fork \
         ({} pages across {FORKS} forks) vs {eager} B eager copy: {:.1}x reduction",
        pages,
        eager as f64 / per_fork.max(1) as f64
    );
}

criterion_group!(benches, bench_snapshots);
criterion_main!(benches);
