//! E8 (Fig. 3 ablation): conservative-state formation policies. Measures
//! both raw CSM merge/covers throughput on synthetic states and full
//! co-analysis under each policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symsim_bench::{run_experiment, CpuKind};
use symsim_core::{CoAnalysisConfig, ConservativeStateManager, CsmPolicy};
use symsim_logic::Value;
use symsim_sim::SimState;

fn synthetic_state(bits: usize, seed: u64) -> SimState {
    let values = (0..bits)
        .map(|i| {
            // deterministic pseudo-random mix of 0/1/X
            match (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64))
                % 5
            {
                0 | 1 => Value::ZERO,
                2 | 3 => Value::ONE,
                _ => Value::X,
            }
        })
        .collect();
    SimState {
        values,
        mems: vec![],
        cycle: seed,
    }
}

fn csm_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("csm_observe");
    for policy in [
        CsmPolicy::SingleMerge,
        CsmPolicy::MultiState { max_states: 4 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("policy", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let states: Vec<SimState> = (0..64).map(|s| synthetic_state(4096, s)).collect();
                b.iter(|| {
                    let mut csm = ConservativeStateManager::new(policy);
                    for (i, s) in states.iter().enumerate() {
                        let _ = csm.observe((i % 8) as u64, s);
                    }
                    csm.stored_states()
                });
            },
        );
    }
    group.finish();
}

fn policy_coanalysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("csm_policy_coanalysis");
    group.sample_size(10);
    for (label, policy) in [
        ("single_merge", CsmPolicy::SingleMerge),
        ("multi_state_2", CsmPolicy::MultiState { max_states: 2 }),
    ] {
        group.bench_function(BenchmarkId::new("omsp16_div", label), |b| {
            b.iter(|| {
                run_experiment(
                    CpuKind::Omsp16,
                    "div",
                    CoAnalysisConfig {
                        policy,
                        ..CoAnalysisConfig::default()
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, csm_throughput, policy_coanalysis);
criterion_main!(benches);
