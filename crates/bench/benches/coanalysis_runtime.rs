//! E11: wall-clock co-analysis runtime per (CPU, benchmark) — the paper's
//! "simulation time" metric. Shapes to expect: omsp16 converges fastest on
//! flag-driven benchmarks; tea8 is single-path everywhere.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symsim_bench::{run_experiment, CpuKind};
use symsim_core::CoAnalysisConfig;

fn coanalysis_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("coanalysis_runtime");
    group.sample_size(10);
    for kind in CpuKind::all() {
        for bench in ["div", "mult", "tea8"] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), bench),
                &(kind, bench),
                |b, &(kind, bench)| {
                    b.iter(|| run_experiment(kind, bench, CoAnalysisConfig::default()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, coanalysis_runtime);
criterion_main!(benches);
