//! E9 (Fig. 4 ablation): anonymous vs tagged symbol propagation — raw gate
//! evaluation throughput and full-netlist settle cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symsim_logic::{ops, PropagationPolicy, Value, Word};
use symsim_netlist::RtlBuilder;
use symsim_sim::{SimConfig, Simulator};

fn gate_eval_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_eval");
    let domain = [
        Value::ZERO,
        Value::ONE,
        Value::X,
        Value::symbol(1),
        Value::symbol_inverted(1),
        Value::symbol(2),
    ];
    for policy in [PropagationPolicy::Anonymous, PropagationPolicy::Tagged] {
        group.bench_with_input(
            BenchmarkId::new("xor_and_or", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &x in &domain {
                        for &y in &domain {
                            if ops::xor(x, y, policy).is_known() {
                                acc += 1;
                            }
                            if ops::and(x, y, policy).is_known() {
                                acc += 1;
                            }
                            if ops::or(x, y, policy).is_known() {
                                acc += 1;
                            }
                        }
                    }
                    acc
                });
            },
        );
    }
    group.finish();
}

fn netlist_settle(c: &mut Criterion) {
    // a multiplier fed by one symbolic operand: tagged recombination keeps
    // more bits known through the XOR-heavy partial-product tree
    let mut b = RtlBuilder::new("mul16");
    let x = b.input("x", 16);
    let y = b.input("y", 16);
    let p = b.mul_full(&x, &y);
    b.output("p", &p);
    let nl = b.finish().expect("valid");
    let x_nets: Vec<_> = (0..16)
        .map(|i| nl.find_net(&format!("x[{i}]")).expect("net"))
        .collect();
    let y_nets: Vec<_> = (0..16)
        .map(|i| nl.find_net(&format!("y[{i}]")).expect("net"))
        .collect();

    let mut group = c.benchmark_group("settle_mul16");
    for policy in [PropagationPolicy::Anonymous, PropagationPolicy::Tagged] {
        group.bench_with_input(
            BenchmarkId::new("policy", format!("{policy:?}")),
            &policy,
            |bch, &policy| {
                let config = SimConfig {
                    policy,
                    ..SimConfig::default()
                };
                let mut sim = Simulator::new(&nl, config);
                bch.iter(|| {
                    sim.poke_bus(&x_nets, &Word::symbols(0, 16));
                    sim.poke_bus(&y_nets, &Word::from_u64(0xabcd, 16));
                    let evals = sim.settle();
                    sim.poke_bus(&x_nets, &Word::from_u64(0x1234, 16));
                    evals + sim.settle()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, gate_eval_throughput, netlist_settle);
criterion_main!(benches);
