//! Path-cohort lane kernel: one bit-plane pass settling up to 64 sibling
//! paths vs. the scalar segment loop it replaces, plus the fixed
//! pack/unpack overhead a cohort pays before any cycles run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symsim_logic::{plane::Lanes, Value, Word};
use symsim_netlist::{Netlist, RtlBuilder};
use symsim_sim::{EvalMode, SimConfig, SimState, Simulator};

const CYCLES: u64 = 64;

/// A registered datapath whose per-lane state stays divergent after the
/// one forced cycle: the accumulator folds the forced stimulus in and
/// keeps amplifying it (`acc' = (acc + acc) ^ d`), while a counter-addressed
/// memory write/read pair exercises the per-lane memory path.
fn lanes_dp() -> Netlist {
    let mut b = RtlBuilder::new("cohort_dp");
    let d = b.input("d", 8);
    let acc = b.reg("acc", 8, 1);
    let accq = acc.q.clone();
    let cnt = b.reg("cnt", 4, 0);
    let cntq = cnt.q.clone();
    let one4 = b.const_word(1, 4);
    let cnext = b.add(&cntq, &one4);
    b.drive_reg(cnt, &cnext);
    let doubled = b.add(&accq, &accq);
    let next = b.xor(&doubled, &d);
    b.drive_reg(acc, &next);
    let m = b.memory("ram", 16, 8);
    let one = b.one();
    b.mem_write(m, &cntq, &accq, one);
    let rd = b.mem_read(m, &cntq);
    b.output("rd", &rd);
    b.output("acc_o", &accq);
    b.finish().unwrap()
}

/// A fully-known quiescent snapshot to fork from (cohort packing demands
/// an exact base: no symbols, no Z).
fn fork_base(sim: &mut Simulator<'_>, d: &[symsim_netlist::NetId]) -> SimState {
    sim.poke_bus(d, &Word::from_u64(0, 8));
    sim.settle();
    for _ in 0..4 {
        sim.step_cycle();
    }
    sim.save_state()
}

fn cohort_vs_scalar(c: &mut Criterion) {
    let nl = lanes_dp();
    let mut group = c.benchmark_group("plane_cohort");
    for &n in &[4usize, 16, 64] {
        let k = n.trailing_zeros() as usize;

        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |bch, &n| {
            let mut sim = Simulator::new(&nl, SimConfig::default());
            let d = sim.find_bus("d", 8).unwrap();
            let base = fork_base(&mut sim, &d);
            bch.iter(|| {
                let mut acc = 0u64;
                for combo in 0..n as u64 {
                    sim.load_state(&base);
                    for (j, &net) in d.iter().take(k).enumerate() {
                        sim.force(net, Value::from_bool((combo >> j) & 1 == 1));
                    }
                    sim.settle();
                    let pending = sim.step_cycle();
                    sim.release_all();
                    if pending.is_none() {
                        sim.run(CYCLES);
                    }
                    acc += sim.save_state().cycle;
                }
                acc
            });
        });

        group.bench_with_input(BenchmarkId::new("cohort", n), &n, |bch, &n| {
            let mut sim = Simulator::new(
                &nl,
                SimConfig {
                    eval_mode: EvalMode::Cohort,
                    ..SimConfig::default()
                },
            );
            let d = sim.find_bus("d", 8).unwrap();
            let base = fork_base(&mut sim, &d);
            bch.iter(|| {
                let mut c = sim.cohort_pack(&base, n).expect("eligible base");
                for (j, &net) in d.iter().take(k).enumerate() {
                    let mut plane = Lanes::ZEROS;
                    for l in 0..n {
                        if (l >> j) & 1 == 1 {
                            plane.set(l as u32, Value::ONE);
                        }
                    }
                    sim.cohort_force(&mut c, net, plane);
                }
                sim.cohort_run(&mut c, CYCLES);
                (0..n).map(|l| c.lane_cycles(l)).sum::<u64>()
            });
        });
    }
    group.finish();
}

fn pack_unpack_overhead(c: &mut Criterion) {
    let nl = lanes_dp();
    let mut sim = Simulator::new(
        &nl,
        SimConfig {
            eval_mode: EvalMode::Cohort,
            ..SimConfig::default()
        },
    );
    let d = sim.find_bus("d", 8).unwrap();
    let base = fork_base(&mut sim, &d);

    let mut group = c.benchmark_group("cohort_pack_unpack");
    group.bench_function("pack64", |bch| {
        bch.iter(|| sim.cohort_pack(&base, 64).expect("eligible base"));
    });
    let cohort = sim.cohort_pack(&base, 64).expect("eligible base");
    group.bench_function("unpack64", |bch| {
        bch.iter(|| {
            (0..64usize)
                .map(|l| sim.cohort_unpack(&cohort, l).values.len())
                .sum::<usize>()
        });
    });
    group.finish();
}

criterion_group!(benches, cohort_vs_scalar, pack_unpack_overhead);
criterion_main!(benches);
