use std::collections::HashMap;
use std::fmt;

use crate::ir::{Driver, GateId, MemoryId, NetId, Netlist};

/// A node of the combinational graph: a gate or a memory read port.
///
/// Memory read ports are combinational (`data = mem[addr]`) and therefore
/// participate in levelization and cycle checking alongside gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombNode {
    /// A combinational gate.
    Gate(GateId),
    /// Read port `port` of memory `mem`.
    MemRead {
        /// Which memory.
        mem: MemoryId,
        /// Which read port.
        port: usize,
    },
}

/// Structural problems detected by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// Two drivers contend for one net.
    MultipleDrivers {
        /// The multiply-driven net.
        net: NetId,
        /// Its name, for diagnostics.
        name: String,
    },
    /// The combinational graph contains a cycle (no valid evaluation order).
    CombinationalCycle {
        /// Number of nodes stuck in the cycle.
        nodes_in_cycle: usize,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::MultipleDrivers { net, name } => {
                write!(f, "net {net} (\"{name}\") has multiple drivers")
            }
            ValidateError::CombinationalCycle { nodes_in_cycle } => {
                write!(f, "combinational cycle through {nodes_in_cycle} nodes")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Netlist {
    /// Enumerates the combinational nodes (gates, then memory read ports).
    pub fn comb_nodes(&self) -> Vec<CombNode> {
        let mut nodes: Vec<CombNode> = self
            .iter_gates()
            .map(|(id, _)| CombNode::Gate(id))
            .collect();
        for (mi, m) in self.memories().iter().enumerate() {
            for pi in 0..m.read_ports.len() {
                nodes.push(CombNode::MemRead {
                    mem: MemoryId(mi as u32),
                    port: pi,
                });
            }
        }
        nodes
    }

    fn comb_node_pins(&self, node: CombNode) -> (Vec<NetId>, Vec<NetId>) {
        match node {
            CombNode::Gate(g) => {
                let gate = self.gate(g);
                (gate.inputs.clone(), vec![gate.output])
            }
            CombNode::MemRead { mem, port } => {
                let rp = &self.memories()[mem.0 as usize].read_ports[port];
                (rp.addr.clone(), rp.data.clone())
            }
        }
    }

    /// Checks structural invariants: at most one driver per net and an
    /// acyclic combinational graph.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        // single-driver check (drivers() keeps only the last; recount here)
        let mut driver_count = vec![0u8; self.net_count()];
        let mut bump = |net: NetId| {
            let c = &mut driver_count[net.0 as usize];
            *c = c.saturating_add(1);
        };
        for g in self.gates() {
            bump(g.output);
        }
        for d in self.dffs() {
            bump(d.q);
        }
        for m in self.memories() {
            for rp in &m.read_ports {
                for &n in &rp.data {
                    bump(n);
                }
            }
        }
        for &n in self.inputs() {
            bump(n);
        }
        if let Some(i) = driver_count.iter().position(|&c| c > 1) {
            let net = NetId(i as u32);
            return Err(ValidateError::MultipleDrivers {
                net,
                name: self.net_name(net).to_string(),
            });
        }
        self.comb_topo_order().map(|_| ())
    }

    /// A topological order of the combinational nodes (Kahn's algorithm).
    ///
    /// Flip-flop outputs, primary inputs, and undriven nets are sources;
    /// edges run from a node's output nets to every node reading them.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError::CombinationalCycle`] if no order exists.
    pub fn comb_topo_order(&self) -> Result<Vec<CombNode>, ValidateError> {
        let nodes = self.comb_nodes();
        let index_of: HashMap<CombNode, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();

        // net -> producing comb node (if combinationally driven)
        let drivers = self.drivers();
        let comb_driver = |net: NetId| -> Option<usize> {
            match drivers[net.0 as usize] {
                Some(Driver::Gate(g)) => index_of.get(&CombNode::Gate(g)).copied(),
                Some(Driver::MemoryRead { mem, port }) => {
                    index_of.get(&CombNode::MemRead { mem, port }).copied()
                }
                _ => None,
            }
        };

        let mut indegree = vec![0usize; nodes.len()];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (i, &node) in nodes.iter().enumerate() {
            let (ins, _) = self.comb_node_pins(node);
            for pin in ins {
                if let Some(p) = comb_driver(pin) {
                    succ[p].push(i);
                    indegree[i] += 1;
                }
            }
        }

        let mut ready: Vec<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(nodes.len());
        while let Some(i) = ready.pop() {
            order.push(nodes[i]);
            for &s in &succ[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if order.len() != nodes.len() {
            return Err(ValidateError::CombinationalCycle {
                nodes_in_cycle: nodes.len() - order.len(),
            });
        }
        Ok(order)
    }

    /// The logic level of each combinational node, indexed in
    /// [`Netlist::comb_nodes`] order: sources (nodes fed only by flip-flops,
    /// inputs, or undriven nets) are level 0, and every other node sits one
    /// past its deepest combinational input.
    ///
    /// This is the levelization the batched evaluation kernel compiles its
    /// per-level instruction tapes from: all nodes of one level are mutually
    /// independent, so a level can be evaluated in any order — including 64
    /// gates at a time.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError::CombinationalCycle`] if no levelization
    /// exists.
    pub fn comb_levels(&self) -> Result<Vec<u32>, ValidateError> {
        let order = self.comb_topo_order()?;
        let nodes = self.comb_nodes();
        let index_of: HashMap<CombNode, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let drivers = self.drivers();
        let comb_driver = |net: NetId| -> Option<usize> {
            match drivers[net.0 as usize] {
                Some(Driver::Gate(g)) => index_of.get(&CombNode::Gate(g)).copied(),
                Some(Driver::MemoryRead { mem, port }) => {
                    index_of.get(&CombNode::MemRead { mem, port }).copied()
                }
                _ => None,
            }
        };
        let mut level = vec![0u32; nodes.len()];
        for node in order {
            let idx = index_of[&node];
            let (ins, _) = self.comb_node_pins(node);
            let mut l = 0;
            for pin in ins {
                if let Some(p) = comb_driver(pin) {
                    l = l.max(level[p] + 1);
                }
            }
            level[idx] = l;
        }
        Ok(level)
    }

    /// For each net, the combinational nodes reading it. Used by the
    /// event-driven simulator to schedule fanout on value changes.
    pub fn fanout_map(&self) -> Vec<Vec<CombNode>> {
        let mut fanout: Vec<Vec<CombNode>> = vec![Vec::new(); self.net_count()];
        for (id, g) in self.iter_gates() {
            for &pin in &g.inputs {
                fanout[pin.0 as usize].push(CombNode::Gate(id));
            }
        }
        for (mi, m) in self.memories().iter().enumerate() {
            for (pi, rp) in m.read_ports.iter().enumerate() {
                for &pin in &rp.addr {
                    fanout[pin.0 as usize].push(CombNode::MemRead {
                        mem: MemoryId(mi as u32),
                        port: pi,
                    });
                }
            }
        }
        fanout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use symsim_logic::Logic;

    #[test]
    fn topo_orders_chain() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        nl.add_input(a);
        // build out of order: c = not b; b = not a
        nl.add_gate(CellKind::Not, &[b], c);
        nl.add_gate(CellKind::Not, &[a], b);
        let order = nl.comb_topo_order().unwrap();
        assert_eq!(
            order,
            vec![CombNode::Gate(GateId(1)), CombNode::Gate(GateId(0))]
        );
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn levels_follow_depth() {
        let mut nl = Netlist::new("lvl");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let d = nl.add_net("d");
        nl.add_input(a);
        nl.add_input(b);
        // gate 0: c = a & b (level 0); gate 1: d = !c (level 1)
        nl.add_gate(CellKind::And2, &[a, b], c);
        nl.add_gate(CellKind::Not, &[c], d);
        assert_eq!(nl.comb_levels().unwrap(), vec![0, 1]);
    }

    #[test]
    fn detects_comb_cycle() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(CellKind::Not, &[a], b);
        nl.add_gate(CellKind::Not, &[b], a);
        assert!(matches!(
            nl.validate(),
            Err(ValidateError::CombinationalCycle { nodes_in_cycle: 2 })
        ));
    }

    #[test]
    fn dff_breaks_cycle() {
        let mut nl = Netlist::new("toggle");
        let d = nl.add_net("d");
        let q = nl.add_net("q");
        nl.add_gate(CellKind::Not, &[q], d);
        nl.add_dff(d, q, Logic::Zero);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn detects_multiple_drivers() {
        let mut nl = Netlist::new("md");
        let a = nl.add_net("a");
        let y = nl.add_net("y");
        nl.add_input(a);
        nl.add_gate(CellKind::Buf, &[a], y);
        nl.add_gate(CellKind::Not, &[a], y);
        assert!(matches!(
            nl.validate(),
            Err(ValidateError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn fanout_map_lists_readers() {
        let mut nl = Netlist::new("f");
        let a = nl.add_net("a");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        nl.add_gate(CellKind::Not, &[a], y1);
        nl.add_gate(CellKind::Buf, &[a], y2);
        let fanout = nl.fanout_map();
        assert_eq!(fanout[a.0 as usize].len(), 2);
        assert!(fanout[y1.0 as usize].is_empty());
    }

    #[test]
    fn mem_read_port_participates_in_topo() {
        let mut nl = Netlist::new("m");
        let a0 = nl.add_net("a0");
        let d0 = nl.add_net("d0");
        let y = nl.add_net("y");
        nl.add_input(a0);
        let mem = nl.add_memory("rom", 2, 1);
        nl.add_read_port(mem, vec![a0], vec![d0]);
        nl.add_gate(CellKind::Not, &[d0], y);
        let order = nl.comb_topo_order().unwrap();
        assert_eq!(order.len(), 2);
        assert!(matches!(order[0], CombNode::MemRead { .. }));
    }
}
