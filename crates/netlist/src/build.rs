use symsim_logic::Logic;

use crate::cell::CellKind;
use crate::graph::ValidateError;
use crate::ir::{MemoryId, NetId, Netlist};

/// A little-endian bundle of nets (bit 0 = LSB).
///
/// Buses are the word-level handles the [`RtlBuilder`] hands out; all
/// arithmetic helpers consume and produce buses while elaborating to
/// two-input gates underneath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus(Vec<NetId>);

impl Bus {
    /// Wraps raw nets as a bus (LSB first).
    pub fn from_nets(nets: Vec<NetId>) -> Bus {
        Bus(nets)
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The net carrying bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: usize) -> NetId {
        self.0[i]
    }

    /// The most-significant bit.
    ///
    /// # Panics
    ///
    /// Panics if the bus is empty.
    pub fn msb(&self) -> NetId {
        *self.0.last().expect("msb of empty bus")
    }

    /// Bits `lo..hi` (exclusive) as a new bus.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, lo: usize, hi: usize) -> Bus {
        Bus(self.0[lo..hi].to_vec())
    }

    /// Concatenates `self` (low part) with `high`.
    pub fn concat(&self, high: &Bus) -> Bus {
        let mut nets = self.0.clone();
        nets.extend_from_slice(&high.0);
        Bus(nets)
    }

    /// The underlying nets, LSB first.
    pub fn as_nets(&self) -> &[NetId] {
        &self.0
    }

    /// Consumes the bus, returning its nets.
    pub fn into_nets(self) -> Vec<NetId> {
        self.0
    }
}

/// A register allocated by [`RtlBuilder::reg`] whose next-state input is
/// connected later with [`RtlBuilder::drive_reg`] (registers typically feed
/// back into the logic that computes their next value).
#[derive(Debug)]
pub struct RegHandle {
    /// The registered outputs (`q`).
    pub q: Bus,
    index: usize,
}

/// A memory allocated by [`RtlBuilder::memory`].
#[derive(Debug, Clone, Copy)]
pub struct MemoryHandle(MemoryId);

#[derive(Debug)]
struct PendingReg {
    name: String,
    q: Vec<NetId>,
    init: u64,
    init_known: bool,
    d: Option<Vec<NetId>>,
}

/// Word-level RTL builder that elaborates directly to a gate-level
/// [`Netlist`].
///
/// The builder provides the datapath vocabulary needed to construct the
/// evaluation processors — ripple-carry adders/subtractors, comparators,
/// barrel shifters, array multipliers, muxes, registers, and memories —
/// producing real gate-level structure (the object of the co-analysis)
/// rather than behavioural models.
///
/// # Example
///
/// ```
/// use symsim_netlist::RtlBuilder;
///
/// let mut b = RtlBuilder::new("counter");
/// let cnt = b.reg("cnt", 8, 0);
/// let one = b.const_word(1, 8);
/// let next = b.add(&cnt.q.clone(), &one);
/// b.drive_reg(cnt, &next);
/// let nl = b.finish().expect("valid");
/// assert!(nl.dff_count() == 8);
/// ```
#[derive(Debug)]
pub struct RtlBuilder {
    nl: Netlist,
    regs: Vec<PendingReg>,
    zero: Option<NetId>,
    one: Option<NetId>,
    tmp: u64,
}

impl RtlBuilder {
    /// Starts building a module named `name`.
    pub fn new(name: impl Into<String>) -> RtlBuilder {
        RtlBuilder {
            nl: Netlist::new(name),
            regs: Vec::new(),
            zero: None,
            one: None,
            tmp: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> NetId {
        self.tmp += 1;
        let n = self.tmp;
        self.nl.add_net(format!("{prefix}_{n}"))
    }

    fn fresh_bus(&mut self, prefix: &str, width: usize) -> Bus {
        self.tmp += 1;
        let n = self.tmp;
        Bus((0..width)
            .map(|i| self.nl.add_net(format!("{prefix}_{n}[{i}]")))
            .collect())
    }

    /// Declares a top-level input bus named `name[0..width]`.
    pub fn input(&mut self, name: &str, width: usize) -> Bus {
        let nets: Vec<NetId> = (0..width)
            .map(|i| {
                let id = if width == 1 {
                    self.nl.add_net(name)
                } else {
                    self.nl.add_net(format!("{name}[{i}]"))
                };
                self.nl.add_input(id);
                id
            })
            .collect();
        Bus(nets)
    }

    /// Declares the bus as a top-level output named `name[0..width]`, adding
    /// buffers so the output nets carry the requested names.
    pub fn output(&mut self, name: &str, bus: &Bus) {
        for (i, &bit) in bus.0.iter().enumerate() {
            let out = if bus.width() == 1 {
                self.nl.add_net(name)
            } else {
                self.nl.add_net(format!("{name}[{i}]"))
            };
            self.nl.add_gate(CellKind::Buf, &[bit], out);
            self.nl.add_output(out);
        }
    }

    /// Gives `net` an additional user-visible alias via a buffer; returns
    /// the aliased net. Useful for naming monitor points (`branch_taken`).
    /// The alias is declared as a top-level output so that downstream
    /// transformations (bespoke sweeps) preserve the monitor pin.
    pub fn name_net(&mut self, name: &str, net: NetId) -> NetId {
        let alias = self.nl.add_net(name);
        self.nl.add_gate(CellKind::Buf, &[net], alias);
        self.nl.add_output(alias);
        alias
    }

    /// Constant 0 net (shared `const0` cell).
    pub fn zero(&mut self) -> NetId {
        if let Some(z) = self.zero {
            return z;
        }
        let z = self.nl.add_net("const_zero");
        self.nl.add_gate(CellKind::Const0, &[], z);
        self.zero = Some(z);
        z
    }

    /// Constant 1 net (shared `const1` cell).
    pub fn one(&mut self) -> NetId {
        if let Some(o) = self.one {
            return o;
        }
        let o = self.nl.add_net("const_one");
        self.nl.add_gate(CellKind::Const1, &[], o);
        self.one = Some(o);
        o
    }

    /// A `width`-bit constant bus holding the low bits of `value`.
    pub fn const_word(&mut self, value: u64, width: usize) -> Bus {
        let nets = (0..width)
            .map(|i| {
                if value >> i & 1 == 1 {
                    self.one()
                } else {
                    self.zero()
                }
            })
            .collect();
        Bus(nets)
    }

    // ---- single-bit gates ----

    /// Inverter.
    pub fn not1(&mut self, a: NetId) -> NetId {
        let y = self.fresh("not");
        self.nl.add_gate(CellKind::Not, &[a], y);
        y
    }

    /// Two-input AND.
    pub fn and1(&mut self, a: NetId, b: NetId) -> NetId {
        let y = self.fresh("and");
        self.nl.add_gate(CellKind::And2, &[a, b], y);
        y
    }

    /// Two-input OR.
    pub fn or1(&mut self, a: NetId, b: NetId) -> NetId {
        let y = self.fresh("or");
        self.nl.add_gate(CellKind::Or2, &[a, b], y);
        y
    }

    /// Two-input XOR.
    pub fn xor1(&mut self, a: NetId, b: NetId) -> NetId {
        let y = self.fresh("xor");
        self.nl.add_gate(CellKind::Xor2, &[a, b], y);
        y
    }

    /// Two-input NOR.
    pub fn nor1(&mut self, a: NetId, b: NetId) -> NetId {
        let y = self.fresh("nor");
        self.nl.add_gate(CellKind::Nor2, &[a, b], y);
        y
    }

    /// Two-input NAND.
    pub fn nand1(&mut self, a: NetId, b: NetId) -> NetId {
        let y = self.fresh("nand");
        self.nl.add_gate(CellKind::Nand2, &[a, b], y);
        y
    }

    /// Two-input XNOR.
    pub fn xnor1(&mut self, a: NetId, b: NetId) -> NetId {
        let y = self.fresh("xnor");
        self.nl.add_gate(CellKind::Xnor2, &[a, b], y);
        y
    }

    /// Bit mux: `when0` if `sel=0`, `when1` if `sel=1`.
    pub fn mux1(&mut self, sel: NetId, when0: NetId, when1: NetId) -> NetId {
        let y = self.fresh("mux");
        self.nl.add_gate(CellKind::Mux2, &[sel, when0, when1], y);
        y
    }

    // ---- bus logic ----

    /// Bitwise NOT.
    pub fn not(&mut self, a: &Bus) -> Bus {
        Bus(a.0.iter().map(|&n| self.not1(n)).collect())
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if widths differ (as do all two-operand bus helpers).
    pub fn and(&mut self, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.width(), b.width());
        Bus(a
            .0
            .iter()
            .zip(&b.0)
            .map(|(&x, &y)| self.and1(x, y))
            .collect())
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.width(), b.width());
        Bus(a
            .0
            .iter()
            .zip(&b.0)
            .map(|(&x, &y)| self.or1(x, y))
            .collect())
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.width(), b.width());
        Bus(a
            .0
            .iter()
            .zip(&b.0)
            .map(|(&x, &y)| self.xor1(x, y))
            .collect())
    }

    /// Bus mux: `when0` if `sel=0`, `when1` if `sel=1`.
    pub fn mux(&mut self, sel: NetId, when0: &Bus, when1: &Bus) -> Bus {
        assert_eq!(when0.width(), when1.width());
        Bus(when0
            .0
            .iter()
            .zip(&when1.0)
            .map(|(&a, &b)| self.mux1(sel, a, b))
            .collect())
    }

    /// Replicates `bit` across `width` AND gates with `a` (masking).
    pub fn mask(&mut self, bit: NetId, a: &Bus) -> Bus {
        Bus(a.0.iter().map(|&n| self.and1(n, bit)).collect())
    }

    /// AND-reduction tree.
    pub fn and_reduce(&mut self, a: &Bus) -> NetId {
        self.reduce(a, |b, x, y| b.and1(x, y))
    }

    /// OR-reduction tree.
    pub fn or_reduce(&mut self, a: &Bus) -> NetId {
        self.reduce(a, |b, x, y| b.or1(x, y))
    }

    fn reduce(&mut self, a: &Bus, f: impl Fn(&mut Self, NetId, NetId) -> NetId) -> NetId {
        assert!(!a.0.is_empty(), "reducing empty bus");
        let mut layer = a.0.clone();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    f(self, pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// `1` when every bit of `a` is zero.
    pub fn is_zero(&mut self, a: &Bus) -> NetId {
        let any = self.or_reduce(a);
        self.not1(any)
    }

    /// `1` when `a == b`.
    pub fn eq(&mut self, a: &Bus, b: &Bus) -> NetId {
        let diff = self.xor(a, b);
        self.is_zero(&diff)
    }

    // ---- arithmetic ----

    /// Full ripple-carry add with carry-in; returns `(sum, carry_out)`.
    pub fn add_carry(&mut self, a: &Bus, b: &Bus, cin: NetId) -> (Bus, NetId) {
        assert_eq!(a.width(), b.width());
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let axb = self.xor1(a.bit(i), b.bit(i));
            let s = self.xor1(axb, carry);
            let t1 = self.and1(a.bit(i), b.bit(i));
            let t2 = self.and1(axb, carry);
            carry = self.or1(t1, t2);
            sum.push(s);
        }
        (Bus(sum), carry)
    }

    /// Modular addition (carry-out dropped).
    pub fn add(&mut self, a: &Bus, b: &Bus) -> Bus {
        let zero = self.zero();
        self.add_carry(a, b, zero).0
    }

    /// Subtraction via two's complement; returns `(diff, carry_out)` where
    /// `carry_out = 1` means **no** borrow (i.e. `a >= b` unsigned).
    pub fn sub_carry(&mut self, a: &Bus, b: &Bus) -> (Bus, NetId) {
        let nb = self.not(b);
        let one = self.one();
        self.add_carry(a, &nb, one)
    }

    /// Modular subtraction.
    pub fn sub(&mut self, a: &Bus, b: &Bus) -> Bus {
        self.sub_carry(a, b).0
    }

    /// Unsigned `a < b`.
    pub fn lt_u(&mut self, a: &Bus, b: &Bus) -> NetId {
        let (_, carry) = self.sub_carry(a, b);
        self.not1(carry)
    }

    /// Signed `a < b` (two's complement): `N XOR V` of `a - b`.
    pub fn lt_s(&mut self, a: &Bus, b: &Bus) -> NetId {
        let (diff, _) = self.sub_carry(a, b);
        let n = diff.msb();
        // overflow: operands of differing sign and result sign differs from a
        let sa = a.msb();
        let sb = b.msb();
        let signs_differ = self.xor1(sa, sb);
        let res_differs = self.xor1(sa, n);
        let v = self.and1(signs_differ, res_differs);
        self.xor1(n, v)
    }

    /// Arithmetic negation.
    pub fn neg(&mut self, a: &Bus) -> Bus {
        let width = a.width();
        let zero = self.const_word(0, width);
        self.sub(&zero, a)
    }

    // ---- shifts ----

    /// Shift left by a constant (zero fill) — pure rewiring plus tie-offs.
    pub fn shl_const(&mut self, a: &Bus, k: usize) -> Bus {
        let w = a.width();
        let z = self.zero();
        Bus((0..w)
            .map(|i| if i < k { z } else { a.bit(i - k) })
            .collect())
    }

    /// Logical shift right by a constant (zero fill).
    pub fn shr_const(&mut self, a: &Bus, k: usize) -> Bus {
        let w = a.width();
        let z = self.zero();
        Bus((0..w)
            .map(|i| if i + k < w { a.bit(i + k) } else { z })
            .collect())
    }

    /// Barrel shifter: left when `right = const false` semantics are chosen
    /// by the caller; this builds `a << amt` with zero fill.
    pub fn shl_barrel(&mut self, a: &Bus, amt: &Bus) -> Bus {
        let mut cur = a.clone();
        for (stage, &sel) in amt.0.iter().enumerate() {
            if 1usize << stage >= a.width() {
                // shifting by >= width zeroes the word when any high amt bit set
                let zeroes = self.const_word(0, a.width());
                cur = self.mux(sel, &cur, &zeroes);
                continue;
            }
            let shifted = self.shl_const(&cur, 1 << stage);
            cur = self.mux(sel, &cur, &shifted);
        }
        cur
    }

    /// Arithmetic shift right by a constant (sign fill).
    pub fn sra_const(&mut self, a: &Bus, k: usize) -> Bus {
        let w = a.width();
        let sign = a.msb();
        Bus((0..w)
            .map(|i| if i + k < w { a.bit(i + k) } else { sign })
            .collect())
    }

    /// Barrel shifter: arithmetic `a >> amt` (sign fill).
    pub fn sra_barrel(&mut self, a: &Bus, amt: &Bus) -> Bus {
        let mut cur = a.clone();
        let sign = a.msb();
        for (stage, &sel) in amt.0.iter().enumerate() {
            if 1usize << stage >= a.width() {
                let fill = Bus(vec![sign; a.width()]);
                cur = self.mux(sel, &cur, &fill);
                continue;
            }
            let shifted = self.sra_const(&cur, 1 << stage);
            cur = self.mux(sel, &cur, &shifted);
        }
        cur
    }

    /// Barrel shifter: `a >> amt`, zero fill.
    pub fn shr_barrel(&mut self, a: &Bus, amt: &Bus) -> Bus {
        let mut cur = a.clone();
        for (stage, &sel) in amt.0.iter().enumerate() {
            if 1usize << stage >= a.width() {
                let zeroes = self.const_word(0, a.width());
                cur = self.mux(sel, &cur, &zeroes);
                continue;
            }
            let shifted = self.shr_const(&cur, 1 << stage);
            cur = self.mux(sel, &cur, &shifted);
        }
        cur
    }

    // ---- width adjustment ----

    /// Zero-extends (or truncates) to `width`.
    pub fn zext(&mut self, a: &Bus, width: usize) -> Bus {
        let z = self.zero();
        Bus((0..width)
            .map(|i| if i < a.width() { a.bit(i) } else { z })
            .collect())
    }

    /// Sign-extends (or truncates) to `width`.
    pub fn sext(&mut self, a: &Bus, width: usize) -> Bus {
        let msb = a.msb();
        Bus((0..width)
            .map(|i| if i < a.width() { a.bit(i) } else { msb })
            .collect())
    }

    // ---- multiplier ----

    /// Unsigned array multiplier producing the full `a.width + b.width`-bit
    /// product. This is the "hardware multiplier" block of bm32 and the
    /// openMSP430 peripheral — a large cone of gates exercised only by
    /// multiply workloads.
    pub fn mul_full(&mut self, a: &Bus, b: &Bus) -> Bus {
        let out_w = a.width() + b.width();
        let mut acc = self.const_word(0, out_w);
        for i in 0..a.width() {
            let masked = self.mask(a.bit(i), b);
            let ext = self.zext(&masked, out_w);
            let shifted = self.shl_const(&ext, i);
            acc = self.add(&acc, &shifted);
        }
        acc
    }

    /// Truncated multiplier (`width = a.width`).
    pub fn mul(&mut self, a: &Bus, b: &Bus) -> Bus {
        let full = self.mul_full(a, b);
        full.slice(0, a.width())
    }

    // ---- registers ----

    /// Allocates a `width`-bit register with reset value `init`; connect its
    /// next-state input later with [`RtlBuilder::drive_reg`].
    pub fn reg(&mut self, name: &str, width: usize, init: u64) -> RegHandle {
        let q: Vec<NetId> = (0..width)
            .map(|i| self.nl.add_net(format!("{name}[{i}]")))
            .collect();
        let index = self.regs.len();
        self.regs.push(PendingReg {
            name: name.to_string(),
            q: q.clone(),
            init,
            init_known: true,
            d: None,
        });
        RegHandle { q: Bus(q), index }
    }

    /// Allocates a register that powers up unknown (`X` on every bit) —
    /// this models architectural state the testbench initializes to `X`.
    pub fn reg_x(&mut self, name: &str, width: usize) -> RegHandle {
        let mut h = self.reg(name, width, 0);
        self.regs[h.index].init_known = false;
        h.q = Bus(self.regs[h.index].q.clone());
        h
    }

    /// Connects the next-state input of a register.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the register or if already driven.
    pub fn drive_reg(&mut self, reg: RegHandle, d: &Bus) {
        let pending = &mut self.regs[reg.index];
        assert_eq!(
            d.width(),
            pending.q.len(),
            "register {} width",
            pending.name
        );
        assert!(
            pending.d.is_none(),
            "register {} driven twice",
            pending.name
        );
        pending.d = Some(d.0.clone());
    }

    /// Register with synchronous enable: keeps its value when `en = 0`.
    pub fn reg_en(&mut self, name: &str, d: &Bus, en: NetId, init: u64) -> Bus {
        let r = self.reg(name, d.width(), init);
        let q = r.q.clone();
        let next = self.mux(en, &q, d);
        self.drive_reg(r, &next);
        q
    }

    // ---- memories ----

    /// Allocates a memory array.
    pub fn memory(&mut self, name: &str, depth: usize, width: usize) -> MemoryHandle {
        MemoryHandle(self.nl.add_memory(name, depth, width))
    }

    /// Adds a combinational read port; returns the data bus.
    pub fn mem_read(&mut self, mem: MemoryHandle, addr: &Bus) -> Bus {
        let data = self.fresh_bus("rdata", self.nl.memories()[mem.0 .0 as usize].width);
        self.nl.add_read_port(mem.0, addr.0.clone(), data.0.clone());
        data
    }

    /// Adds a synchronous write port (sampled at the clock edge when `we=1`).
    pub fn mem_write(&mut self, mem: MemoryHandle, addr: &Bus, data: &Bus, we: NetId) {
        self.nl
            .add_write_port(mem.0, addr.0.clone(), data.0.clone(), we);
    }

    /// Finalizes the netlist: creates the DFFs for all registers and
    /// validates the result.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] for multiple drivers or combinational
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if a register allocated with [`RtlBuilder::reg`] was never
    /// driven.
    pub fn finish(mut self) -> Result<Netlist, ValidateError> {
        let regs = std::mem::take(&mut self.regs);
        for r in regs {
            let d =
                r.d.unwrap_or_else(|| panic!("register {} has no next-state driver", r.name));
            for (i, (&dn, &qn)) in d.iter().zip(&r.q).enumerate() {
                let init = if r.init_known {
                    Logic::from_bool(r.init >> i & 1 == 1)
                } else {
                    Logic::X
                };
                self.nl.add_dff(dn, qn, init);
            }
        }
        self.nl.validate()?;
        Ok(self.nl)
    }

    /// Access to the netlist under construction (e.g. for custom gates).
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_structure() {
        let mut b = RtlBuilder::new("add8");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let s = b.add(&x, &y);
        b.output("s", &s);
        let nl = b.finish().unwrap();
        // 5 gates per full-adder bit + 8 output buffers + const cell
        assert!(nl.gate_count() >= 8 * 5);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn register_must_be_driven() {
        let mut b = RtlBuilder::new("r");
        let _ = b.reg("r0", 4, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.finish()));
        assert!(result.is_err());
    }

    #[test]
    fn mul_width() {
        let mut b = RtlBuilder::new("m");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let p = b.mul_full(&x, &y);
        assert_eq!(p.width(), 8);
        b.output("p", &p);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn bus_slicing() {
        let mut b = RtlBuilder::new("s");
        let x = b.input("x", 8);
        let lo = x.slice(0, 4);
        let hi = x.slice(4, 8);
        assert_eq!(lo.width(), 4);
        assert_eq!(lo.concat(&hi).as_nets(), x.as_nets());
    }

    #[test]
    fn memory_ports() {
        let mut b = RtlBuilder::new("mem");
        let addr = b.input("addr", 4);
        let wdata = b.input("wdata", 8);
        let we = b.input("we", 1);
        let m = b.memory("ram", 16, 8);
        let rdata = b.mem_read(m, &addr);
        b.mem_write(m, &addr, &wdata, we.bit(0));
        b.output("rdata", &rdata);
        let nl = b.finish().unwrap();
        assert_eq!(nl.memories().len(), 1);
        assert_eq!(nl.memories()[0].read_ports.len(), 1);
        assert_eq!(nl.memories()[0].write_ports.len(), 1);
    }

    #[test]
    fn reg_en_holds() {
        let mut b = RtlBuilder::new("re");
        let d = b.input("d", 2);
        let en = b.input("en", 1);
        let q = b.reg_en("q", &d, en.bit(0), 0);
        b.output("qo", &q);
        let nl = b.finish().unwrap();
        assert_eq!(nl.dff_count(), 2);
    }
}
