//! Structural lint checks beyond hard validation: undriven nets with
//! readers, dangling logic, constant-fed sequential elements — the
//! warnings a synthesis tool would print about a netlist handed to the
//! co-analysis flow.

use std::collections::HashSet;
use std::fmt;

use crate::ir::{Driver, NetId, Netlist};
use crate::CellKind;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A gate/flip-flop/memory reads a net nothing drives: it will be `X`
    /// forever (often a missing testbench connection).
    UndrivenNetRead {
        /// The undriven net.
        net: NetId,
        /// Its name.
        name: String,
        /// How many pins read it.
        readers: usize,
    },
    /// A gate's output drives nothing and is not a port: dead logic.
    DanglingGateOutput {
        /// The dangling net.
        net: NetId,
        /// Its name.
        name: String,
    },
    /// A flip-flop whose `d` is a constant cell: it settles after one cycle
    /// and could be a tie-off instead.
    ConstantFedDff {
        /// The flip-flop's output net.
        q: NetId,
        /// Its name.
        name: String,
    },
    /// A primary input no logic reads.
    UnusedInput {
        /// The input net.
        net: NetId,
        /// Its name.
        name: String,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UndrivenNetRead { name, readers, .. } => {
                write!(f, "undriven net \"{name}\" is read by {readers} pin(s)")
            }
            Lint::DanglingGateOutput { name, .. } => {
                write!(f, "gate output \"{name}\" drives nothing")
            }
            Lint::ConstantFedDff { name, .. } => {
                write!(f, "flip-flop \"{name}\" has a constant data input")
            }
            Lint::UnusedInput { name, .. } => {
                write!(f, "primary input \"{name}\" is never read")
            }
        }
    }
}

/// Runs all lint checks. An empty result means the netlist is clean by
/// these heuristics (hard errors are [`Netlist::validate`]'s job).
pub fn lint(netlist: &Netlist) -> Vec<Lint> {
    let drivers = netlist.drivers();
    let fanout = netlist.fanout_map();
    let outputs: HashSet<NetId> = netlist.outputs().iter().copied().collect();

    // readers per net: comb fanout + dff d + memory write pins
    let mut readers = vec![0usize; netlist.net_count()];
    for (i, f) in fanout.iter().enumerate() {
        readers[i] += f.len();
    }
    for d in netlist.dffs() {
        readers[d.d.0 as usize] += 1;
    }
    for m in netlist.memories() {
        for wp in &m.write_ports {
            for &n in wp.addr.iter().chain(&wp.data) {
                readers[n.0 as usize] += 1;
            }
            readers[wp.we.0 as usize] += 1;
        }
    }

    let mut findings = Vec::new();
    for i in 0..netlist.net_count() {
        let net = NetId(i as u32);
        let name = netlist.net_name(net).to_string();
        match drivers[i] {
            None if readers[i] > 0 => findings.push(Lint::UndrivenNetRead {
                net,
                name,
                readers: readers[i],
            }),
            Some(Driver::Gate(_)) if readers[i] == 0 && !outputs.contains(&net) => {
                findings.push(Lint::DanglingGateOutput { net, name });
            }
            Some(Driver::Input) if readers[i] == 0 => {
                findings.push(Lint::UnusedInput { net, name });
            }
            _ => {}
        }
    }
    for d in netlist.dffs() {
        if let Some(Driver::Gate(g)) = drivers[d.d.0 as usize] {
            if matches!(netlist.gate(g).kind, CellKind::Const0 | CellKind::Const1) {
                findings.push(Lint::ConstantFedDff {
                    q: d.q,
                    name: netlist.net_name(d.q).to_string(),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RtlBuilder;
    use symsim_logic::Logic;

    #[test]
    fn clean_design_has_no_findings() {
        let mut b = RtlBuilder::new("clean");
        let a = b.input("a", 2);
        let y = b.not(&a);
        b.output("y", &y);
        let nl = b.finish().unwrap();
        assert!(lint(&nl).is_empty(), "{:?}", lint(&nl));
    }

    #[test]
    fn finds_each_class() {
        let mut nl = Netlist::new("dirty");
        // undriven read
        let floating = nl.add_net("floating");
        let y1 = nl.add_net("y1");
        nl.add_gate(CellKind::Not, &[floating], y1);
        nl.add_output(y1);
        // dangling output
        let dangle = nl.add_net("dangle");
        nl.add_gate(CellKind::Not, &[y1], dangle);
        // constant-fed dff
        let tie = nl.add_net("tie");
        nl.add_gate(CellKind::Const1, &[], tie);
        let q = nl.add_net("q");
        nl.add_dff(tie, q, Logic::Zero);
        nl.add_output(q);
        // unused input
        let unused = nl.add_net("unused_in");
        nl.add_input(unused);

        let findings = lint(&nl);
        assert!(findings
            .iter()
            .any(|l| matches!(l, Lint::UndrivenNetRead { readers: 1, .. })));
        assert!(findings
            .iter()
            .any(|l| matches!(l, Lint::DanglingGateOutput { .. })));
        assert!(findings
            .iter()
            .any(|l| matches!(l, Lint::ConstantFedDff { .. })));
        assert!(findings
            .iter()
            .any(|l| matches!(l, Lint::UnusedInput { .. })));
        for finding in &findings {
            assert!(!finding.to_string().is_empty());
        }
    }

    #[test]
    fn cpu_style_builder_output_is_clean_of_undriven_reads() {
        let mut b = RtlBuilder::new("c");
        let r = b.reg("cnt", 4, 0);
        let q = r.q.clone();
        let one = b.const_word(1, 4);
        let next = b.add(&q, &one);
        b.drive_reg(r, &next);
        b.output("q", &q);
        let nl = b.finish().unwrap();
        let findings = lint(&nl);
        assert!(
            !findings
                .iter()
                .any(|l| matches!(l, Lint::UndrivenNetRead { .. })),
            "{findings:?}"
        );
    }
}
