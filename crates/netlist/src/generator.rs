//! Proptest strategies producing random *valid* netlists (acyclic by
//! construction, single drivers, correct arities) for property-based tests
//! across the workspace. Enabled by the `proptest` feature.

use proptest::prelude::*;
use symsim_logic::Logic;

use crate::{Netlist, CELL_KINDS};

/// Raw recipe a strategy generates; [`build`] turns it into a netlist.
#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    dffs: usize,
    gates: Vec<(u8, u32, u32, u32)>,
    dff_srcs: Vec<u32>,
    outputs: u32,
}

fn build(recipe: Recipe) -> Netlist {
    let mut nl = Netlist::new("random");
    let mut pool = Vec::new();
    for i in 0..recipe.inputs {
        let n = nl.add_net(format!("in{i}"));
        nl.add_input(n);
        pool.push(n);
    }
    let mut dff_qs = Vec::new();
    for i in 0..recipe.dffs {
        let q = nl.add_net(format!("q{i}"));
        dff_qs.push(q);
        pool.push(q);
    }
    for (i, &(kind_sel, a, b, c)) in recipe.gates.iter().enumerate() {
        let kind = CELL_KINDS[kind_sel as usize % CELL_KINDS.len()];
        let out = nl.add_net(format!("g{i}"));
        let pick = |sel: u32| pool[sel as usize % pool.len()];
        let ins: Vec<_> = match kind.arity() {
            0 => vec![],
            1 => vec![pick(a)],
            2 => vec![pick(a), pick(b)],
            _ => vec![pick(a), pick(b), pick(c)],
        };
        nl.add_gate(kind, &ins, out);
        pool.push(out);
    }
    for (i, &q) in dff_qs.iter().enumerate() {
        let d = pool[recipe.dff_srcs[i] as usize % pool.len()];
        nl.add_dff(d, q, Logic::Zero);
    }
    // a few observable outputs, always including the last driven net;
    // primary inputs are excluded (a port has exactly one direction)
    let n_outputs = 1 + (recipe.outputs as usize % 3);
    let driven = &pool[recipe.inputs..];
    for &n in driven.iter().rev().take(n_outputs) {
        nl.add_output(n);
    }
    nl
}

/// A strategy over valid netlists with up to `max_gates` combinational
/// gates, a handful of inputs, and zero-initialized flip-flops.
pub fn arb_netlist(max_gates: usize) -> impl Strategy<Value = Netlist> {
    (
        1usize..5,
        0usize..4,
        prop::collection::vec(
            (any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()),
            1..max_gates.max(2),
        ),
        prop::collection::vec(any::<u32>(), 4),
        any::<u32>(),
    )
        .prop_map(|(inputs, dffs, gates, dff_srcs, outputs)| {
            build(Recipe {
                inputs,
                dffs,
                gates,
                dff_srcs,
                outputs,
            })
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn generated_netlists_are_valid(nl in arb_netlist(30)) {
            prop_assert!(nl.validate().is_ok());
            prop_assert!(nl.gate_count() >= 1);
            prop_assert!(!nl.outputs().is_empty());
        }
    }
}
