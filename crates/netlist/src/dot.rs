//! Graphviz (DOT) export for netlists, with optional highlighting — used
//! to visualize the exercisable/unexercisable dichotomy co-analysis
//! produces.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::{GateId, NetId, Netlist};

/// Options for [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Gates drawn filled (e.g. the exercisable set).
    pub highlight_gates: HashSet<GateId>,
    /// Cap on emitted gates (huge netlists are unreadable anyway);
    /// `0` means no limit.
    pub max_gates: usize,
}

/// Renders the netlist as a Graphviz digraph: gates and flip-flops are
/// nodes, nets are edges labelled with their names, ports are ovals.
///
/// # Example
///
/// ```
/// use symsim_netlist::{RtlBuilder, dot};
///
/// let mut b = RtlBuilder::new("d");
/// let a = b.input("a", 1);
/// let y = b.not(&a);
/// b.output("y", &y);
/// let nl = b.finish().expect("valid");
/// let text = dot::to_dot(&nl, &dot::DotOptions::default());
/// assert!(text.starts_with("digraph"));
/// assert!(text.contains("not"));
/// ```
pub fn to_dot(netlist: &Netlist, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", netlist.name);
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontsize=9];");

    let limit = if options.max_gates == 0 {
        usize::MAX
    } else {
        options.max_gates
    };

    // emitted net sources: map net -> node name
    let mut src: Vec<Option<String>> = vec![None; netlist.net_count()];
    for &n in netlist.inputs() {
        let node = format!("in_{}", n.0);
        let _ = writeln!(
            out,
            "  {node} [shape=oval, label=\"{}\"];",
            netlist.net_name(n)
        );
        src[n.0 as usize] = Some(node);
    }
    for (i, d) in netlist.dffs().iter().enumerate() {
        let node = format!("ff_{i}");
        let _ = writeln!(
            out,
            "  {node} [shape=box, style=rounded, label=\"DFF {}\"];",
            netlist.net_name(d.q)
        );
        src[d.q.0 as usize] = Some(node);
    }
    for (mi, m) in netlist.memories().iter().enumerate() {
        for (pi, rp) in m.read_ports.iter().enumerate() {
            let node = format!("mem_{mi}_{pi}");
            let _ = writeln!(out, "  {node} [shape=box3d, label=\"{}[{pi}]\"];", m.name);
            for &d in &rp.data {
                src[d.0 as usize] = Some(node.clone());
            }
        }
    }
    for (gi, (id, g)) in netlist.iter_gates().enumerate() {
        if gi >= limit {
            let _ = writeln!(
                out,
                "  trunc [label=\"... {} more gates\"];",
                netlist.gate_count() - limit
            );
            break;
        }
        let node = format!("g_{}", id.0);
        let style = if options.highlight_gates.contains(&id) {
            ", style=filled, fillcolor=lightgreen"
        } else {
            ""
        };
        let _ = writeln!(out, "  {node} [label=\"{}\"{style}];", g.kind);
        src[g.output.0 as usize] = Some(node);
    }

    // edges (only between emitted nodes)
    let edge = |out: &mut String, from: &Option<String>, to: &str, net: NetId| {
        if let Some(f) = from {
            let _ = writeln!(
                out,
                "  {f} -> {to} [label=\"{}\", fontsize=7];",
                netlist.net_name(net)
            );
        }
    };
    for (gi, (id, g)) in netlist.iter_gates().enumerate() {
        if gi >= limit {
            break;
        }
        for &pin in &g.inputs {
            edge(&mut out, &src[pin.0 as usize], &format!("g_{}", id.0), pin);
        }
    }
    for (i, d) in netlist.dffs().iter().enumerate() {
        edge(&mut out, &src[d.d.0 as usize], &format!("ff_{i}"), d.d);
    }
    for &n in netlist.outputs() {
        let node = format!("out_{}", n.0);
        let _ = writeln!(
            out,
            "  {node} [shape=oval, label=\"{}\"];",
            netlist.net_name(n)
        );
        edge(&mut out, &src[n.0 as usize], &node, n);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RtlBuilder;

    #[test]
    fn emits_all_node_classes() {
        let mut b = RtlBuilder::new("d");
        let a = b.input("a", 2);
        let r = b.reg("s", 2, 0);
        let q = r.q.clone();
        let nxt = b.xor(&q, &a);
        b.drive_reg(r, &nxt);
        let m = b.memory("rom", 4, 2);
        let rd = b.mem_read(m, &q);
        b.output("o", &rd);
        let nl = b.finish().unwrap();
        let text = to_dot(&nl, &DotOptions::default());
        assert!(text.contains("digraph \"d\""));
        assert!(text.contains("DFF"));
        assert!(text.contains("rom[0]"));
        assert!(text.contains("-> out_"));
    }

    #[test]
    fn highlight_and_truncation() {
        let mut b = RtlBuilder::new("d");
        let a = b.input("a", 4);
        let y = b.not(&a);
        b.output("y", &y);
        let nl = b.finish().unwrap();
        let mut options = DotOptions {
            max_gates: 2,
            ..DotOptions::default()
        };
        options.highlight_gates.insert(GateId(0));
        let text = to_dot(&nl, &options);
        assert!(text.contains("lightgreen"));
        assert!(text.contains("more gates"));
    }
}
