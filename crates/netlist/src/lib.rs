//! # symsim-netlist
//!
//! Gate-level netlist intermediate representation for the symbolic
//! hardware-software co-analysis tool, together with:
//!
//! * a small standard-cell library ([`CellKind`]) with per-cell areas,
//! * a word-level RTL builder ([`RtlBuilder`]) that elaborates adders,
//!   comparators, shifters, multipliers, register files, and memories down
//!   to two-input gates and D flip-flops — this is how the three evaluation
//!   processors are produced as genuine gate-level netlists,
//! * structural validation (single drivers, no combinational cycles),
//! * design statistics ([`NetlistStats`]) used for the paper's Table 2 and
//!   the gate-count analyses of Table 3 / Fig. 5.
//!
//! # Example
//!
//! ```
//! use symsim_netlist::{RtlBuilder, CellKind};
//!
//! let mut b = RtlBuilder::new("adder4");
//! let a = b.input("a", 4);
//! let c = b.input("b", 4);
//! let sum = b.add(&a, &c);
//! b.output("sum", &sum);
//! let netlist = b.finish().expect("valid netlist");
//! assert!(netlist.gate_count() > 0);
//! assert!(netlist.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod cell;
pub mod dot;
#[cfg(feature = "proptest")]
pub mod generator;
mod graph;
mod ir;
pub mod lint;
mod stats;

pub use build::{Bus, MemoryHandle, RegHandle, RtlBuilder};
pub use cell::{CellKind, CELL_KINDS};
pub use graph::{CombNode, ValidateError};
pub use ir::{
    Dff, DffId, Driver, Gate, GateId, Memory, MemoryId, NetId, Netlist, PortDirection, ReadPort,
    WritePort,
};
pub use stats::NetlistStats;
