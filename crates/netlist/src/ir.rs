use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use symsim_logic::Logic;

use crate::cell::{CellKind, DFF_AREA};

/// Index of a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub u32);

/// Index of a combinational gate within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId(pub u32);

/// Index of a D flip-flop within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DffId(pub u32);

/// Index of a memory within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemoryId(pub u32);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Direction of a top-level port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// Driven by the testbench.
    Input,
    /// Observed by the testbench.
    Output,
}

/// A combinational gate instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gate {
    /// The cell implementing this gate.
    pub kind: CellKind,
    /// Input nets, in pin order (see [`CellKind`] for pin conventions).
    pub inputs: Vec<NetId>,
    /// The single output net.
    pub output: NetId,
}

/// A D flip-flop clocked by the implicit global clock.
///
/// The simulator samples `d` at the clock edge and drives `q` in the NBA
/// event region, exactly like a non-blocking assignment in an `always
/// @(posedge clk)` block.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dff {
    /// Data input.
    pub d: NetId,
    /// Registered output.
    pub q: NetId,
    /// Power-on / reset value. `Logic::X` models an uninitialized register.
    pub init: Logic,
}

/// A combinational read port: `data = mem[addr]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReadPort {
    /// Address bus, LSB first.
    pub addr: Vec<NetId>,
    /// Data bus driven by the memory, LSB first.
    pub data: Vec<NetId>,
}

/// A synchronous write port, sampled at the clock edge when `we = 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WritePort {
    /// Address bus, LSB first.
    pub addr: Vec<NetId>,
    /// Data bus, LSB first.
    pub data: Vec<NetId>,
    /// Write enable.
    pub we: NetId,
}

/// A word-addressable memory array (program ROM or data RAM).
///
/// Memories sit outside the gate dichotomy: the paper's darkRiscV setup
/// "only modeled the processor core and memory", and bespoke pruning applies
/// to gates, not storage. Reads are combinational; writes are synchronous.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Memory {
    /// Instance name (e.g. `"dmem"`).
    pub name: String,
    /// Number of words.
    pub depth: usize,
    /// Word width in bits.
    pub width: usize,
    /// Combinational read ports.
    pub read_ports: Vec<ReadPort>,
    /// Synchronous write ports.
    pub write_ports: Vec<WritePort>,
}

/// A flat gate-level netlist: nets, gates, flip-flops, memories, and ports.
///
/// This is the design representation the symbolic simulator executes and the
/// bespoke flow transforms. Invariants (checked by [`Netlist::validate`]):
/// every net has at most one driver; gates have the arity of their cell;
/// the combinational graph (gates + memory read ports) is acyclic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    /// Module name.
    pub name: String,
    net_names: Vec<String>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    memories: Vec<Memory>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty netlist named `name`.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.into());
        id
    }

    /// Adds a combinational gate.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the cell's arity.
    pub fn add_gate(&mut self, kind: CellKind, inputs: &[NetId], output: NetId) -> GateId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "cell {kind} expects {} inputs, got {}",
            kind.arity(),
            inputs.len()
        );
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        id
    }

    /// Adds a D flip-flop.
    pub fn add_dff(&mut self, d: NetId, q: NetId, init: Logic) -> DffId {
        let id = DffId(self.dffs.len() as u32);
        self.dffs.push(Dff { d, q, init });
        id
    }

    /// Adds a memory array (ports are attached with
    /// [`Netlist::add_read_port`] / [`Netlist::add_write_port`]).
    pub fn add_memory(&mut self, name: impl Into<String>, depth: usize, width: usize) -> MemoryId {
        let id = MemoryId(self.memories.len() as u32);
        self.memories.push(Memory {
            name: name.into(),
            depth,
            width,
            read_ports: Vec::new(),
            write_ports: Vec::new(),
        });
        id
    }

    /// Attaches a combinational read port to memory `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the memory's word width.
    pub fn add_read_port(&mut self, mem: MemoryId, addr: Vec<NetId>, data: Vec<NetId>) {
        let m = &mut self.memories[mem.0 as usize];
        assert_eq!(
            data.len(),
            m.width,
            "read data width mismatch on {}",
            m.name
        );
        m.read_ports.push(ReadPort { addr, data });
    }

    /// Attaches a synchronous write port to memory `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the memory's word width.
    pub fn add_write_port(&mut self, mem: MemoryId, addr: Vec<NetId>, data: Vec<NetId>, we: NetId) {
        let m = &mut self.memories[mem.0 as usize];
        assert_eq!(
            data.len(),
            m.width,
            "write data width mismatch on {}",
            m.name
        );
        m.write_ports.push(WritePort { addr, data, we });
    }

    /// Declares `net` as a top-level input.
    pub fn add_input(&mut self, net: NetId) {
        self.inputs.push(net);
    }

    /// Declares `net` as a top-level output.
    pub fn add_output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Number of combinational gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Total "gate count" in the paper's sense: combinational cells plus
    /// sequential cells (a synthesized netlist counts DFFs as gates too).
    pub fn total_gate_count(&self) -> usize {
        self.gates.len() + self.dffs.len()
    }

    /// Total area in NAND2-equivalent units.
    pub fn area(&self) -> f64 {
        self.gates.iter().map(|g| g.kind.area()).sum::<f64>() + self.dffs.len() as f64 * DFF_AREA
    }

    /// The name of net `id`.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.0 as usize]
    }

    /// Looks a net up by name (linear scan cached by callers that need speed).
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names
            .iter()
            .position(|n| n == name)
            .map(|i| NetId(i as u32))
    }

    /// A name → id map for bulk lookups.
    pub fn net_name_map(&self) -> HashMap<&str, NetId> {
        self.net_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), NetId(i as u32)))
            .collect()
    }

    /// The gates, indexable by [`GateId`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate with id `id`.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0 as usize]
    }

    /// The flip-flops, indexable by [`DffId`].
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// The memories, indexable by [`MemoryId`].
    pub fn memories(&self) -> &[Memory] {
        &self.memories
    }

    /// Top-level input nets.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Top-level output nets.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Iterates over `(GateId, &Gate)`.
    pub fn iter_gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Iterates over `(DffId, &Dff)`.
    pub fn iter_dffs(&self) -> impl Iterator<Item = (DffId, &Dff)> {
        self.dffs
            .iter()
            .enumerate()
            .map(|(i, d)| (DffId(i as u32), d))
    }

    /// Replaces gate `id` wholesale (used by the bespoke rewriter).
    pub fn replace_gate(&mut self, id: GateId, gate: Gate) {
        self.gates[id.0 as usize] = gate;
    }

    /// Removes gates and flip-flops for which the predicates return false,
    /// keeping net ids stable. Returns `(gates_removed, dffs_removed)`.
    pub fn retain(
        &mut self,
        mut keep_gate: impl FnMut(GateId, &Gate) -> bool,
        mut keep_dff: impl FnMut(DffId, &Dff) -> bool,
    ) -> (usize, usize) {
        let before_g = self.gates.len();
        let mut i = 0u32;
        self.gates.retain(|g| {
            let keep = keep_gate(GateId(i), g);
            i += 1;
            keep
        });
        let before_d = self.dffs.len();
        let mut j = 0u32;
        self.dffs.retain(|d| {
            let keep = keep_dff(DffId(j), d);
            j += 1;
            keep
        });
        (before_g - self.gates.len(), before_d - self.dffs.len())
    }

    /// The driver of each net, if any: gate output, DFF `q`, memory read
    /// data, or primary input.
    pub fn drivers(&self) -> Vec<Option<Driver>> {
        let mut out = vec![None; self.net_count()];
        for (i, g) in self.gates.iter().enumerate() {
            out[g.output.0 as usize] = Some(Driver::Gate(GateId(i as u32)));
        }
        for (i, d) in self.dffs.iter().enumerate() {
            out[d.q.0 as usize] = Some(Driver::Dff(DffId(i as u32)));
        }
        for (mi, m) in self.memories.iter().enumerate() {
            for (pi, rp) in m.read_ports.iter().enumerate() {
                for &n in &rp.data {
                    out[n.0 as usize] = Some(Driver::MemoryRead {
                        mem: MemoryId(mi as u32),
                        port: pi,
                    });
                }
            }
        }
        for &n in &self.inputs {
            out[n.0 as usize] = Some(Driver::Input);
        }
        out
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Driver {
    /// A primary input pin.
    Input,
    /// The output of a combinational gate.
    Gate(GateId),
    /// The `q` output of a flip-flop.
    Dff(DffId),
    /// A memory read-data bit.
    MemoryRead {
        /// Which memory.
        mem: MemoryId,
        /// Which read port of that memory.
        port: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_netlist() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let y = nl.add_net("y");
        nl.add_input(a);
        nl.add_input(b);
        nl.add_output(y);
        nl.add_gate(CellKind::Nand2, &[a, b], y);
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.total_gate_count(), 1);
        assert_eq!(nl.find_net("y"), Some(y));
        assert_eq!(nl.net_name(y), "y");
        let drivers = nl.drivers();
        assert_eq!(drivers[y.0 as usize], Some(Driver::Gate(GateId(0))));
        assert_eq!(drivers[a.0 as usize], Some(Driver::Input));
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn arity_checked() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let y = nl.add_net("y");
        nl.add_gate(CellKind::And2, &[a], y);
    }

    #[test]
    fn area_counts_dffs() {
        let mut nl = Netlist::new("t");
        let d = nl.add_net("d");
        let q = nl.add_net("q");
        nl.add_dff(d, q, Logic::Zero);
        assert!(nl.area() > 4.0);
        assert_eq!(nl.dff_count(), 1);
        assert_eq!(nl.total_gate_count(), 1);
    }

    #[test]
    fn retain_removes_gates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let y1 = nl.add_net("y1");
        let y2 = nl.add_net("y2");
        nl.add_gate(CellKind::Not, &[a], y1);
        nl.add_gate(CellKind::Buf, &[a], y2);
        let (rg, rd) = nl.retain(|_, g| g.kind != CellKind::Buf, |_, _| true);
        assert_eq!((rg, rd), (1, 0));
        assert_eq!(nl.gate_count(), 1);
    }
}
