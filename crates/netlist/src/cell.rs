use std::fmt;

use serde::{Deserialize, Serialize};

/// The combinational standard-cell library.
///
/// The library mirrors the primitive set a gate-level netlist handed to the
/// tool would contain after synthesis: constants, buffers/inverters, the
/// two-input basic gates, and a 2:1 mux. Sequential elements (D flip-flops)
/// and memories are represented separately in the [`Netlist`] because the
/// simulator schedules them in the NBA event region rather than the Active
/// region.
///
/// Areas are in NAND2-equivalent units, loosely following a generic 65 nm
/// standard-cell library; they feed the bespoke-processor area reports.
///
/// [`Netlist`]: crate::Netlist
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum CellKind {
    /// Constant logic 0 driver (used for bespoke tie-offs).
    Const0,
    /// Constant logic 1 driver (used for bespoke tie-offs).
    Const1,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Not,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input XOR.
    Xor2,
    /// Two-input XNOR.
    Xnor2,
    /// 2:1 multiplexer; pins are `(sel, a, b)`, output is `a` when `sel=0`.
    Mux2,
}

/// Every cell kind, in a stable order (useful for histograms).
pub const CELL_KINDS: [CellKind; 11] = [
    CellKind::Const0,
    CellKind::Const1,
    CellKind::Buf,
    CellKind::Not,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
];

impl CellKind {
    /// Number of input pins the cell expects.
    #[inline]
    pub fn arity(self) -> usize {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0,
            CellKind::Buf | CellKind::Not => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Mux2 => 3,
        }
    }

    /// Cell area in NAND2-equivalent units.
    #[inline]
    pub fn area(self) -> f64 {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Buf => 1.0,
            CellKind::Not => 0.67,
            CellKind::Nand2 | CellKind::Nor2 => 1.0,
            CellKind::And2 | CellKind::Or2 => 1.33,
            CellKind::Xor2 | CellKind::Xnor2 => 2.33,
            CellKind::Mux2 => 2.33,
        }
    }

    /// The Verilog primitive / cell name used by the netlist writer.
    pub fn verilog_name(self) -> &'static str {
        match self {
            CellKind::Const0 => "const0",
            CellKind::Const1 => "const1",
            CellKind::Buf => "buf",
            CellKind::Not => "not",
            CellKind::And2 => "and",
            CellKind::Or2 => "or",
            CellKind::Nand2 => "nand",
            CellKind::Nor2 => "nor",
            CellKind::Xor2 => "xor",
            CellKind::Xnor2 => "xnor",
            CellKind::Mux2 => "mux2",
        }
    }

    /// Parses the name emitted by [`CellKind::verilog_name`].
    pub fn from_verilog_name(name: &str) -> Option<CellKind> {
        CELL_KINDS.into_iter().find(|k| k.verilog_name() == name)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.verilog_name())
    }
}

/// Area of a D flip-flop in NAND2-equivalent units.
pub(crate) const DFF_AREA: f64 = 4.67;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(CellKind::Const1.arity(), 0);
        assert_eq!(CellKind::Not.arity(), 1);
        assert_eq!(CellKind::Xor2.arity(), 2);
        assert_eq!(CellKind::Mux2.arity(), 3);
    }

    #[test]
    fn verilog_names_round_trip() {
        for k in CELL_KINDS {
            assert_eq!(CellKind::from_verilog_name(k.verilog_name()), Some(k));
        }
        assert_eq!(CellKind::from_verilog_name("dffx1"), None);
    }

    #[test]
    fn areas_are_positive_for_logic() {
        for k in CELL_KINDS {
            if !matches!(k, CellKind::Const0 | CellKind::Const1) {
                assert!(k.area() > 0.0, "{k} must have positive area");
            }
        }
    }
}
