use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cell::CellKind;
use crate::ir::Netlist;

/// Summary statistics of a netlist, as reported in the paper's Table 2
/// (target platform characterization) and used as the `total gate count`
/// baselines of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct NetlistStats {
    /// Module name.
    pub name: String,
    /// Combinational cell count.
    pub comb_gates: usize,
    /// Sequential cell (DFF) count.
    pub dffs: usize,
    /// Combinational + sequential cells ("total gate count", tgc).
    pub total_gates: usize,
    /// Net count.
    pub nets: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Memory arrays.
    pub memories: usize,
    /// Total area in NAND2-equivalent units.
    pub area: f64,
    /// Histogram of combinational cells by kind.
    pub by_kind: BTreeMap<CellKind, usize>,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    pub fn of(netlist: &Netlist) -> NetlistStats {
        let mut by_kind = BTreeMap::new();
        for g in netlist.gates() {
            *by_kind.entry(g.kind).or_insert(0) += 1;
        }
        NetlistStats {
            name: netlist.name.clone(),
            comb_gates: netlist.gate_count(),
            dffs: netlist.dff_count(),
            total_gates: netlist.total_gate_count(),
            nets: netlist.net_count(),
            inputs: netlist.inputs().len(),
            outputs: netlist.outputs().len(),
            memories: netlist.memories().len(),
            area: netlist.area(),
            by_kind,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} gates ({} comb + {} dff), {} nets, {} in / {} out, {} mem, area {:.1}",
            self.name,
            self.total_gates,
            self.comb_gates,
            self.dffs,
            self.nets,
            self.inputs,
            self.outputs,
            self.memories,
            self.area
        )?;
        for (kind, count) in &self.by_kind {
            writeln!(f, "  {kind:>6}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::RtlBuilder;

    #[test]
    fn stats_of_adder() {
        let mut b = RtlBuilder::new("a");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let s = b.add(&x, &y);
        b.output("s", &s);
        let nl = b.finish().unwrap();
        let st = NetlistStats::of(&nl);
        assert_eq!(st.total_gates, st.comb_gates + st.dffs);
        assert_eq!(st.inputs, 8);
        assert_eq!(st.outputs, 4);
        assert!(st.by_kind[&CellKind::Xor2] >= 8);
        assert!(st.to_string().contains("gates"));
    }
}
