use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use symsim_netlist::{CellKind, Netlist, NetlistStats};
use symsim_sim::ToggleProfile;

use crate::simplify::{propagate_constants, sweep_dead_gates, tie_off};

/// Metrics of a bespoke generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BespokeReport {
    /// Gate count of the original design (comb + seq).
    pub original_gates: usize,
    /// Gate count after pruning and re-synthesis.
    pub bespoke_gates: usize,
    /// Area before.
    pub original_area: f64,
    /// Area after.
    pub bespoke_area: f64,
    /// Unexercisable gates tied to their observed constants.
    pub tied_off: usize,
    /// Unexercisable gates removed outright (constant unknown / dead).
    pub pruned: usize,
    /// Flip-flops replaced by constants.
    pub dffs_pruned: usize,
    /// Rewrites performed by constant propagation.
    pub const_rewrites: usize,
}

impl BespokeReport {
    /// Percentage of gates removed relative to the original design.
    pub fn reduction_percent(&self) -> f64 {
        if self.original_gates == 0 {
            return 0.0;
        }
        100.0 * (self.original_gates - self.bespoke_gates) as f64 / self.original_gates as f64
    }
}

/// A bespoke netlist together with its generation report.
#[derive(Debug, Clone)]
pub struct BespokeResult {
    /// The pruned, re-synthesized netlist.
    pub netlist: Netlist,
    /// Generation metrics.
    pub report: BespokeReport,
}

/// Generates a bespoke processor from a co-analysis toggle profile:
/// unexercisable gates are pruned with their fanout tied to the constant
/// value seen during symbolic simulation, then the netlist is
/// re-synthesized (constant propagation + dead-logic sweep), as in paper §3.
///
/// # Example
///
/// ```
/// use symsim_netlist::RtlBuilder;
/// use symsim_sim::{SimConfig, Simulator};
/// use symsim_logic::Value;
///
/// // y = a AND 0 never toggles; bespoke generation removes the cone
/// let mut b = RtlBuilder::new("d");
/// let a = b.input("a", 1);
/// let zero = b.zero();
/// let y = b.and1(a.bit(0), zero);
/// let yb = symsim_netlist::Bus::from_nets(vec![y]);
/// b.output("y", &yb);
/// let nl = b.finish().expect("valid");
///
/// let mut sim = Simulator::new(&nl, SimConfig::default());
/// sim.poke(nl.find_net("a").expect("net"), Value::ZERO);
/// sim.settle();
/// sim.arm_toggle_observer();
/// sim.poke(nl.find_net("a").expect("net"), Value::ONE);
/// sim.settle();
/// let profile = sim.take_toggle_profile().expect("armed");
///
/// let result = symsim_bespoke::generate(&nl, &profile);
/// assert!(result.report.bespoke_gates < result.report.original_gates);
/// ```
pub fn generate(netlist: &Netlist, profile: &ToggleProfile) -> BespokeResult {
    let mut out = netlist.clone();
    out.name = format!("{}_bespoke", netlist.name);
    let original = NetlistStats::of(netlist);

    // 1) tie off unexercisable combinational gates (Algorithm 1 line 42)
    let mut tied_off = 0usize;
    let mut to_remove = HashSet::new();
    for (id, constant) in profile.unexercisable_constants(netlist) {
        // keep constant cells as-is; they are already tie-offs
        let kind = netlist.gate(id).kind;
        if matches!(kind, CellKind::Const0 | CellKind::Const1) {
            continue;
        }
        if tie_off(&mut out, id, constant) {
            tied_off += 1;
        } else {
            // the gate's output was never driven to a known value: nothing
            // downstream can depend on it; remove the driver outright
            to_remove.insert(id);
        }
    }
    let pruned_unknown = to_remove.len();
    out.retain(|id, _| !to_remove.contains(&id), |_, _| true);

    // 2) replace unexercisable flip-flops with their constant outputs
    let mut dff_consts = Vec::new();
    let mut dff_remove = HashSet::new();
    for (id, d) in netlist.iter_dffs() {
        if !profile.is_toggled(d.q) {
            if let Some(b) = profile.constant_of(d.q).to_bool() {
                dff_consts.push((d.q, b));
            }
            dff_remove.insert(id);
        }
    }
    let dffs_pruned = dff_remove.len();
    out.retain(|_, _| true, |id, _| !dff_remove.contains(&id));
    for (q, b) in dff_consts {
        out.add_gate(
            if b {
                CellKind::Const1
            } else {
                CellKind::Const0
            },
            &[],
            q,
        );
    }

    // 3) re-synthesis: constant propagation + dead-logic sweep
    let const_rewrites = propagate_constants(&mut out);
    let (dead_gates, dead_dffs) = sweep_dead_gates(&mut out);

    debug_assert!(out.validate().is_ok(), "bespoke netlist must stay valid");
    let bespoke = NetlistStats::of(&out);
    BespokeResult {
        report: BespokeReport {
            original_gates: original.total_gates,
            bespoke_gates: bespoke.total_gates,
            original_area: original.area,
            bespoke_area: bespoke.area,
            tied_off,
            pruned: pruned_unknown + dead_gates,
            dffs_pruned: dffs_pruned + dead_dffs,
            const_rewrites,
        },
        netlist: out,
    }
}

/// Convenience predicate: is this gate a tie-off constant?
#[cfg(test)]
pub(crate) fn is_const(gate: &symsim_netlist::Gate) -> bool {
    matches!(gate.kind, CellKind::Const0 | CellKind::Const1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_logic::{Value, Word};
    use symsim_netlist::RtlBuilder;
    use symsim_sim::{SimConfig, Simulator};

    /// A design with an obviously-unused half: out = sel ? big_cone : a,
    /// with sel tied low during "the application".
    fn split_design() -> Netlist {
        let mut b = RtlBuilder::new("split");
        let sel = b.input("sel", 1);
        let a = b.input("a", 8);
        let c = b.input("c", 8);
        // the unused half: an 8x8 multiplier cone
        let big = b.mul(&a, &c);
        let out = b.mux(sel.bit(0), &a, &big);
        b.output("out", &out);
        b.finish().unwrap()
    }

    #[test]
    fn prunes_unexercised_multiplier_cone() {
        let nl = split_design();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        let map = nl.net_name_map();
        // the application never raises sel and never changes c
        sim.poke(map["sel"], Value::ZERO);
        let c_nets: Vec<_> = (0..8).map(|i| map[format!("c[{i}]").as_str()]).collect();
        sim.poke_bus(&c_nets, &Word::from_u64(0, 8));
        let a_nets: Vec<_> = (0..8).map(|i| map[format!("a[{i}]").as_str()]).collect();
        sim.poke_bus(&a_nets, &Word::from_u64(0, 8));
        sim.settle();
        sim.arm_toggle_observer();
        // drive various a values (the exercisable half)
        for v in [1u64, 0x55, 0xff, 3] {
            sim.poke_bus(&a_nets, &Word::from_u64(v, 8));
            sim.settle();
            sim.step_cycle();
        }
        let profile = sim.take_toggle_profile().unwrap();
        let result = generate(&nl, &profile);
        assert!(
            result.report.reduction_percent() > 40.0,
            "multiplier cone should be pruned: {:?}",
            result.report
        );
        assert!(result.netlist.validate().is_ok());

        // bespoke behaves identically on in-contract stimulus
        let mut orig = Simulator::new(&nl, SimConfig::default());
        let mut besp = Simulator::new(&result.netlist, SimConfig::default());
        for sim in [&mut orig, &mut besp] {
            sim.poke(map["sel"], Value::ZERO);
            sim.poke_bus(&c_nets, &Word::from_u64(0, 8));
            sim.poke_bus(&a_nets, &Word::from_u64(0x3c, 8));
            sim.settle();
        }
        let out_nets: Vec<_> = (0..8)
            .map(|i| nl.find_net(&format!("out[{i}]")).unwrap())
            .collect();
        // net ids are stable across pruning, so the same ids index both
        assert_eq!(orig.read_bus(&out_nets), besp.read_bus(&out_nets));
    }

    #[test]
    fn fully_toggled_design_unchanged_in_count() {
        let mut b = RtlBuilder::new("live");
        let x = b.input("x", 4);
        let y = b.not(&x);
        b.output("y", &y);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        let map = nl.net_name_map();
        let nets: Vec<_> = (0..4).map(|i| map[format!("x[{i}]").as_str()]).collect();
        sim.poke_bus(&nets, &Word::from_u64(0, 4));
        sim.settle();
        sim.arm_toggle_observer();
        sim.poke_bus(&nets, &Word::from_u64(0xf, 4));
        sim.settle();
        let profile = sim.take_toggle_profile().unwrap();
        let result = generate(&nl, &profile);
        assert_eq!(result.report.bespoke_gates, result.report.original_gates);
        assert_eq!(result.report.reduction_percent(), 0.0);
    }

    #[test]
    fn untoggled_dff_becomes_constant() {
        let mut b = RtlBuilder::new("dffconst");
        let x = b.input("x", 1);
        let zero_b = b.const_word(0, 1);
        let one = b.one();
        let frozen = b.reg_en("frozen", &zero_b, one, 0);
        let y = b.or(&frozen, &x);
        b.output("y", &y);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        sim.poke(nl.find_net("x").unwrap(), Value::ZERO);
        sim.settle();
        sim.arm_toggle_observer();
        for v in [Value::ONE, Value::ZERO, Value::ONE] {
            sim.poke(nl.find_net("x").unwrap(), v);
            sim.settle();
            sim.step_cycle();
        }
        let profile = sim.take_toggle_profile().unwrap();
        let result = generate(&nl, &profile);
        assert_eq!(result.netlist.dff_count(), 0);
        assert!(result.report.dffs_pruned >= 1);
        assert!(result.netlist.gates().iter().any(is_const) || result.netlist.gate_count() > 0);
    }
}
