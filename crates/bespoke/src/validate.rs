use std::fmt;

use symsim_logic::Word;
use symsim_netlist::{NetId, Netlist};
use symsim_sim::{SimConfig, Simulator};

/// A divergence found by [`check_output_equivalence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceError {
    /// Cycle at which the first divergence occurred.
    pub cycle: u64,
    /// Name of the diverging output net.
    pub net: String,
    /// Value on the original design.
    pub original: String,
    /// Value on the bespoke design.
    pub bespoke: String,
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: output {} diverged (original {}, bespoke {})",
            self.cycle, self.net, self.original, self.bespoke
        )
    }
}

impl std::error::Error for EquivalenceError {}

/// The §5.0.1 validation: simulates concrete (fixed, known) inputs on both
/// the original and the bespoke gate-level netlist and verifies the outputs
/// are identical at every cycle.
///
/// `prepare` brings each simulator to the start state (program load, reset,
/// concrete input drive) and must be deterministic; `watch` names the output
/// nets compared each cycle; the run lasts `cycles` cycles.
///
/// Net ids are stable across bespoke pruning, so the same [`NetId`]s index
/// both designs.
///
/// # Errors
///
/// Returns the first [`EquivalenceError`] divergence, if any.
pub fn check_output_equivalence(
    original: &Netlist,
    bespoke: &Netlist,
    config: SimConfig,
    prepare: impl Fn(&mut Simulator<'_>),
    watch: &[NetId],
    cycles: u64,
) -> Result<(), EquivalenceError> {
    let mut sim_a = Simulator::new(original, config);
    let mut sim_b = Simulator::new(bespoke, config);
    prepare(&mut sim_a);
    prepare(&mut sim_b);
    sim_a.settle();
    sim_b.settle();
    for cycle in 0..cycles {
        let wa: Word = sim_a.read_bus(watch);
        let wb: Word = sim_b.read_bus(watch);
        if wa != wb {
            let i = (0..wa.width())
                .find(|&i| wa.bit(i) != wb.bit(i))
                .expect("some bit differs");
            return Err(EquivalenceError {
                cycle,
                net: original.net_name(watch[i]).to_string(),
                original: wa.bit(i).to_string(),
                bespoke: wb.bit(i).to_string(),
            });
        }
        sim_a.step_cycle();
        sim_b.step_cycle();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_logic::Value;
    use symsim_netlist::RtlBuilder;

    fn xor_design() -> Netlist {
        let mut b = RtlBuilder::new("x");
        let a = b.input("a", 1);
        let c = b.input("c", 1);
        let y = b.xor(&a, &c);
        b.output("y", &y);
        b.finish().unwrap()
    }

    #[test]
    fn identical_designs_are_equivalent() {
        let nl = xor_design();
        let copy = nl.clone();
        let watch = vec![nl.find_net("y").unwrap()];
        let res = check_output_equivalence(
            &nl,
            &copy,
            SimConfig::default(),
            |sim| {
                sim.poke(sim.netlist().find_net("a").unwrap(), Value::ONE);
                sim.poke(sim.netlist().find_net("c").unwrap(), Value::ZERO);
            },
            &watch,
            4,
        );
        assert!(res.is_ok());
    }

    #[test]
    fn divergence_is_reported() {
        let nl = xor_design();
        // a "bespoke" netlist that wrongly ties y high
        let mut broken = nl.clone();
        let y = broken.find_net("y").unwrap();
        let gid = broken
            .iter_gates()
            .find(|(_, g)| g.output == y)
            .map(|(id, _)| id)
            .unwrap();
        broken.replace_gate(
            gid,
            symsim_netlist::Gate {
                kind: symsim_netlist::CellKind::Const1,
                inputs: vec![],
                output: y,
            },
        );
        let watch = vec![y];
        let err = check_output_equivalence(
            &nl,
            &broken,
            SimConfig::default(),
            |sim| {
                sim.poke(sim.netlist().find_net("a").unwrap(), Value::ONE);
                sim.poke(sim.netlist().find_net("c").unwrap(), Value::ONE);
            },
            &watch,
            2,
        )
        .unwrap_err();
        assert_eq!(err.cycle, 0);
        assert_eq!(err.net, "y");
        assert!(err.to_string().contains("diverged"));
    }
}
