//! # symsim-bespoke
//!
//! Bespoke processor generation from symbolic co-analysis results
//! (Cherupalli et al., ISCA'17, as automated by the DAC'22 tool):
//!
//! 1. **Prune** every gate the co-analysis proved unexercisable, tying its
//!    fanout to the constant value it held during symbolic simulation
//!    (Algorithm 1 line 42).
//! 2. **Re-synthesize**: constant propagation and dead-logic sweeps shrink
//!    the remaining netlist.
//! 3. **Validate** (paper §5.0.1): the bespoke netlist must produce outputs
//!    identical to the original for concrete application inputs, and the
//!    concretely-exercised gate set must be a subset of the reported
//!    exercisable set.
//!
//! The headline metrics — exercisable gate count and % reduction — feed the
//! paper's Table 3 and Fig. 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod simplify;
mod validate;

pub use generate::{generate, BespokeReport, BespokeResult};
pub use simplify::{propagate_constants, sweep_dead_gates, SimplifyStats};
pub use validate::{check_output_equivalence, EquivalenceError};
