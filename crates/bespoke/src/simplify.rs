use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use symsim_logic::Value;
use symsim_netlist::{CellKind, Gate, GateId, NetId, Netlist};

/// Statistics from a simplification pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimplifyStats {
    /// Gates rewritten into simpler cells (constants, buffers, inverters).
    pub rewritten: usize,
    /// Gates removed because nothing reads their outputs.
    pub dead_removed: usize,
    /// Flip-flops removed because nothing reads their outputs.
    pub dead_dffs_removed: usize,
}

/// Constant value driven onto each net by `Const0`/`Const1` cells, if any.
fn net_constants(netlist: &Netlist) -> Vec<Option<bool>> {
    let mut consts = vec![None; netlist.net_count()];
    for g in netlist.gates() {
        match g.kind {
            CellKind::Const0 => consts[g.output.0 as usize] = Some(false),
            CellKind::Const1 => consts[g.output.0 as usize] = Some(true),
            _ => {}
        }
    }
    consts
}

fn const_gate(value: bool, output: NetId) -> Gate {
    Gate {
        kind: if value {
            CellKind::Const1
        } else {
            CellKind::Const0
        },
        inputs: vec![],
        output,
    }
}

fn buf_gate(input: NetId, output: NetId) -> Gate {
    Gate {
        kind: CellKind::Buf,
        inputs: vec![input],
        output,
    }
}

fn not_gate(input: NetId, output: NetId) -> Gate {
    Gate {
        kind: CellKind::Not,
        inputs: vec![input],
        output,
    }
}

/// One round of constant propagation: gates with constant inputs are
/// rewritten into constants, buffers, or inverters. Returns the number of
/// gates rewritten; call repeatedly (or via [`propagate_constants`]) to
/// reach a fixpoint.
fn propagate_once(netlist: &mut Netlist) -> usize {
    let consts = net_constants(netlist);
    let c = |n: NetId| consts[n.0 as usize];
    let mut rewrites: Vec<(GateId, Gate)> = Vec::new();

    for (id, g) in netlist.iter_gates() {
        let out = g.output;
        let new = match g.kind {
            CellKind::Const0 | CellKind::Const1 => None,
            CellKind::Buf => c(g.inputs[0]).map(|v| const_gate(v, out)),
            CellKind::Not => c(g.inputs[0]).map(|v| const_gate(!v, out)),
            CellKind::And2 => match (c(g.inputs[0]), c(g.inputs[1])) {
                (Some(false), _) | (_, Some(false)) => Some(const_gate(false, out)),
                (Some(true), _) => Some(buf_gate(g.inputs[1], out)),
                (_, Some(true)) => Some(buf_gate(g.inputs[0], out)),
                _ => None,
            },
            CellKind::Or2 => match (c(g.inputs[0]), c(g.inputs[1])) {
                (Some(true), _) | (_, Some(true)) => Some(const_gate(true, out)),
                (Some(false), _) => Some(buf_gate(g.inputs[1], out)),
                (_, Some(false)) => Some(buf_gate(g.inputs[0], out)),
                _ => None,
            },
            CellKind::Nand2 => match (c(g.inputs[0]), c(g.inputs[1])) {
                (Some(false), _) | (_, Some(false)) => Some(const_gate(true, out)),
                (Some(true), _) => Some(not_gate(g.inputs[1], out)),
                (_, Some(true)) => Some(not_gate(g.inputs[0], out)),
                _ => None,
            },
            CellKind::Nor2 => match (c(g.inputs[0]), c(g.inputs[1])) {
                (Some(true), _) | (_, Some(true)) => Some(const_gate(false, out)),
                (Some(false), _) => Some(not_gate(g.inputs[1], out)),
                (_, Some(false)) => Some(not_gate(g.inputs[0], out)),
                _ => None,
            },
            CellKind::Xor2 => match (c(g.inputs[0]), c(g.inputs[1])) {
                (Some(a), Some(b)) => Some(const_gate(a ^ b, out)),
                (Some(false), _) => Some(buf_gate(g.inputs[1], out)),
                (_, Some(false)) => Some(buf_gate(g.inputs[0], out)),
                (Some(true), _) => Some(not_gate(g.inputs[1], out)),
                (_, Some(true)) => Some(not_gate(g.inputs[0], out)),
                (None, None) => None,
            },
            CellKind::Xnor2 => match (c(g.inputs[0]), c(g.inputs[1])) {
                (Some(a), Some(b)) => Some(const_gate(a == b, out)),
                (Some(true), _) => Some(buf_gate(g.inputs[1], out)),
                (_, Some(true)) => Some(buf_gate(g.inputs[0], out)),
                (Some(false), _) => Some(not_gate(g.inputs[1], out)),
                (_, Some(false)) => Some(not_gate(g.inputs[0], out)),
                (None, None) => None,
            },
            CellKind::Mux2 => match c(g.inputs[0]) {
                Some(false) => Some(buf_gate(g.inputs[1], out)),
                Some(true) => Some(buf_gate(g.inputs[2], out)),
                None => {
                    if g.inputs[1] == g.inputs[2] {
                        Some(buf_gate(g.inputs[1], out))
                    } else {
                        match (c(g.inputs[1]), c(g.inputs[2])) {
                            (Some(a), Some(b)) if a == b => Some(const_gate(a, out)),
                            _ => None,
                        }
                    }
                }
            },
        };
        if let Some(gate) = new {
            if gate != *g {
                rewrites.push((id, gate));
            }
        }
    }
    let n = rewrites.len();
    for (id, gate) in rewrites {
        netlist.replace_gate(id, gate);
    }
    n
}

/// Propagates constants to a fixpoint. Returns total rewrites performed.
pub fn propagate_constants(netlist: &mut Netlist) -> usize {
    let mut total = 0;
    loop {
        let n = propagate_once(netlist);
        total += n;
        if n == 0 {
            return total;
        }
    }
}

/// Removes gates and flip-flops whose outputs nothing reads (not a gate
/// input, flip-flop `d`, memory port pin, or primary output). Iterates to a
/// fixpoint. Returns `(gates_removed, dffs_removed)`.
pub fn sweep_dead_gates(netlist: &mut Netlist) -> (usize, usize) {
    let mut total = (0usize, 0usize);
    loop {
        let mut live: HashSet<NetId> = HashSet::new();
        for g in netlist.gates() {
            live.extend(g.inputs.iter().copied());
        }
        for d in netlist.dffs() {
            live.insert(d.d);
        }
        for m in netlist.memories() {
            for rp in &m.read_ports {
                live.extend(rp.addr.iter().copied());
            }
            for wp in &m.write_ports {
                live.extend(wp.addr.iter().copied());
                live.extend(wp.data.iter().copied());
                live.insert(wp.we);
            }
        }
        live.extend(netlist.outputs().iter().copied());
        let (rg, rd) = netlist.retain(|_, g| live.contains(&g.output), |_, d| live.contains(&d.q));
        total.0 += rg;
        total.1 += rd;
        if rg == 0 && rd == 0 {
            return total;
        }
    }
}

/// Ties net `net` to constant `value` by replacing its driver gate (if any)
/// with a constant cell. Used by bespoke pruning for untoggled gates whose
/// observed constant is known.
pub(crate) fn tie_off(netlist: &mut Netlist, gate: GateId, value: Value) -> bool {
    match value.to_bool() {
        Some(b) => {
            let out = netlist.gate(gate).output;
            netlist.replace_gate(gate, const_gate(b, out));
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_netlist::RtlBuilder;

    #[test]
    fn constants_fold_through_logic() {
        let mut b = RtlBuilder::new("fold");
        let x = b.input("x", 1);
        let zero = b.zero();
        let a = b.and1(x.bit(0), zero); // = 0
        let o = b.or1(a, x.bit(0)); // = x
        let y = symsim_netlist::Bus::from_nets(vec![o]);
        b.output("y", &y);
        let mut nl = b.finish().unwrap();
        let rewrites = propagate_constants(&mut nl);
        assert!(rewrites >= 2);
        let (dead, _) = sweep_dead_gates(&mut nl);
        assert!(dead >= 1);
        assert!(nl.validate().is_ok());
        // y is now a buffer chain from x
        let gates: Vec<_> = nl.gates().iter().map(|g| g.kind).collect();
        assert!(gates
            .iter()
            .all(|k| matches!(k, CellKind::Buf | CellKind::Const0 | CellKind::Const1)));
    }

    #[test]
    fn mux_with_constant_select_folds() {
        let mut b = RtlBuilder::new("m");
        let x = b.input("x", 1);
        let yb = b.input("y", 1);
        let one = b.one();
        let m = b.mux1(one, x.bit(0), yb.bit(0));
        let out = symsim_netlist::Bus::from_nets(vec![m]);
        b.output("o", &out);
        let mut nl = b.finish().unwrap();
        propagate_constants(&mut nl);
        let mux_count = nl
            .gates()
            .iter()
            .filter(|g| g.kind == CellKind::Mux2)
            .count();
        assert_eq!(mux_count, 0);
    }

    #[test]
    fn dead_sweep_keeps_outputs_and_state() {
        let mut b = RtlBuilder::new("keep");
        let x = b.input("x", 2);
        let r = b.reg("r", 2, 0);
        let q = r.q.clone();
        let nxt = b.xor(&q, &x);
        b.drive_reg(r, &nxt);
        b.output("q", &q);
        // a dangling cone
        let dead1 = b.and1(x.bit(0), x.bit(1));
        let _dead2 = b.not1(dead1);
        let mut nl = b.finish().unwrap();
        let before = nl.gate_count();
        let (removed, removed_d) = sweep_dead_gates(&mut nl);
        assert_eq!(removed, 2);
        assert_eq!(removed_d, 0);
        assert_eq!(nl.gate_count(), before - 2);
        assert_eq!(nl.dff_count(), 2);
    }

    #[test]
    fn dead_dff_removed() {
        let mut b = RtlBuilder::new("deaddff");
        let x = b.input("x", 1);
        let r = b.reg("r", 1, 0); // q unread
        b.drive_reg(r, &x);
        b.output("xo", &x);
        let mut nl = b.finish().unwrap();
        let (_, removed_d) = sweep_dead_gates(&mut nl);
        assert_eq!(removed_d, 1);
        assert_eq!(nl.dff_count(), 0);
    }
}
