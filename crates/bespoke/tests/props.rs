//! Property-based equivalence: the re-synthesis passes (constant
//! propagation + dead-logic sweep) never change observable behaviour, and
//! full bespoke generation is faithful to the activity profile it is given.

use proptest::prelude::*;
use symsim_bespoke::{generate, propagate_constants, sweep_dead_gates};
use symsim_logic::{Value, Word};
use symsim_netlist::generator::arb_netlist;
use symsim_sim::{SimConfig, Simulator};

fn run_trace(netlist: &symsim_netlist::Netlist, stimulus: &[u64]) -> Vec<Word> {
    let mut sim = Simulator::new(netlist, SimConfig::default());
    let inputs: Vec<_> = netlist.inputs().to_vec();
    let outputs: Vec<_> = netlist.outputs().to_vec();
    let mut trace = Vec::new();
    for &s in stimulus {
        for (i, &net) in inputs.iter().enumerate() {
            sim.poke(net, Value::from_bool(s >> (i % 64) & 1 == 1));
        }
        sim.step_cycle();
        trace.push(sim.read_bus(&outputs));
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Constant propagation and dead-gate sweeps preserve the output trace
    /// for arbitrary concrete stimulus. Output nets survive the sweep, and
    /// net ids are stable, so traces compare directly.
    #[test]
    fn resynthesis_preserves_behaviour(
        nl in arb_netlist(40),
        stimulus in prop::collection::vec(any::<u64>(), 1..10),
    ) {
        let mut simplified = nl.clone();
        propagate_constants(&mut simplified);
        sweep_dead_gates(&mut simplified);
        prop_assert!(simplified.validate().is_ok());
        prop_assert!(simplified.gate_count() <= nl.gate_count());
        prop_assert_eq!(run_trace(&nl, &stimulus), run_trace(&simplified, &stimulus));
    }

    /// Full bespoke generation from an honestly-collected toggle profile
    /// reproduces the original's outputs on the stimulus that produced the
    /// profile (the §5.0.1 property, on random designs).
    #[test]
    fn bespoke_faithful_to_observed_activity(
        nl in arb_netlist(40),
        stimulus in prop::collection::vec(any::<u64>(), 2..10),
    ) {
        // collect the profile while running the stimulus
        let mut sim = Simulator::new(&nl, SimConfig::default());
        let inputs: Vec<_> = nl.inputs().to_vec();
        // drive the first stimulus, settle, then arm: the baseline is a
        // concrete quiescent state, as after reset
        for (i, &net) in inputs.iter().enumerate() {
            sim.poke(net, Value::from_bool(stimulus[0] >> (i % 64) & 1 == 1));
        }
        sim.settle();
        sim.arm_toggle_observer();
        for &s in &stimulus {
            for (i, &net) in inputs.iter().enumerate() {
                sim.poke(net, Value::from_bool(s >> (i % 64) & 1 == 1));
            }
            sim.step_cycle();
        }
        let profile = sim.take_toggle_profile().expect("armed");
        let result = generate(&nl, &profile);
        prop_assert!(result.netlist.validate().is_ok());
        prop_assert!(result.report.bespoke_gates <= result.report.original_gates);

        // replay: first stimulus settled before observation begins
        let replay = |netlist: &symsim_netlist::Netlist| -> Vec<Word> {
            let mut sim = Simulator::new(netlist, SimConfig::default());
            let outputs: Vec<_> = netlist.outputs().to_vec();
            for (i, &net) in inputs.iter().enumerate() {
                sim.poke(net, Value::from_bool(stimulus[0] >> (i % 64) & 1 == 1));
            }
            sim.settle();
            let mut trace = Vec::new();
            for &s in &stimulus {
                for (i, &net) in inputs.iter().enumerate() {
                    sim.poke(net, Value::from_bool(s >> (i % 64) & 1 == 1));
                }
                sim.step_cycle();
                trace.push(sim.read_bus(&outputs));
            }
            trace
        };
        prop_assert_eq!(replay(&nl), replay(&result.netlist));
    }
}
