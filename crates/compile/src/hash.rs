//! Design content hashing for the kernel cache.
//!
//! The cache key must change whenever the *generated code* would change:
//! the netlist structure the codegen reads (gates, read-port wiring, net
//! count), the codegen itself ([`CODEGEN_VERSION`]), and the `rustc` that
//! builds the dylib. Everything else — net names, memory contents, write
//! ports, DFF init values — is runtime state the kernel never sees, so it
//! deliberately stays out of the key and repeat runs of the same design
//! hit the cache.

use symsim_netlist::Netlist;

/// Bumped on every change to the generated source layout or ABI, so stale
/// cached dylibs from older builds can never be loaded.
pub const CODEGEN_VERSION: u64 = 3;

/// 64-bit FNV-1a, the workspace's standard dependency-free hash.
#[derive(Debug)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    /// Folds a byte slice into the hash.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Fnv {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds one word into the hash (little-endian bytes).
    pub fn word(&mut self, w: u64) -> &mut Fnv {
        self.bytes(&w.to_le_bytes())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// Content hash of everything the generated kernel depends on.
pub fn design_hash(netlist: &Netlist, rustc_version: &str) -> u64 {
    let mut h = Fnv::new();
    h.word(CODEGEN_VERSION);
    h.bytes(rustc_version.as_bytes());
    h.word(structure_hash(netlist));
    h.finish()
}

/// Content hash of the netlist structure alone — the toolchain-independent
/// part of [`design_hash`], also the design identity the run ledger keys
/// on (two runs of the same structure are comparable regardless of which
/// rustc built the binary).
pub fn structure_hash(netlist: &Netlist) -> u64 {
    let mut h = Fnv::new();
    h.word(netlist.net_count() as u64);
    h.word(netlist.gate_count() as u64);
    for gate in netlist.gates() {
        h.word(gate.kind as u64);
        h.word(gate.inputs.len() as u64);
        for pin in &gate.inputs {
            h.word(u64::from(pin.0));
        }
        h.word(u64::from(gate.output.0));
    }
    // read-port wiring shapes the segment schedule and the mem-data mask
    h.word(netlist.memories().len() as u64);
    for mem in netlist.memories() {
        h.word(mem.read_ports.len() as u64);
        for rp in &mem.read_ports {
            h.word(rp.addr.len() as u64);
            for pin in &rp.addr {
                h.word(u64::from(pin.0));
            }
            h.word(rp.data.len() as u64);
            for pin in &rp.data {
                h.word(u64::from(pin.0));
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_netlist::CellKind;

    fn tiny() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.add_net("a");
        let b = n.add_net("b");
        let y = n.add_net("y");
        n.add_input(a);
        n.add_input(b);
        n.add_gate(CellKind::And2, &[a, b], y);
        n
    }

    #[test]
    fn hash_is_stable_and_structure_sensitive() {
        let n = tiny();
        assert_eq!(design_hash(&n, "rustc 1.0"), design_hash(&n, "rustc 1.0"));
        assert_ne!(design_hash(&n, "rustc 1.0"), design_hash(&n, "rustc 2.0"));
        let mut m = tiny();
        let z = m.add_net("z");
        let y = m.find_net("y").unwrap();
        m.add_gate(CellKind::Not, &[y], z);
        assert_ne!(design_hash(&n, "rustc 1.0"), design_hash(&m, "rustc 1.0"));
    }
}
