//! Compiled netlist backend.
//!
//! Lowers a levelized combinational DAG to a self-contained Rust source
//! file implementing the whole two-plane settle pass as straight-line
//! code (one function per level chunk, gate kinds specialized to direct
//! word ops, constants folded, fanout wired as direct plane writes),
//! builds it into a `cdylib` by invoking `rustc` at runtime, caches the
//! result under a design-content-hash key, and loads it via `dlopen`.
//!
//! The engine drives the kernel through [`CompiledKernel::run`]: the
//! kernel settles level by level over `val`/`unk` bit planes laid out in a
//! codegen-chosen net→bit permutation ([`CompiledKernel::net_positions`],
//! chosen so co-changing nets share plane words) and calls back once per
//! *segment* — a level containing memory read ports — so the engine can
//! resolve those ports exactly (conservative X-address semantics and all)
//! and patch the planes before higher levels consume the data nets.
//!
//! Work is activity-gated at plane-word granularity: the caller seeds a
//! dirty-word bitmap (one bit per plane word) with the words that changed
//! since the last kernel settle, and each generated chunk skips itself
//! when none of the words it loads are dirty, marking the words it changes
//! so activity propagates down the levels (see `codegen` for the scheme).
//!
//! Everything `unsafe` about the scheme (the FFI boundary, `dlopen`, the
//! callback trampoline) is confined to this crate; `symsim-sim` keeps its
//! `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

mod builder;
mod codegen;
mod hash;
mod loader;

use std::os::raw::c_void;
use std::path::PathBuf;
use std::time::Instant;

use symsim_netlist::Netlist;

pub use codegen::{dirty_words, plane_bit, plane_word, MemReadRef};
pub use hash::{design_hash, structure_hash, Fnv, CODEGEN_VERSION};

/// How a kernel came to be, for logs and metrics.
#[derive(Debug, Clone)]
pub struct BuildInfo {
    /// Design content hash (also the cache key).
    pub design_hash: u64,
    /// `true` when the dylib came from the cache (zero codegen cost).
    pub cache_hit: bool,
    /// Codegen + `rustc` wall time in µs (0 on a cache hit).
    pub codegen_us: u64,
    /// dlopen + validation wall time in µs.
    pub load_us: u64,
    /// Where the dylib lives.
    pub dylib_path: PathBuf,
    /// Generated source size in bytes (0 on a cache hit).
    pub source_bytes: usize,
    /// Gates lowered to native word ops.
    pub gates_emitted: usize,
    /// Gates folded to constants at codegen time.
    pub gates_folded: usize,
    /// Comb levels in the schedule.
    pub levels: usize,
}

/// Options for [`CompiledKernel::prepare`].
#[derive(Debug, Clone, Default)]
pub struct PrepareOpts {
    /// Cache directory override (else `$SYMSIM_KERNEL_CACHE`, else a
    /// fixed directory under the system temp dir).
    pub cache_dir: Option<PathBuf>,
    /// Rebuild even when a cached dylib exists.
    pub force_rebuild: bool,
}

/// A native settle kernel for one design, shareable across workers.
#[derive(Debug)]
pub struct CompiledKernel {
    kernel: loader::LoadedKernel,
    segments: Vec<Vec<MemReadRef>>,
    net_pos: Vec<u32>,
    words: usize,
    info: BuildInfo,
}

/// Engine-side segment callback: `(segment, pv, pu, dw)` — resolve the
/// memory read ports of `segment` against the planes, marking changed
/// words dirty.
pub type SegmentFn<'a> = dyn FnMut(u32, &mut [u64], &mut [u64], &mut [u64]) + 'a;

/// Callback context smuggled through the `extern "C"` boundary.
struct CbCtx<'a> {
    pv: *mut u64,
    pu: *mut u64,
    dw: *mut u64,
    words: usize,
    dwords: usize,
    on_segment: &'a mut SegmentFn<'a>,
}

/// Re-materializes the plane and dirty-bitmap slices and forwards to the
/// engine closure.
///
/// Safety contract: `ctx` is the `CbCtx` passed to `symsim_settle` by
/// [`CompiledKernel::run`] and is only ever called while that frame is
/// live; the generated kernel holds no slice over the planes or bitmap
/// across the callback (each level function re-derives and drops its own),
/// so these three exclusive borrows are the only live ones.
unsafe extern "C" fn trampoline(ctx: *mut c_void, seg: u32) {
    let ctx = &mut *(ctx as *mut CbCtx<'_>);
    let pv = std::slice::from_raw_parts_mut(ctx.pv, ctx.words);
    let pu = std::slice::from_raw_parts_mut(ctx.pu, ctx.words);
    let dw = std::slice::from_raw_parts_mut(ctx.dw, ctx.dwords);
    (ctx.on_segment)(seg, pv, pu, dw);
}

impl CompiledKernel {
    /// Lowers, builds (or fetches from cache), and loads the kernel for
    /// `netlist`.
    ///
    /// # Errors
    ///
    /// Anything that prevents getting a validated native kernel — no
    /// usable `rustc`, codegen-incompatible netlist, build failure,
    /// dlopen failure — comes back as a message; callers are expected to
    /// fall back to interpreted evaluation.
    pub fn prepare(netlist: &Netlist, opts: &PrepareOpts) -> Result<CompiledKernel, String> {
        let rustc = builder::rustc_binary();
        let version = builder::rustc_version(&rustc)?;
        let hash = hash::design_hash(netlist, &version);
        let plan = codegen::plan(netlist)?;
        let dir = opts.cache_dir.clone().unwrap_or_else(builder::cache_dir);
        let dylib = builder::dylib_path(&dir, hash);

        let cache_hit = dylib.is_file() && !opts.force_rebuild;
        let mut codegen_us = 0;
        let mut source_bytes = 0;
        let mut stats = codegen::LowerStats::default();
        if !cache_hit {
            let t0 = Instant::now();
            let (source, s) = codegen::emit(netlist, &plan, hash);
            stats = s;
            source_bytes = source.len();
            builder::build(&rustc, &dir, hash, &source)?;
            codegen_us = t0.elapsed().as_micros() as u64;
        }

        let t0 = Instant::now();
        let kernel = loader::load(&dylib, hash, plan.words)?;
        let load_us = t0.elapsed().as_micros() as u64;
        if kernel.segments != plan.segments.len() {
            return Err(format!(
                "{}: segment count mismatch (kernel {}, plan {})",
                dylib.display(),
                kernel.segments,
                plan.segments.len()
            ));
        }
        Ok(CompiledKernel {
            kernel,
            net_pos: plan.net_pos,
            words: plan.words,
            info: BuildInfo {
                design_hash: hash,
                cache_hit,
                codegen_us,
                load_us,
                dylib_path: dylib,
                source_bytes,
                gates_emitted: stats.gates_emitted,
                gates_folded: stats.gates_folded,
                levels: plan.levels,
            },
            segments: plan.segments,
        })
    }

    /// Plane words per array (`ceil(net_count / 64)`).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Net id → plane bit position: the layout this kernel was generated
    /// for (a permutation of `0..net_count`, chosen for dirty-word
    /// locality — see `codegen`). Callers must place net `n` at plane word
    /// [`plane_word`]`(pos[n])`, bit [`plane_bit`]`(pos[n])`.
    pub fn net_positions(&self) -> &[u32] {
        &self.net_pos
    }

    /// Read ports to resolve per segment callback, in firing order.
    pub fn segments(&self) -> &[Vec<MemReadRef>] {
        &self.segments
    }

    /// Build provenance (cache hit, timings, dylib path).
    pub fn info(&self) -> &BuildInfo {
        &self.info
    }

    /// Runs one settle pass over the planes.
    ///
    /// `dw` is the dirty-word bitmap ([`dirty_words`]`(words)` long): the
    /// caller seeds it with the plane words that changed since the last
    /// kernel settle (all-ones for a from-scratch settle); chunks whose
    /// input words are all clean are skipped, and the kernel marks every
    /// word it changes. On return `dw` covers everything this pass
    /// changed — the caller owns resetting it.
    ///
    /// `on_segment(seg, pv, pu, dw)` is invoked once per memory-read
    /// level, in ascending level order; it must resolve the read ports
    /// named by [`CompiledKernel::segments`]`[seg]`, write their data-net
    /// bits into the planes it is handed, and mark the plane words it
    /// changes in `dw`.
    ///
    /// # Panics
    ///
    /// Panics when the plane slices are not exactly [`CompiledKernel::words`]
    /// long or `dw` is not [`dirty_words`]`(words)` long.
    pub fn run(
        &self,
        pv: &mut [u64],
        pu: &mut [u64],
        dw: &mut [u64],
        on_segment: &mut SegmentFn<'_>,
    ) {
        assert_eq!(pv.len(), self.words, "val plane width");
        assert_eq!(pu.len(), self.words, "unk plane width");
        assert_eq!(dw.len(), dirty_words(self.words), "dirty bitmap width");
        let mut ctx = CbCtx {
            pv: pv.as_mut_ptr(),
            pu: pu.as_mut_ptr(),
            dw: dw.as_mut_ptr(),
            words: self.words,
            dwords: dw.len(),
            on_segment,
        };
        // Safety: the pointers outlive the call, the kernel was validated
        // against this plane width, and the trampoline contract above
        // governs the callback's borrows.
        unsafe {
            (self.kernel.settle)(
                ctx.pv,
                ctx.pu,
                ctx.dw,
                std::ptr::addr_of_mut!(ctx) as *mut c_void,
                trampoline,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_netlist::CellKind;

    fn cache_opts(tag: &str) -> PrepareOpts {
        PrepareOpts {
            cache_dir: Some(std::env::temp_dir().join(format!("symsim-kernel-test-{tag}"))),
            force_rebuild: false,
        }
    }

    /// xor/and pair over two inputs: enough to see real plane math.
    fn pair() -> Netlist {
        let mut n = Netlist::new("pair");
        let a = n.add_net("a");
        let b = n.add_net("b");
        let x = n.add_net("x");
        let y = n.add_net("y");
        n.add_input(a);
        n.add_input(b);
        n.add_gate(CellKind::Xor2, &[a, b], x);
        n.add_gate(CellKind::And2, &[x, b], y);
        n
    }

    #[test]
    fn builds_runs_and_caches() {
        let n = pair();
        let opts = cache_opts("build");
        let _ = std::fs::remove_dir_all(opts.cache_dir.as_ref().unwrap());
        let k = match CompiledKernel::prepare(&n, &opts) {
            Ok(k) => k,
            // machines without a toolchain exercise the fallback path
            Err(e) if e.contains("cannot run") => return,
            Err(e) => panic!("prepare: {e}"),
        };
        assert!(!k.info().cache_hit);
        assert!(k.info().codegen_us > 0);
        assert_eq!(k.words(), 1);

        // nets a=0, b=1, x=2, y=3 live wherever the layout put them
        let bit = |n: usize| 1u64 << k.net_positions()[n];
        let (a, b, x, y) = (bit(0), bit(1), bit(2), bit(3));

        // drive a=1, b=1 → x=0, y=0
        let mut pv = vec![a | b];
        let mut pu = vec![0u64];
        let mut dw = vec![!0u64];
        k.run(&mut pv, &mut pu, &mut dw, &mut |_, _, _, _| {
            panic!("no segments expected")
        });
        assert_eq!(pu[0], 0, "all known");
        assert_eq!(pv[0] & (x | y), 0, "x = 1^1 = 0, y = 0&1 = 0");

        // a=1, b unknown → x unknown, y unknown (b=1 would give y=x=X)
        let mut pv = vec![a];
        let mut pu = vec![b];
        let mut dw = vec![!0u64];
        k.run(&mut pv, &mut pu, &mut dw, &mut |_, _, _, _| {
            panic!("no segments expected")
        });
        assert_eq!(pu[0] & (x | y), x | y, "unknown b poisons x and y");
        assert_ne!(dw[0] & 0b1, 0, "kernel marks the word it changed");

        // activity gating: with a clean bitmap the chunks skip themselves
        // and the planes are left exactly as they are
        dw[0] = 0;
        pv[0] = !0;
        pu[0] = !0;
        k.run(&mut pv, &mut pu, &mut dw, &mut |_, _, _, _| {
            panic!("no segments expected")
        });
        assert_eq!(
            (pv[0], pu[0], dw[0]),
            (!0, !0, 0),
            "clean settle is a no-op"
        );

        // second prepare hits the cache
        let k2 = CompiledKernel::prepare(&n, &opts).expect("cached prepare");
        assert!(k2.info().cache_hit);
        assert_eq!(k2.info().codegen_us, 0);
    }

    #[test]
    fn missing_toolchain_is_an_error_not_a_panic() {
        // run in-process with a poisoned env? No: env vars are process
        // globals and tests share the process, so point at the binary via
        // the builder API instead.
        let err = builder::rustc_version("/nonexistent/symsim-rustc-missing").unwrap_err();
        assert!(err.contains("cannot run"), "{err}");
    }
}
