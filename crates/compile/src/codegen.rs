//! Lowering the levelized comb DAG to straight-line Rust.
//!
//! The generated kernel evaluates the *entire* netlist once per settle over
//! bit planes in a *codegen-chosen layout*: net `n` lives at plane bit
//! [`Plan::net_pos`]`[n]` (word `pos / 64`, bit `pos % 64`), in two parallel
//! arrays (`val` / `unk`) with the same encoding as `symsim_logic::plane` —
//! `val` set for a known 1, `unk` set for anything inexact (X; the engine
//! only hands the kernel states where Z/symbols are indistinguishable from
//! X under the active policy). The layout exists for the activity gating
//! below: positions are assigned so each chunk's outputs are consecutive
//! bits (one or two plane words per chunk) and non-gate nets (inputs, DFF
//! outputs, memory-read data) keep netlist id order, which the RTL builder
//! allocates bus-contiguously. Nets that change together therefore share
//! plane words, and the dirty-word bitmap stays as sparse as the underlying
//! net-level activity instead of smearing a handful of changed nets across
//! most of the plane.
//!
//! Levels become functions: every gate input is, by the levelization
//! invariant, produced at a strictly lower level, so a level function loads
//! its source bits from the planes, computes each gate with the branch-free
//! two-plane formulas specialized to 0/1 words, and stores all outputs
//! grouped per plane word at the end (read-modify-write once per word, not
//! once per gate). Constants are folded at codegen time: `Const0`/`Const1`
//! and any gate whose inputs are all known fold to literal bits in the
//! store masks, and partially-constant operands are substituted as `0`/`1`
//! literals for `rustc` to fold. Memory read ports cannot be lowered (their
//! semantics live in the engine's conservative-address machinery), so each
//! level that contains read ports gets a numbered *segment callback*: the
//! kernel calls back into the engine, which resolves those ports exactly
//! and patches the planes before the next level function runs.
//!
//! Settles are activity-gated at *plane-word* granularity: the caller
//! passes a dirty bitmap `dw` with one bit per plane word (bit `w` set ⟺
//! some net in word `w` changed since the last kernel settle). Each chunk
//! is guarded by a codegen-time mask of the plane words it loads — if none
//! are dirty its inputs are unchanged, its outputs still hold the previous
//! (identical) result, and the chunk returns immediately. Chunks that do
//! run compare every stored word against its prior contents and mark the
//! changed ones dirty, so activity propagates level by level exactly as in
//! the event-driven engine, but 64 nets at a time.

use symsim_netlist::{CellKind, CombNode, Netlist};

/// Identifies one memory read port inside a segment callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReadRef {
    /// Memory index (`MemoryId.0`).
    pub mem: u32,
    /// Read-port index within the memory.
    pub port: u32,
}

/// The level/segment schedule shared by codegen and the engine: both sides
/// derive it from the same netlist, so the segment indices the kernel
/// passes to the callback agree with the engine's port lists by
/// construction.
#[derive(Debug)]
pub struct Plan {
    /// Plane words per array: `ceil(net_count / 64)`.
    pub words: usize,
    /// `segments[s]` = read ports the engine must resolve when the kernel
    /// issues callback `s`. Ordered by level, then netlist port order.
    pub segments: Vec<Vec<MemReadRef>>,
    /// Comb levels, highest used level + 1.
    pub levels: usize,
    /// Net id → plane bit position (a permutation of `0..net_count`): gate
    /// outputs first, in (level, emission-chunk) order, then every other
    /// net in id order. See the module docs for why.
    pub net_pos: Vec<u32>,
    /// Per level: gate ids (indices into `netlist.gates()`).
    gate_levels: Vec<Vec<usize>>,
    /// Per level: the segment index fired at that level, if any.
    segment_at_level: Vec<Option<usize>>,
}

/// Plane word index of plane bit position `p`.
#[inline]
pub const fn plane_word(p: u32) -> usize {
    (p >> 6) as usize
}

/// Bit index of plane bit position `p` within its plane word.
#[inline]
pub const fn plane_bit(p: u32) -> u32 {
    p & 63
}

/// Length of the dirty-word bitmap for `words` plane words: one bit per
/// plane word.
#[inline]
pub const fn dirty_words(words: usize) -> usize {
    words.div_ceil(64)
}

/// Builds the level/segment schedule. Fails on cyclic netlists.
pub fn plan(netlist: &Netlist) -> Result<Plan, String> {
    let levels = netlist
        .comb_levels()
        .map_err(|e| format!("netlist not compilable: {e}"))?;
    let nodes = netlist.comb_nodes();
    let depth = levels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
    let mut gate_levels: Vec<Vec<usize>> = vec![Vec::new(); depth];
    let mut mem_levels: Vec<Vec<MemReadRef>> = vec![Vec::new(); depth];
    for (idx, node) in nodes.iter().enumerate() {
        let l = levels[idx] as usize;
        match *node {
            CombNode::Gate(g) => gate_levels[l].push(g.0 as usize),
            CombNode::MemRead { mem, port } => mem_levels[l].push(MemReadRef {
                mem: mem.0,
                port: port as u32,
            }),
        }
    }
    let mut segments = Vec::new();
    let mut segment_at_level = vec![None; depth];
    for (l, ports) in mem_levels.into_iter().enumerate() {
        if !ports.is_empty() {
            segment_at_level[l] = Some(segments.len());
            segments.push(ports);
        }
    }
    // plane layout: chunk outputs consecutive, everything else in id order
    // (bus-contiguous by RTL-builder construction)
    let mut net_pos = vec![u32::MAX; netlist.net_count()];
    let mut next = 0u32;
    for level in &gate_levels {
        for &g in level {
            net_pos[netlist.gates()[g].output.0 as usize] = next;
            next += 1;
        }
    }
    for pos in &mut net_pos {
        if *pos == u32::MAX {
            *pos = next;
            next += 1;
        }
    }
    Ok(Plan {
        words: netlist.net_count().div_ceil(64),
        segments,
        levels: depth,
        net_pos,
        gate_levels,
        segment_at_level,
    })
}

/// Magic word leading `SYMSIM_KERNEL_META` ("SYMKERN2"). The digit is the
/// ABI revision: rev 2 added the dirty-word bitmap parameter, and bumping
/// the magic makes kernels built for the old ABI fail META validation
/// instead of being called with the wrong signature.
pub const KERNEL_MAGIC: u64 = 0x5359_4d4b_4552_4e32;

/// Largest number of gates lowered into one function. Two forces push it
/// down: `rustc`'s per-function passes stay fast, and — more importantly —
/// the activity-gating guard only skips a chunk when *none* of its input
/// plane words are dirty, so smaller chunks have far tighter input masks
/// and skip far more often. With the plane layout packing each chunk's
/// outputs into consecutive bits, 32 gates means a chunk stores to at most
/// two plane words, and its input mask names producer chunks, not
/// arbitrary nets. 32 measured best on the evaluation CPUs.
const CHUNK: usize = 32;

/// What a gate operand lowers to: a `0`/`1` literal (folded constant) or a
/// named 0-or-1 local.
#[derive(Clone)]
enum Op {
    Lit(bool),
    Var(String),
}

impl Op {
    fn expr(&self) -> String {
        match self {
            Op::Lit(false) => "0".into(),
            Op::Lit(true) => "1".into(),
            Op::Var(v) => v.clone(),
        }
    }
}

/// Statistics the build log reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerStats {
    /// Gates emitted as native word ops.
    pub gates_emitted: usize,
    /// Gates fully folded to constant bits at codegen time.
    pub gates_folded: usize,
}

/// Emits the complete kernel source for `netlist` under `plan`.
pub fn emit(netlist: &Netlist, plan: &Plan, design_hash: u64) -> (String, LowerStats) {
    let words = plan.words;
    let mut stats = LowerStats::default();

    // constant lattice: Some(bit) once a net is known at codegen time
    let mut konst: Vec<Option<bool>> = vec![None; netlist.net_count()];
    for level in &plan.gate_levels {
        for &g in level {
            let gate = &netlist.gates()[g];
            let ins: Vec<Option<bool>> = gate
                .inputs
                .iter()
                .map(|pin| konst[pin.0 as usize])
                .collect();
            konst[gate.output.0 as usize] = fold(gate.kind, &ins);
        }
    }

    let mut src = String::with_capacity(1 << 16);
    src.push_str(&format!(
        "// generated by symsim-compile; do not edit\n\
         #![no_std]\n\
         #![allow(unused_parens, unused_variables, unused_mut, clippy::all)]\n\
         \n\
         #[panic_handler]\n\
         fn panic(_: &core::panic::PanicInfo) -> ! {{\n    loop {{}}\n}}\n\
         \n\
         /// [magic, design_hash, plane_words, segment_count]\n\
         #[no_mangle]\n\
         pub static SYMSIM_KERNEL_META: [u64; 4] = [{KERNEL_MAGIC:#x}, {design_hash:#x}, {words}, {segs}];\n\n",
        segs = plan.segments.len(),
    ));

    let mut fn_names: Vec<Vec<String>> = vec![Vec::new(); plan.levels];
    for (l, gates) in plan.gate_levels.iter().enumerate() {
        for (c, chunk) in gates.chunks(CHUNK).enumerate() {
            let name = format!("l{l}_{c}");
            emit_chunk(
                &mut src,
                &name,
                netlist,
                chunk,
                &konst,
                &plan.net_pos,
                words,
                &mut stats,
            );
            fn_names[l].push(name);
        }
    }

    // entry point: levels in ascending order, segment callbacks interleaved
    src.push_str(
        "/// Settles the whole netlist once. `dw` is the dirty-word bitmap\n\
         /// (one bit per plane word), seeded by the caller with the words\n\
         /// that changed since the last settle; the kernel adds the words it\n\
         /// changes. `cb(ctx, seg)` must resolve the memory read ports of\n\
         /// segment `seg`, patch the planes in place, and mark the plane\n\
         /// words it changes in `dw`.\n\
         #[no_mangle]\n\
         pub unsafe extern \"C\" fn symsim_settle(\n\
         \x20   pv: *mut u64,\n\
         \x20   pu: *mut u64,\n\
         \x20   dw: *mut u64,\n\
         \x20   ctx: *mut core::ffi::c_void,\n\
         \x20   cb: unsafe extern \"C\" fn(*mut core::ffi::c_void, u32),\n\
         ) {\n",
    );
    for (l, names) in fn_names.iter().enumerate() {
        for name in names {
            src.push_str(&format!("    {name}(pv, pu, dw);\n"));
        }
        if let Some(seg) = plan.segment_at_level[l] {
            src.push_str(&format!("    cb(ctx, {seg});\n"));
        }
    }
    src.push_str("}\n");
    (src, stats)
}

/// Codegen-time constant evaluation over fully-known inputs.
fn fold(kind: CellKind, ins: &[Option<bool>]) -> Option<bool> {
    let all = || -> Option<Vec<bool>> { ins.iter().copied().collect() };
    match kind {
        CellKind::Const0 => Some(false),
        CellKind::Const1 => Some(true),
        CellKind::Buf => ins[0],
        CellKind::Not => ins[0].map(|a| !a),
        CellKind::And2 => all().map(|v| v[0] & v[1]),
        CellKind::Or2 => all().map(|v| v[0] | v[1]),
        CellKind::Nand2 => all().map(|v| !(v[0] & v[1])),
        CellKind::Nor2 => all().map(|v| !(v[0] | v[1])),
        CellKind::Xor2 => all().map(|v| v[0] ^ v[1]),
        CellKind::Xnor2 => all().map(|v| !(v[0] ^ v[1])),
        // mux folds when sel and the selected input are known
        CellKind::Mux2 => match ins[0] {
            Some(false) => ins[1],
            Some(true) => ins[2],
            None => match (ins[1], ins[2]) {
                // sel unknown but both inputs agree
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
        },
    }
}

/// One level chunk: load sources, compute gates, store outputs per word.
#[allow(clippy::too_many_arguments)]
fn emit_chunk(
    src: &mut String,
    name: &str,
    netlist: &Netlist,
    gates: &[usize],
    konst: &[Option<bool>],
    net_pos: &[u32],
    words: usize,
    stats: &mut LowerStats,
) {
    use std::collections::HashMap;
    use std::fmt::Write;

    let mut loads = String::new();
    let mut body = String::new();
    let mut loaded: HashMap<u32, (Op, Op)> = HashMap::new();
    // (word, bit, val op, unk op) for the store pass
    let mut outs: Vec<(usize, u32, Op, Op)> = Vec::with_capacity(gates.len());

    let mut fetch = |net: u32, loads: &mut String| -> (Op, Op) {
        if let Some(b) = konst[net as usize] {
            return (Op::Lit(b), Op::Lit(false));
        }
        loaded
            .entry(net)
            .or_insert_with(|| {
                let p = net_pos[net as usize];
                let (w, b) = (plane_word(p), plane_bit(p));
                let _ = writeln!(
                    loads,
                    "    let n{net}_v = (pv[{w}] >> {b}) & 1;\n    let n{net}_u = (pu[{w}] >> {b}) & 1;",
                );
                (Op::Var(format!("n{net}_v")), Op::Var(format!("n{net}_u")))
            })
            .clone()
    };

    for &g in gates {
        let gate = &netlist.gates()[g];
        let out = gate.output.0;
        let p = net_pos[out as usize];
        let (w, b) = (plane_word(p), plane_bit(p));
        if let Some(k) = konst[out as usize] {
            stats.gates_folded += 1;
            outs.push((w, b, Op::Lit(k), Op::Lit(false)));
            continue;
        }
        stats.gates_emitted += 1;
        let ins: Vec<(Op, Op)> = gate
            .inputs
            .iter()
            .map(|pin| fetch(pin.0, &mut loads))
            .collect();
        let (ov, ou) = emit_gate(&mut body, g, gate.kind, &ins);
        outs.push((w, b, ov, ou));
    }

    // skip guard: if none of the plane words this chunk loads are dirty,
    // its inputs are byte-identical to the last settle and the outputs it
    // would store are already in the planes. All-constant chunks get no
    // guard (nothing to read; their stores are idempotent and must land at
    // least once).
    let dwords = dirty_words(words);
    let mut in_mask = vec![0u64; dwords];
    for &net in loaded.keys() {
        let w = plane_word(net_pos[net as usize]);
        in_mask[w >> 6] |= 1u64 << (w & 63);
    }
    let mut guard = String::new();
    let terms: Vec<String> = in_mask
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m != 0)
        .map(|(i, &m)| format!("(dw[{i}] & {m:#x})"))
        .collect();
    if !terms.is_empty() {
        let _ = writeln!(
            guard,
            "    if ({}) == 0 {{\n        return;\n    }}",
            terms.join(" | ")
        );
    }

    let mut store = String::new();
    outs.sort_by_key(|&(w, b, _, _)| (w, b));
    let mut i = 0;
    while i < outs.len() {
        let w = outs[i].0;
        let mut clear = 0u64;
        let (mut lit_v, mut lit_u) = (0u64, 0u64);
        let (mut terms_v, mut terms_u) = (String::new(), String::new());
        while i < outs.len() && outs[i].0 == w {
            let (_, b, ref ov, ref ou) = outs[i];
            clear |= 1u64 << b;
            match ov {
                Op::Lit(true) => lit_v |= 1u64 << b,
                Op::Lit(false) => {}
                Op::Var(v) => {
                    let _ = write!(terms_v, " | ({v} << {b})");
                }
            }
            match ou {
                Op::Lit(true) => lit_u |= 1u64 << b,
                Op::Lit(false) => {}
                Op::Var(u) => {
                    let _ = write!(terms_u, " | ({u} << {b})");
                }
            }
            i += 1;
        }
        // snapshot, store, then mark the word dirty if anything changed so
        // downstream chunks see the activity
        let _ = writeln!(
            store,
            "    let o{w}_v = pv[{w}];\n    let o{w}_u = pu[{w}];"
        );
        let _ = writeln!(
            store,
            "    pv[{w}] = (pv[{w}] & !{clear:#x}u64) | {lit_v:#x}{terms_v};"
        );
        let _ = writeln!(
            store,
            "    pu[{w}] = (pu[{w}] & !{clear:#x}u64) | {lit_u:#x}{terms_u};"
        );
        let _ = writeln!(
            store,
            "    if ((pv[{w}] ^ o{w}_v) | (pu[{w}] ^ o{w}_u)) != 0 {{\n        dw[{dwi}] |= {bit:#x}u64;\n    }}",
            dwi = w >> 6,
            bit = 1u64 << (w & 63),
        );
    }

    let _ = write!(
        src,
        "unsafe fn {name}(pv: *mut u64, pu: *mut u64, dw: *mut u64) {{\n\
         \x20   let pv = core::slice::from_raw_parts_mut(pv, {words});\n\
         \x20   let pu = core::slice::from_raw_parts_mut(pu, {words});\n\
         \x20   let dw = core::slice::from_raw_parts_mut(dw, {dwords});\n\
         {guard}{loads}{body}{store}}}\n\n",
    );
}

/// Emits the two-plane formula for one gate; returns the output operands.
///
/// All operands are `u64` values that are provably 0 or 1; `^ 1` is
/// logical NOT. The formulas mirror `symsim_logic::plane` bit for bit.
fn emit_gate(body: &mut String, g: usize, kind: CellKind, ins: &[(Op, Op)]) -> (Op, Op) {
    use std::fmt::Write;
    let var = |s: String| Op::Var(s);
    match kind {
        CellKind::Const0 | CellKind::Const1 => unreachable!("consts always fold"),
        CellKind::Buf => ins[0].clone(),
        CellKind::Not => {
            let (av, au) = (ins[0].0.expr(), ins[0].1.expr());
            let _ = writeln!(body, "    let g{g}_v = ({av} ^ 1) & ({au} ^ 1);");
            (var(format!("g{g}_v")), ins[0].1.clone())
        }
        CellKind::And2 | CellKind::Nand2 => {
            let (av, au) = (ins[0].0.expr(), ins[0].1.expr());
            let (bv, bu) = (ins[1].0.expr(), ins[1].1.expr());
            let _ = writeln!(body, "    let g{g}_v = {av} & {bv};");
            let _ = writeln!(
                body,
                "    let g{g}_u = ({au} | {bu}) & ({av} | {au}) & ({bv} | {bu});"
            );
            invert_if(body, g, kind == CellKind::Nand2)
        }
        CellKind::Or2 | CellKind::Nor2 => {
            let (av, au) = (ins[0].0.expr(), ins[0].1.expr());
            let (bv, bu) = (ins[1].0.expr(), ins[1].1.expr());
            let _ = writeln!(body, "    let g{g}_v = {av} | {bv};");
            let _ = writeln!(
                body,
                "    let g{g}_u = ({au} | {bu}) & (({av} | {bv}) ^ 1);"
            );
            invert_if(body, g, kind == CellKind::Nor2)
        }
        CellKind::Xor2 | CellKind::Xnor2 => {
            let (av, au) = (ins[0].0.expr(), ins[0].1.expr());
            let (bv, bu) = (ins[1].0.expr(), ins[1].1.expr());
            let _ = writeln!(body, "    let g{g}_u = {au} | {bu};");
            let _ = writeln!(body, "    let g{g}_v = ({av} ^ {bv}) & (g{g}_u ^ 1);");
            invert_if(body, g, kind == CellKind::Xnor2)
        }
        CellKind::Mux2 => {
            let (sv, su) = (ins[0].0.expr(), ins[0].1.expr());
            let (av, au) = (ins[1].0.expr(), ins[1].1.expr());
            let (bv, bu) = (ins[2].0.expr(), ins[2].1.expr());
            let _ = writeln!(body, "    let g{g}_ks = {su} ^ 1;");
            let _ = writeln!(
                body,
                "    let g{g}_ag = ({au} ^ 1) & ({bu} ^ 1) & (({av} ^ {bv}) ^ 1);"
            );
            let _ = writeln!(body, "    let g{g}_pa = g{g}_ks & ({sv} ^ 1);");
            let _ = writeln!(body, "    let g{g}_pb = g{g}_ks & {sv};");
            let _ = writeln!(
                body,
                "    let g{g}_v = (g{g}_pa & {av}) | (g{g}_pb & {bv}) | ({su} & g{g}_ag & {av});"
            );
            let _ = writeln!(
                body,
                "    let g{g}_u = (g{g}_pa & {au}) | (g{g}_pb & {bu}) | ({su} & (g{g}_ag ^ 1));"
            );
            (var(format!("g{g}_v")), var(format!("g{g}_u")))
        }
    }
}

/// Wraps a just-emitted `(g{g}_v, g{g}_u)` pair in a NOT when `invert`.
fn invert_if(body: &mut String, g: usize, invert: bool) -> (Op, Op) {
    use std::fmt::Write;
    if invert {
        let _ = writeln!(body, "    let g{g}_nv = (g{g}_v ^ 1) & (g{g}_u ^ 1);");
        (Op::Var(format!("g{g}_nv")), Op::Var(format!("g{g}_u")))
    } else {
        (Op::Var(format!("g{g}_v")), Op::Var(format!("g{g}_u")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_netlist::{CellKind, Netlist};

    fn sample() -> Netlist {
        let mut n = Netlist::new("sample");
        let a = n.add_net("a");
        let b = n.add_net("b");
        let one = n.add_net("one");
        let x = n.add_net("x");
        let y = n.add_net("y");
        n.add_input(a);
        n.add_input(b);
        n.add_gate(CellKind::Const1, &[], one);
        n.add_gate(CellKind::And2, &[a, one], x); // folds to buf(a)
        n.add_gate(CellKind::Xor2, &[x, b], y);
        n
    }

    #[test]
    fn plan_shapes_levels_and_words() {
        let n = sample();
        let p = plan(&n).unwrap();
        assert_eq!(p.words, 1);
        assert_eq!(p.levels, 3);
        assert!(p.segments.is_empty());
        // layout: gate outputs (one, x, y) in level order, then inputs
        // (a, b) in id order — and it is a permutation
        assert_eq!(p.net_pos, vec![3, 4, 0, 1, 2]);
        let mut seen = p.net_pos.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..n.net_count() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn emit_folds_constants_and_names_the_abi() {
        let n = sample();
        let p = plan(&n).unwrap();
        let (src, stats) = emit(&n, &p, 0xdead_beef);
        assert!(src.contains("SYMSIM_KERNEL_META"));
        assert!(src.contains("pub unsafe extern \"C\" fn symsim_settle"));
        assert!(src.contains("0xdeadbeef"));
        assert_eq!(stats.gates_folded, 1, "Const1 folds");
        assert_eq!(stats.gates_emitted, 2);
        // the folded constant lands in a literal store mask, not a compute
        assert!(!src.contains("Const"));
        // chunks with loads are guarded on the dirty bitmap and mark the
        // words they change
        assert!(src.contains("(dw[0] & "), "skip guard present");
        assert!(src.contains("dw[0] |= "), "change marking present");
    }

    #[test]
    fn memread_levels_become_segments() {
        let mut n = Netlist::new("m");
        let a = n.add_net("a");
        let d = n.add_net("d");
        let y = n.add_net("y");
        n.add_input(a);
        let m = n.add_memory("ram", 4, 1);
        n.add_read_port(m, vec![a], vec![d]);
        n.add_gate(CellKind::Not, &[d], y);
        let p = plan(&n).unwrap();
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.segments[0], vec![MemReadRef { mem: 0, port: 0 }]);
        let (src, _) = emit(&n, &p, 1);
        assert!(src.contains("cb(ctx, 0);"));
    }
}
