//! The kernel cache and the `rustc` build step.
//!
//! Built dylibs live under one directory, keyed by design content hash
//! (see `hash`): `kernel-<hash>.so` next to the `kernel-<hash>.rs` it was
//! built from (kept for debugging). A cache hit skips codegen and `rustc`
//! entirely — the dominant cost — so repeat runs of the same design pay
//! only the dlopen. Writes go through a pid-suffixed temp file and a
//! rename, so concurrent builders of the same design race benignly.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Mutex, OnceLock};

/// The `rustc` to invoke: `$SYMSIM_RUSTC` when set (tests point it at a
/// bogus path to exercise the fallback), else `rustc` from `$PATH`.
pub fn rustc_binary() -> String {
    std::env::var("SYMSIM_RUSTC").unwrap_or_else(|_| "rustc".into())
}

/// The kernel cache directory: `$SYMSIM_KERNEL_CACHE` when set, else
/// `<tmp>/symsim-kernel-cache`.
pub fn cache_dir() -> PathBuf {
    match std::env::var_os("SYMSIM_KERNEL_CACHE") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => std::env::temp_dir().join("symsim-kernel-cache"),
    }
}

static VERSION_MEMO: OnceLock<Mutex<HashMap<String, Result<String, String>>>> = OnceLock::new();

/// `rustc --version` of the configured toolchain, memoized per process;
/// `Err` means there is no usable toolchain and the caller must fall back
/// to the interpreter.
///
/// The probe spawns a subprocess (usually through a rustup shim) and costs
/// tens of milliseconds — more than an entire cache-hit prepare — so each
/// distinct `rustc` is probed once per process and every later prepare
/// pays only the dlopen.
pub fn rustc_version(rustc: &str) -> Result<String, String> {
    let memo = VERSION_MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(r) = memo.lock().unwrap().get(rustc) {
        return r.clone();
    }
    let r = probe_rustc_version(rustc);
    memo.lock().unwrap().insert(rustc.to_string(), r.clone());
    r
}

fn probe_rustc_version(rustc: &str) -> Result<String, String> {
    let out = Command::new(rustc)
        .arg("--version")
        .output()
        .map_err(|e| format!("cannot run {rustc}: {e}"))?;
    if !out.status.success() {
        return Err(format!("{rustc} --version failed ({})", out.status));
    }
    Ok(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

/// Dylib path for a design hash inside `dir`.
pub fn dylib_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("kernel-{hash:016x}.so"))
}

/// Compiles `source` to `dylib` with the configured `rustc`.
///
/// The generated crate is `no_std` + `panic = abort`, so the build needs
/// nothing beyond libcore and links in well under a second of non-rustc
/// overhead; optimization level 2 is where the straight-line settle code
/// gets its store-to-load forwarding and mask combining.
pub fn build(rustc: &str, dir: &Path, hash: u64, source: &str) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let src_path = dir.join(format!("kernel-{hash:016x}.rs"));
    std::fs::write(&src_path, source)
        .map_err(|e| format!("cannot write {}: {e}", src_path.display()))?;
    let out_path = dylib_path(dir, hash);
    let tmp_path = dir.join(format!("kernel-{hash:016x}.so.tmp{}", std::process::id()));
    let out = Command::new(rustc)
        .args([
            "--edition",
            "2021",
            "--crate-type",
            "cdylib",
            "--crate-name",
            "symsim_kernel",
            "-C",
            "opt-level=2",
            "-C",
            "panic=abort",
            "-C",
            "debuginfo=0",
            "-o",
        ])
        .arg(&tmp_path)
        .arg(&src_path)
        .output()
        .map_err(|e| format!("cannot run {rustc}: {e}"))?;
    if !out.status.success() {
        let _ = std::fs::remove_file(&tmp_path);
        let stderr = String::from_utf8_lossy(&out.stderr);
        let head: String = stderr.lines().take(12).collect::<Vec<_>>().join("\n");
        return Err(format!(
            "{rustc} failed on {} ({}):\n{head}",
            src_path.display(),
            out.status
        ));
    }
    std::fs::rename(&tmp_path, &out_path)
        .map_err(|e| format!("cannot move kernel into cache: {e}"))?;
    Ok(out_path)
}
