//! Loading a built kernel dylib.
//!
//! This is the one place in the workspace that talks to the dynamic
//! linker. The libc entry points are declared by hand (the build
//! environment is offline, so no `libloading`); handles are deliberately
//! never closed — a kernel stays mapped for the life of the process, which
//! is exactly the lifetime of the `Arc<CompiledKernel>` the workers share,
//! and closing would invalidate function pointers other threads may still
//! hold.

use std::ffi::CString;
use std::os::raw::{c_char, c_int, c_void};
use std::path::Path;

use crate::codegen::KERNEL_MAGIC;

#[cfg(unix)]
extern "C" {
    fn dlopen(filename: *const c_char, flag: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlerror() -> *mut c_char;
}

#[cfg(unix)]
const RTLD_NOW: c_int = 2;

/// ABI of the generated entry point: val plane, unk plane, dirty-word
/// bitmap, callback context, segment callback.
pub type SettleFn = unsafe extern "C" fn(
    *mut u64,
    *mut u64,
    *mut u64,
    *mut c_void,
    unsafe extern "C" fn(*mut c_void, u32),
);

/// A loaded, validated kernel dylib.
#[derive(Debug)]
pub struct LoadedKernel {
    /// The `symsim_settle` entry point.
    pub settle: SettleFn,
    /// Segment callbacks the kernel fires per settle.
    pub segments: usize,
}

// The handle is never exposed and the function pointer targets immutable
// mapped code; calling it from any thread is safe by the generated code's
// construction (it only touches the buffers passed in).
unsafe impl Send for LoadedKernel {}
unsafe impl Sync for LoadedKernel {}

#[cfg(unix)]
fn last_dl_error() -> String {
    // Safety: dlerror returns a thread-local NUL-terminated string or null.
    unsafe {
        let msg = dlerror();
        if msg.is_null() {
            "unknown dlopen error".into()
        } else {
            std::ffi::CStr::from_ptr(msg).to_string_lossy().into_owned()
        }
    }
}

/// Opens `path`, resolves the ABI symbols, and validates the embedded
/// metadata against the expected design hash.
#[cfg(unix)]
pub fn load(path: &Path, expect_hash: u64, expect_words: usize) -> Result<LoadedKernel, String> {
    let cpath = CString::new(path.as_os_str().as_encoded_bytes())
        .map_err(|_| "kernel path contains a NUL byte".to_string())?;
    // Safety: dlopen/dlsym with valid NUL-terminated strings; the returned
    // pointers are checked before use.
    unsafe {
        let handle = dlopen(cpath.as_ptr(), RTLD_NOW);
        if handle.is_null() {
            return Err(format!("dlopen({}): {}", path.display(), last_dl_error()));
        }
        let meta_sym = CString::new("SYMSIM_KERNEL_META").unwrap();
        let meta = dlsym(handle, meta_sym.as_ptr());
        if meta.is_null() {
            return Err(format!(
                "{}: missing SYMSIM_KERNEL_META: {}",
                path.display(),
                last_dl_error()
            ));
        }
        let meta = *(meta as *const [u64; 4]);
        if meta[0] != KERNEL_MAGIC {
            return Err(format!(
                "{}: bad kernel magic {:#x}",
                path.display(),
                meta[0]
            ));
        }
        if meta[1] != expect_hash {
            return Err(format!(
                "{}: design hash mismatch (kernel {:#x}, expected {expect_hash:#x})",
                path.display(),
                meta[1]
            ));
        }
        if meta[2] as usize != expect_words {
            return Err(format!(
                "{}: plane width mismatch (kernel {} words, expected {expect_words})",
                path.display(),
                meta[2]
            ));
        }
        let entry_sym = CString::new("symsim_settle").unwrap();
        let entry = dlsym(handle, entry_sym.as_ptr());
        if entry.is_null() {
            return Err(format!(
                "{}: missing symsim_settle: {}",
                path.display(),
                last_dl_error()
            ));
        }
        Ok(LoadedKernel {
            settle: std::mem::transmute::<*mut c_void, SettleFn>(entry),
            segments: meta[3] as usize,
        })
    }
}

/// Non-unix hosts have no dlopen; the engine falls back to the interpreter.
#[cfg(not(unix))]
pub fn load(_path: &Path, _expect_hash: u64, _expect_words: usize) -> Result<LoadedKernel, String> {
    Err("compiled kernels require a unix host (dlopen)".into())
}
