//! The [`Cpu`] package: a processor netlist plus the design-specific facts
//! the design-agnostic co-analysis needs, and testbench preparation helpers
//! (program load, data-memory image, symbolic input injection).

use symsim_logic::{Value, Word};
use symsim_netlist::{Bus, NetId, Netlist, RtlBuilder};
use symsim_sim::{MonitorSpec, Simulator};

use symsim_core::DesignInterface;

/// A data-memory image for a benchmark: concrete constants (lookup tables,
/// keys) plus the addresses holding *application inputs*, which the symbolic
/// testbench replaces with `X`s (paper Listing 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataImage {
    /// `(address, value)` words loaded as concrete data.
    pub concrete: Vec<(usize, u64)>,
    /// Addresses of input words (driven to all-`X` for co-analysis).
    pub inputs: Vec<usize>,
}

/// A benchmark program: source, data image, one concrete input example for
/// validation, and a cycle budget.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Table 1 name (`div`, `insort`, ...).
    pub name: &'static str,
    /// Assembly source for this CPU's ISA.
    pub source: &'static str,
    /// Data image with symbolic input addresses.
    pub data: DataImage,
    /// Concrete values for the symbolic inputs, for validation runs
    /// (same order as `data.inputs`).
    pub example_inputs: Vec<u64>,
    /// Per-path cycle budget for co-analysis.
    pub max_cycles: u64,
}

/// A processor netlist bundled with its co-analysis interface.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Design name (`omsp16`, `bm32`, `dr5`).
    pub name: &'static str,
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// PC register output bits, LSB first.
    pub pc: Vec<NetId>,
    /// `is_branch` decode qualifier for `$monitor_x`.
    pub monitor_qualifier: NetId,
    /// Control-flow signals watched for `X` (NZCV flags on omsp16, the
    /// comparator outputs on bm32/dr5).
    pub monitor_signals: Vec<NetId>,
    /// The signals the CSM forces to steer spawned paths; `None` means the
    /// monitored signals themselves.
    pub split_signals: Option<Vec<NetId>>,
    /// Asserted when the application executes `halt`.
    pub finish: NetId,
    /// Index of the program memory.
    pub pmem: usize,
    /// Index of the data memory.
    pub dmem: usize,
    /// Data word width in bits.
    pub data_width: usize,
    /// Register-file `q` nets, `reg_nets[r]` = bits of register `r`
    /// (LSB first); used by tests and the golden-model comparison.
    pub reg_nets: Vec<Vec<NetId>>,
}

impl Cpu {
    /// The design-agnostic co-analysis interface.
    pub fn interface(&self) -> DesignInterface {
        DesignInterface {
            pc: self.pc.clone(),
            monitor: MonitorSpec {
                qualifier: Some(self.monitor_qualifier),
                signals: self.monitor_signals.clone(),
            },
            split_signals: self.split_signals.clone(),
            finish: self.finish,
        }
    }

    /// Loads an assembled program image into program memory.
    pub fn load_program(&self, sim: &mut Simulator<'_>, program: &[u32]) {
        for (i, &w) in program.iter().enumerate() {
            sim.write_mem_word(self.pmem, i, &Word::from_u64(w as u64, 32));
        }
        // unreachable program words read as NOPs (opcode 0), keeping fetch
        // of out-of-image addresses deterministic
        let depth = self.netlist.memories()[self.pmem].depth;
        for i in program.len()..depth {
            sim.write_mem_word(self.pmem, i, &Word::from_u64(0, 32));
        }
    }

    /// Prepares a simulator for symbolic co-analysis: program loaded, data
    /// memory zeroed, concrete data applied, and input words driven to `X`.
    pub fn prepare_symbolic(&self, sim: &mut Simulator<'_>, program: &[u32], data: &DataImage) {
        self.load_program(sim, program);
        let depth = self.netlist.memories()[self.dmem].depth;
        for a in 0..depth {
            sim.write_mem_word(self.dmem, a, &Word::from_u64(0, self.data_width));
        }
        for &(a, v) in &data.concrete {
            sim.write_mem_word(self.dmem, a, &Word::from_u64(v, self.data_width));
        }
        for &a in &data.inputs {
            sim.write_mem_word(self.dmem, a, &Word::xs(self.data_width));
        }
    }

    /// Like [`Cpu::prepare_symbolic`], but input words receive *tagged*
    /// symbols with distinct identities (paper Fig. 4 left) instead of
    /// anonymous `X`s. Pair with
    /// [`symsim_logic::PropagationPolicy::Tagged`] in the simulator config.
    pub fn prepare_symbolic_tagged(
        &self,
        sim: &mut Simulator<'_>,
        program: &[u32],
        data: &DataImage,
    ) {
        self.prepare_symbolic(sim, program, data);
        let mut next_id = 0u32;
        for &a in &data.inputs {
            sim.write_mem_word(self.dmem, a, &Word::symbols(next_id, self.data_width));
            next_id += self.data_width as u32;
        }
    }

    /// Prepares a simulator for a concrete (validation) run: like
    /// [`Cpu::prepare_symbolic`] but input words take the given values and
    /// the register file is cleared to zero so runs are deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from `data.inputs.len()`.
    pub fn prepare_concrete(
        &self,
        sim: &mut Simulator<'_>,
        program: &[u32],
        data: &DataImage,
        inputs: &[u64],
    ) {
        assert_eq!(inputs.len(), data.inputs.len(), "input count mismatch");
        self.prepare_symbolic(sim, program, data);
        for (&a, &v) in data.inputs.iter().zip(inputs) {
            sim.write_mem_word(self.dmem, a, &Word::from_u64(v, self.data_width));
        }
        for reg in &self.reg_nets {
            for &bit in reg {
                sim.poke(bit, Value::ZERO);
            }
        }
        sim.settle();
    }

    /// Reads the current value of architectural register `r`.
    pub fn read_reg(&self, sim: &Simulator<'_>, r: usize) -> Word {
        sim.read_bus(&self.reg_nets[r])
    }

    /// Reads data-memory word `addr`.
    pub fn read_data(&self, sim: &Simulator<'_>, addr: usize) -> Word {
        sim.read_mem_word(self.dmem, addr)
    }
}

// ---- shared datapath construction helpers ----

/// A `2^sel.width()`-way word multiplexer tree; `items[i]` is selected when
/// `sel == i`. Missing items select the last provided item.
pub(crate) fn mux_tree(b: &mut RtlBuilder, sel: &Bus, items: &[Bus]) -> Bus {
    assert!(!items.is_empty());
    let want = 1usize << sel.width();
    let mut layer: Vec<Bus> = (0..want)
        .map(|i| items[i.min(items.len() - 1)].clone())
        .collect();
    for bit in 0..sel.width() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                b.mux(sel.bit(bit), &pair[0], &pair[1])
            } else {
                pair[0].clone()
            });
        }
        layer = next;
        let _ = bit;
    }
    layer.remove(0)
}

/// Priority word select: starts from `default`, each `(cond, value)` arm in
/// turn overrides it when its condition is 1 (conditions are one-hot in the
/// decoders, so order is immaterial).
pub(crate) fn select(b: &mut RtlBuilder, default: &Bus, arms: &[(NetId, Bus)]) -> Bus {
    let mut out = default.clone();
    for (cond, value) in arms {
        out = b.mux(*cond, &out, value);
    }
    out
}

/// One-bit priority select.
pub(crate) fn select1(b: &mut RtlBuilder, default: NetId, arms: &[(NetId, NetId)]) -> NetId {
    let mut out = default;
    for &(cond, value) in arms {
        out = b.mux1(cond, out, value);
    }
    out
}

/// OR of a list of one-bit signals.
pub(crate) fn any(b: &mut RtlBuilder, signals: &[NetId]) -> NetId {
    assert!(!signals.is_empty());
    let bus = Bus::from_nets(signals.to_vec());
    b.or_reduce(&bus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symsim_sim::SimConfig;

    #[test]
    fn mux_tree_selects_by_index() {
        let mut b = RtlBuilder::new("mt");
        let sel = b.input("sel", 2);
        let items: Vec<Bus> = (0..4).map(|i| b.const_word(10 + i, 8)).collect();
        let out = mux_tree(&mut b, &sel, &items);
        b.output("out", &out);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        let map = nl.net_name_map();
        for i in 0..4u64 {
            sim.poke_bus(&[map["sel[0]"], map["sel[1]"]], &Word::from_u64(i, 2));
            sim.settle();
            assert_eq!(
                sim.read_bus_by_name("out", 8).unwrap().to_u64(),
                Some(10 + i)
            );
        }
    }

    #[test]
    fn select_priority() {
        let mut b = RtlBuilder::new("sel");
        let c = b.input("c", 2);
        let d0 = b.const_word(1, 4);
        let d1 = b.const_word(2, 4);
        let dd = b.const_word(9, 4);
        let out = select(&mut b, &dd, &[(c.bit(0), d0), (c.bit(1), d1)]);
        b.output("o", &out);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl, SimConfig::default());
        let map = nl.net_name_map();
        let cases = [(0b00u64, 9u64), (0b01, 1), (0b10, 2)];
        for (sel, want) in cases {
            sim.poke_bus(&[map["c[0]"], map["c[1]"]], &Word::from_u64(sel, 2));
            sim.settle();
            assert_eq!(sim.read_bus_by_name("o", 4).unwrap().to_u64(), Some(want));
        }
    }
}
