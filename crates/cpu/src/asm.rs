//! Shared two-pass assembler infrastructure for the three ISAs.
//!
//! Each processor module defines its mnemonics and encodings; this module
//! provides tokenization, label collection/resolution, and operand parsing
//! with line-accurate errors.

use std::collections::HashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Source line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// One statement after tokenization: mnemonic plus comma-separated operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// 1-based source line.
    pub line: usize,
    /// Lower-cased mnemonic.
    pub op: String,
    /// Raw operand strings (trimmed).
    pub args: Vec<String>,
}

/// First assembler pass: strips comments (`;` or `#`), collects `label:`
/// definitions as instruction indices, and returns the statement list.
///
/// # Errors
///
/// Returns [`AsmError`] on duplicate labels or malformed label syntax.
pub fn first_pass(src: &str) -> Result<(Vec<Stmt>, HashMap<String, u64>), AsmError> {
    let mut stmts = Vec::new();
    let mut labels = HashMap::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let mut line = raw;
        if let Some(p) = line.find(';') {
            line = &line[..p];
        }
        if let Some(p) = line.find('#') {
            line = &line[..p];
        }
        let mut rest = line.trim();
        // labels (possibly several) at line start
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(AsmError::new(line_no, format!("bad label \"{label}\"")));
            }
            if labels
                .insert(label.to_string(), stmts.len() as u64)
                .is_some()
            {
                return Err(AsmError::new(
                    line_no,
                    format!("duplicate label \"{label}\""),
                ));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let (op, args_str) = match rest.find(char::is_whitespace) {
            Some(p) => (&rest[..p], rest[p..].trim()),
            None => (rest, ""),
        };
        let args = if args_str.is_empty() {
            Vec::new()
        } else {
            args_str.split(',').map(|a| a.trim().to_string()).collect()
        };
        stmts.push(Stmt {
            line: line_no,
            op: op.to_ascii_lowercase(),
            args,
        });
    }
    Ok((stmts, labels))
}

/// Parses a register operand with the given prefix (`r`, `x`, or `$`),
/// bounded by `count`.
///
/// # Errors
///
/// Returns [`AsmError`] for syntax errors or out-of-range registers.
pub fn parse_reg(arg: &str, prefix: &str, count: u32, line: usize) -> Result<u32, AsmError> {
    let body = arg
        .strip_prefix(prefix)
        .ok_or_else(|| AsmError::new(line, format!("expected register, got \"{arg}\"")))?;
    let n: u32 = body
        .parse()
        .map_err(|_| AsmError::new(line, format!("bad register \"{arg}\"")))?;
    if n >= count {
        return Err(AsmError::new(line, format!("register {arg} out of range")));
    }
    Ok(n)
}

/// Parses an immediate: decimal (possibly negative), `0x` hex, or a label.
///
/// # Errors
///
/// Returns [`AsmError`] if the operand is neither a number nor a known label.
pub fn parse_imm(arg: &str, labels: &HashMap<String, u64>, line: usize) -> Result<i64, AsmError> {
    if let Some(&v) = labels.get(arg) {
        return Ok(v as i64);
    }
    let (neg, body) = match arg.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, arg),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| AsmError::new(line, format!("bad immediate \"{arg}\"")))?;
    Ok(if neg { -v } else { v })
}

/// Parses a `imm(reg)` memory operand, e.g. `4(r2)`; returns `(imm, reg)`.
///
/// # Errors
///
/// Returns [`AsmError`] on malformed syntax.
pub fn parse_mem(
    arg: &str,
    prefix: &str,
    reg_count: u32,
    labels: &HashMap<String, u64>,
    line: usize,
) -> Result<(i64, u32), AsmError> {
    let open = arg
        .find('(')
        .ok_or_else(|| AsmError::new(line, format!("expected imm(reg), got \"{arg}\"")))?;
    if !arg.ends_with(')') {
        return Err(AsmError::new(
            line,
            format!("expected imm(reg), got \"{arg}\""),
        ));
    }
    let imm_str = arg[..open].trim();
    let imm = if imm_str.is_empty() {
        0
    } else {
        parse_imm(imm_str, labels, line)?
    };
    let reg = parse_reg(arg[open + 1..arg.len() - 1].trim(), prefix, reg_count, line)?;
    Ok((imm, reg))
}

/// Checks operand count.
///
/// # Errors
///
/// Returns [`AsmError`] when the count differs.
pub fn expect_args(stmt: &Stmt, n: usize) -> Result<(), AsmError> {
    if stmt.args.len() != n {
        return Err(AsmError::new(
            stmt.line,
            format!(
                "{} expects {} operands, got {}",
                stmt.op,
                n,
                stmt.args.len()
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_statements() {
        let src = "
            start:  li r1, 5   ; comment
            loop: loop2: add r1, r1, r2  # other comment
                  jmp loop
        ";
        let (stmts, labels) = first_pass(src).unwrap();
        assert_eq!(stmts.len(), 3);
        assert_eq!(labels["start"], 0);
        assert_eq!(labels["loop"], 1);
        assert_eq!(labels["loop2"], 1);
        assert_eq!(stmts[0].op, "li");
        assert_eq!(stmts[0].args, vec!["r1", "5"]);
    }

    #[test]
    fn duplicate_label_rejected() {
        assert!(first_pass("a: nop\na: nop").is_err());
    }

    #[test]
    fn imm_forms() {
        let labels = HashMap::from([("tgt".to_string(), 7u64)]);
        assert_eq!(parse_imm("42", &labels, 1).unwrap(), 42);
        assert_eq!(parse_imm("-3", &labels, 1).unwrap(), -3);
        assert_eq!(parse_imm("0x1f", &labels, 1).unwrap(), 31);
        assert_eq!(parse_imm("tgt", &labels, 1).unwrap(), 7);
        assert!(parse_imm("nope", &labels, 1).is_err());
    }

    #[test]
    fn reg_and_mem_operands() {
        let labels = HashMap::new();
        assert_eq!(parse_reg("r7", "r", 8, 1).unwrap(), 7);
        assert!(parse_reg("r8", "r", 8, 1).is_err());
        assert!(parse_reg("x1", "r", 8, 1).is_err());
        assert_eq!(parse_mem("4(x2)", "x", 16, &labels, 1).unwrap(), (4, 2));
        assert_eq!(parse_mem("(x3)", "x", 16, &labels, 1).unwrap(), (0, 3));
        assert!(parse_mem("4[x2]", "x", 16, &labels, 1).is_err());
    }
}
