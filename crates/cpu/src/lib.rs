//! # symsim-cpu
//!
//! The three evaluation processors of the DAC'22 paper, rebuilt from scratch
//! as genuine gate-level netlists via the [`symsim_netlist::RtlBuilder`]:
//!
//! * [`omsp16`] — an openMSP430-style 16-bit microcontroller: NZCV status
//!   flags drive conditional jumps, and a memory-mapped peripheral block
//!   (16×16 hardware multiplier, watchdog, GPIO, timer) mirrors the
//!   openMSP430 configuration of the paper's Table 2.
//! * [`bm32`] — a bm32/MIPS32-style 32-bit core: compares are subtractions
//!   whose results land in general-purpose registers (`SLT`), conditional
//!   branches test registers, and a hardware multiplier serves `mult`.
//! * [`dr5`] — a darkRiscV/RV32E-style core: 16 integer registers and **no**
//!   hardware multiplier, so multiplication is a software shift-add loop
//!   with input-dependent branches (the effect discussed in paper §5.0.3).
//!
//! Each processor ships with an assembler, a golden instruction-set
//! simulator used to validate the gate-level model, and the six benchmark
//! programs of Table 1 (`Div`, `inSort`, `binSearch`, `tHold`, `mult`,
//! `tea8`).
//!
//! [`Cpu`] packages a processor netlist with the design-specific facts the
//! design-agnostic co-analysis needs (PC bus, monitored control-flow
//! signals, finish net) and with testbench preparation helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod bm32;
pub mod dr5;
pub mod harness;
pub mod omsp16;

pub use asm::AsmError;
pub use harness::{Benchmark, Cpu, DataImage};

/// The benchmark names of the paper's Table 1, in table order.
pub const BENCHMARK_NAMES: [&str; 6] = ["div", "insort", "binsearch", "thold", "mult", "tea8"];
