//! Extension benchmarks beyond Table 1 for bm32: CRC integrity checking
//! and FIR filtering through the hardware multiplier.

use crate::harness::{Benchmark, DataImage};

/// CRC-16/CCITT over the 4 input words @8..12 (word-at-a-time variant);
/// result @1. `0x8000` does not fit the 14-bit immediate, so the bit test
/// uses a shift, and the CRC is re-masked to 16 bits each round.
pub const CRC16: &str = "
        li   $1, 0x3fff     ; build 0xffff = (0x3fff << 2) | 3
        sll  $1, $1, 2
        ori  $1, $1, 3      ; crc = 0xffff
        li   $7, 0x1021     ; polynomial
        li   $2, 8          ; ptr
        li   $6, 12
wloop:  sltu $4, $2, $6
        beq  $4, $0, done
        lw   $3, 0($2)
        xor  $1, $1, $3
        li   $5, 0          ; bit counter
bloop:  li   $8, 16
        sltu $4, $5, $8
        beq  $4, $0, wnext
        srl  $9, $1, 15
        andi $9, $9, 1
        sll  $1, $1, 1
        beq  $9, $0, noxor
        xor  $1, $1, $7
noxor:  sll  $1, $1, 16     ; mask back to 16 bits
        srl  $1, $1, 16
        addi $5, $5, 1
        j    bloop
wnext:  addi $2, $2, 1
        j    wloop
done:   sw   $1, 1($0)
        halt
";

/// 4-tap FIR over samples @8..16 via `MULT`/`MFLO`; output sum @1.
pub const FIR: &str = "
        li   $7, 0          ; accumulator
        li   $1, 3          ; i
        li   $10, 8
oloop:  sltu $4, $1, $10
        beq  $4, $0, done
        li   $2, 0          ; j
        li   $11, 4
iloop:  sltu $4, $2, $11
        beq  $4, $0, onext
        sub  $3, $1, $2
        addi $3, $3, 8
        lw   $5, 0($3)      ; x[i-j]
        addi $3, $2, 4
        lw   $6, 0($3)      ; c[j]
        mult $5, $6
        mflo $5
        add  $7, $7, $5
        addi $2, $2, 1
        j    iloop
onext:  addi $1, $1, 1
        j    oloop
done:   sw   $7, 1($0)
        halt
";

/// FIR tap coefficients (@4..8).
pub const FIR_TAPS: [u64; 4] = [3, 5, 7, 2];

/// The extension benchmarks (`crc16`, `fir`).
pub fn extended_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "crc16",
            source: CRC16,
            data: DataImage {
                concrete: vec![],
                inputs: (8..12).collect(),
            },
            example_inputs: vec![0x1234, 0xabcd, 0x0042, 0xffff],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "fir",
            source: FIR,
            data: DataImage {
                concrete: FIR_TAPS
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (4 + i, v))
                    .collect(),
                inputs: (8..16).collect(),
            },
            example_inputs: vec![1, 2, 3, 4, 5, 6, 7, 8],
            max_cycles: 60_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm32::{assemble, Iss};

    fn run(bench: &Benchmark) -> Iss {
        let program = assemble(bench.source).expect("assembles");
        let mut iss = Iss::new(&program);
        for &(a, v) in &bench.data.concrete {
            iss.write_mem(a, v as u32);
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u32);
        }
        assert!(iss.run(bench.max_cycles), "{} must halt", bench.name);
        iss
    }

    fn crc16_ref(words: &[u16]) -> u16 {
        let mut crc = 0xffffu16;
        for &w in words {
            crc ^= w;
            for _ in 0..16 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ 0x1021
                } else {
                    crc << 1
                };
            }
        }
        crc
    }

    #[test]
    fn crc16_matches_reference() {
        let benches = extended_benchmarks();
        let iss = run(&benches[0]);
        let words: Vec<u16> = benches[0]
            .example_inputs
            .iter()
            .map(|&v| v as u16)
            .collect();
        assert_eq!(iss.mem[1], crc16_ref(&words) as u32);
    }

    #[test]
    fn fir_matches_reference() {
        let benches = extended_benchmarks();
        let iss = run(&benches[1]);
        let x = &benches[1].example_inputs;
        let mut acc = 0u32;
        for i in 3..8 {
            for j in 0..4 {
                acc = acc.wrapping_add((x[i - j] as u32).wrapping_mul(FIR_TAPS[j] as u32));
            }
        }
        assert_eq!(iss.mem[1], acc);
    }
}
