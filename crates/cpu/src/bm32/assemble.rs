//! Two-pass assembler for the bm32 ISA (MIPS-flavored, `$0`-`$15`).

use crate::asm::{expect_args, first_pass, parse_imm, parse_mem, parse_reg, AsmError, Stmt};

use super::opcodes as oc;

fn enc(op: u32, a: u32, b: u32, c: u32, imm: u32) -> u32 {
    op << 26 | a << 22 | b << 18 | c << 14 | (imm & 0x3fff)
}

fn imm14_range(v: i64, line: usize) -> Result<u32, AsmError> {
    if !(-8192..=16383).contains(&v) {
        return Err(AsmError::new(
            line,
            format!("immediate {v} out of 14-bit range"),
        ));
    }
    Ok((v as u32) & 0x3fff)
}

/// Assembles bm32 source into 32-bit program words.
///
/// Registers are `$0`-`$15` (`$0` reads as zero); memory operands are
/// `imm($rN)`; branch/jump targets are labels or absolute word addresses.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending source line.
///
/// # Example
///
/// ```
/// let program = symsim_cpu::bm32::assemble("
///     li   $1, 2
///     add  $2, $1, $1
///     halt
/// ").expect("assembles");
/// assert_eq!(program.len(), 3);
/// ```
pub fn assemble(src: &str) -> Result<Vec<u32>, AsmError> {
    let (stmts, labels) = first_pass(src)?;
    stmts.iter().map(|s| encode(s, &labels)).collect()
}

fn encode(stmt: &Stmt, labels: &std::collections::HashMap<String, u64>) -> Result<u32, AsmError> {
    let line = stmt.line;
    let reg = |i: usize| parse_reg(&stmt.args[i], "$", 16, line);
    let imm = |i: usize| -> Result<u32, AsmError> {
        imm14_range(parse_imm(&stmt.args[i], labels, line)?, line)
    };
    let rrr = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 3)?;
        Ok(enc(op, reg(0)?, reg(1)?, reg(2)?, 0))
    };
    let rri = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 3)?;
        Ok(enc(op, reg(0)?, reg(1)?, 0, imm(2)?))
    };
    let memop = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 2)?;
        let a = reg(0)?;
        let (off, base) = parse_mem(&stmt.args[1], "$", 16, labels, line)?;
        Ok(enc(op, a, base, 0, imm14_range(off, line)?))
    };
    match stmt.op.as_str() {
        "nop" => {
            expect_args(stmt, 0)?;
            Ok(enc(oc::NOP, 0, 0, 0, 0))
        }
        "li" => {
            expect_args(stmt, 2)?;
            Ok(enc(oc::LI, reg(0)?, 0, 0, imm(1)?))
        }
        "add" => rrr(oc::ADD, stmt),
        "addi" => rri(oc::ADDI, stmt),
        "sub" => rrr(oc::SUB, stmt),
        "and" => rrr(oc::AND, stmt),
        "andi" => rri(oc::ANDI, stmt),
        "or" => rrr(oc::OR, stmt),
        "ori" => rri(oc::ORI, stmt),
        "xor" => rrr(oc::XOR, stmt),
        "slt" => rrr(oc::SLT, stmt),
        "sltu" => rrr(oc::SLTU, stmt),
        "sll" => rri(oc::SLL, stmt),
        "srl" => rri(oc::SRL, stmt),
        "sra" => rri(oc::SRA, stmt),
        "lw" => memop(oc::LW, stmt),
        "sw" => memop(oc::SW, stmt),
        "beq" | "bne" => {
            expect_args(stmt, 3)?;
            let op = if stmt.op == "beq" { oc::BEQ } else { oc::BNE };
            let target = imm14_range(parse_imm(&stmt.args[2], labels, line)?, line)?;
            Ok(enc(op, reg(0)?, reg(1)?, 0, target))
        }
        "blez" | "bgtz" => {
            expect_args(stmt, 2)?;
            let op = if stmt.op == "blez" {
                oc::BLEZ
            } else {
                oc::BGTZ
            };
            let target = imm14_range(parse_imm(&stmt.args[1], labels, line)?, line)?;
            Ok(enc(op, reg(0)?, 0, 0, target))
        }
        "j" => {
            expect_args(stmt, 1)?;
            Ok(enc(oc::J, 0, 0, 0, imm(0)?))
        }
        "mult" => {
            expect_args(stmt, 2)?;
            Ok(enc(oc::MULT, 0, reg(0)?, reg(1)?, 0))
        }
        "mflo" => {
            expect_args(stmt, 1)?;
            Ok(enc(oc::MFLO, reg(0)?, 0, 0, 0))
        }
        "mfhi" => {
            expect_args(stmt, 1)?;
            Ok(enc(oc::MFHI, reg(0)?, 0, 0, 0))
        }
        "halt" => {
            expect_args(stmt, 0)?;
            Ok(enc(oc::HALT, 0, 0, 0, 0))
        }
        other => Err(AsmError::new(line, format!("unknown mnemonic \"{other}\""))),
    }
}

/// Disassembles one instruction word into the syntax [`assemble`] accepts
/// (branch/jump targets render as absolute word addresses).
///
/// # Example
///
/// ```
/// use symsim_cpu::bm32::{assemble, disassemble};
///
/// let program = assemble("sltu $4, $1, $2").expect("assembles");
/// assert_eq!(disassemble(program[0]), "sltu $4, $1, $2");
/// ```
pub fn disassemble(word: u32) -> String {
    let f = decode(word);
    let (a, b, c) = (f.a, f.b, f.c);
    let s = f.simm();
    match f.op {
        oc::NOP => "nop".to_string(),
        oc::LI => format!("li ${a}, {s}"),
        oc::ADD => format!("add ${a}, ${b}, ${c}"),
        oc::ADDI => format!("addi ${a}, ${b}, {s}"),
        oc::SUB => format!("sub ${a}, ${b}, ${c}"),
        oc::AND => format!("and ${a}, ${b}, ${c}"),
        oc::ANDI => format!("andi ${a}, ${b}, {s}"),
        oc::OR => format!("or ${a}, ${b}, ${c}"),
        oc::ORI => format!("ori ${a}, ${b}, {s}"),
        oc::XOR => format!("xor ${a}, ${b}, ${c}"),
        oc::SLT => format!("slt ${a}, ${b}, ${c}"),
        oc::SLTU => format!("sltu ${a}, ${b}, ${c}"),
        oc::SLL => format!("sll ${a}, ${b}, {}", f.imm & 31),
        oc::SRL => format!("srl ${a}, ${b}, {}", f.imm & 31),
        oc::SRA => format!("sra ${a}, ${b}, {}", f.imm & 31),
        oc::LW => format!("lw ${a}, {s}(${b})"),
        oc::SW => format!("sw ${a}, {s}(${b})"),
        oc::BEQ => format!("beq ${a}, ${b}, {}", f.imm),
        oc::BNE => format!("bne ${a}, ${b}, {}", f.imm),
        oc::BLEZ => format!("blez ${a}, {}", f.imm),
        oc::BGTZ => format!("bgtz ${a}, {}", f.imm),
        oc::J => format!("j {}", f.imm),
        oc::MULT => format!("mult ${b}, ${c}"),
        oc::MFLO => format!("mflo ${a}"),
        oc::MFHI => format!("mfhi ${a}"),
        oc::HALT => "halt".to_string(),
        other => format!("; unknown opcode {other}"),
    }
}

/// Decoded fields shared by the ISS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fields {
    pub op: u32,
    pub a: usize,
    pub b: usize,
    pub c: usize,
    pub imm: u32,
}

impl Fields {
    /// Sign-extended 14-bit immediate.
    pub fn simm(&self) -> i32 {
        (self.imm << 18) as i32 >> 18
    }
}

pub(crate) fn decode(word: u32) -> Fields {
    Fields {
        op: word >> 26,
        a: (word >> 22 & 0xf) as usize,
        b: (word >> 18 & 0xf) as usize,
        c: (word >> 14 & 0xf) as usize,
        imm: word & 0x3fff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_three_operand() {
        let p = assemble("slt $3, $1, $2").unwrap();
        let f = decode(p[0]);
        assert_eq!((f.op, f.a, f.b, f.c), (oc::SLT, 3, 1, 2));
    }

    #[test]
    fn sign_extension() {
        let p = assemble("addi $1, $1, -1").unwrap();
        assert_eq!(decode(p[0]).simm(), -1);
        let p = assemble("addi $1, $1, 8191").unwrap();
        assert_eq!(decode(p[0]).simm(), 8191);
    }

    #[test]
    fn branches_take_labels() {
        let p = assemble("top: beq $1, $0, top\n bgtz $2, top\n j top").unwrap();
        assert_eq!(decode(p[0]).imm, 0);
        assert_eq!(decode(p[1]).op, oc::BGTZ);
        assert_eq!(decode(p[2]).op, oc::J);
    }

    #[test]
    fn rejects_bad_registers() {
        assert!(assemble("add $16, $0, $0").is_err());
        assert!(assemble("add r1, $0, $0").is_err());
    }
}
