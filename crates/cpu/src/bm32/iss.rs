//! Golden instruction-set simulator for bm32.

use super::assemble::decode;
use super::{opcodes as oc, DMEM_DEPTH};

/// Architectural state of the bm32 golden model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iss {
    /// Program counter (word address).
    pub pc: u32,
    /// General-purpose registers (`regs[0]` always reads zero).
    pub regs: [u32; 16],
    /// Multiplier result registers.
    pub lo: u32,
    /// High half of the multiplier result.
    pub hi: u32,
    /// Sticky halt.
    pub halted: bool,
    /// Data memory (word addressed).
    pub mem: Vec<u32>,
    /// Cycles executed.
    pub cycles: u64,
    program: Vec<u32>,
}

impl Iss {
    /// Creates a golden model with zeroed registers and memory.
    pub fn new(program: &[u32]) -> Iss {
        Iss {
            pc: 0,
            regs: [0; 16],
            lo: 0,
            hi: 0,
            halted: false,
            mem: vec![0; DMEM_DEPTH],
            cycles: 0,
            program: program.to_vec(),
        }
    }

    /// Writes a data-memory word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write_mem(&mut self, addr: usize, value: u32) {
        self.mem[addr] = value;
    }

    fn write_reg(&mut self, r: usize, v: u32) {
        if r != 0 {
            self.regs[r] = v;
        }
    }

    /// Executes one instruction (one cycle).
    pub fn step(&mut self) {
        if self.halted {
            self.cycles += 1;
            return;
        }
        let word = *self.program.get(self.pc as usize).unwrap_or(&0);
        let f = decode(word);
        let (av, bv, cv) = (self.regs[f.a], self.regs[f.b], self.regs[f.c]);
        let imm = f.simm() as u32;
        let mut next_pc = (self.pc + 1) & 0x1ff;
        match f.op {
            oc::NOP => {}
            oc::LI => self.write_reg(f.a, imm),
            oc::ADD => self.write_reg(f.a, bv.wrapping_add(cv)),
            oc::ADDI => self.write_reg(f.a, bv.wrapping_add(imm)),
            oc::SUB => self.write_reg(f.a, bv.wrapping_sub(cv)),
            oc::AND => self.write_reg(f.a, bv & cv),
            oc::ANDI => self.write_reg(f.a, bv & imm),
            oc::OR => self.write_reg(f.a, bv | cv),
            oc::ORI => self.write_reg(f.a, bv | imm),
            oc::XOR => self.write_reg(f.a, bv ^ cv),
            oc::SLT => self.write_reg(f.a, ((bv as i32) < cv as i32) as u32),
            oc::SLTU => self.write_reg(f.a, (bv < cv) as u32),
            oc::SLL => self.write_reg(f.a, bv << (f.imm & 31)),
            oc::SRL => self.write_reg(f.a, bv >> (f.imm & 31)),
            oc::SRA => self.write_reg(f.a, ((bv as i32) >> (f.imm & 31)) as u32),
            oc::LW => {
                let addr = bv.wrapping_add(imm);
                let v = if (addr as usize) < DMEM_DEPTH {
                    self.mem[addr as usize]
                } else {
                    self.mem[(addr & 0xff) as usize] // aliases like the netlist
                };
                self.write_reg(f.a, v);
            }
            oc::SW => {
                let addr = bv.wrapping_add(imm);
                if (addr >> 8) == 0 {
                    self.mem[addr as usize] = av;
                }
            }
            oc::BEQ if av == bv => {
                next_pc = f.imm & 0x1ff;
            }
            oc::BNE if av != bv => {
                next_pc = f.imm & 0x1ff;
            }
            oc::BLEZ if (av as i32) <= 0 => {
                next_pc = f.imm & 0x1ff;
            }
            oc::BGTZ if (av as i32) > 0 => {
                next_pc = f.imm & 0x1ff;
            }
            oc::J => next_pc = f.imm & 0x1ff,
            oc::MULT => {
                // the hardware multiplier is 32x16: low 16 bits of operand C
                let product = (bv as u64) * ((cv & 0xffff) as u64);
                self.lo = product as u32;
                self.hi = (product >> 32) as u32;
            }
            oc::MFLO => self.write_reg(f.a, self.lo),
            oc::MFHI => self.write_reg(f.a, self.hi),
            oc::HALT => self.halted = true,
            _ => {}
        }
        if !self.halted {
            self.pc = next_pc;
        }
        self.cycles += 1;
    }

    /// Runs until halt or `max_cycles`. Returns true if halted.
    pub fn run(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.halted {
                return true;
            }
            self.step();
        }
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm32::assemble;

    #[test]
    fn zero_register_is_immutable() {
        let p = assemble("li $0, 5\n add $1, $0, $0\n halt").unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(10));
        assert_eq!(iss.regs[0], 0);
        assert_eq!(iss.regs[1], 0);
    }

    #[test]
    fn slt_and_branch() {
        let p = assemble(
            "
                li   $1, 3
                li   $2, 5
                sltu $3, $1, $2
                beq  $3, $0, no
                li   $4, 1
                halt
            no: li   $4, 2
                halt
        ",
        )
        .unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(20));
        assert_eq!(iss.regs[4], 1);
    }

    #[test]
    fn multiplier() {
        let p =
            assemble("li $1, 1000\n li $2, 999\n mult $1, $2\n mflo $3\n mfhi $4\n halt").unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(10));
        assert_eq!(iss.regs[3], 999_000);
        assert_eq!(iss.regs[4], 0);
    }

    #[test]
    fn shifts() {
        let p =
            assemble("li $1, -8\n sra $2, $1, 1\n srl $3, $1, 1\n sll $4, $1, 2\n halt").unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(10));
        assert_eq!(iss.regs[2] as i32, -4);
        assert_eq!(iss.regs[3], 0x7ffffffc);
        assert_eq!(iss.regs[4] as i32, -32);
    }
}
