//! The six Table 1 benchmarks for bm32, in the MIPS idiom: compares are
//! `SLT`/`SLTU` results in general-purpose registers, tested by `BEQ`/`BNE`
//! — the pattern that drives bm32's larger path counts (paper §5.0.3).

use crate::harness::{Benchmark, DataImage};

/// Unsigned division by repeated subtraction. Inputs @0, @1; quotient @2,
/// remainder @3.
pub const DIV: &str = "
        lw   $1, 0($0)     ; dividend
        lw   $2, 1($0)     ; divisor
        li   $3, 0         ; quotient
loop:   sltu $4, $1, $2    ; compare-as-subtraction into a register
        bne  $4, $0, done
        sub  $1, $1, $2
        addi $3, $3, 1
        j    loop
done:   sw   $3, 2($0)
        sw   $1, 3($0)
        halt
";

/// In-place insertion sort of the 8-element array @8..16.
pub const INSORT: &str = "
        li   $1, 1         ; i
        li   $8, 8
outer:  sltu $4, $1, $8    ; i < 8?
        beq  $4, $0, done
        addi $5, $1, 8
        lw   $3, 0($5)     ; key = a[i]
        add  $2, $1, $0    ; j = i
inner:  beq  $2, $0, place
        addi $5, $2, 8
        lw   $6, -1($5)    ; a[j-1]
        sltu $4, $3, $6    ; key < a[j-1]?
        beq  $4, $0, place
        sw   $6, 0($5)     ; a[j] = a[j-1]
        addi $2, $2, -1
        j    inner
place:  addi $5, $2, 8
        sw   $3, 0($5)
        addi $1, $1, 1
        j    outer
done:   halt
";

/// Binary search for key @0 in the sorted 16-word table @8..24; index @1
/// (-1 when absent).
pub const BINSEARCH: &str = "
        lw   $1, 0($0)     ; key
        li   $2, 0         ; lo
        li   $3, 16        ; hi
loop:   sltu $4, $2, $3
        beq  $4, $0, nf    ; lo >= hi
        add  $5, $2, $3
        srl  $5, $5, 1     ; mid
        addi $6, $5, 8
        lw   $7, 0($6)     ; a[mid]
        beq  $7, $1, found
        sltu $4, $7, $1    ; a[mid] < key?
        beq  $4, $0, above
        addi $2, $5, 1     ; lo = mid+1
        j    loop
above:  add  $3, $5, $0    ; hi = mid
        j    loop
found:  sw   $5, 1($0)
        halt
nf:     li   $4, -1
        sw   $4, 1($0)
        halt
";

/// Threshold detector over 16 samples @8..24; threshold @0; count @1.
/// Two conditional branches per iteration (vs three on omsp16 — §5.0.3).
pub const THOLD: &str = "
        lw   $1, 0($0)     ; threshold
        li   $2, 8         ; ptr
        li   $3, 0         ; count
        li   $6, 24
loop:   sltu $4, $2, $6
        beq  $4, $0, done  ; branch 1: end of samples
        lw   $5, 0($2)
        sltu $4, $5, $1    ; sample < threshold?
        bne  $4, $0, skip  ; branch 2
        addi $3, $3, 1
skip:   addi $2, $2, 1
        j    loop
done:   sw   $3, 1($0)
        halt
";

/// Unsigned multiplication via the hardware multiplier (`MULT`/`MFLO`).
/// Inputs @0, @1; product lo @2, hi @3. No branches: one path.
pub const MULT: &str = "
        lw   $1, 0($0)
        lw   $2, 1($0)
        mult $1, $2
        mflo $3
        mfhi $4
        sw   $3, 2($0)
        sw   $4, 3($0)
        halt
";

/// 32-bit TEA, 8 rounds ("tea8"). v @0, @1; key @4..8 and delta @9 are
/// concrete data (32-bit constants do not fit the 14-bit immediate, so they
/// are loaded from memory). Ciphertext @2, @3. One path.
pub const TEA8: &str = "
        lw   $1, 0($0)     ; v0
        lw   $2, 1($0)     ; v1
        li   $3, 0         ; sum
        li   $4, 0         ; round
round:  lw   $5, 9($0)     ; delta
        add  $3, $3, $5    ; sum += delta
        sll  $5, $2, 4
        lw   $6, 4($0)
        add  $5, $5, $6    ; (v1<<4)+k0
        add  $6, $2, $3    ; v1+sum
        xor  $5, $5, $6
        srl  $6, $2, 5
        lw   $7, 5($0)
        add  $6, $6, $7    ; (v1>>5)+k1
        xor  $5, $5, $6
        add  $1, $1, $5    ; v0 += ...
        sll  $5, $1, 4
        lw   $6, 6($0)
        add  $5, $5, $6    ; (v0<<4)+k2
        add  $6, $1, $3    ; v0+sum
        xor  $5, $5, $6
        srl  $6, $1, 5
        lw   $7, 7($0)
        add  $6, $6, $7    ; (v0>>5)+k3
        xor  $5, $5, $6
        add  $2, $2, $5    ; v1 += ...
        addi $4, $4, 1
        li   $8, 8
        bne  $4, $8, round
        sw   $1, 2($0)
        sw   $2, 3($0)
        halt
";

/// TEA key and delta constants for [`TEA8`] (@4..8 and @9).
pub const TEA_KEY: [u64; 4] = [0xa56b_abcd, 0x0000_f00d, 0xdead_beef, 0x0bad_c0de];
/// TEA delta (@9).
pub const TEA_DELTA: u64 = 0x9e37_79b9;

/// Sorted lookup table for [`BINSEARCH`] (@8..24).
pub const SEARCH_TABLE: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// The benchmark named `name`.
///
/// # Panics
///
/// Panics on an unknown name; use [`crate::BENCHMARK_NAMES`].
pub fn benchmark(name: &str) -> Benchmark {
    benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark \"{name}\""))
}

/// All six Table 1 benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "div",
            source: DIV,
            data: DataImage {
                concrete: vec![],
                inputs: vec![0, 1],
            },
            example_inputs: vec![100, 7],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "insort",
            source: INSORT,
            data: DataImage {
                concrete: vec![],
                inputs: (8..16).collect(),
            },
            example_inputs: vec![5, 2, 9, 1, 7, 3, 8, 0],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "binsearch",
            source: BINSEARCH,
            data: DataImage {
                concrete: SEARCH_TABLE
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (8 + i, v))
                    .collect(),
                inputs: vec![0],
            },
            example_inputs: vec![13],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "thold",
            source: THOLD,
            data: DataImage {
                concrete: vec![],
                inputs: std::iter::once(0).chain(8..24).collect(),
            },
            example_inputs: vec![
                50, 10, 60, 70, 20, 80, 30, 90, 40, 55, 45, 65, 35, 75, 25, 85, 15,
            ],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "mult",
            source: MULT,
            data: DataImage {
                concrete: vec![],
                inputs: vec![0, 1],
            },
            example_inputs: vec![300, 250],
            max_cycles: 10_000,
        },
        Benchmark {
            name: "tea8",
            source: TEA8,
            data: DataImage {
                concrete: TEA_KEY
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (4 + i, v))
                    .chain(std::iter::once((9, TEA_DELTA)))
                    .collect(),
                inputs: vec![0, 1],
            },
            example_inputs: vec![0x0123_4567, 0x89ab_cdef],
            max_cycles: 10_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bm32::{assemble, Iss};

    fn run_iss(bench: &Benchmark) -> Iss {
        let program = assemble(bench.source).expect("benchmark assembles");
        let mut iss = Iss::new(&program);
        for &(a, v) in &bench.data.concrete {
            iss.write_mem(a, v as u32);
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u32);
        }
        assert!(iss.run(bench.max_cycles), "benchmark must halt");
        iss
    }

    #[test]
    fn div_works() {
        let iss = run_iss(&benchmark("div"));
        assert_eq!(iss.mem[2], 14);
        assert_eq!(iss.mem[3], 2);
    }

    #[test]
    fn insort_sorts() {
        let iss = run_iss(&benchmark("insort"));
        let mut expect = [5u32, 2, 9, 1, 7, 3, 8, 0];
        expect.sort_unstable();
        assert_eq!(&iss.mem[8..16], &expect[..]);
    }

    #[test]
    fn binsearch_finds() {
        let iss = run_iss(&benchmark("binsearch"));
        assert_eq!(iss.mem[1], 5);
    }

    #[test]
    fn thold_counts_above_threshold() {
        let iss = run_iss(&benchmark("thold"));
        let b = benchmark("thold");
        let thresh = b.example_inputs[0] as u32;
        let count = b.example_inputs[1..]
            .iter()
            .filter(|&&s| s as u32 >= thresh)
            .count() as u32;
        assert_eq!(iss.mem[1], count);
    }

    #[test]
    fn mult_uses_hw_multiplier() {
        let iss = run_iss(&benchmark("mult"));
        assert_eq!(iss.mem[2], 75_000);
        assert_eq!(iss.mem[3], 0);
    }

    #[test]
    fn tea8_matches_reference() {
        let iss = run_iss(&benchmark("tea8"));
        let (mut v0, mut v1) = (0x0123_4567u32, 0x89ab_cdefu32);
        let k: Vec<u32> = TEA_KEY.iter().map(|&v| v as u32).collect();
        let mut sum = 0u32;
        for _ in 0..8 {
            sum = sum.wrapping_add(TEA_DELTA as u32);
            v0 = v0.wrapping_add(
                (v1 << 4).wrapping_add(k[0]) ^ v1.wrapping_add(sum) ^ (v1 >> 5).wrapping_add(k[1]),
            );
            v1 = v1.wrapping_add(
                (v0 << 4).wrapping_add(k[2]) ^ v0.wrapping_add(sum) ^ (v0 >> 5).wrapping_add(k[3]),
            );
        }
        assert_eq!(iss.mem[2], v0);
        assert_eq!(iss.mem[3], v1);
    }

    #[test]
    fn all_assemble_and_halt() {
        for b in benchmarks() {
            let _ = run_iss(&b);
        }
    }
}
