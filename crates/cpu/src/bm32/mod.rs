//! `bm32` — a bm32/MIPS32-style 32-bit core.
//!
//! Matches the bm32 character of the paper's Table 2:
//!
//! * 32-bit datapath, 16 general-purpose registers with `$0` hardwired to
//!   zero;
//! * **no status flags**: compares are subtractions whose results land in
//!   general-purpose registers (`SLT`/`SLTU`), and conditional branches test
//!   registers (`BEQ`/`BNE`/`BLEZ`/`BGTZ`). This is the property the paper
//!   identifies as the cause of bm32's much larger simulation path counts
//!   (§5.0.3): the wide compare-result registers accumulate `X`s across
//!   conservative-state merges.
//! * a hardware multiplier (`MULT` → `LO`/`HI`, read via `MFLO`/`MFHI`).
//!   The array multiplier is 32×16 (the low 16 bits of the second operand),
//!   sized to keep the multiplier's share of total gates near the paper's
//!   bm32 reduction headroom; see DESIGN.md.

mod assemble;
mod bench;
mod ext;
mod iss;

pub use assemble::{assemble, disassemble};
pub use bench::{benchmark, benchmarks};
pub use ext::extended_benchmarks;
pub use iss::Iss;

use symsim_netlist::{Bus, RtlBuilder};

use crate::harness::{any, mux_tree, select, select1, Cpu};

/// Program memory depth in 32-bit words.
pub const PMEM_DEPTH: usize = 512;
/// Data memory depth in 32-bit words.
pub const DMEM_DEPTH: usize = 256;

pub(crate) mod opcodes {
    pub const NOP: u32 = 0;
    pub const LI: u32 = 1;
    pub const ADD: u32 = 2;
    pub const ADDI: u32 = 3;
    pub const SUB: u32 = 4;
    pub const AND: u32 = 5;
    pub const ANDI: u32 = 6;
    pub const OR: u32 = 7;
    pub const ORI: u32 = 8;
    pub const XOR: u32 = 9;
    pub const SLT: u32 = 10;
    pub const SLTU: u32 = 11;
    pub const SLL: u32 = 12;
    pub const SRL: u32 = 13;
    pub const SRA: u32 = 14;
    pub const LW: u32 = 15;
    pub const SW: u32 = 16;
    pub const BEQ: u32 = 17;
    pub const BNE: u32 = 18;
    pub const BLEZ: u32 = 19;
    pub const BGTZ: u32 = 20;
    pub const J: u32 = 21;
    pub const MULT: u32 = 22;
    pub const MFLO: u32 = 23;
    pub const MFHI: u32 = 24;
    pub const HALT: u32 = 25;
}

/// Builds the bm32 gate-level netlist and its co-analysis interface.
pub fn build() -> Cpu {
    const W: usize = 32;
    let mut b = RtlBuilder::new("bm32");

    // ---- architectural state ----
    let pc_r = b.reg("pc", 9, 0);
    let pcq = pc_r.q.clone();
    let halted_r = b.reg("halted_r", 1, 0);
    let haltq = halted_r.q.clone();
    let lo_r = b.reg("lo", W, 0);
    let loq = lo_r.q.clone();
    let hi_r = b.reg("hi", W, 0);
    let hiq = hi_r.q.clone();
    // $0 is hardwired zero; $1..$15 are X-initialized registers
    let rf: Vec<_> = (1..16).map(|i| b.reg_x(&format!("rf{i}"), W)).collect();
    let zero_w = b.const_word(0, W);
    let mut rfq: Vec<Bus> = vec![zero_w.clone()];
    rfq.extend(rf.iter().map(|r| r.q.clone()));

    // ---- fetch / fields ----
    let pmem = b.memory("pmem", PMEM_DEPTH, 32);
    let instr = b.mem_read(pmem, &pcq);
    let op = instr.slice(26, 32);
    let a_f = instr.slice(22, 26);
    let b_f = instr.slice(18, 22);
    let c_f = instr.slice(14, 18);
    let imm14 = instr.slice(0, 14);
    let imm = b.sext(&imm14, W);

    // ---- decode ----
    let dec = |b: &mut RtlBuilder, code: u32| {
        let c = b.const_word(code as u64, 6);
        b.eq(&op, &c)
    };
    use opcodes as oc;
    let is_li = dec(&mut b, oc::LI);
    let is_add = dec(&mut b, oc::ADD);
    let is_addi = dec(&mut b, oc::ADDI);
    let is_sub = dec(&mut b, oc::SUB);
    let is_and = dec(&mut b, oc::AND);
    let is_andi = dec(&mut b, oc::ANDI);
    let is_or = dec(&mut b, oc::OR);
    let is_ori = dec(&mut b, oc::ORI);
    let is_xor = dec(&mut b, oc::XOR);
    let is_slt = dec(&mut b, oc::SLT);
    let is_sltu = dec(&mut b, oc::SLTU);
    let is_sll = dec(&mut b, oc::SLL);
    let is_srl = dec(&mut b, oc::SRL);
    let is_sra = dec(&mut b, oc::SRA);
    let is_lw = dec(&mut b, oc::LW);
    let is_sw = dec(&mut b, oc::SW);
    let is_beq = dec(&mut b, oc::BEQ);
    let is_bne = dec(&mut b, oc::BNE);
    let is_blez = dec(&mut b, oc::BLEZ);
    let is_bgtz = dec(&mut b, oc::BGTZ);
    let is_j = dec(&mut b, oc::J);
    let is_mult = dec(&mut b, oc::MULT);
    let is_mflo = dec(&mut b, oc::MFLO);
    let is_mfhi = dec(&mut b, oc::MFHI);
    let is_halt = dec(&mut b, oc::HALT);

    let not_halt = b.not1(haltq.bit(0));

    // ---- register read / operand select ----
    let a_val = mux_tree(&mut b, &a_f, &rfq); // dest-read for SW/branches
    let b_val = mux_tree(&mut b, &b_f, &rfq);
    let c_val = mux_tree(&mut b, &c_f, &rfq);
    let uses_imm = any(&mut b, &[is_li, is_addi, is_andi, is_ori]);
    let opc = b.mux(uses_imm, &c_val, &imm);

    // ---- ALU ----
    let zero1 = b.zero();
    let (add_res, _) = b.add_carry(&b_val, &opc, zero1);
    let (sub_res, _) = b.sub_carry(&b_val, &opc);
    let and_res = b.and(&b_val, &opc);
    let or_res = b.or(&b_val, &opc);
    let xor_res = b.xor(&b_val, &opc);
    let lt_s = b.lt_s(&b_val, &opc);
    let lt_u = b.lt_u(&b_val, &opc);
    let slt_res = b.zext(&Bus::from_nets(vec![lt_s]), W);
    let sltu_res = b.zext(&Bus::from_nets(vec![lt_u]), W);
    let shamt = imm14.slice(0, 5);
    let sll_res = b.shl_barrel(&b_val, &shamt);
    let srl_res = b.shr_barrel(&b_val, &shamt);
    let sra_res = b.sra_barrel(&b_val, &shamt);
    let is_addish = any(&mut b, &[is_add, is_addi]);
    let is_andish = any(&mut b, &[is_and, is_andi]);
    let is_orish = any(&mut b, &[is_or, is_ori]);
    let alu_res = select(
        &mut b,
        &opc, // LI passes the immediate through
        &[
            (is_addish, add_res),
            (is_sub, sub_res),
            (is_andish, and_res),
            (is_orish, or_res),
            (is_xor, xor_res),
            (is_slt, slt_res),
            (is_sltu, sltu_res),
            (is_sll, sll_res),
            (is_srl, srl_res),
            (is_sra, sra_res),
            (is_mflo, loq.clone()),
            (is_mfhi, hiq.clone()),
        ],
    );

    // ---- hardware multiplier (32x16 array) ----
    let c_lo16 = c_val.slice(0, 16);
    let product = b.mul_full(&b_val, &c_lo16); // 48 bits
    let mult_en = b.and1(is_mult, not_halt);
    let lo_next_val = product.slice(0, W);
    let hi_next_val = b.zext(&product.slice(W, 48), W);
    let lo_next = b.mux(mult_en, &loq, &lo_next_val);
    let hi_next = b.mux(mult_en, &hiq, &hi_next_val);
    b.drive_reg(lo_r, &lo_next);
    b.drive_reg(hi_r, &hi_next);

    // ---- data memory ----
    let addr = b.add(&b_val, &imm);
    let addr_hi = addr.slice(8, W);
    let is_dmem = b.is_zero(&addr_hi);
    let dmem = b.memory("dmem", DMEM_DEPTH, W);
    let daddr = addr.slice(0, 8);
    let dmem_rdata = b.mem_read(dmem, &daddr);
    let st_en = b.and1(is_sw, not_halt);
    let dmem_we = b.and1(st_en, is_dmem);
    b.mem_write(dmem, &daddr, &a_val, dmem_we);

    // ---- write-back ----
    let wdata = b.mux(is_lw, &alu_res, &dmem_rdata);
    let writes_reg = any(
        &mut b,
        &[
            is_li, is_addish, is_sub, is_andish, is_orish, is_xor, is_slt, is_sltu, is_sll, is_srl,
            is_sra, is_lw, is_mflo, is_mfhi,
        ],
    );
    let wr_en = b.and1(writes_reg, not_halt);
    let mut reg_nets: Vec<Vec<symsim_netlist::NetId>> = vec![zero_w.as_nets().to_vec()];
    for (i, handle) in rf.into_iter().enumerate() {
        let c = b.const_word(i as u64 + 1, 4);
        let hit = b.eq(&a_f, &c);
        let en = b.and1(wr_en, hit);
        let q = handle.q.clone();
        let next = b.mux(en, &q, &wdata);
        reg_nets.push(q.as_nets().to_vec());
        b.drive_reg(handle, &next);
    }

    // ---- control flow: register-tested branches (no flags) ----
    // the comparator outputs derive from the full-width register operands;
    // any X bit in the compare-result register makes them unknown — the
    // bm32 effect of paper §5.0.3. Both are monitored and forced.
    let diff = b.xor(&a_val, &b_val);
    let eq_raw = b.is_zero(&diff);
    let eq = b.name_net("cmp_eq", eq_raw);
    let neq = b.not1(eq);
    let a_zero = b.is_zero(&a_val);
    let a_neg = a_val.msb();
    let lez_raw = b.or1(a_neg, a_zero);
    let lez = b.name_net("cmp_lez", lez_raw);
    let gtz = b.not1(lez);
    let cond_raw = select1(
        &mut b,
        zero1,
        &[(is_beq, eq), (is_bne, neq), (is_blez, lez), (is_bgtz, gtz)],
    );
    let is_branch_raw = any(&mut b, &[is_beq, is_bne, is_blez, is_bgtz]);
    let is_branch_live = b.and1(is_branch_raw, not_halt);
    let is_branch = b.name_net("is_branch", is_branch_live);
    let taken = b.and1(is_branch, cond_raw);
    let one9 = b.const_word(1, 9);
    let pc_plus = b.add(&pcq, &one9);
    let target = imm14.slice(0, 9);
    let next0 = b.mux(taken, &pc_plus, &target);
    let next1 = b.mux(is_j, &next0, &target);
    let next_pc = b.mux(haltq.bit(0), &next1, &pcq);
    b.drive_reg(pc_r, &next_pc);

    // ---- halt / finish ----
    let halt_set = b.and1(is_halt, not_halt);
    let halt_next_bit = b.or1(haltq.bit(0), halt_set);
    let halt_next = Bus::from_nets(vec![halt_next_bit]);
    b.drive_reg(halted_r, &halt_next);
    let _finish = b.name_net("finish", haltq.bit(0));

    let netlist = b.finish().expect("bm32 netlist is structurally valid");
    let pc_nets = (0..9)
        .map(|i| netlist.find_net(&format!("pc[{i}]")).expect("pc net"))
        .collect();
    Cpu {
        name: "bm32",
        pc: pc_nets,
        monitor_qualifier: netlist.find_net("is_branch").expect("is_branch"),
        monitor_signals: vec![
            netlist.find_net("cmp_eq").expect("cmp_eq"),
            netlist.find_net("cmp_lez").expect("cmp_lez"),
        ],
        split_signals: None,
        finish: netlist.find_net("finish").expect("finish"),
        pmem: netlist
            .memories()
            .iter()
            .position(|m| m.name == "pmem")
            .expect("pmem"),
        dmem: netlist
            .memories()
            .iter()
            .position(|m| m.name == "dmem")
            .expect("dmem"),
        data_width: W,
        reg_nets,
        netlist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let cpu = build();
        assert!(cpu.netlist.validate().is_ok());
        // bm32 is the largest design in Table 3
        let omsp = crate::omsp16::build();
        assert!(
            cpu.netlist.total_gate_count() > omsp.netlist.total_gate_count(),
            "bm32 {} vs omsp16 {}",
            cpu.netlist.total_gate_count(),
            omsp.netlist.total_gate_count()
        );
        assert_eq!(cpu.monitor_signals.len(), 2);
        assert_eq!(cpu.reg_nets.len(), 16);
    }
}
