//! Golden instruction-set simulator for dr5.

use super::assemble::decode;
use super::{opcodes as oc, DMEM_DEPTH};

/// Architectural state of the dr5 golden model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iss {
    /// Program counter (word address).
    pub pc: u32,
    /// Integer registers (`regs[0]` always reads zero).
    pub regs: [u32; 16],
    /// Sticky halt.
    pub halted: bool,
    /// Machine-mode CSRs: `[mtvec, mie, msip, mscratch, mcause, mepc]`.
    pub csrs: [u32; 6],
    /// Data memory (word addressed).
    pub mem: Vec<u32>,
    /// Cycles executed.
    pub cycles: u64,
    program: Vec<u32>,
}

impl Iss {
    /// Creates a golden model with zeroed registers and memory.
    pub fn new(program: &[u32]) -> Iss {
        Iss {
            pc: 0,
            regs: [0; 16],
            halted: false,
            csrs: [0; 6],
            mem: vec![0; DMEM_DEPTH],
            cycles: 0,
            program: program.to_vec(),
        }
    }

    /// Writes a data-memory word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write_mem(&mut self, addr: usize, value: u32) {
        self.mem[addr] = value;
    }

    fn write_reg(&mut self, r: usize, v: u32) {
        if r != 0 {
            self.regs[r] = v;
        }
    }

    /// Executes one instruction (one cycle).
    pub fn step(&mut self) {
        if self.halted {
            self.cycles += 1;
            return;
        }
        let word = *self.program.get(self.pc as usize).unwrap_or(&0);
        let f = decode(word);
        let (av, bv, cv) = (self.regs[f.a], self.regs[f.b], self.regs[f.c]);
        let imm = f.simm() as u32;
        let mut next_pc = (self.pc + 1) & 0x1ff;
        let link = (self.pc + 1) & 0x1ff;
        match f.op {
            oc::NOP => {}
            oc::LI => self.write_reg(f.a, imm),
            oc::ADD => self.write_reg(f.a, bv.wrapping_add(cv)),
            oc::SUB => self.write_reg(f.a, bv.wrapping_sub(cv)),
            oc::AND => self.write_reg(f.a, bv & cv),
            oc::OR => self.write_reg(f.a, bv | cv),
            oc::XOR => self.write_reg(f.a, bv ^ cv),
            oc::SLT => self.write_reg(f.a, ((bv as i32) < cv as i32) as u32),
            oc::SLTU => self.write_reg(f.a, (bv < cv) as u32),
            oc::ADDI => self.write_reg(f.a, bv.wrapping_add(imm)),
            oc::ANDI => self.write_reg(f.a, bv & imm),
            oc::ORI => self.write_reg(f.a, bv | imm),
            oc::XORI => self.write_reg(f.a, bv ^ imm),
            oc::SLLI => self.write_reg(f.a, bv << (f.imm & 31)),
            oc::SRLI => self.write_reg(f.a, bv >> (f.imm & 31)),
            oc::SRAI => self.write_reg(f.a, ((bv as i32) >> (f.imm & 31)) as u32),
            oc::SLL => self.write_reg(f.a, bv << (cv & 31)),
            oc::SRL => self.write_reg(f.a, bv >> (cv & 31)),
            oc::SRA => self.write_reg(f.a, ((bv as i32) >> (cv & 31)) as u32),
            oc::LW => {
                let addr = bv.wrapping_add(imm);
                self.write_reg(f.a, self.mem[(addr & 0xff) as usize]);
            }
            oc::SW => {
                let addr = bv.wrapping_add(imm);
                if (addr >> 8) == 0 {
                    self.mem[addr as usize] = av;
                }
            }
            oc::BEQ if av == bv => {
                next_pc = f.imm & 0x1ff;
            }
            oc::BNE if av != bv => {
                next_pc = f.imm & 0x1ff;
            }
            oc::BLT if (av as i32) < bv as i32 => {
                next_pc = f.imm & 0x1ff;
            }
            oc::BGE if (av as i32) >= bv as i32 => {
                next_pc = f.imm & 0x1ff;
            }
            oc::BLTU if av < bv => {
                next_pc = f.imm & 0x1ff;
            }
            oc::BGEU if av >= bv => {
                next_pc = f.imm & 0x1ff;
            }
            oc::JAL => {
                self.write_reg(f.a, link);
                next_pc = f.imm & 0x1ff;
            }
            oc::JALR => {
                self.write_reg(f.a, link);
                next_pc = bv & 0x1ff;
            }
            oc::HALT => self.halted = true,
            oc::CSRW => {
                let idx = (f.imm & 3) as usize;
                self.csrs[idx] = av;
            }
            _ => {}
        }
        // machine software interrupt: pending & enabled redirects to mtvec
        let pending = self.csrs[2] & self.csrs[1];
        if pending != 0 && !self.halted {
            self.csrs[4] = pending.trailing_zeros(); // mcause
            self.csrs[5] = self.pc; // mepc
            next_pc = self.csrs[0] & 0x1ff; // mtvec
        }
        if !self.halted {
            self.pc = next_pc;
        }
        self.cycles += 1;
    }

    /// Runs until halt or `max_cycles`. Returns true if halted.
    pub fn run(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.halted {
                return true;
            }
            self.step();
        }
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr5::assemble;

    #[test]
    fn branches_compare_two_registers() {
        let p = assemble(
            "
                li   x1, -1
                li   x2, 1
                blt  x1, x2, signed
                li   x3, 0
                halt
        signed: bltu x1, x2, wrong
                li   x3, 7    ; -1 unsigned is large, so BLTU not taken
                halt
        wrong:  li   x3, 9
                halt
        ",
        )
        .unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(20));
        assert_eq!(iss.regs[3], 7);
    }

    #[test]
    fn jal_links() {
        let p = assemble(
            "
            jal x1, target
            nop
    target: halt
        ",
        )
        .unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(10));
        assert_eq!(iss.regs[1], 1);
        assert_eq!(iss.pc, 2);
    }

    #[test]
    fn csr_software_interrupt_traps_to_mtvec() {
        let p = assemble(
            "
            li   x1, handler
            csrw 0, x1        ; mtvec = handler
            li   x2, 1
            csrw 1, x2        ; mie = 1
            csrw 2, x2        ; msip = 1 -> trap
            li   x3, 99       ; skipped by the trap
            halt
        handler:
            csrw 2, x4        ; clear msip first (x4 = 0), else the
                              ; level-triggered interrupt re-fires
            li   x3, 42
            halt
        ",
        )
        .unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(30));
        assert_eq!(
            iss.regs[3], 42,
            "trap must redirect before li x3, 99 commits"
        );
        assert_eq!(iss.csrs[4], 0, "mcause records the pending bit");
        assert_eq!(iss.csrs[5], 4, "mepc records the trapping pc");
    }

    #[test]
    fn register_shifts() {
        let p = assemble("li x1, 3\n li x2, 5\n sll x3, x2, x1\n halt").unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(10));
        assert_eq!(iss.regs[3], 40);
    }
}
