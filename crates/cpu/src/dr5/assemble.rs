//! Two-pass assembler for the dr5 ISA (RISC-V-flavored, `x0`-`x15`).

use crate::asm::{expect_args, first_pass, parse_imm, parse_mem, parse_reg, AsmError, Stmt};

use super::opcodes as oc;

fn enc(op: u32, a: u32, b: u32, c: u32, imm: u32) -> u32 {
    op << 26 | a << 22 | b << 18 | c << 14 | (imm & 0x3fff)
}

fn imm14_range(v: i64, line: usize) -> Result<u32, AsmError> {
    if !(-8192..=16383).contains(&v) {
        return Err(AsmError::new(
            line,
            format!("immediate {v} out of 14-bit range"),
        ));
    }
    Ok((v as u32) & 0x3fff)
}

/// Assembles dr5 source into 32-bit program words.
///
/// Registers are `x0`-`x15` (`x0` reads as zero); `j label` is a pseudo for
/// `jal x0, label`; `mv a, b` is a pseudo for `addi a, b, 0`.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending source line.
///
/// # Example
///
/// ```
/// let program = symsim_cpu::dr5::assemble("
///     li   x1, 21
///     add  x1, x1, x1
///     halt
/// ").expect("assembles");
/// assert_eq!(program.len(), 3);
/// ```
pub fn assemble(src: &str) -> Result<Vec<u32>, AsmError> {
    let (stmts, labels) = first_pass(src)?;
    stmts.iter().map(|s| encode(s, &labels)).collect()
}

fn encode(stmt: &Stmt, labels: &std::collections::HashMap<String, u64>) -> Result<u32, AsmError> {
    let line = stmt.line;
    let reg = |i: usize| parse_reg(&stmt.args[i], "x", 16, line);
    let imm = |i: usize| -> Result<u32, AsmError> {
        imm14_range(parse_imm(&stmt.args[i], labels, line)?, line)
    };
    let rrr = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 3)?;
        Ok(enc(op, reg(0)?, reg(1)?, reg(2)?, 0))
    };
    let rri = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 3)?;
        Ok(enc(op, reg(0)?, reg(1)?, 0, imm(2)?))
    };
    let branch = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 3)?;
        Ok(enc(op, reg(0)?, reg(1)?, 0, imm(2)?))
    };
    let memop = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 2)?;
        let a = reg(0)?;
        let (off, base) = parse_mem(&stmt.args[1], "x", 16, labels, line)?;
        Ok(enc(op, a, base, 0, imm14_range(off, line)?))
    };
    match stmt.op.as_str() {
        "nop" => {
            expect_args(stmt, 0)?;
            Ok(enc(oc::NOP, 0, 0, 0, 0))
        }
        "li" => {
            expect_args(stmt, 2)?;
            Ok(enc(oc::LI, reg(0)?, 0, 0, imm(1)?))
        }
        "mv" => {
            expect_args(stmt, 2)?;
            Ok(enc(oc::ADDI, reg(0)?, reg(1)?, 0, 0))
        }
        "add" => rrr(oc::ADD, stmt),
        "sub" => rrr(oc::SUB, stmt),
        "and" => rrr(oc::AND, stmt),
        "or" => rrr(oc::OR, stmt),
        "xor" => rrr(oc::XOR, stmt),
        "slt" => rrr(oc::SLT, stmt),
        "sltu" => rrr(oc::SLTU, stmt),
        "addi" => rri(oc::ADDI, stmt),
        "andi" => rri(oc::ANDI, stmt),
        "ori" => rri(oc::ORI, stmt),
        "xori" => rri(oc::XORI, stmt),
        "slli" => rri(oc::SLLI, stmt),
        "srli" => rri(oc::SRLI, stmt),
        "srai" => rri(oc::SRAI, stmt),
        "sll" => rrr(oc::SLL, stmt),
        "srl" => rrr(oc::SRL, stmt),
        "sra" => rrr(oc::SRA, stmt),
        "lw" => memop(oc::LW, stmt),
        "sw" => memop(oc::SW, stmt),
        "beq" => branch(oc::BEQ, stmt),
        "bne" => branch(oc::BNE, stmt),
        "blt" => branch(oc::BLT, stmt),
        "bge" => branch(oc::BGE, stmt),
        "bltu" => branch(oc::BLTU, stmt),
        "bgeu" => branch(oc::BGEU, stmt),
        "jal" => {
            expect_args(stmt, 2)?;
            Ok(enc(oc::JAL, reg(0)?, 0, 0, imm(1)?))
        }
        "j" => {
            expect_args(stmt, 1)?;
            Ok(enc(oc::JAL, 0, 0, 0, imm(0)?))
        }
        "jalr" => {
            expect_args(stmt, 2)?;
            Ok(enc(oc::JALR, reg(0)?, reg(1)?, 0, 0))
        }
        "csrw" => {
            // csrw <index>, <source reg>
            expect_args(stmt, 2)?;
            let idx = imm(0)?;
            Ok(enc(oc::CSRW, reg(1)?, 0, 0, idx))
        }
        "halt" => {
            expect_args(stmt, 0)?;
            Ok(enc(oc::HALT, 0, 0, 0, 0))
        }
        other => Err(AsmError::new(line, format!("unknown mnemonic \"{other}\""))),
    }
}

/// Disassembles one instruction word into the syntax [`assemble`] accepts
/// (branch/jump targets render as absolute word addresses).
///
/// # Example
///
/// ```
/// use symsim_cpu::dr5::{assemble, disassemble};
///
/// let program = assemble("bgeu x2, x3, 5").expect("assembles");
/// assert_eq!(disassemble(program[0]), "bgeu x2, x3, 5");
/// ```
pub fn disassemble(word: u32) -> String {
    let f = decode(word);
    let (a, b, c) = (f.a, f.b, f.c);
    let s = f.simm();
    match f.op {
        oc::NOP => "nop".to_string(),
        oc::LI => format!("li x{a}, {s}"),
        oc::ADD => format!("add x{a}, x{b}, x{c}"),
        oc::SUB => format!("sub x{a}, x{b}, x{c}"),
        oc::AND => format!("and x{a}, x{b}, x{c}"),
        oc::OR => format!("or x{a}, x{b}, x{c}"),
        oc::XOR => format!("xor x{a}, x{b}, x{c}"),
        oc::SLT => format!("slt x{a}, x{b}, x{c}"),
        oc::SLTU => format!("sltu x{a}, x{b}, x{c}"),
        oc::ADDI => format!("addi x{a}, x{b}, {s}"),
        oc::ANDI => format!("andi x{a}, x{b}, {s}"),
        oc::ORI => format!("ori x{a}, x{b}, {s}"),
        oc::XORI => format!("xori x{a}, x{b}, {s}"),
        oc::SLLI => format!("slli x{a}, x{b}, {}", f.imm & 31),
        oc::SRLI => format!("srli x{a}, x{b}, {}", f.imm & 31),
        oc::SRAI => format!("srai x{a}, x{b}, {}", f.imm & 31),
        oc::SLL => format!("sll x{a}, x{b}, x{c}"),
        oc::SRL => format!("srl x{a}, x{b}, x{c}"),
        oc::SRA => format!("sra x{a}, x{b}, x{c}"),
        oc::LW => format!("lw x{a}, {s}(x{b})"),
        oc::SW => format!("sw x{a}, {s}(x{b})"),
        oc::BEQ => format!("beq x{a}, x{b}, {}", f.imm),
        oc::BNE => format!("bne x{a}, x{b}, {}", f.imm),
        oc::BLT => format!("blt x{a}, x{b}, {}", f.imm),
        oc::BGE => format!("bge x{a}, x{b}, {}", f.imm),
        oc::BLTU => format!("bltu x{a}, x{b}, {}", f.imm),
        oc::BGEU => format!("bgeu x{a}, x{b}, {}", f.imm),
        oc::JAL => format!("jal x{a}, {}", f.imm),
        oc::JALR => format!("jalr x{a}, x{b}"),
        oc::HALT => "halt".to_string(),
        oc::CSRW => format!("csrw {}, x{a}", f.imm & 3),
        other => format!("; unknown opcode {other}"),
    }
}

/// Decoded fields shared by the ISS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fields {
    pub op: u32,
    pub a: usize,
    pub b: usize,
    pub c: usize,
    pub imm: u32,
}

impl Fields {
    pub fn simm(&self) -> i32 {
        (self.imm << 18) as i32 >> 18
    }
}

pub(crate) fn decode(word: u32) -> Fields {
    Fields {
        op: word >> 26,
        a: (word >> 22 & 0xf) as usize,
        b: (word >> 18 & 0xf) as usize,
        c: (word >> 14 & 0xf) as usize,
        imm: word & 0x3fff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_instructions() {
        let p = assemble("j 3\n mv x2, x3").unwrap();
        let j = decode(p[0]);
        assert_eq!((j.op, j.a, j.imm), (oc::JAL, 0, 3));
        let m = decode(p[1]);
        assert_eq!((m.op, m.a, m.b, m.imm), (oc::ADDI, 2, 3, 0));
    }

    #[test]
    fn branch_forms() {
        let p = assemble("top: bgeu x1, x2, top").unwrap();
        let f = decode(p[0]);
        assert_eq!((f.op, f.a, f.b, f.imm), (oc::BGEU, 1, 2, 0));
    }

    #[test]
    fn rejects_wrong_prefix() {
        assert!(assemble("add $1, $2, $3").is_err());
        assert!(assemble("li x16, 0").is_err());
    }
}
