//! Extension benchmarks beyond Table 1 for dr5: CRC integrity checking and
//! FIR filtering. With no hardware multiplier, the FIR inner product runs
//! through a software shift-add multiply — three nested input-dependent
//! loops, the worst case for path exploration.

use crate::harness::{Benchmark, DataImage};

/// CRC-16/CCITT over the 4 input words @8..12; result @1.
pub const CRC16: &str = "
        li   x1, 0x3fff     ; build 0xffff
        slli x1, x1, 2
        ori  x1, x1, 3      ; crc = 0xffff
        li   x7, 0x1021     ; polynomial
        li   x2, 8          ; ptr
        li   x6, 12
wloop:  sltu x4, x2, x6
        beq  x4, x0, done
        lw   x3, 0(x2)
        xor  x1, x1, x3
        li   x5, 0          ; bit counter
        li   x8, 16
bloop:  sltu x4, x5, x8
        beq  x4, x0, wnext
        srli x9, x1, 15
        andi x9, x9, 1
        slli x1, x1, 1
        beq  x9, x0, noxor
        xor  x1, x1, x7
noxor:  slli x1, x1, 16     ; mask back to 16 bits
        srli x1, x1, 16
        addi x5, x5, 1
        j    bloop
wnext:  addi x2, x2, 1
        j    wloop
done:   sw   x1, 1(x0)
        halt
";

/// 4-tap FIR over samples @8..16 with a software shift-add multiply;
/// output sum @1.
pub const FIR: &str = "
        li   x7, 0          ; accumulator
        li   x1, 3          ; i
        li   x10, 8
oloop:  sltu x4, x1, x10
        beq  x4, x0, done
        li   x2, 0          ; j
        li   x11, 4
iloop:  sltu x4, x2, x11
        beq  x4, x0, onext
        sub  x3, x1, x2
        addi x3, x3, 8
        lw   x5, 0(x3)      ; x[i-j]
        addi x3, x2, 4
        lw   x6, 0(x3)      ; c[j]
        ; x9 = x5 * x6 (software shift-add)
        li   x9, 0
mloop:  beq  x6, x0, mdone
        andi x12, x6, 1
        beq  x12, x0, mskip
        add  x9, x9, x5
mskip:  slli x5, x5, 1
        srli x6, x6, 1
        j    mloop
mdone:  add  x7, x7, x9
        addi x2, x2, 1
        j    iloop
onext:  addi x1, x1, 1
        j    oloop
done:   sw   x7, 1(x0)
        halt
";

/// FIR tap coefficients (@4..8).
pub const FIR_TAPS: [u64; 4] = [3, 5, 7, 2];

/// The extension benchmarks (`crc16`, `fir`).
pub fn extended_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "crc16",
            source: CRC16,
            data: DataImage {
                concrete: vec![],
                inputs: (8..12).collect(),
            },
            example_inputs: vec![0x1234, 0xabcd, 0x0042, 0xffff],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "fir",
            source: FIR,
            data: DataImage {
                concrete: FIR_TAPS
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (4 + i, v))
                    .collect(),
                inputs: (8..16).collect(),
            },
            example_inputs: vec![1, 2, 3, 4, 5, 6, 7, 8],
            max_cycles: 60_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr5::{assemble, Iss};

    fn run(bench: &Benchmark) -> Iss {
        let program = assemble(bench.source).expect("assembles");
        let mut iss = Iss::new(&program);
        for &(a, v) in &bench.data.concrete {
            iss.write_mem(a, v as u32);
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u32);
        }
        assert!(iss.run(bench.max_cycles), "{} must halt", bench.name);
        iss
    }

    fn crc16_ref(words: &[u16]) -> u16 {
        let mut crc = 0xffffu16;
        for &w in words {
            crc ^= w;
            for _ in 0..16 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ 0x1021
                } else {
                    crc << 1
                };
            }
        }
        crc
    }

    #[test]
    fn crc16_matches_reference() {
        let benches = extended_benchmarks();
        let iss = run(&benches[0]);
        let words: Vec<u16> = benches[0]
            .example_inputs
            .iter()
            .map(|&v| v as u16)
            .collect();
        assert_eq!(iss.mem[1], crc16_ref(&words) as u32);
    }

    #[test]
    fn fir_matches_reference_with_software_multiply() {
        let benches = extended_benchmarks();
        let iss = run(&benches[1]);
        let x = &benches[1].example_inputs;
        let mut acc = 0u32;
        for i in 3..8 {
            for j in 0..4 {
                acc = acc.wrapping_add((x[i - j] as u32).wrapping_mul(FIR_TAPS[j] as u32));
            }
        }
        assert_eq!(iss.mem[1], acc);
    }
}
