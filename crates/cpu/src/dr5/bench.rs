//! The six Table 1 benchmarks for dr5. With no hardware multiplier, `mult`
//! is a software shift-add loop whose input-dependent branches force
//! multiple simulation paths (paper §5.0.3).

use crate::harness::{Benchmark, DataImage};

/// Unsigned division by repeated subtraction. Inputs @0, @1; quotient @2,
/// remainder @3. As the paper observes for dr5 (§5.0.3), the compiler
/// lowers comparisons to `SLTU` results in integer registers tested by
/// `BEQ`/`BNE`.
pub const DIV: &str = "
        lw   x1, 0(x0)     ; dividend
        lw   x2, 1(x0)     ; divisor
        li   x3, 0         ; quotient
loop:   sltu x4, x1, x2    ; compare-as-subtraction into a register
        bne  x4, x0, done
        sub  x1, x1, x2
        addi x3, x3, 1
        j    loop
done:   sw   x3, 2(x0)
        sw   x1, 3(x0)
        halt
";

/// In-place insertion sort of the 8-element array @8..16.
pub const INSORT: &str = "
        li   x1, 1         ; i
        li   x8, 8
outer:  sltu x4, x1, x8    ; i < 8?
        beq  x4, x0, done
        addi x5, x1, 8
        lw   x3, 0(x5)     ; key = a[i]
        mv   x2, x1        ; j = i
inner:  beq  x2, x0, place
        addi x5, x2, 8
        lw   x6, -1(x5)    ; a[j-1]
        sltu x4, x3, x6    ; key < a[j-1]?
        beq  x4, x0, place
        sw   x6, 0(x5)
        addi x2, x2, -1
        j    inner
place:  addi x5, x2, 8
        sw   x3, 0(x5)
        addi x1, x1, 1
        j    outer
done:   halt
";

/// Binary search for key @0 in the sorted 16-word table @8..24; index @1
/// (-1 when absent).
pub const BINSEARCH: &str = "
        lw   x1, 0(x0)     ; key
        li   x2, 0         ; lo
        li   x3, 16        ; hi
loop:   sltu x4, x2, x3    ; lo < hi?
        beq  x4, x0, nf
        add  x5, x2, x3
        srli x5, x5, 1     ; mid
        addi x6, x5, 8
        lw   x7, 0(x6)     ; a[mid]
        beq  x7, x1, found
        sltu x4, x7, x1    ; a[mid] < key?
        beq  x4, x0, above
        addi x2, x5, 1     ; lo = mid+1
        j    loop
above:  mv   x3, x5
        j    loop
found:  sw   x5, 1(x0)
        halt
nf:     li   x4, -1
        sw   x4, 1(x0)
        halt
";

/// Threshold detector over 16 samples @8..24; threshold @0; count @1.
/// Two conditional branches per iteration.
pub const THOLD: &str = "
        lw   x1, 0(x0)     ; threshold
        li   x2, 8         ; ptr
        li   x3, 0         ; count
        li   x6, 24
loop:   sltu x4, x2, x6    ; ptr < end?
        beq  x4, x0, done  ; branch 1
        lw   x5, 0(x2)
        sltu x4, x5, x1    ; sample < threshold?
        bne  x4, x0, skip  ; branch 2
        addi x3, x3, 1
skip:   addi x2, x2, 1
        j    loop
done:   sw   x3, 1(x0)
        halt
";

/// Unsigned multiplication in software (shift-add): the compiler's library
/// routine on multiplier-less darkRiscV. Inputs @0, @1; product @2.
/// The bit-test branch is input-dependent, so co-analysis explores many
/// paths — unlike the hardware-multiplier CPUs (paper Fig. 6).
pub const MULT: &str = "
        lw   x1, 0(x0)     ; multiplicand
        lw   x2, 1(x0)     ; multiplier
        li   x3, 0         ; product
loop:   beq  x2, x0, done
        andi x4, x2, 1
        beq  x4, x0, skip  ; input-dependent bit test
        add  x3, x3, x1
skip:   slli x1, x1, 1
        srli x2, x2, 1
        j    loop
done:   sw   x3, 2(x0)
        halt
";

/// 32-bit TEA, 8 rounds. v @0, @1; key @4..8 and delta @9 concrete;
/// ciphertext @2, @3. One path.
pub const TEA8: &str = "
        lw   x1, 0(x0)     ; v0
        lw   x2, 1(x0)     ; v1
        li   x3, 0         ; sum
        li   x4, 0         ; round
round:  lw   x5, 9(x0)     ; delta
        add  x3, x3, x5
        slli x5, x2, 4
        lw   x6, 4(x0)
        add  x5, x5, x6
        add  x6, x2, x3
        xor  x5, x5, x6
        srli x6, x2, 5
        lw   x7, 5(x0)
        add  x6, x6, x7
        xor  x5, x5, x6
        add  x1, x1, x5    ; v0 += ...
        slli x5, x1, 4
        lw   x6, 6(x0)
        add  x5, x5, x6
        add  x6, x1, x3
        xor  x5, x5, x6
        srli x6, x1, 5
        lw   x7, 7(x0)
        add  x6, x6, x7
        xor  x5, x5, x6
        add  x2, x2, x5    ; v1 += ...
        addi x4, x4, 1
        li   x8, 8
        bne  x4, x8, round
        sw   x1, 2(x0)
        sw   x2, 3(x0)
        halt
";

/// TEA key constants (@4..8).
pub const TEA_KEY: [u64; 4] = [0xa56b_abcd, 0x0000_f00d, 0xdead_beef, 0x0bad_c0de];
/// TEA delta (@9).
pub const TEA_DELTA: u64 = 0x9e37_79b9;

/// Sorted lookup table for [`BINSEARCH`] (@8..24).
pub const SEARCH_TABLE: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// The benchmark named `name`.
///
/// # Panics
///
/// Panics on an unknown name; use [`crate::BENCHMARK_NAMES`].
pub fn benchmark(name: &str) -> Benchmark {
    benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark \"{name}\""))
}

/// All six Table 1 benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "div",
            source: DIV,
            data: DataImage {
                concrete: vec![],
                inputs: vec![0, 1],
            },
            example_inputs: vec![100, 7],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "insort",
            source: INSORT,
            data: DataImage {
                concrete: vec![],
                inputs: (8..16).collect(),
            },
            example_inputs: vec![5, 2, 9, 1, 7, 3, 8, 0],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "binsearch",
            source: BINSEARCH,
            data: DataImage {
                concrete: SEARCH_TABLE
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (8 + i, v))
                    .collect(),
                inputs: vec![0],
            },
            example_inputs: vec![13],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "thold",
            source: THOLD,
            data: DataImage {
                concrete: vec![],
                inputs: std::iter::once(0).chain(8..24).collect(),
            },
            example_inputs: vec![
                50, 10, 60, 70, 20, 80, 30, 90, 40, 55, 45, 65, 35, 75, 25, 85, 15,
            ],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "mult",
            source: MULT,
            data: DataImage {
                concrete: vec![],
                inputs: vec![0, 1],
            },
            // small operands keep the shift-add path tree tractable
            example_inputs: vec![13, 11],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "tea8",
            source: TEA8,
            data: DataImage {
                concrete: TEA_KEY
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (4 + i, v))
                    .chain(std::iter::once((9, TEA_DELTA)))
                    .collect(),
                inputs: vec![0, 1],
            },
            example_inputs: vec![0x0123_4567, 0x89ab_cdef],
            max_cycles: 10_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dr5::{assemble, Iss};

    fn run_iss(bench: &Benchmark) -> Iss {
        let program = assemble(bench.source).expect("benchmark assembles");
        let mut iss = Iss::new(&program);
        for &(a, v) in &bench.data.concrete {
            iss.write_mem(a, v as u32);
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u32);
        }
        assert!(iss.run(bench.max_cycles), "benchmark must halt");
        iss
    }

    #[test]
    fn div_works() {
        let iss = run_iss(&benchmark("div"));
        assert_eq!(iss.mem[2], 14);
        assert_eq!(iss.mem[3], 2);
    }

    #[test]
    fn insort_sorts() {
        let iss = run_iss(&benchmark("insort"));
        let mut expect = [5u32, 2, 9, 1, 7, 3, 8, 0];
        expect.sort_unstable();
        assert_eq!(&iss.mem[8..16], &expect[..]);
    }

    #[test]
    fn binsearch_finds() {
        let iss = run_iss(&benchmark("binsearch"));
        assert_eq!(iss.mem[1], 5);
    }

    #[test]
    fn thold_counts() {
        let iss = run_iss(&benchmark("thold"));
        assert_eq!(iss.mem[1], 8); // samples >= 50
    }

    #[test]
    fn software_mult_works() {
        let iss = run_iss(&benchmark("mult"));
        assert_eq!(iss.mem[2], 143);
    }

    #[test]
    fn tea8_matches_reference() {
        let iss = run_iss(&benchmark("tea8"));
        let (mut v0, mut v1) = (0x0123_4567u32, 0x89ab_cdefu32);
        let k: Vec<u32> = TEA_KEY.iter().map(|&v| v as u32).collect();
        let mut sum = 0u32;
        for _ in 0..8 {
            sum = sum.wrapping_add(TEA_DELTA as u32);
            v0 = v0.wrapping_add(
                (v1 << 4).wrapping_add(k[0]) ^ v1.wrapping_add(sum) ^ (v1 >> 5).wrapping_add(k[1]),
            );
            v1 = v1.wrapping_add(
                (v0 << 4).wrapping_add(k[2]) ^ v0.wrapping_add(sum) ^ (v0 >> 5).wrapping_add(k[3]),
            );
        }
        assert_eq!(iss.mem[2], v0);
        assert_eq!(iss.mem[3], v1);
    }

    #[test]
    fn all_assemble_and_halt() {
        for b in benchmarks() {
            let _ = run_iss(&b);
        }
    }
}
