//! `dr5` — a darkRiscV/RV32E-style core.
//!
//! Matches the dr5 character of the paper's Table 2:
//!
//! * 32-bit datapath, 16 integer registers (`x0` hardwired to zero) — the
//!   RV32E register reduction;
//! * the full RISC-V branch set comparing two registers (`BEQ`/`BNE`/`BLT`/
//!   `BGE`/`BLTU`/`BGEU`), with compare results living in registers when
//!   produced by `SLT`/`SLTU`;
//! * **no hardware multiplier** — `mult` is a software shift-add loop with
//!   input-dependent conditional branches, which is why dr5 needs more than
//!   one simulation path for `mult` while bm32/omsp16 need exactly one
//!   (paper §5.0.3, Fig. 6);
//! * lean core with no peripherals, hence the smallest bespoke reduction
//!   (paper Fig. 5).

mod assemble;
mod bench;
mod ext;
mod iss;

pub use assemble::{assemble, disassemble};
pub use bench::{benchmark, benchmarks};
pub use ext::extended_benchmarks;
pub use iss::Iss;

use symsim_netlist::{Bus, RtlBuilder};

use crate::harness::{any, mux_tree, select, select1, Cpu};

/// Program memory depth in 32-bit words.
pub const PMEM_DEPTH: usize = 512;
/// Data memory depth in 32-bit words.
pub const DMEM_DEPTH: usize = 256;

pub(crate) mod opcodes {
    pub const NOP: u32 = 0;
    pub const LI: u32 = 1;
    pub const ADD: u32 = 2;
    pub const SUB: u32 = 3;
    pub const AND: u32 = 4;
    pub const OR: u32 = 5;
    pub const XOR: u32 = 6;
    pub const SLT: u32 = 7;
    pub const SLTU: u32 = 8;
    pub const ADDI: u32 = 9;
    pub const ANDI: u32 = 10;
    pub const ORI: u32 = 11;
    pub const XORI: u32 = 12;
    pub const SLLI: u32 = 13;
    pub const SRLI: u32 = 14;
    pub const SRAI: u32 = 15;
    pub const SLL: u32 = 16;
    pub const SRL: u32 = 17;
    pub const SRA: u32 = 18;
    pub const LW: u32 = 19;
    pub const SW: u32 = 20;
    pub const BEQ: u32 = 21;
    pub const BNE: u32 = 22;
    pub const BLT: u32 = 23;
    pub const BGE: u32 = 24;
    pub const BLTU: u32 = 25;
    pub const BGEU: u32 = 26;
    pub const JAL: u32 = 27;
    pub const JALR: u32 = 28;
    pub const HALT: u32 = 29;
    pub const CSRW: u32 = 30;
}

/// CSR indices accepted by `csrw` (machine-mode subset).
pub(crate) mod csr {
    pub const MTVEC: u32 = 0;
    pub const MIE: u32 = 1;
    pub const MSIP: u32 = 2;
    pub const MSCRATCH: u32 = 3;
}

/// Builds the dr5 gate-level netlist and its co-analysis interface.
pub fn build() -> Cpu {
    const W: usize = 32;
    let mut b = RtlBuilder::new("dr5");

    // ---- architectural state ----
    let pc_r = b.reg("pc", 9, 0);
    let pcq = pc_r.q.clone();
    let halted_r = b.reg("halted_r", 1, 0);
    let haltq = halted_r.q.clone();
    let rf: Vec<_> = (1..16).map(|i| b.reg_x(&format!("rf{i}"), W)).collect();
    let zero_w = b.const_word(0, W);
    let mut rfq: Vec<Bus> = vec![zero_w.clone()];
    rfq.extend(rf.iter().map(|r| r.q.clone()));

    // ---- fetch / fields ----
    let pmem = b.memory("pmem", PMEM_DEPTH, 32);
    let instr = b.mem_read(pmem, &pcq);
    let op = instr.slice(26, 32);
    let a_f = instr.slice(22, 26); // rd / store-value / branch lhs
    let b_f = instr.slice(18, 22); // rs1 / branch rhs
    let c_f = instr.slice(14, 18); // rs2
    let imm14 = instr.slice(0, 14);
    let imm = b.sext(&imm14, W);

    // ---- decode ----
    let dec = |b: &mut RtlBuilder, code: u32| {
        let c = b.const_word(code as u64, 6);
        b.eq(&op, &c)
    };
    use opcodes as oc;
    let is_li = dec(&mut b, oc::LI);
    let is_add = dec(&mut b, oc::ADD);
    let is_sub = dec(&mut b, oc::SUB);
    let is_and = dec(&mut b, oc::AND);
    let is_or = dec(&mut b, oc::OR);
    let is_xor = dec(&mut b, oc::XOR);
    let is_slt = dec(&mut b, oc::SLT);
    let is_sltu = dec(&mut b, oc::SLTU);
    let is_addi = dec(&mut b, oc::ADDI);
    let is_andi = dec(&mut b, oc::ANDI);
    let is_ori = dec(&mut b, oc::ORI);
    let is_xori = dec(&mut b, oc::XORI);
    let is_slli = dec(&mut b, oc::SLLI);
    let is_srli = dec(&mut b, oc::SRLI);
    let is_srai = dec(&mut b, oc::SRAI);
    let is_sll = dec(&mut b, oc::SLL);
    let is_srl = dec(&mut b, oc::SRL);
    let is_sra = dec(&mut b, oc::SRA);
    let is_lw = dec(&mut b, oc::LW);
    let is_sw = dec(&mut b, oc::SW);
    let is_beq = dec(&mut b, oc::BEQ);
    let is_bne = dec(&mut b, oc::BNE);
    let is_blt = dec(&mut b, oc::BLT);
    let is_bge = dec(&mut b, oc::BGE);
    let is_bltu = dec(&mut b, oc::BLTU);
    let is_bgeu = dec(&mut b, oc::BGEU);
    let is_jal = dec(&mut b, oc::JAL);
    let is_jalr = dec(&mut b, oc::JALR);
    let is_halt = dec(&mut b, oc::HALT);
    let is_csrw = dec(&mut b, oc::CSRW);

    let not_halt = b.not1(haltq.bit(0));

    // ---- register read / operand select ----
    let a_val = mux_tree(&mut b, &a_f, &rfq);
    let b_val = mux_tree(&mut b, &b_f, &rfq);
    let c_val = mux_tree(&mut b, &c_f, &rfq);
    let uses_imm = any(
        &mut b,
        &[
            is_li, is_addi, is_andi, is_ori, is_xori, is_slli, is_srli, is_srai,
        ],
    );
    let opc = b.mux(uses_imm, &c_val, &imm);

    // ---- ALU ----
    let zero1 = b.zero();
    let (add_res, _) = b.add_carry(&b_val, &opc, zero1);
    let (sub_res, _) = b.sub_carry(&b_val, &opc);
    let and_res = b.and(&b_val, &opc);
    let or_res = b.or(&b_val, &opc);
    let xor_res = b.xor(&b_val, &opc);
    let lt_s = b.lt_s(&b_val, &opc);
    let lt_u = b.lt_u(&b_val, &opc);
    let slt_res = b.zext(&Bus::from_nets(vec![lt_s]), W);
    let sltu_res = b.zext(&Bus::from_nets(vec![lt_u]), W);
    let shamt = opc.slice(0, 5); // imm or rs2, already muxed
    let sll_res = b.shl_barrel(&b_val, &shamt);
    let srl_res = b.shr_barrel(&b_val, &shamt);
    let sra_res = b.sra_barrel(&b_val, &shamt);
    let one9_link = b.const_word(1, 9);
    let pc_plus_link = b.add(&pcq, &one9_link);
    let link = b.zext(&pc_plus_link, W);
    let is_addish = any(&mut b, &[is_add, is_addi]);
    let is_andish = any(&mut b, &[is_and, is_andi]);
    let is_orish = any(&mut b, &[is_or, is_ori]);
    let is_xorish = any(&mut b, &[is_xor, is_xori]);
    let is_sllish = any(&mut b, &[is_sll, is_slli]);
    let is_srlish = any(&mut b, &[is_srl, is_srli]);
    let is_sraish = any(&mut b, &[is_sra, is_srai]);
    let is_jump = any(&mut b, &[is_jal, is_jalr]);
    let alu_res = select(
        &mut b,
        &opc, // LI passes the immediate through
        &[
            (is_addish, add_res),
            (is_sub, sub_res),
            (is_andish, and_res),
            (is_orish, or_res),
            (is_xorish, xor_res),
            (is_slt, slt_res),
            (is_sltu, sltu_res),
            (is_sllish, sll_res),
            (is_srlish, srl_res),
            (is_sraish, sra_res),
            (is_jump, link),
        ],
    );

    // ---- data memory ----
    let addr = b.add(&b_val, &imm);
    let addr_hi = addr.slice(8, W);
    let is_dmem = b.is_zero(&addr_hi);
    let dmem = b.memory("dmem", DMEM_DEPTH, W);
    let daddr = addr.slice(0, 8);
    let dmem_rdata = b.mem_read(dmem, &daddr);
    let st_en = b.and1(is_sw, not_halt);
    let dmem_we = b.and1(st_en, is_dmem);
    b.mem_write(dmem, &daddr, &a_val, dmem_we);

    // ---- write-back ----
    let wdata = b.mux(is_lw, &alu_res, &dmem_rdata);
    let writes_reg = any(
        &mut b,
        &[
            is_li, is_addish, is_sub, is_andish, is_orish, is_xorish, is_slt, is_sltu, is_sllish,
            is_srlish, is_sraish, is_lw, is_jump,
        ],
    );
    let wr_en = b.and1(writes_reg, not_halt);
    let mut reg_nets: Vec<Vec<symsim_netlist::NetId>> = vec![zero_w.as_nets().to_vec()];
    for (i, handle) in rf.into_iter().enumerate() {
        let c = b.const_word(i as u64 + 1, 4);
        let hit = b.eq(&a_f, &c);
        let en = b.and1(wr_en, hit);
        let q = handle.q.clone();
        let next = b.mux(en, &q, &wdata);
        reg_nets.push(q.as_nets().to_vec());
        b.drive_reg(handle, &next);
    }

    // ---- control flow ----
    // the three comparator outputs all derive from the full 32-bit register
    // operands; with compiler-style SLT/SLTU + BEQ sequences the compare
    // results also occupy registers — both mechanisms behind dr5's large
    // path counts (paper §5.0.3). All three are monitored and forced.
    let diff = b.xor(&a_val, &b_val);
    let eq_raw = b.is_zero(&diff);
    let eq = b.name_net("cmp_eq", eq_raw);
    let neq = b.not1(eq);
    let blt_raw = b.lt_s(&a_val, &b_val);
    let blt_s = b.name_net("cmp_lt", blt_raw);
    let bge_s = b.not1(blt_s);
    let bltu_raw = b.lt_u(&a_val, &b_val);
    let blt_u = b.name_net("cmp_ltu", bltu_raw);
    let bge_u = b.not1(blt_u);
    let cond_raw = select1(
        &mut b,
        zero1,
        &[
            (is_beq, eq),
            (is_bne, neq),
            (is_blt, blt_s),
            (is_bge, bge_s),
            (is_bltu, blt_u),
            (is_bgeu, bge_u),
        ],
    );
    let is_branch_raw = any(&mut b, &[is_beq, is_bne, is_blt, is_bge, is_bltu, is_bgeu]);
    let is_branch_live = b.and1(is_branch_raw, not_halt);
    let is_branch = b.name_net("is_branch", is_branch_live);
    let taken = b.and1(is_branch, cond_raw);

    // ---- machine-mode CSR / software-interrupt block ----
    // darkRiscV carries machine-mode trap plumbing the Table 1 benchmarks
    // never enable: the `csrw`-written state stays at its reset value, so
    // co-analysis proves the whole block unexercisable and bespoke
    // generation prunes it (part of dr5's Fig. 5 reduction headroom).
    let csr_we = b.and1(is_csrw, not_halt);
    let csr_idx = imm14.slice(0, 2);
    let csr_reg = |b: &mut RtlBuilder, name: &str, idx: u32| -> Bus {
        let c = b.const_word(idx as u64, 2);
        let hit = b.eq(&csr_idx, &c);
        let we = b.and1(csr_we, hit);
        b.reg_en(name, &a_val, we, 0)
    };
    let mtvec = csr_reg(&mut b, "csr_mtvec", csr::MTVEC);
    let mie = csr_reg(&mut b, "csr_mie", csr::MIE);
    let msip = csr_reg(&mut b, "csr_msip", csr::MSIP);
    let _mscratch = csr_reg(&mut b, "csr_mscratch", csr::MSCRATCH);
    let pending = b.and(&msip, &mie);
    let trap_raw = b.or_reduce(&pending);
    let trap = b.and1(trap_raw, not_halt);
    // interrupt cause priority encoder (lowest pending bit wins)
    let mut cause = b.const_word(0, 5);
    for i in (0..32).rev() {
        let c = b.const_word(i as u64, 5);
        cause = b.mux(pending.bit(i), &cause, &c);
    }
    let cause32 = b.zext(&cause, W);
    let _mcause = b.reg_en("csr_mcause", &cause32, trap, 0);
    let pc32 = b.zext(&pcq, W);
    let _mepc = b.reg_en("csr_mepc", &pc32, trap, 0);

    let one9 = b.const_word(1, 9);
    let pc_plus = b.add(&pcq, &one9);
    let target_imm = imm14.slice(0, 9);
    let target_reg = b_val.slice(0, 9);
    let next0 = b.mux(taken, &pc_plus, &target_imm);
    let next1 = b.mux(is_jal, &next0, &target_imm);
    let next2 = b.mux(is_jalr, &next1, &target_reg);
    let trap_target = mtvec.slice(0, 9);
    let next3 = b.mux(trap, &next2, &trap_target);
    let next_pc = b.mux(haltq.bit(0), &next3, &pcq);
    b.drive_reg(pc_r, &next_pc);

    // ---- halt / finish ----
    let halt_set = b.and1(is_halt, not_halt);
    let halt_next_bit = b.or1(haltq.bit(0), halt_set);
    let halt_next = Bus::from_nets(vec![halt_next_bit]);
    b.drive_reg(halted_r, &halt_next);
    let _finish = b.name_net("finish", haltq.bit(0));

    let netlist = b.finish().expect("dr5 netlist is structurally valid");
    let pc_nets = (0..9)
        .map(|i| netlist.find_net(&format!("pc[{i}]")).expect("pc net"))
        .collect();
    Cpu {
        name: "dr5",
        pc: pc_nets,
        monitor_qualifier: netlist.find_net("is_branch").expect("is_branch"),
        monitor_signals: vec![
            netlist.find_net("cmp_eq").expect("cmp_eq"),
            netlist.find_net("cmp_lt").expect("cmp_lt"),
            netlist.find_net("cmp_ltu").expect("cmp_ltu"),
        ],
        split_signals: None,
        finish: netlist.find_net("finish").expect("finish"),
        pmem: netlist
            .memories()
            .iter()
            .position(|m| m.name == "pmem")
            .expect("pmem"),
        dmem: netlist
            .memories()
            .iter()
            .position(|m| m.name == "dmem")
            .expect("dmem"),
        data_width: W,
        reg_nets,
        netlist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let cpu = build();
        assert!(cpu.netlist.validate().is_ok());
        // dr5 has no multiplier: it must be leaner than bm32
        let bm = crate::bm32::build();
        assert!(
            cpu.netlist.total_gate_count() < bm.netlist.total_gate_count(),
            "dr5 {} vs bm32 {}",
            cpu.netlist.total_gate_count(),
            bm.netlist.total_gate_count()
        );
        assert_eq!(cpu.monitor_signals.len(), 3);
    }
}
