//! Golden instruction-set simulator for omsp16, used to validate the
//! gate-level model (architectural state must match cycle-for-cycle, since
//! the core is single-cycle).

use super::assemble::decode;
use super::{cond, opcodes as oc, DMEM_DEPTH};

/// Architectural + peripheral state of the omsp16 golden model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iss {
    /// Program counter (word address).
    pub pc: u16,
    /// General-purpose registers.
    pub regs: [u16; 8],
    /// Status flags `(Z, N, C, V)`.
    pub flags: (bool, bool, bool, bool),
    /// Sticky halt.
    pub halted: bool,
    /// Data memory.
    pub mem: Vec<u16>,
    /// Multiplier operand 1 (memory-mapped `0x100`).
    pub mul_op1: u16,
    /// Multiplier operand 2 (`0x101`).
    pub mul_op2: u16,
    /// GPIO output register (`0x104`).
    pub gpio_out: u16,
    /// GPIO direction register (`0x106`).
    pub gpio_dir: u16,
    /// Timer control (`0x107`).
    pub timer_ctl: u16,
    /// Timer counter (`0x108`).
    pub timer_cnt: u16,
    /// Watchdog control (`0x109`).
    pub wdt_ctl: u16,
    /// Watchdog counter (`0x10a`).
    pub wdt_cnt: u16,
    /// Cycles executed.
    pub cycles: u64,
    program: Vec<u32>,
}

impl Iss {
    /// Creates a golden model with the given program, zeroed registers and
    /// memory (matching `Cpu::prepare_concrete`).
    pub fn new(program: &[u32]) -> Iss {
        Iss {
            pc: 0,
            regs: [0; 8],
            flags: (false, false, false, false),
            halted: false,
            mem: vec![0; DMEM_DEPTH],
            mul_op1: 0,
            mul_op2: 0,
            gpio_out: 0,
            gpio_dir: 0,
            timer_ctl: 0,
            timer_cnt: 0,
            wdt_ctl: 0,
            wdt_cnt: 0,
            cycles: 0,
            program: program.to_vec(),
        }
    }

    /// Writes a data-memory word (for input setup).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write_mem(&mut self, addr: usize, value: u16) {
        self.mem[addr] = value;
    }

    fn load(&self, addr: u16) -> u16 {
        match addr >> 8 {
            0 => self.mem[(addr & 0xff) as usize],
            1 => {
                let product = (self.mul_op1 as u32) * (self.mul_op2 as u32);
                match addr & 0xf {
                    0x0 => self.mul_op1,
                    0x1 => self.mul_op2,
                    0x2 => product as u16,
                    0x3 => (product >> 16) as u16,
                    0x4 => self.gpio_out,
                    0x5 => 0, // gpio_in tied low in concrete runs
                    0x6 => self.gpio_dir,
                    0x7 => self.timer_ctl,
                    0x8 => self.timer_cnt,
                    0x9 => self.wdt_ctl,
                    0xa => self.wdt_cnt,
                    _ => 0,
                }
            }
            _ => self.mem[(addr & 0xff) as usize], // aliases, like the netlist
        }
    }

    fn store(&mut self, addr: u16, value: u16) {
        match addr >> 8 {
            0 => self.mem[(addr & 0xff) as usize] = value,
            1 => match addr & 0xf {
                0x0 => self.mul_op1 = value,
                0x1 => self.mul_op2 = value,
                0x4 => self.gpio_out = value,
                0x6 => self.gpio_dir = value,
                0x7 => self.timer_ctl = value & 1,
                0x9 => self.wdt_ctl = value & 1,
                _ => {}
            },
            _ => {}
        }
    }

    /// Executes one instruction (one cycle).
    pub fn step(&mut self) {
        // free-running peripheral counters tick like the netlist's
        if self.timer_ctl & 1 == 1 {
            self.timer_cnt = self.timer_cnt.wrapping_add(1);
        }
        if self.wdt_ctl & 1 == 1 {
            self.wdt_cnt = self.wdt_cnt.wrapping_add(1);
        }
        if self.halted {
            self.cycles += 1;
            return;
        }
        let word = *self.program.get(self.pc as usize).unwrap_or(&0);
        let f = decode(word);
        let a = self.regs[f.rd];
        let b = if matches!(
            f.op,
            oc::MOVI | oc::ADDI | oc::SUBI | oc::CMPI | oc::ANDI | oc::ORI
        ) {
            f.imm
        } else {
            self.regs[f.rs]
        };
        let mut next_pc = (self.pc + 1) & 0x1ff;
        let set_flags = |iss: &mut Iss, res: u16, c: bool, v: bool| {
            iss.flags = (res == 0, res & 0x8000 != 0, c, v);
        };
        match f.op {
            oc::NOP => {}
            oc::MOVI | oc::MOV => self.regs[f.rd] = b,
            oc::ADD | oc::ADDI => {
                let (res, c) = a.overflowing_add(b);
                let v = (a ^ b) & 0x8000 == 0 && (a ^ res) & 0x8000 != 0;
                set_flags(self, res, c, v);
                self.regs[f.rd] = res;
            }
            oc::SUB | oc::SUBI | oc::CMP | oc::CMPI => {
                let (res, borrow) = a.overflowing_sub(b);
                let v = (a ^ b) & 0x8000 != 0 && (a ^ res) & 0x8000 != 0;
                set_flags(self, res, !borrow, v); // C = no borrow (a >= b)
                if matches!(f.op, oc::SUB | oc::SUBI) {
                    self.regs[f.rd] = res;
                }
            }
            oc::AND | oc::ANDI => {
                let res = a & b;
                set_flags(self, res, false, false);
                self.regs[f.rd] = res;
            }
            oc::OR | oc::ORI => {
                let res = a | b;
                set_flags(self, res, false, false);
                self.regs[f.rd] = res;
            }
            oc::XOR => {
                let res = a ^ b;
                set_flags(self, res, false, false);
                self.regs[f.rd] = res;
            }
            oc::SHL => {
                let res = a << 1;
                set_flags(self, res, a & 0x8000 != 0, false);
                self.regs[f.rd] = res;
            }
            oc::SHR => {
                let res = a >> 1;
                set_flags(self, res, a & 1 != 0, false);
                self.regs[f.rd] = res;
            }
            oc::LD => {
                let addr = self.regs[f.rs].wrapping_add(f.imm);
                self.regs[f.rd] = self.load(addr);
            }
            oc::ST => {
                let addr = self.regs[f.rs].wrapping_add(f.imm);
                self.store(addr, a);
            }
            oc::JMP => next_pc = f.imm & 0x1ff,
            oc::JCC => {
                let (z, n, c, v) = self.flags;
                let take = match f.cc {
                    cond::JZ => z,
                    cond::JNZ => !z,
                    cond::JC => c,
                    cond::JNC => !c,
                    cond::JN => n,
                    cond::JGE => n == v,
                    cond::JL => n != v,
                    _ => false,
                };
                if take {
                    next_pc = f.imm & 0x1ff;
                }
            }
            oc::HALT => self.halted = true,
            _ => {}
        }
        self.pc = if self.halted { self.pc } else { next_pc };
        self.cycles += 1;
    }

    /// Runs until halt or `max_cycles`. Returns true if halted.
    pub fn run(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.halted {
                return true;
            }
            self.step();
        }
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omsp16::assemble;

    #[test]
    fn arithmetic_and_flags() {
        let p = assemble(
            "
            movi r1, 5
            cmpi r1, 5      ; Z=1, C=1 (5 >= 5)
            halt
        ",
        )
        .unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(10));
        assert_eq!(iss.regs[1], 5);
        assert!(iss.flags.0);
        assert!(iss.flags.2);
    }

    #[test]
    fn loop_executes() {
        // sum 1..=4 into r2
        let p = assemble(
            "
                movi r1, 4
                movi r2, 0
            loop: add r2, r1
                subi r1, 1
                jnz loop
                st  r2, 0(r1)   ; r1 == 0 here
                halt
        ",
        )
        .unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(100));
        assert_eq!(iss.mem[0], 10);
    }

    #[test]
    fn multiplier_peripheral() {
        let p = assemble(
            "
            movi r3, 0x100
            movi r1, 300
            movi r2, 250
            st   r1, 0(r3)
            st   r2, 1(r3)
            ld   r4, 2(r3)
            ld   r5, 3(r3)
            halt
        ",
        )
        .unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(20));
        let product = (iss.regs[5] as u32) << 16 | iss.regs[4] as u32;
        assert_eq!(product, 75000);
    }

    #[test]
    fn negative_offset_addressing() {
        let p = assemble(
            "
            movi r1, 10
            movi r2, 77
            st   r2, -1(r1)   ; mem[9] = 77
            ld   r3, -1(r1)
            halt
        ",
        )
        .unwrap();
        let mut iss = Iss::new(&p);
        assert!(iss.run(10));
        assert_eq!(iss.mem[9], 77);
        assert_eq!(iss.regs[3], 77);
    }
}
