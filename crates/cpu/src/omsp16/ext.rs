//! Extension benchmarks beyond the paper's Table 1, in the same ULP
//! application domains: CRC integrity checking, FIR filtering (via the
//! hardware multiplier), and a timer/GPIO "blink" that — unlike every
//! Table 1 benchmark — *uses* the peripherals, so co-analysis keeps them.

use crate::harness::{Benchmark, DataImage};

/// CRC-16/CCITT over the 4 input words @8..12 (word-at-a-time variant);
/// result @1. Bit tests on the CRC register are input-dependent branches.
pub const CRC16: &str = "
        movi r0, 0
        movi r1, 0xffff    ; crc
        movi r6, 0x1021    ; polynomial
        movi r2, 8         ; ptr
wloop:  cmpi r2, 12
        jc   done
        ld   r3, 0(r2)
        xor  r1, r3
        movi r4, 0         ; bit counter
bloop:  cmpi r4, 16
        jc   wnext
        mov  r5, r1
        andi r5, 0x8000
        cmpi r5, 0
        jz   noxor
        shl  r1
        xor  r1, r6
        jmp  bnext
noxor:  shl  r1
bnext:  addi r4, 1
        jmp  bloop
wnext:  addi r2, 1
        jmp  wloop
done:   st   r1, 1(r0)
        halt
";

/// 4-tap FIR over samples @8..16 using the hardware multiplier; the sum of
/// the valid outputs lands @1. Taps @4..8 are concrete coefficients.
pub const FIR: &str = "
        movi r0, 0
        movi r7, 0         ; accumulator
        movi r1, 3         ; i
oloop:  cmpi r1, 8
        jc   done
        movi r2, 0         ; j
iloop:  cmpi r2, 4
        jc   onext
        mov  r3, r1
        sub  r3, r2
        addi r3, 8
        ld   r4, 0(r3)     ; x[i-j]
        mov  r3, r2
        addi r3, 4
        ld   r5, 0(r3)     ; c[j]
        movi r3, 0x100
        st   r4, 0(r3)     ; multiplier operands
        st   r5, 1(r3)
        ld   r6, 2(r3)     ; product (low word)
        add  r7, r6
        addi r2, 1
        jmp  iloop
onext:  addi r1, 1
        jmp  oloop
done:   st   r7, 1(r0)
        halt
";

/// Timer-paced GPIO blink: enables the timer, waits for three successive
/// 40-cycle marks, toggling GPIO bit 0 at each. Exercises the timer and
/// GPIO blocks that the Table 1 benchmarks leave prunable.
pub const BLINK: &str = "
        movi r0, 0x100
        movi r1, 1
        st   r1, 7(r0)     ; timer_ctl = enable
        movi r2, 0         ; blink count
        movi r6, 40        ; next timer mark
bloop:  cmpi r2, 3
        jc   done
wait:   ld   r3, 8(r0)     ; timer count
        cmp  r3, r6
        jnc  wait
        ld   r4, 4(r0)     ; gpio_out
        movi r5, 1
        xor  r4, r5
        st   r4, 4(r0)
        addi r6, 40
        addi r2, 1
        jmp  bloop
done:   halt
";

/// Insertion sort with *masked, OR-based addressing*: every array index is
/// `AND`-masked to the array's power-of-two bound and combined with the
/// aligned base via `OR` instead of `ADD`, so no `X` carry chain can reach
/// the high address bits. This is the software-side mitigation for the
/// omsp16/insort over-approximation (see EXPERIMENTS.md): with plain
/// base+index addressing, unknown index bits ripple `X` into the peripheral
/// address window and conservatively mark the multiplier exercisable.
/// Array of 8 elements @16..24.
pub const INSORT_MASKED: &str = "
        movi r1, 1         ; i
outer:  cmpi r1, 8
        jc   done
        mov  r4, r1
        andi r4, 15        ; mask index
        ori  r4, 16        ; aligned base, no carry
        ld   r3, 0(r4)     ; key = a[i]
        mov  r2, r1        ; j = i
inner:  cmpi r2, 0
        jz   place
        mov  r5, r2
        subi r5, 1
        andi r5, 15        ; mask j-1
        ori  r5, 16
        ld   r6, 0(r5)     ; a[j-1]
        cmp  r3, r6
        jc   place         ; key >= a[j-1]
        mov  r4, r2
        andi r4, 15
        ori  r4, 16
        st   r6, 0(r4)     ; a[j] = a[j-1]
        subi r2, 1
        jmp  inner
place:  mov  r4, r2
        andi r4, 15
        ori  r4, 16
        st   r3, 0(r4)
        addi r1, 1
        jmp  outer
done:   halt
";

/// FIR tap coefficients (@4..8).
pub const FIR_TAPS: [u64; 4] = [3, 5, 7, 2];

/// The extension benchmarks (`crc16`, `fir`, `blink`).
pub fn extended_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "crc16",
            source: CRC16,
            data: DataImage {
                concrete: vec![],
                inputs: (8..12).collect(),
            },
            example_inputs: vec![0x1234, 0xabcd, 0x0042, 0xffff],
            max_cycles: 30_000,
        },
        Benchmark {
            name: "fir",
            source: FIR,
            data: DataImage {
                concrete: FIR_TAPS
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (4 + i, v))
                    .collect(),
                inputs: (8..16).collect(),
            },
            example_inputs: vec![1, 2, 3, 4, 5, 6, 7, 8],
            max_cycles: 30_000,
        },
        Benchmark {
            name: "blink",
            source: BLINK,
            data: DataImage {
                concrete: vec![],
                inputs: vec![],
            },
            example_inputs: vec![],
            max_cycles: 10_000,
        },
        Benchmark {
            name: "insort_m",
            source: INSORT_MASKED,
            data: DataImage {
                concrete: vec![],
                inputs: (16..24).collect(),
            },
            example_inputs: vec![5, 2, 9, 1, 7, 3, 8, 0],
            max_cycles: 30_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omsp16::{assemble, Iss};

    fn run(bench: &Benchmark) -> Iss {
        let program = assemble(bench.source).expect("assembles");
        let mut iss = Iss::new(&program);
        for &(a, v) in &bench.data.concrete {
            iss.write_mem(a, v as u16);
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u16);
        }
        assert!(iss.run(bench.max_cycles), "{} must halt", bench.name);
        iss
    }

    fn crc16_ref(words: &[u16]) -> u16 {
        let mut crc = 0xffffu16;
        for &w in words {
            crc ^= w;
            for _ in 0..16 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ 0x1021
                } else {
                    crc << 1
                };
            }
        }
        crc
    }

    #[test]
    fn crc16_matches_reference() {
        let benches = extended_benchmarks();
        let b = &benches[0];
        let iss = run(b);
        let words: Vec<u16> = b.example_inputs.iter().map(|&v| v as u16).collect();
        assert_eq!(iss.mem[1], crc16_ref(&words));
    }

    #[test]
    fn fir_matches_reference() {
        let benches = extended_benchmarks();
        let b = &benches[1];
        let iss = run(b);
        let x: Vec<u16> = b.example_inputs.iter().map(|&v| v as u16).collect();
        let c: Vec<u16> = FIR_TAPS.iter().map(|&v| v as u16).collect();
        let mut acc = 0u16;
        for i in 3..8 {
            for j in 0..4 {
                acc = acc.wrapping_add(x[i - j].wrapping_mul(c[j]));
            }
        }
        assert_eq!(iss.mem[1], acc);
    }

    #[test]
    fn insort_masked_sorts() {
        let benches = extended_benchmarks();
        let b = benches.iter().find(|b| b.name == "insort_m").unwrap();
        let iss = run(b);
        let mut expect: Vec<u16> = b.example_inputs.iter().map(|&v| v as u16).collect();
        expect.sort_unstable();
        assert_eq!(&iss.mem[16..24], &expect[..]);
    }

    #[test]
    fn blink_toggles_gpio_three_times() {
        let benches = extended_benchmarks();
        let iss = run(&benches[2]);
        assert_eq!(iss.gpio_out, 1, "three toggles leave bit 0 high");
        assert!(iss.timer_cnt >= 120, "timer ran through three marks");
    }
}
