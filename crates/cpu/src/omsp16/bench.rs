//! The six Table 1 benchmarks for omsp16.
//!
//! Conventions: data memory word 0.. holds scalar inputs/outputs; arrays
//! live at word 8 upward; the peripheral block starts at word address
//! `0x100`. Input words (marked in each [`DataImage`]) are replaced by `X`s
//! during co-analysis.

use crate::harness::{Benchmark, DataImage};

/// Unsigned integer division by repeated subtraction.
/// Inputs: dividend @0, divisor @1. Outputs: quotient @2, remainder @3.
pub const DIV: &str = "
        movi r0, 0
        ld   r1, 0(r0)     ; dividend
        ld   r2, 1(r0)     ; divisor
        movi r3, 0         ; quotient
loop:   cmp  r1, r2
        jnc  done          ; dividend < divisor -> done
        sub  r1, r2
        addi r3, 1
        jmp  loop
done:   st   r3, 2(r0)
        st   r1, 3(r0)
        halt
";

/// In-place insertion sort of the 8-element array @8..16.
pub const INSORT: &str = "
        movi r0, 8         ; base
        movi r1, 1         ; i
outer:  cmpi r1, 8
        jc   done          ; i >= 8
        mov  r4, r0
        add  r4, r1
        ld   r3, 0(r4)     ; key = a[i]
        mov  r2, r1        ; j = i
inner:  cmpi r2, 0
        jz   place
        mov  r4, r0
        add  r4, r2
        ld   r5, -1(r4)    ; a[j-1]
        cmp  r3, r5
        jc   place         ; key >= a[j-1] -> stop shifting
        st   r5, 0(r4)     ; a[j] = a[j-1]
        subi r2, 1
        jmp  inner
place:  mov  r4, r0
        add  r4, r2
        st   r3, 0(r4)
        addi r1, 1
        jmp  outer
done:   halt
";

/// Binary search for key @0 in the sorted 16-word table @8..24.
/// Output: index @1 (0xffff when absent).
pub const BINSEARCH: &str = "
        movi r0, 0
        ld   r1, 0(r0)     ; key
        movi r2, 0         ; lo
        movi r3, 16        ; hi
loop:   cmp  r2, r3
        jc   notfound      ; lo >= hi
        mov  r4, r2
        add  r4, r3
        shr  r4            ; mid
        mov  r5, r4
        addi r5, 8
        ld   r6, 0(r5)     ; a[mid]
        cmp  r6, r1
        jz   found
        jc   above         ; a[mid] > key (>= and != key) -> hi = mid
        mov  r2, r4        ; else lo = mid+1
        addi r2, 1
        jmp  loop
above:  mov  r3, r4
        jmp  loop
found:  st   r4, 1(r0)
        halt
notfound:
        movi r4, 0xffff
        st   r4, 1(r0)
        halt
";

/// Digital threshold detector with rising-edge counting over 16 samples
/// @8..24; threshold @0; count of rising crossings @1. Three conditional
/// branches per iteration — the property behind the tHold anomaly of paper
/// §5.0.3 (openMSP430's compiled binary had three vs two elsewhere).
pub const THOLD: &str = "
        movi r0, 0
        ld   r1, 0(r0)     ; threshold
        movi r2, 8         ; ptr
        movi r3, 0         ; count
        movi r6, 0         ; state
loop:   cmpi r2, 24
        jc   done          ; branch 1: end of samples
        ld   r4, 0(r2)
        cmp  r4, r1
        jnc  below         ; branch 2: sample < threshold
        cmpi r6, 0
        jnz  skip          ; branch 3: already above
        addi r3, 1
        movi r6, 1
        jmp  skip
below:  movi r6, 0
skip:   addi r2, 1
        jmp  loop
done:   st   r3, 1(r0)
        halt
";

/// Unsigned multiplication via the memory-mapped 16x16 hardware multiplier.
/// Inputs @0, @1; product lo @2, hi @3. No conditional branches: one path.
pub const MULT: &str = "
        movi r0, 0
        ld   r1, 0(r0)
        ld   r2, 1(r0)
        movi r3, 0x100
        st   r1, 0(r3)     ; multiplier operand 1
        st   r2, 1(r3)     ; operand 2
        ld   r4, 2(r3)     ; product low
        ld   r5, 3(r3)     ; product high
        st   r4, 2(r0)
        st   r5, 3(r0)
        halt
";

/// 16-bit-word TEA-style cipher, 16 rounds (the tea8 kernel scaled to the
/// 16-bit datapath; see DESIGN.md). v0 @0, v1 @1; key @4..8 (constants);
/// ciphertext @2, @3. Round count is concrete, so co-analysis explores a
/// single path.
pub const TEA8: &str = "
        movi r0, 0
        ld   r1, 0(r0)     ; v0
        ld   r2, 1(r0)     ; v1
        movi r3, 0         ; sum
        movi r4, 0         ; round
round:  addi r3, 0x9e37    ; sum += delta
        mov  r5, r2        ; t = v1<<4
        shl  r5
        shl  r5
        shl  r5
        shl  r5
        ld   r6, 4(r0)
        add  r5, r6        ; t += k0
        mov  r6, r2
        add  r6, r3        ; v1 + sum
        xor  r5, r6
        mov  r6, r2        ; v1>>5
        shr  r6
        shr  r6
        shr  r6
        shr  r6
        shr  r6
        ld   r7, 5(r0)
        add  r6, r7        ; += k1
        xor  r5, r6
        add  r1, r5        ; v0 += ...
        mov  r5, r1        ; second half with v0, k2, k3
        shl  r5
        shl  r5
        shl  r5
        shl  r5
        ld   r6, 6(r0)
        add  r5, r6
        mov  r6, r1
        add  r6, r3
        xor  r5, r6
        mov  r6, r1
        shr  r6
        shr  r6
        shr  r6
        shr  r6
        shr  r6
        ld   r7, 7(r0)
        add  r6, r7
        xor  r5, r6
        add  r2, r5        ; v1 += ...
        addi r4, 1
        cmpi r4, 16
        jnz  round
        st   r1, 2(r0)
        st   r2, 3(r0)
        halt
";

/// The TEA key schedule used by [`TEA8`] (concrete data @4..8).
pub const TEA_KEY: [u64; 4] = [0x1c2d, 0x3e4f, 0x5a6b, 0x7c8d];

/// Sorted lookup table used by [`BINSEARCH`] (concrete data @8..24).
pub const SEARCH_TABLE: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// The benchmark named `name` (Table 1 names, lower-case).
///
/// # Panics
///
/// Panics on an unknown name; use [`crate::BENCHMARK_NAMES`].
pub fn benchmark(name: &str) -> Benchmark {
    benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark \"{name}\""))
}

/// All six Table 1 benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "div",
            source: DIV,
            data: DataImage {
                concrete: vec![],
                inputs: vec![0, 1],
            },
            example_inputs: vec![100, 7],
            max_cycles: 30_000,
        },
        Benchmark {
            name: "insort",
            source: INSORT,
            data: DataImage {
                concrete: vec![],
                inputs: (8..16).collect(),
            },
            example_inputs: vec![5, 2, 9, 1, 7, 3, 8, 0],
            max_cycles: 30_000,
        },
        Benchmark {
            name: "binsearch",
            source: BINSEARCH,
            data: DataImage {
                concrete: SEARCH_TABLE
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (8 + i, v))
                    .collect(),
                inputs: vec![0],
            },
            example_inputs: vec![13],
            max_cycles: 30_000,
        },
        Benchmark {
            name: "thold",
            source: THOLD,
            data: DataImage {
                concrete: vec![],
                inputs: std::iter::once(0).chain(8..24).collect(),
            },
            example_inputs: vec![
                50, 10, 60, 70, 20, 80, 30, 90, 40, 55, 45, 65, 35, 75, 25, 85, 15,
            ],
            max_cycles: 60_000,
        },
        Benchmark {
            name: "mult",
            source: MULT,
            data: DataImage {
                concrete: vec![],
                inputs: vec![0, 1],
            },
            example_inputs: vec![300, 250],
            max_cycles: 10_000,
        },
        Benchmark {
            name: "tea8",
            source: TEA8,
            data: DataImage {
                concrete: TEA_KEY
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (4 + i, v))
                    .collect(),
                inputs: vec![0, 1],
            },
            example_inputs: vec![0x1234, 0x9876],
            max_cycles: 10_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omsp16::{assemble, Iss};

    fn run_iss(bench: &Benchmark) -> Iss {
        let program = assemble(bench.source).expect("benchmark assembles");
        let mut iss = Iss::new(&program);
        for &(a, v) in &bench.data.concrete {
            iss.write_mem(a, v as u16);
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u16);
        }
        assert!(iss.run(bench.max_cycles), "benchmark must halt");
        iss
    }

    #[test]
    fn div_computes_quotient_and_remainder() {
        let iss = run_iss(&benchmark("div"));
        assert_eq!(iss.mem[2], 14); // 100 / 7
        assert_eq!(iss.mem[3], 2); // 100 % 7
    }

    #[test]
    fn insort_sorts() {
        let iss = run_iss(&benchmark("insort"));
        let sorted: Vec<u16> = iss.mem[8..16].to_vec();
        let mut expect = vec![5u16, 2, 9, 1, 7, 3, 8, 0];
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn binsearch_finds_key() {
        let iss = run_iss(&benchmark("binsearch"));
        assert_eq!(iss.mem[1], 5); // 13 is at index 5
                                   // absent key
        let b = benchmark("binsearch");
        let program = assemble(b.source).unwrap();
        let mut iss = Iss::new(&program);
        for &(a, v) in &b.data.concrete {
            iss.write_mem(a, v as u16);
        }
        iss.write_mem(0, 14);
        assert!(iss.run(b.max_cycles));
        assert_eq!(iss.mem[1], 0xffff);
    }

    #[test]
    fn thold_counts_rising_edges() {
        let iss = run_iss(&benchmark("thold"));
        // samples vs threshold 50: rising edges at 60, 80, 90, 55, 65, 75, 85
        let b = benchmark("thold");
        let thresh = b.example_inputs[0] as u16;
        let samples: Vec<u16> = b.example_inputs[1..].iter().map(|&v| v as u16).collect();
        let mut state = false;
        let mut count = 0;
        for s in samples {
            if s >= thresh {
                if !state {
                    count += 1;
                }
                state = true;
            } else {
                state = false;
            }
        }
        assert_eq!(iss.mem[1], count);
    }

    #[test]
    fn mult_uses_peripheral() {
        let iss = run_iss(&benchmark("mult"));
        let product = (iss.mem[3] as u32) << 16 | iss.mem[2] as u32;
        assert_eq!(product, 300 * 250);
    }

    #[test]
    fn tea8_matches_reference() {
        let iss = run_iss(&benchmark("tea8"));
        // 16-bit TEA reference
        let (mut v0, mut v1) = (0x1234u16, 0x9876u16);
        let k: Vec<u16> = TEA_KEY.iter().map(|&v| v as u16).collect();
        let mut sum = 0u16;
        for _ in 0..16 {
            sum = sum.wrapping_add(0x9e37);
            v0 = v0.wrapping_add(
                (v1 << 4).wrapping_add(k[0]) ^ v1.wrapping_add(sum) ^ (v1 >> 5).wrapping_add(k[1]),
            );
            v1 = v1.wrapping_add(
                (v0 << 4).wrapping_add(k[2]) ^ v0.wrapping_add(sum) ^ (v0 >> 5).wrapping_add(k[3]),
            );
        }
        assert_eq!(iss.mem[2], v0);
        assert_eq!(iss.mem[3], v1);
        // ciphertext differs from plaintext
        assert_ne!((iss.mem[2], iss.mem[3]), (0x1234, 0x9876));
    }

    #[test]
    fn all_benchmarks_assemble_and_halt() {
        for b in benchmarks() {
            let _ = run_iss(&b);
        }
    }
}
