//! Two-pass assembler for the omsp16 ISA.

use crate::asm::{expect_args, first_pass, parse_imm, parse_mem, parse_reg, AsmError, Stmt};

use super::{cond, opcodes as oc};

fn enc(op: u32, rd: u32, rs: u32, cc: u32, imm: u16) -> u32 {
    op << 26 | rd << 23 | rs << 20 | cc << 16 | imm as u32
}

/// Assembles omsp16 source into 32-bit program words.
///
/// Syntax: `mnemonic operands` with `;`/`#` comments and `label:` targets.
/// Registers are `r0`-`r7`; memory operands are `imm(rN)`; immediates are
/// decimal, hex (`0x...`), or labels.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending source line.
///
/// # Example
///
/// ```
/// let program = symsim_cpu::omsp16::assemble("
///     movi r1, 41
///     addi r1, 1
///     halt
/// ").expect("assembles");
/// assert_eq!(program.len(), 3);
/// ```
pub fn assemble(src: &str) -> Result<Vec<u32>, AsmError> {
    let (stmts, labels) = first_pass(src)?;
    let mut out = Vec::with_capacity(stmts.len());
    for stmt in &stmts {
        out.push(encode(stmt, &labels)?);
    }
    Ok(out)
}

fn encode(stmt: &Stmt, labels: &std::collections::HashMap<String, u64>) -> Result<u32, AsmError> {
    let line = stmt.line;
    let reg = |i: usize| parse_reg(&stmt.args[i], "r", 8, line);
    let imm16 = |i: usize| -> Result<u16, AsmError> {
        let v = parse_imm(&stmt.args[i], labels, line)?;
        if !(-32768..=65535).contains(&v) {
            return Err(AsmError::new(
                line,
                format!("immediate {v} out of 16-bit range"),
            ));
        }
        Ok(v as u16)
    };
    let rr = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 2)?;
        Ok(enc(op, reg(0)?, reg(1)?, 0, 0))
    };
    let ri = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 2)?;
        Ok(enc(op, reg(0)?, 0, 0, imm16(1)?))
    };
    let r1 = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 1)?;
        Ok(enc(op, reg(0)?, 0, 0, 0))
    };
    let memop = |op: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 2)?;
        let rd = reg(0)?;
        let (imm, rs) = parse_mem(&stmt.args[1], "r", 8, labels, line)?;
        Ok(enc(op, rd, rs, 0, imm as u16))
    };
    let jump = |op: u32, cc: u32, stmt: &Stmt| -> Result<u32, AsmError> {
        expect_args(stmt, 1)?;
        Ok(enc(op, 0, 0, cc, imm16(0)?))
    };
    match stmt.op.as_str() {
        "nop" => {
            expect_args(stmt, 0)?;
            Ok(enc(oc::NOP, 0, 0, 0, 0))
        }
        "movi" => ri(oc::MOVI, stmt),
        "mov" => rr(oc::MOV, stmt),
        "add" => rr(oc::ADD, stmt),
        "addi" => ri(oc::ADDI, stmt),
        "sub" => rr(oc::SUB, stmt),
        "subi" => ri(oc::SUBI, stmt),
        "cmp" => rr(oc::CMP, stmt),
        "cmpi" => ri(oc::CMPI, stmt),
        "and" => rr(oc::AND, stmt),
        "andi" => ri(oc::ANDI, stmt),
        "or" => rr(oc::OR, stmt),
        "ori" => ri(oc::ORI, stmt),
        "xor" => rr(oc::XOR, stmt),
        "shl" => r1(oc::SHL, stmt),
        "shr" => r1(oc::SHR, stmt),
        "ld" => memop(oc::LD, stmt),
        "st" => memop(oc::ST, stmt),
        "jmp" => jump(oc::JMP, 0, stmt),
        "jz" => jump(oc::JCC, cond::JZ, stmt),
        "jnz" => jump(oc::JCC, cond::JNZ, stmt),
        "jc" => jump(oc::JCC, cond::JC, stmt),
        "jnc" => jump(oc::JCC, cond::JNC, stmt),
        "jn" => jump(oc::JCC, cond::JN, stmt),
        "jge" => jump(oc::JCC, cond::JGE, stmt),
        "jl" => jump(oc::JCC, cond::JL, stmt),
        "halt" => {
            expect_args(stmt, 0)?;
            Ok(enc(oc::HALT, 0, 0, 0, 0))
        }
        other => Err(AsmError::new(line, format!("unknown mnemonic \"{other}\""))),
    }
}

/// Disassembles one instruction word into the syntax [`assemble`] accepts
/// (jump targets render as absolute word addresses).
///
/// # Example
///
/// ```
/// use symsim_cpu::omsp16::{assemble, disassemble};
///
/// let program = assemble("addi r3, 7").expect("assembles");
/// assert_eq!(disassemble(program[0]), "addi r3, 7");
/// ```
pub fn disassemble(word: u32) -> String {
    let f = decode(word);
    let (rd, rs, imm) = (f.rd, f.rs, f.imm);
    match f.op {
        oc::NOP => "nop".to_string(),
        oc::MOVI => format!("movi r{rd}, {imm}"),
        oc::MOV => format!("mov r{rd}, r{rs}"),
        oc::ADD => format!("add r{rd}, r{rs}"),
        oc::ADDI => format!("addi r{rd}, {imm}"),
        oc::SUB => format!("sub r{rd}, r{rs}"),
        oc::SUBI => format!("subi r{rd}, {imm}"),
        oc::CMP => format!("cmp r{rd}, r{rs}"),
        oc::CMPI => format!("cmpi r{rd}, {imm}"),
        oc::AND => format!("and r{rd}, r{rs}"),
        oc::ANDI => format!("andi r{rd}, {imm}"),
        oc::OR => format!("or r{rd}, r{rs}"),
        oc::ORI => format!("ori r{rd}, {imm}"),
        oc::XOR => format!("xor r{rd}, r{rs}"),
        oc::SHL => format!("shl r{rd}"),
        oc::SHR => format!("shr r{rd}"),
        oc::LD => format!("ld r{rd}, {}(r{rs})", imm as i16),
        oc::ST => format!("st r{rd}, {}(r{rs})", imm as i16),
        oc::JMP => format!("jmp {imm}"),
        oc::JCC => {
            let mnemonic = match f.cc {
                cond::JZ => "jz",
                cond::JNZ => "jnz",
                cond::JC => "jc",
                cond::JNC => "jnc",
                cond::JN => "jn",
                cond::JGE => "jge",
                _ => "jl",
            };
            format!("{mnemonic} {imm}")
        }
        oc::HALT => "halt".to_string(),
        other => format!("; unknown opcode {other}"),
    }
}

/// Decoded instruction fields, shared by the ISS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fields {
    pub op: u32,
    pub rd: usize,
    pub rs: usize,
    pub cc: u32,
    pub imm: u16,
}

pub(crate) fn decode(word: u32) -> Fields {
    Fields {
        op: word >> 26,
        rd: (word >> 23 & 7) as usize,
        rs: (word >> 20 & 7) as usize,
        cc: word >> 16 & 0xf,
        imm: (word & 0xffff) as u16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_fields() {
        let p = assemble("loop: add r3, r5\n jnz loop\n halt").unwrap();
        let f = decode(p[0]);
        assert_eq!((f.op, f.rd, f.rs), (oc::ADD, 3, 5));
        let j = decode(p[1]);
        assert_eq!((j.op, j.cc, j.imm), (oc::JCC, cond::JNZ, 0));
        assert_eq!(decode(p[2]).op, oc::HALT);
    }

    #[test]
    fn memory_operands() {
        let p = assemble("ld r1, 3(r2)\nst r4, -1(r5)").unwrap();
        let l = decode(p[0]);
        assert_eq!((l.op, l.rd, l.rs, l.imm), (oc::LD, 1, 2, 3));
        let s = decode(p[1]);
        assert_eq!((s.op, s.rd, s.rs, s.imm), (oc::ST, 4, 5, 0xffff));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(assemble("frobnicate r1").is_err());
        assert!(assemble("movi r9, 0").is_err());
        assert!(assemble("movi r1, 0x10000").is_err());
        assert!(assemble("jmp nowhere").is_err());
    }
}
