//! `omsp16` — an openMSP430-style 16-bit microcontroller.
//!
//! Matches the openMSP430 character of the paper's Table 2:
//!
//! * 16-bit datapath, 8 general-purpose registers;
//! * compare results live in a 4-bit **status register** (Z, N, C, V), and
//!   conditional jumps test individual flags — the property that makes
//!   openMSP430's conservative states converge quickly (paper §5.0.3);
//! * a memory-mapped peripheral block: 16×16 hardware multiplier, GPIO,
//!   TimerA-style timer, and watchdog. Benchmarks that ignore the
//!   peripherals leave the whole block unexercised, which is why the paper
//!   reports the largest bespoke reductions on this design (Fig. 5).
//!
//! Memory map (word addresses): data RAM at `0x000..0x100`, peripherals at
//! `0x100..0x110` (`0x100` mul op1, `0x101` mul op2, `0x102/0x103` product
//! lo/hi, `0x104` GPIO out, `0x105` GPIO in, `0x106` GPIO dir, `0x107`
//! timer ctl, `0x108` timer count, `0x109` watchdog ctl, `0x10a` watchdog
//! count).

mod assemble;
mod bench;
mod ext;
mod iss;

pub use assemble::{assemble, disassemble};
pub use bench::{benchmark, benchmarks};
pub use ext::extended_benchmarks;
pub use iss::Iss;

use symsim_netlist::{Bus, RtlBuilder};

use crate::harness::{any, mux_tree, select, select1, Cpu};

/// Program memory depth in 32-bit words.
pub const PMEM_DEPTH: usize = 512;
/// Data memory depth in 16-bit words.
pub const DMEM_DEPTH: usize = 256;
/// Base word address of the peripheral block.
pub const PERIPH_BASE: u16 = 0x100;

pub(crate) mod opcodes {
    pub const NOP: u32 = 0;
    pub const MOVI: u32 = 1;
    pub const MOV: u32 = 2;
    pub const ADD: u32 = 3;
    pub const ADDI: u32 = 4;
    pub const SUB: u32 = 5;
    pub const SUBI: u32 = 6;
    pub const CMP: u32 = 7;
    pub const CMPI: u32 = 8;
    pub const AND: u32 = 9;
    pub const ANDI: u32 = 10;
    pub const OR: u32 = 11;
    pub const ORI: u32 = 12;
    pub const XOR: u32 = 13;
    pub const SHL: u32 = 14;
    pub const SHR: u32 = 15;
    pub const LD: u32 = 16;
    pub const ST: u32 = 17;
    pub const JMP: u32 = 18;
    pub const JCC: u32 = 19;
    pub const HALT: u32 = 20;
}

/// Condition codes for `JCC` (flag tests, MSP430 style).
pub(crate) mod cond {
    pub const JZ: u32 = 0;
    pub const JNZ: u32 = 1;
    pub const JC: u32 = 2;
    pub const JNC: u32 = 3;
    pub const JN: u32 = 4;
    pub const JGE: u32 = 5;
    pub const JL: u32 = 6;
}

/// Builds the omsp16 gate-level netlist and its co-analysis interface.
pub fn build() -> Cpu {
    const W: usize = 16;
    let mut b = RtlBuilder::new("omsp16");
    let gpio_in = b.input("gpio_in", W);

    // ---- architectural state ----
    let pc_r = b.reg("pc", 9, 0);
    let pcq = pc_r.q.clone();
    let halted_r = b.reg("halted_r", 1, 0);
    let haltq = halted_r.q.clone();
    let flags_r = b.reg("flags", 4, 0); // [0]=Z [1]=N [2]=C [3]=V
    let flagsq = flags_r.q.clone();
    let rf: Vec<_> = (0..8).map(|i| b.reg_x(&format!("rf{i}"), W)).collect();
    let rfq: Vec<Bus> = rf.iter().map(|r| r.q.clone()).collect();

    // ---- fetch / fields ----
    let pmem = b.memory("pmem", PMEM_DEPTH, 32);
    let instr = b.mem_read(pmem, &pcq);
    let op = instr.slice(26, 32);
    let rd_f = instr.slice(23, 26);
    let rs_f = instr.slice(20, 23);
    let cond_f = instr.slice(16, 20);
    let imm = instr.slice(0, 16);

    // ---- decode ----
    let dec = |b: &mut RtlBuilder, code: u32| {
        let c = b.const_word(code as u64, 6);
        b.eq(&op, &c)
    };
    use opcodes as oc;
    let is_movi = dec(&mut b, oc::MOVI);
    let is_mov = dec(&mut b, oc::MOV);
    let is_add = dec(&mut b, oc::ADD);
    let is_addi = dec(&mut b, oc::ADDI);
    let is_sub = dec(&mut b, oc::SUB);
    let is_subi = dec(&mut b, oc::SUBI);
    let is_cmp = dec(&mut b, oc::CMP);
    let is_cmpi = dec(&mut b, oc::CMPI);
    let is_and = dec(&mut b, oc::AND);
    let is_andi = dec(&mut b, oc::ANDI);
    let is_or = dec(&mut b, oc::OR);
    let is_ori = dec(&mut b, oc::ORI);
    let is_xor = dec(&mut b, oc::XOR);
    let is_shl = dec(&mut b, oc::SHL);
    let is_shr = dec(&mut b, oc::SHR);
    let is_ld = dec(&mut b, oc::LD);
    let is_st = dec(&mut b, oc::ST);
    let is_jmp = dec(&mut b, oc::JMP);
    let is_jcc = dec(&mut b, oc::JCC);
    let is_halt = dec(&mut b, oc::HALT);

    let not_halt = b.not1(haltq.bit(0));

    // ---- register read / operand select ----
    let rd_val = mux_tree(&mut b, &rd_f, &rfq);
    let rs_val = mux_tree(&mut b, &rs_f, &rfq);
    let uses_imm = any(
        &mut b,
        &[is_movi, is_addi, is_subi, is_cmpi, is_andi, is_ori],
    );
    let opb = b.mux(uses_imm, &rs_val, &imm);

    // ---- ALU ----
    let zero1 = b.zero();
    let (add_res, add_c) = b.add_carry(&rd_val, &opb, zero1);
    let (sub_res, sub_c) = b.sub_carry(&rd_val, &opb);
    let and_res = b.and(&rd_val, &opb);
    let or_res = b.or(&rd_val, &opb);
    let xor_res = b.xor(&rd_val, &opb);
    let shl_res = b.shl_const(&rd_val, 1);
    let shr_res = b.shr_const(&rd_val, 1);
    let is_addish = any(&mut b, &[is_add, is_addi]);
    let is_subish = any(&mut b, &[is_sub, is_subi, is_cmp, is_cmpi]);
    let is_andish = any(&mut b, &[is_and, is_andi]);
    let is_orish = any(&mut b, &[is_or, is_ori]);
    let alu_res = select(
        &mut b,
        &opb, // MOV/MOVI pass the operand through
        &[
            (is_addish, add_res.clone()),
            (is_subish, sub_res.clone()),
            (is_andish, and_res),
            (is_orish, or_res),
            (is_xor, xor_res),
            (is_shl, shl_res),
            (is_shr, shr_res),
        ],
    );

    // ---- status register (the NZCV flags of paper §5.0.3) ----
    let z_next = b.is_zero(&alu_res);
    let n_next = alu_res.msb();
    let c_shl = rd_val.msb();
    let c_shr = rd_val.bit(0);
    let c_next = select1(
        &mut b,
        zero1,
        &[
            (is_addish, add_c),
            (is_subish, sub_c),
            (is_shl, c_shl),
            (is_shr, c_shr),
        ],
    );
    let sa = rd_val.msb();
    let sb = opb.msb();
    let signs_differ = b.xor1(sa, sb);
    let signs_same = b.not1(signs_differ);
    let res_flip_add = b.xor1(sa, add_res.msb());
    let v_add = b.and1(signs_same, res_flip_add);
    let res_flip_sub = b.xor1(sa, sub_res.msb());
    let v_sub = b.and1(signs_differ, res_flip_sub);
    let v_next = select1(&mut b, zero1, &[(is_addish, v_add), (is_subish, v_sub)]);
    let sets_flags = any(
        &mut b,
        &[
            is_addish, is_subish, is_andish, is_orish, is_xor, is_shl, is_shr,
        ],
    );
    let flags_we = b.and1(sets_flags, not_halt);
    let flags_next_bus = Bus::from_nets(vec![z_next, n_next, c_next, v_next]);
    let flags_next = b.mux(flags_we, &flagsq, &flags_next_bus);
    b.drive_reg(flags_r, &flags_next);

    // ---- data memory and peripherals ----
    let addr = b.add(&rs_val, &imm);
    let addr_hi = addr.slice(8, 16);
    let is_dmem = b.is_zero(&addr_hi);
    let one_page = b.const_word(1, 8);
    let is_periph = b.eq(&addr_hi, &one_page);
    let dmem = b.memory("dmem", DMEM_DEPTH, W);
    let daddr = addr.slice(0, 8);
    let dmem_rdata = b.mem_read(dmem, &daddr);
    let st_en = b.and1(is_st, not_halt);
    let dmem_we = b.and1(st_en, is_dmem);
    b.mem_write(dmem, &daddr, &rd_val, dmem_we);

    // peripheral block: multiplier, GPIO, timer, watchdog
    let psel = addr.slice(0, 4);
    let pwrite = b.and1(st_en, is_periph);
    let pw = |b: &mut RtlBuilder, index: u64| {
        let c = b.const_word(index, 4);
        let hit = b.eq(&psel, &c);
        b.and1(pwrite, hit)
    };
    let we_op1 = pw(&mut b, 0);
    let we_op2 = pw(&mut b, 1);
    let we_gout = pw(&mut b, 4);
    let we_gdir = pw(&mut b, 6);
    let we_tctl = pw(&mut b, 7);
    let we_wctl = pw(&mut b, 9);

    let mul_op1 = b.reg_en("mul_op1", &rd_val, we_op1, 0);
    let mul_op2 = b.reg_en("mul_op2", &rd_val, we_op2, 0);
    let product = b.mul_full(&mul_op1, &mul_op2); // the 16x16 hardware multiplier
    let gpio_out = b.reg_en("gpio_out", &rd_val, we_gout, 0);
    let gpio_dir = b.reg_en("gpio_dir", &rd_val, we_gdir, 0);
    let tctl_in = rd_val.slice(0, 1);
    let timer_ctl = b.reg_en("timer_ctl", &tctl_in, we_tctl, 0);
    let timer_cnt_r = b.reg("timer_cnt", W, 0);
    let timer_q = timer_cnt_r.q.clone();
    let one16 = b.const_word(1, W);
    let timer_inc = b.add(&timer_q, &one16);
    let timer_next = b.mux(timer_ctl.bit(0), &timer_q, &timer_inc);
    b.drive_reg(timer_cnt_r, &timer_next);
    let wctl_in = rd_val.slice(0, 1);
    let wdt_ctl = b.reg_en("wdt_ctl", &wctl_in, we_wctl, 0);
    let wdt_cnt_r = b.reg("wdt_cnt", W, 0);
    let wdt_q = wdt_cnt_r.q.clone();
    let wdt_inc = b.add(&wdt_q, &one16);
    let wdt_next = b.mux(wdt_ctl.bit(0), &wdt_q, &wdt_inc);
    b.drive_reg(wdt_cnt_r, &wdt_next);

    let zero16 = b.const_word(0, W);
    let timer_ctl16 = b.zext(&timer_ctl, W);
    let wdt_ctl16 = b.zext(&wdt_ctl, W);
    let periph_rdata = mux_tree(
        &mut b,
        &psel,
        &[
            mul_op1.clone(),
            mul_op2.clone(),
            product.slice(0, W),
            product.slice(W, 2 * W),
            gpio_out.clone(),
            gpio_in.clone(),
            gpio_dir.clone(),
            timer_ctl16,
            timer_q.clone(),
            wdt_ctl16,
            wdt_q.clone(),
            zero16.clone(),
        ],
    );
    let ld_data = b.mux(is_periph, &dmem_rdata, &periph_rdata);

    // ---- write-back ----
    let wdata = b.mux(is_ld, &alu_res, &ld_data);
    let sub_writes = any(&mut b, &[is_sub, is_subi]);
    let writes_reg = any(
        &mut b,
        &[
            is_mov, is_movi, is_addish, sub_writes, is_andish, is_orish, is_xor, is_shl, is_shr,
            is_ld,
        ],
    );
    let wr_en = b.and1(writes_reg, not_halt);
    let mut reg_nets = Vec::with_capacity(8);
    for (i, handle) in rf.into_iter().enumerate() {
        let c = b.const_word(i as u64, 3);
        let hit = b.eq(&rd_f, &c);
        let en = b.and1(wr_en, hit);
        let q = handle.q.clone();
        let next = b.mux(en, &q, &wdata);
        reg_nets.push(q.as_nets().to_vec());
        b.drive_reg(handle, &next);
    }

    // ---- control flow ----
    let zf = flagsq.bit(0);
    let nf = flagsq.bit(1);
    let cf = flagsq.bit(2);
    let vf = flagsq.bit(3);
    let nzf = b.not1(zf);
    let ncf = b.not1(cf);
    let ge = b.xnor1(nf, vf);
    let lt = b.xor1(nf, vf);
    let conds: Vec<Bus> = [zf, nzf, cf, ncf, nf, ge, lt]
        .into_iter()
        .map(|n| Bus::from_nets(vec![n]))
        .collect();
    let cond_sel = mux_tree(&mut b, &cond_f, &conds);
    // the branch's *selected* condition: the signal the CSM forces to steer
    // a spawned path (halting still watches every NZCV flag, per the paper)
    let branch_cond = b.name_net("branch_cond", cond_sel.bit(0));
    let is_branch_raw = b.and1(is_jcc, not_halt);
    let is_branch = b.name_net("is_branch", is_branch_raw);
    let taken = b.and1(is_branch, branch_cond);
    let one9 = b.const_word(1, 9);
    let pc_plus = b.add(&pcq, &one9);
    let target = imm.slice(0, 9);
    let next0 = b.mux(taken, &pc_plus, &target);
    let next1 = b.mux(is_jmp, &next0, &target);
    let next_pc = b.mux(haltq.bit(0), &next1, &pcq);
    b.drive_reg(pc_r, &next_pc);

    // ---- halt / finish ----
    let halt_set = b.and1(is_halt, not_halt);
    let halt_next_bit = b.or1(haltq.bit(0), halt_set);
    let halt_next = Bus::from_nets(vec![halt_next_bit]);
    b.drive_reg(halted_r, &halt_next);
    let finish = b.name_net("finish", haltq.bit(0));

    // keep GPIO externally visible so the output logic survives sweeps
    b.output("gpio_pins", &gpio_out);

    let netlist = b.finish().expect("omsp16 netlist is structurally valid");
    // the monitored flags are the status-register outputs
    let monitor_signals = (0..4)
        .map(|i| netlist.find_net(&format!("flags[{i}]")).expect("flag net"))
        .collect();
    let pc_nets = (0..9)
        .map(|i| netlist.find_net(&format!("pc[{i}]")).expect("pc net"))
        .collect();
    let qualifier = netlist.find_net("is_branch").expect("is_branch net");
    let finish_net = netlist.find_net("finish").expect("finish net");
    let _ = finish;
    let pmem_idx = netlist
        .memories()
        .iter()
        .position(|m| m.name == "pmem")
        .expect("pmem");
    let dmem_idx = netlist
        .memories()
        .iter()
        .position(|m| m.name == "dmem")
        .expect("dmem");
    let reg_nets = reg_nets;
    Cpu {
        name: "omsp16",
        pc: pc_nets,
        monitor_qualifier: qualifier,
        monitor_signals,
        split_signals: Some(vec![netlist.find_net("branch_cond").expect("branch_cond")]),
        netlist,
        finish: finish_net,
        pmem: pmem_idx,
        dmem: dmem_idx,
        data_width: W,
        reg_nets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let cpu = build();
        assert!(cpu.netlist.validate().is_ok());
        assert!(
            cpu.netlist.total_gate_count() > 3000,
            "{}",
            cpu.netlist.total_gate_count()
        );
        assert_eq!(cpu.monitor_signals.len(), 4);
        assert_eq!(cpu.pc.len(), 9);
        assert_eq!(cpu.reg_nets.len(), 8);
    }
}
