//! Disassembler round-trips: re-assembling the disassembly of any program
//! word reproduces the word exactly, across every benchmark (Table 1 and
//! extensions) on all three ISAs.

use symsim_cpu::{bm32, dr5, omsp16};

fn roundtrip<EN, DIS>(name: &str, program: &[u32], assemble_one: EN, disassemble: DIS)
where
    EN: Fn(&str) -> Vec<u32>,
    DIS: Fn(u32) -> String,
{
    for (i, &word) in program.iter().enumerate() {
        let text = disassemble(word);
        let back = assemble_one(&text);
        assert_eq!(
            back,
            vec![word],
            "{name}: word {i} ({word:#010x}) disassembled to \"{text}\""
        );
    }
}

#[test]
fn omsp16_roundtrips_every_benchmark() {
    let all = omsp16::benchmarks()
        .into_iter()
        .chain(omsp16::extended_benchmarks());
    for bench in all {
        let program = omsp16::assemble(bench.source).expect("assembles");
        roundtrip(
            bench.name,
            &program,
            |s| omsp16::assemble(s).expect("reassembles"),
            omsp16::disassemble,
        );
    }
}

#[test]
fn bm32_roundtrips_every_benchmark() {
    let all = bm32::benchmarks()
        .into_iter()
        .chain(bm32::extended_benchmarks());
    for bench in all {
        let program = bm32::assemble(bench.source).expect("assembles");
        roundtrip(
            bench.name,
            &program,
            |s| bm32::assemble(s).expect("reassembles"),
            bm32::disassemble,
        );
    }
}

#[test]
fn dr5_roundtrips_every_benchmark() {
    let all = dr5::benchmarks()
        .into_iter()
        .chain(dr5::extended_benchmarks());
    for bench in all {
        let program = dr5::assemble(bench.source).expect("assembles");
        roundtrip(
            bench.name,
            &program,
            |s| dr5::assemble(s).expect("reassembles"),
            dr5::disassemble,
        );
    }
}
