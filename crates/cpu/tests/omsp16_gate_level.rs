//! Gate-level omsp16 vs golden-model validation: the single-cycle netlist
//! must match the ISS architecturally, cycle for cycle.

use symsim_cpu::omsp16;
use symsim_sim::{HaltReason, SimConfig, Simulator};

fn run_gate_level(bench: &symsim_cpu::Benchmark) -> (symsim_cpu::Cpu, omsp16::Iss, u64) {
    let cpu = omsp16::build();
    let program = omsp16::assemble(bench.source).expect("assembles");
    let mut iss = omsp16::Iss::new(&program);
    for &(a, v) in &bench.data.concrete {
        iss.write_mem(a, v as u16);
    }
    for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
        iss.write_mem(a, v as u16);
    }
    assert!(iss.run(bench.max_cycles), "ISS must halt");

    let mut sim = Simulator::new(&cpu.netlist, SimConfig::default());
    cpu.prepare_concrete(&mut sim, &program, &bench.data, &bench.example_inputs);
    sim.set_finish_net(cpu.finish);
    let reason = sim.run(bench.max_cycles);
    assert_eq!(reason, HaltReason::Finished, "gate level must halt");

    // compare architectural state
    for r in 0..8 {
        let gate = cpu.read_reg(&sim, r).to_u64();
        assert_eq!(
            gate,
            Some(iss.regs[r] as u64),
            "register r{r} diverged on {}",
            bench.name
        );
    }
    for addr in 0..omsp16::DMEM_DEPTH {
        let gate = cpu.read_data(&sim, addr).to_u64();
        assert_eq!(
            gate,
            Some(iss.mem[addr] as u64),
            "dmem[{addr}] diverged on {}",
            bench.name
        );
    }
    let cycles = sim.cycle();
    (cpu, iss, cycles)
}

#[test]
fn div_matches_golden_model() {
    let bench = omsp16::benchmark("div");
    let (cpu, iss, _) = run_gate_level(&bench);
    assert_eq!(iss.mem[2], 14);
    assert_eq!(iss.mem[3], 2);
    let _ = cpu;
}

#[test]
fn mult_uses_hardware_multiplier() {
    let bench = omsp16::benchmark("mult");
    let (_, iss, cycles) = run_gate_level(&bench);
    let product = (iss.mem[3] as u32) << 16 | iss.mem[2] as u32;
    assert_eq!(product, 75_000);
    assert!(cycles < 20);
}

#[test]
fn tea8_matches_golden_model() {
    let bench = omsp16::benchmark("tea8");
    let (_, iss, _) = run_gate_level(&bench);
    assert_ne!(iss.mem[2], 0x1234);
}

#[test]
fn insort_matches_golden_model() {
    let bench = omsp16::benchmark("insort");
    run_gate_level(&bench);
}

#[test]
fn binsearch_matches_golden_model() {
    let bench = omsp16::benchmark("binsearch");
    let (_, iss, _) = run_gate_level(&bench);
    assert_eq!(iss.mem[1], 5);
}

#[test]
fn thold_matches_golden_model() {
    let bench = omsp16::benchmark("thold");
    run_gate_level(&bench);
}
