//! Gate-level bm32 and dr5 vs their golden models across all benchmarks.

use symsim_cpu::{bm32, dr5};
use symsim_sim::{HaltReason, SimConfig, Simulator};

macro_rules! concrete_sim {
    ($cpu:expr, $program:expr, $bench:expr) => {{
        let mut sim = Simulator::new(&$cpu.netlist, SimConfig::default());
        $cpu.prepare_concrete(&mut sim, $program, &$bench.data, &$bench.example_inputs);
        sim.set_finish_net($cpu.finish);
        let reason = sim.run($bench.max_cycles);
        assert_eq!(
            reason,
            HaltReason::Finished,
            "gate level must halt on {}",
            $bench.name
        );
        sim
    }};
}

#[test]
fn bm32_all_benchmarks_match_golden_model() {
    let cpu = bm32::build();
    for bench in bm32::benchmarks() {
        let program = bm32::assemble(bench.source).expect("assembles");
        let mut iss = bm32::Iss::new(&program);
        for &(a, v) in &bench.data.concrete {
            iss.write_mem(a, v as u32);
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u32);
        }
        assert!(iss.run(bench.max_cycles), "ISS must halt on {}", bench.name);
        let sim = concrete_sim!(cpu, &program, bench);
        for r in 0..16 {
            assert_eq!(
                cpu.read_reg(&sim, r).to_u64(),
                Some(iss.regs[r] as u64),
                "bm32 ${r} diverged on {}",
                bench.name
            );
        }
        for addr in 0..bm32::DMEM_DEPTH {
            assert_eq!(
                cpu.read_data(&sim, addr).to_u64(),
                Some(iss.mem[addr] as u64),
                "bm32 dmem[{addr}] diverged on {}",
                bench.name
            );
        }
    }
}

#[test]
fn dr5_all_benchmarks_match_golden_model() {
    let cpu = dr5::build();
    for bench in dr5::benchmarks() {
        let program = dr5::assemble(bench.source).expect("assembles");
        let mut iss = dr5::Iss::new(&program);
        for &(a, v) in &bench.data.concrete {
            iss.write_mem(a, v as u32);
        }
        for (&a, &v) in bench.data.inputs.iter().zip(&bench.example_inputs) {
            iss.write_mem(a, v as u32);
        }
        assert!(iss.run(bench.max_cycles), "ISS must halt on {}", bench.name);
        let sim = concrete_sim!(cpu, &program, bench);
        for r in 0..16 {
            assert_eq!(
                cpu.read_reg(&sim, r).to_u64(),
                Some(iss.regs[r] as u64),
                "dr5 x{r} diverged on {}",
                bench.name
            );
        }
        for addr in 0..dr5::DMEM_DEPTH {
            assert_eq!(
                cpu.read_data(&sim, addr).to_u64(),
                Some(iss.mem[addr] as u64),
                "dr5 dmem[{addr}] diverged on {}",
                bench.name
            );
        }
    }
}
